//! The simulated primary-to-backup log channel.
//!
//! Models the paper's testbed link (100 Mbps Ethernet between two servers)
//! as a reliable FIFO channel with a fixed per-message cost, a per-byte
//! cost, and a propagation delay. The *sender-side CPU cost* of a send is
//! what the paper charges to "Communication Overhead"; the time spent
//! blocked until an acknowledgment returns is "Pessimistic Overhead".

use crate::clock::SimTime;
use bytes::Bytes;
use std::collections::VecDeque;

/// Link parameters for a [`SimChannel`].
#[derive(Debug, Clone)]
pub struct NetParams {
    /// Sender-side fixed cost per message (syscall + protocol stack).
    pub per_message: SimTime,
    /// Sender-side cost per payload byte (copy + serialization + wire time
    /// at 100 Mbps ≈ 80 ns/byte).
    pub per_byte: SimTime,
    /// One-way propagation delay.
    pub propagation: SimTime,
    /// Receiver-side cost to process one message and append it to the log.
    pub recv_per_message: SimTime,
    /// Cost for the backup to generate an acknowledgment message.
    pub ack_cost: SimTime,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            per_message: SimTime::from_micros(18),
            per_byte: SimTime::from_nanos(90),
            propagation: SimTime::from_micros(60),
            recv_per_message: SimTime::from_micros(6),
            ack_cost: SimTime::from_micros(14),
        }
    }
}

/// Counters describing everything a channel has carried.
///
/// The reliability counters (`drops` onward) stay zero on the perfect
/// [`SimChannel`]; they are populated by the lossy link
/// ([`crate::LossyChannel`]) and the reliable-delivery sublayer built on
/// top of it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Messages passed to [`SimChannel::send`].
    pub messages_sent: u64,
    /// Total payload bytes sent.
    pub bytes_sent: u64,
    /// Acknowledgment round trips performed.
    pub ack_round_trips: u64,
    /// Frames the network dropped in flight (including partition windows).
    pub drops: u64,
    /// Duplicate frames suppressed at the receiver (injected duplicates
    /// plus spurious retransmissions).
    pub dup_deliveries: u64,
    /// Frames the receiver rejected because the CRC or header check failed.
    pub corrupted_frames: u64,
    /// Frames that arrived out of sequence and had to be buffered.
    pub reordered: u64,
    /// Frames the sender retransmitted (timeout- or NACK-triggered).
    pub retransmits: u64,
    /// Gap reports (NACKs) the receiver sent.
    pub nacks: u64,
}

/// A reliable FIFO simulated channel carrying log messages from the primary
/// to the backup.
///
/// The channel never loses or reorders flushed messages — fail-stop loss is
/// modelled at the *sender*: records still sitting in the primary's buffer
/// when it crashes were never passed to `send` and therefore never exist
/// here.
///
/// ```
/// use ftjvm_netsim::{NetParams, SimChannel, SimTime};
/// let mut ch = SimChannel::new(NetParams::default());
/// let cost = ch.send(SimTime::ZERO, vec![0u8; 36]);
/// assert!(cost > SimTime::ZERO);
/// let delivered = ch.drain();
/// assert_eq!(delivered.len(), 1);
/// assert_eq!(delivered[0].1.len(), 36);
/// ```
#[derive(Debug)]
pub struct SimChannel {
    params: NetParams,
    /// (delivery instant, payload)
    in_flight: VecDeque<(SimTime, Bytes)>,
    last_delivery: SimTime,
    stats: ChannelStats,
    /// Optional shared-trunk capacity (fleet simulations): the handle plus
    /// this channel's local→global clock offset. `None` — the default and
    /// every single-pair path — leaves timing byte-identical to a build
    /// without the fleet layer.
    shared: Option<(crate::SharedLink, SimTime)>,
}

impl SimChannel {
    /// Creates an empty channel with the given link parameters.
    pub fn new(params: NetParams) -> Self {
        SimChannel {
            params,
            in_flight: VecDeque::new(),
            last_delivery: SimTime::ZERO,
            stats: ChannelStats::default(),
            shared: None,
        }
    }

    /// The link parameters.
    pub fn params(&self) -> &NetParams {
        &self.params
    }

    /// Attaches a shared-trunk capacity: every subsequent send also passes
    /// through `link`'s FIFO serializer at global instant `offset + local
    /// send instant`, adding the trunk's queue and serialization delay to
    /// the frame's arrival.
    pub fn attach_shared(&mut self, link: crate::SharedLink, offset: SimTime) {
        self.shared = Some((link, offset));
    }

    /// Sends one message at instant `now`, returning the sender-side CPU
    /// cost (to be charged to the communication category). The message will
    /// be delivered after serialization plus propagation, FIFO after any
    /// message already in flight.
    pub fn send(&mut self, now: SimTime, payload: impl Into<Bytes>) -> SimTime {
        let payload = payload.into();
        let send_cost = self.params.per_message
            + SimTime::from_nanos(self.params.per_byte.as_nanos() * payload.len() as u64);
        let mut arrival = now + send_cost + self.params.propagation;
        if let Some((link, offset)) = &self.shared {
            // The frame reaches the shared trunk after local serialization;
            // queue + trunk-transmission delay lands on top.
            let at_trunk = *offset + now + send_cost;
            arrival += link.borrow_mut().admit(at_trunk, payload.len());
        }
        let arrival = arrival.max(self.last_delivery);
        let arrival = arrival + self.params.recv_per_message;
        self.last_delivery = arrival;
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += payload.len() as u64;
        self.in_flight.push_back((arrival, payload));
        send_cost
    }

    /// The instant at which an acknowledgment requested at `now` (after all
    /// sends so far) would arrive back at the sender. Waiting until this
    /// instant is the paper's pessimistic output-commit delay.
    pub fn ack_arrival(&mut self, now: SimTime) -> SimTime {
        self.stats.ack_round_trips += 1;
        let backup_done = self.last_delivery.max(now);
        backup_done + self.params.ack_cost + self.params.propagation
    }

    /// Messages whose delivery instant is at or before `now`, in FIFO order.
    pub fn recv_ready(&mut self, now: SimTime) -> Vec<(SimTime, Bytes)> {
        let mut out = Vec::new();
        while let Some((at, _)) = self.in_flight.front() {
            if *at <= now {
                out.push(self.in_flight.pop_front().expect("front checked"));
            } else {
                break;
            }
        }
        out
    }

    /// Delivers everything in flight regardless of time (used when the
    /// backup takes over: all flushed messages are on stable FIFO order).
    pub fn drain(&mut self) -> Vec<(SimTime, Bytes)> {
        self.in_flight.drain(..).collect()
    }

    /// Number of messages still in flight.
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }

    /// Aggregate channel statistics.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> NetParams {
        NetParams {
            per_message: SimTime::from_nanos(100),
            per_byte: SimTime::from_nanos(10),
            propagation: SimTime::from_nanos(1_000),
            recv_per_message: SimTime::from_nanos(50),
            ack_cost: SimTime::from_nanos(100),
        }
    }

    #[test]
    fn send_cost_scales_with_bytes() {
        let mut ch = SimChannel::new(params());
        let c1 = ch.send(SimTime::ZERO, vec![0u8; 10]);
        let c2 = ch.send(ch.params().propagation, vec![0u8; 20]);
        assert_eq!(c1.as_nanos(), 200);
        assert_eq!(c2.as_nanos(), 300);
        assert_eq!(ch.stats().bytes_sent, 30);
        assert_eq!(ch.stats().messages_sent, 2);
    }

    #[test]
    fn fifo_delivery_order_is_preserved() {
        let mut ch = SimChannel::new(params());
        ch.send(SimTime::ZERO, vec![1u8]);
        ch.send(SimTime::ZERO, vec![2u8]);
        ch.send(SimTime::ZERO, vec![3u8]);
        let msgs = ch.drain();
        let ids: Vec<u8> = msgs.iter().map(|(_, b)| b[0]).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        // Delivery instants are non-decreasing.
        assert!(msgs.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn recv_ready_respects_time() {
        let mut ch = SimChannel::new(params());
        ch.send(SimTime::ZERO, vec![1u8]);
        assert!(ch.recv_ready(SimTime::from_nanos(10)).is_empty());
        assert_eq!(ch.recv_ready(SimTime::from_millis(1)).len(), 1);
        assert_eq!(ch.in_flight_len(), 0);
    }

    #[test]
    fn ack_waits_for_all_deliveries() {
        let mut ch = SimChannel::new(params());
        ch.send(SimTime::ZERO, vec![0u8; 100]);
        let ack_at = ch.ack_arrival(SimTime::ZERO);
        // ack must arrive strictly after the message could be delivered
        // plus the return propagation.
        assert!(ack_at.as_nanos() > 2_000);
        assert_eq!(ch.stats().ack_round_trips, 1);
    }
}
