//! Fail-stop fault injection and failure detection.
//!
//! The paper assumes fail-stop replicas: the primary halts, loses its
//! volatile state, and the backup detects the failure via a dedicated
//! failure-detection thread. Here a [`FaultPlan`] pins the crash to a
//! deterministic point in the primary's execution so that property tests
//! can sweep every interesting failure point, and a [`FailureDetector`]
//! models the detection latency added before recovery begins.

use crate::clock::SimTime;

/// When (if ever) to kill the primary.
///
/// The plan is evaluated against the primary's own event counters, making
/// crashes exactly reproducible for a given seed and workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPlan {
    /// Run to completion; never crash.
    #[default]
    None,
    /// Crash after executing this many bytecode instructions.
    AfterInstructions(u64),
    /// Crash immediately before performing the n-th (0-based) environment
    /// output action — after the output commit was acknowledged but before
    /// the output itself. This is the paper's "uncertain output" window.
    BeforeOutput(u64),
    /// Crash immediately after performing the n-th (0-based) environment
    /// output action.
    AfterOutput(u64),
    /// Crash after the n-th (0-based) log-buffer flush reaches the channel,
    /// leaving any later records unlogged.
    AfterFlush(u64),
}

impl FaultPlan {
    /// True if the plan can ever fire.
    pub fn is_armed(&self) -> bool {
        !matches!(self, FaultPlan::None)
    }
}

/// Models the backup's failure-detection thread.
///
/// The primary sends heartbeats every `interval`; the backup declares the
/// primary dead after `missed` consecutive heartbeats fail to arrive.
///
/// ```
/// use ftjvm_netsim::{FailureDetector, SimTime};
/// let fd = FailureDetector::new(SimTime::from_millis(10), 3);
/// let crash = SimTime::from_millis(100);
/// let detected = fd.detection_instant(crash);
/// assert!(detected > crash);
/// assert_eq!((detected - crash).as_millis(), 30);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FailureDetector {
    interval: SimTime,
    missed: u32,
}

impl FailureDetector {
    /// Creates a detector with the given heartbeat interval and miss count.
    ///
    /// # Panics
    /// Panics if `missed` is zero (a detector that fires instantly on a
    /// single scheduling hiccup is a misconfiguration, not a policy).
    pub fn new(interval: SimTime, missed: u32) -> Self {
        assert!(missed > 0, "failure detector must tolerate at least one missed heartbeat");
        FailureDetector { interval, missed }
    }

    /// Heartbeat interval.
    pub fn interval(&self) -> SimTime {
        self.interval
    }

    /// The instant the backup declares the primary (which crashed at
    /// `crash_at`) failed and begins recovery.
    ///
    /// This is the closed-form worst case (`crash_at + interval × missed`);
    /// a live run uses [`FailureDetector::monitor`] to derive detection from
    /// the heartbeats that actually arrived.
    pub fn detection_instant(&self, crash_at: SimTime) -> SimTime {
        crash_at + SimTime::from_nanos(self.interval.as_nanos() * self.missed as u64)
    }

    /// Starts a stateful [`HeartbeatMonitor`] for a run beginning at
    /// `start` (the instant the detector arms, counted as an implicit
    /// heartbeat).
    pub fn monitor(&self, start: SimTime) -> HeartbeatMonitor {
        HeartbeatMonitor { interval: self.interval, missed: self.missed, last_heard: start }
    }
}

/// Stateful failure detection driven by the heartbeats that actually arrive.
///
/// The backup's failure-detection thread feeds every heartbeat arrival into
/// [`HeartbeatMonitor::observe`]; the primary is declared dead the instant
/// `missed` consecutive heartbeat intervals elapse with nothing heard
/// ([`HeartbeatMonitor::deadline`]). Because the deadline is re-armed from
/// the *latest arrival*, a single dropped heartbeat only delays detection by
/// one interval — it never resets the count.
///
/// ```
/// use ftjvm_netsim::{FailureDetector, SimTime};
/// let fd = FailureDetector::new(SimTime::from_millis(10), 2);
/// let mut mon = fd.monitor(SimTime::ZERO);
/// mon.observe(SimTime::from_millis(10));
/// // Primary dies right after: dead by 10 + 2*10 = 30 ms.
/// assert_eq!(mon.deadline().as_millis(), 30);
/// assert!(!mon.expired(SimTime::from_millis(29)));
/// assert!(mon.expired(SimTime::from_millis(30)));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct HeartbeatMonitor {
    interval: SimTime,
    missed: u32,
    last_heard: SimTime,
}

impl HeartbeatMonitor {
    /// Records a heartbeat arrival. Out-of-order observations are tolerated:
    /// only the latest arrival instant arms the deadline.
    pub fn observe(&mut self, arrival: SimTime) {
        if arrival > self.last_heard {
            self.last_heard = arrival;
        }
    }

    /// Arrival instant of the most recent heartbeat (or the arming instant
    /// if none has arrived yet).
    pub fn last_heard(&self) -> SimTime {
        self.last_heard
    }

    /// The instant at which, absent further heartbeats, the primary is
    /// declared failed: `missed` full intervals past the last arrival.
    pub fn deadline(&self) -> SimTime {
        self.last_heard + SimTime::from_nanos(self.interval.as_nanos() * self.missed as u64)
    }

    /// True once `now` has reached the detection deadline.
    pub fn expired(&self, now: SimTime) -> bool {
        now >= self.deadline()
    }
}

impl Default for FailureDetector {
    fn default() -> Self {
        // 50 ms heartbeats, 3 missed => 150 ms detection latency.
        FailureDetector::new(SimTime::from_millis(50), 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_disarmed() {
        assert!(!FaultPlan::None.is_armed());
        assert!(FaultPlan::AfterInstructions(0).is_armed());
        assert!(FaultPlan::BeforeOutput(2).is_armed());
    }

    #[test]
    fn detection_latency_is_interval_times_missed() {
        let fd = FailureDetector::new(SimTime::from_millis(20), 5);
        let t = fd.detection_instant(SimTime::from_millis(7));
        assert_eq!(t.as_millis(), 107);
    }

    #[test]
    #[should_panic(expected = "at least one missed heartbeat")]
    fn zero_missed_heartbeats_rejected() {
        let _ = FailureDetector::new(SimTime::from_millis(20), 0);
    }

    #[test]
    fn monitor_rearms_deadline_from_each_arrival() {
        let fd = FailureDetector::new(SimTime::from_millis(10), 3);
        let mut mon = fd.monitor(SimTime::ZERO);
        assert_eq!(mon.deadline().as_millis(), 30);
        mon.observe(SimTime::from_millis(10));
        mon.observe(SimTime::from_millis(20));
        assert_eq!(mon.last_heard().as_millis(), 20);
        assert_eq!(mon.deadline().as_millis(), 50);
        // A stale (out-of-order) observation must not move the deadline back.
        mon.observe(SimTime::from_millis(5));
        assert_eq!(mon.deadline().as_millis(), 50);
    }

    #[test]
    fn lost_heartbeat_detected_within_two_intervals() {
        // Heartbeats every 10 ms, one missed tolerated. The beat due at
        // t=20 ms is lost in transit; the primary then crashes, so nothing
        // later arrives either. Detection must still fire within
        // 2 × interval of the last heartbeat actually heard.
        let interval = SimTime::from_millis(10);
        let fd = FailureDetector::new(interval, 2);
        let mut mon = fd.monitor(SimTime::ZERO);
        mon.observe(SimTime::from_millis(10));
        // (dropped frame: no observe() for the t=20 beat)
        let detection = mon.deadline();
        let last_heard = SimTime::from_millis(10);
        assert!(detection - last_heard <= SimTime::from_nanos(2 * interval.as_nanos()));
        assert!(mon.expired(detection));
        assert!(!mon.expired(SimTime::from_millis(29)));
    }
}
