//! Fail-stop fault injection and failure detection.
//!
//! The paper assumes fail-stop replicas: the primary halts, loses its
//! volatile state, and the backup detects the failure via a dedicated
//! failure-detection thread. Here a [`FaultPlan`] pins the crash to a
//! deterministic point in the primary's execution so that property tests
//! can sweep every interesting failure point, and a [`FailureDetector`]
//! models the detection latency added before recovery begins.

use crate::clock::SimTime;

/// When (if ever) to kill the primary.
///
/// The plan is evaluated against the primary's own event counters, making
/// crashes exactly reproducible for a given seed and workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPlan {
    /// Run to completion; never crash.
    #[default]
    None,
    /// Crash after executing this many bytecode instructions.
    AfterInstructions(u64),
    /// Crash immediately before performing the n-th (0-based) environment
    /// output action — after the output commit was acknowledged but before
    /// the output itself. This is the paper's "uncertain output" window.
    BeforeOutput(u64),
    /// Crash immediately after performing the n-th (0-based) environment
    /// output action.
    AfterOutput(u64),
    /// Crash after the n-th (0-based) log-buffer flush reaches the channel,
    /// leaving any later records unlogged.
    AfterFlush(u64),
}

impl FaultPlan {
    /// True if the plan can ever fire.
    pub fn is_armed(&self) -> bool {
        !matches!(self, FaultPlan::None)
    }
}

/// Models the backup's failure-detection thread.
///
/// The primary sends heartbeats every `interval`; the backup declares the
/// primary dead after `missed` consecutive heartbeats fail to arrive.
///
/// ```
/// use ftjvm_netsim::{FailureDetector, SimTime};
/// let fd = FailureDetector::new(SimTime::from_millis(10), 3);
/// let crash = SimTime::from_millis(100);
/// let detected = fd.detection_instant(crash);
/// assert!(detected > crash);
/// assert_eq!((detected - crash).as_millis(), 30);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FailureDetector {
    interval: SimTime,
    missed: u32,
}

impl FailureDetector {
    /// Creates a detector with the given heartbeat interval and miss count.
    ///
    /// # Panics
    /// Panics if `missed` is zero (a detector that fires instantly on a
    /// single scheduling hiccup is a misconfiguration, not a policy).
    pub fn new(interval: SimTime, missed: u32) -> Self {
        assert!(missed > 0, "failure detector must tolerate at least one missed heartbeat");
        FailureDetector { interval, missed }
    }

    /// Heartbeat interval.
    pub fn interval(&self) -> SimTime {
        self.interval
    }

    /// The instant the backup declares the primary (which crashed at
    /// `crash_at`) failed and begins recovery.
    pub fn detection_instant(&self, crash_at: SimTime) -> SimTime {
        crash_at + SimTime::from_nanos(self.interval.as_nanos() * self.missed as u64)
    }
}

impl Default for FailureDetector {
    fn default() -> Self {
        // 50 ms heartbeats, 3 missed => 150 ms detection latency.
        FailureDetector::new(SimTime::from_millis(50), 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_disarmed() {
        assert!(!FaultPlan::None.is_armed());
        assert!(FaultPlan::AfterInstructions(0).is_armed());
        assert!(FaultPlan::BeforeOutput(2).is_armed());
    }

    #[test]
    fn detection_latency_is_interval_times_missed() {
        let fd = FailureDetector::new(SimTime::from_millis(20), 5);
        let t = fd.detection_instant(SimTime::from_millis(7));
        assert_eq!(t.as_millis(), 107);
    }

    #[test]
    #[should_panic(expected = "at least one missed heartbeat")]
    fn zero_missed_heartbeats_rejected() {
        let _ = FailureDetector::new(SimTime::from_millis(20), 0);
    }
}
