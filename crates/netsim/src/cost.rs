//! The calibrated cost model and per-category time accounting.
//!
//! The paper decomposes replication overhead into stacked categories
//! (Figures 3 and 4): time spent in the original JVM, communication with the
//! backup, per-event bookkeeping (lock-acquire records or rescheduling
//! counters), miscellaneous instrumentation, and pessimistic waits for
//! output-commit acknowledgments. We reproduce that decomposition exactly:
//! every simulated action is charged to one [`Category`] of a
//! [`TimeAccount`] using the constants in a [`CostModel`].
//!
//! The default constants are calibrated once (see `EXPERIMENTS.md`) and held
//! fixed across all experiments, playing the role of the paper's fixed
//! hardware testbed.

use crate::channel::NetParams;
use crate::clock::{SimClock, SimTime};
use std::fmt;

/// An overhead category, matching the stacked-bar decomposition of the
/// paper's Figures 3 and 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// Work the original, unreplicated JVM would also perform
    /// (interpretation, allocation, GC, native-method execution).
    Base,
    /// Sending log messages to the backup ("Communication Overhead").
    Communication,
    /// Creating and buffering lock-acquisition records ("Lock Acquire
    /// Overhead", Figure 3). Zero in thread-scheduling mode.
    LockAcquire,
    /// Updating progress counters and storing scheduling decisions
    /// ("Rescheduling Overhead", Figure 4). Zero in lock-sync mode.
    Resched,
    /// Remaining instrumentation: per-instruction bookkeeping added to the
    /// interpreter loop, native-method interception, id-map upkeep
    /// ("Misc. Overhead").
    Misc,
    /// Waiting for backup acknowledgments on output commit
    /// ("Pessimistic Overhead").
    Pessimistic,
}

impl Category {
    /// All categories, in presentation order.
    pub const ALL: [Category; 6] = [
        Category::Base,
        Category::Communication,
        Category::LockAcquire,
        Category::Resched,
        Category::Misc,
        Category::Pessimistic,
    ];

    fn index(self) -> usize {
        match self {
            Category::Base => 0,
            Category::Communication => 1,
            Category::LockAcquire => 2,
            Category::Resched => 3,
            Category::Misc => 4,
            Category::Pessimistic => 5,
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Category::Base => "base",
            Category::Communication => "communication",
            Category::LockAcquire => "lock-acquire",
            Category::Resched => "rescheduling",
            Category::Misc => "misc",
            Category::Pessimistic => "pessimistic",
        };
        f.write_str(s)
    }
}

/// Fixed per-action costs, in simulated nanoseconds.
///
/// The constants model a ~400 MHz UltraSPARC II running the interpreted
/// (non-JIT) Sun JDK 1.2, as in the paper's evaluation, connected to its
/// backup by 100 Mbps Ethernet.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Dispatch + execution of one ordinary bytecode.
    pub insn_base: SimTime,
    /// Extra cost of a control-flow bytecode (branch/jump/invoke).
    pub branch_extra: SimTime,
    /// Fixed cost of crossing the native-method boundary.
    pub native_call: SimTime,
    /// Cost of allocating one object or array header.
    pub alloc: SimTime,
    /// Cost of visiting one object during a GC mark/sweep pass.
    pub gc_per_object: SimTime,
    /// Cost of an uninstrumented monitor acquire or release.
    pub monitor_op: SimTime,
    /// Creating and buffering one lock-acquisition record (lock-sync mode).
    pub lock_record: SimTime,
    /// Extending the open lock interval by one acquisition
    /// (interval-compressed lock-sync; a counter bump, far cheaper than a
    /// full record).
    pub interval_update: SimTime,
    /// Creating and buffering one id-map record (lock-sync mode).
    pub id_map_record: SimTime,
    /// Per-instruction PC tracking added to the interpreter loop in
    /// thread-scheduling mode (the paper: "this requires an update to the
    /// thread object after executing every bytecode").
    pub ts_pc_track: SimTime,
    /// Per-control-flow-change `br_cnt` maintenance in thread-scheduling
    /// mode (the paper's "about 12 instructions" fire on branches, jumps
    /// and invocations) — this is why branch-dense benchmarks like jack
    /// pay ~100% Misc overhead while straight-line compress pays ~15%.
    pub ts_br_track: SimTime,
    /// Creating and buffering one thread-schedule record.
    pub sched_record: SimTime,
    /// Checking a native-method signature against the ND hash table.
    pub nd_table_lookup: SimTime,
    /// Serializing one logged native-method result.
    pub nd_result_record: SimTime,
    /// One side-effect-handler `log` upcall.
    pub se_log: SimTime,
    /// Network parameters for the primary-to-backup log channel.
    pub net: NetParams,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            insn_base: SimTime::from_nanos(120),
            branch_extra: SimTime::from_nanos(40),
            native_call: SimTime::from_nanos(900),
            alloc: SimTime::from_nanos(300),
            gc_per_object: SimTime::from_nanos(80),
            monitor_op: SimTime::from_nanos(350),
            lock_record: SimTime::from_nanos(650),
            interval_update: SimTime::from_nanos(90),
            id_map_record: SimTime::from_nanos(700),
            ts_pc_track: SimTime::from_nanos(3),
            ts_br_track: SimTime::from_nanos(260),
            sched_record: SimTime::from_nanos(900),
            nd_table_lookup: SimTime::from_nanos(250),
            nd_result_record: SimTime::from_nanos(800),
            se_log: SimTime::from_nanos(1_200),
            net: NetParams::default(),
        }
    }
}

/// Accumulates simulated time per [`Category`] and advances a [`SimClock`].
///
/// ```
/// use ftjvm_netsim::{Category, SimTime, TimeAccount};
/// let mut acct = TimeAccount::new();
/// acct.charge(Category::Base, SimTime::from_nanos(100));
/// acct.charge(Category::Communication, SimTime::from_nanos(40));
/// assert_eq!(acct.total().as_nanos(), 140);
/// assert_eq!(acct.get(Category::Base).as_nanos(), 100);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TimeAccount {
    clock: SimClock,
    totals: [SimTime; 6],
}

impl TimeAccount {
    /// Creates an empty account at time zero.
    pub fn new() -> Self {
        TimeAccount::default()
    }

    /// Charges `dur` to `cat`, advancing the clock.
    pub fn charge(&mut self, cat: Category, dur: SimTime) {
        self.clock.advance(dur);
        self.totals[cat.index()] += dur;
    }

    /// Advances the clock to `instant` (e.g. a message delivery time),
    /// charging the wait to `cat`. Returns the time waited.
    pub fn wait_until(&mut self, cat: Category, instant: SimTime) -> SimTime {
        let waited = self.clock.advance_to(instant);
        self.totals[cat.index()] += waited;
        waited
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Total accumulated across all categories.
    pub fn total(&self) -> SimTime {
        let mut t = SimTime::ZERO;
        for v in self.totals {
            t += v;
        }
        t
    }

    /// Time accumulated in one category.
    pub fn get(&self, cat: Category) -> SimTime {
        self.totals[cat.index()]
    }

    /// Total minus base: the pure replication overhead.
    pub fn overhead(&self) -> SimTime {
        self.total().saturating_sub(self.get(Category::Base))
    }

    /// Decomposes the account into its clock instant and per-category
    /// totals (indexed per [`Category::ALL`]) for deterministic state
    /// snapshots.
    pub fn snapshot_parts(&self) -> (SimTime, [SimTime; 6]) {
        (self.clock.now(), self.totals)
    }

    /// Rebuilds an account from [`TimeAccount::snapshot_parts`] output.
    pub fn from_parts(now: SimTime, totals: [SimTime; 6]) -> Self {
        let mut clock = SimClock::default();
        clock.advance_to(now);
        TimeAccount { clock, totals }
    }

    /// Execution time normalized to a baseline total (the paper's
    /// "normalized execution time" y-axis). Returns 1.0 for an empty
    /// baseline to avoid division by zero.
    pub fn normalized_to(&self, baseline: SimTime) -> f64 {
        if baseline == SimTime::ZERO {
            1.0
        } else {
            self.total().as_nanos() as f64 / baseline.as_nanos() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_category() {
        let mut a = TimeAccount::new();
        a.charge(Category::Base, SimTime::from_nanos(50));
        a.charge(Category::Base, SimTime::from_nanos(25));
        a.charge(Category::Pessimistic, SimTime::from_nanos(10));
        assert_eq!(a.get(Category::Base).as_nanos(), 75);
        assert_eq!(a.get(Category::Pessimistic).as_nanos(), 10);
        assert_eq!(a.total().as_nanos(), 85);
        assert_eq!(a.overhead().as_nanos(), 10);
        assert_eq!(a.now().as_nanos(), 85);
    }

    #[test]
    fn wait_until_charges_only_future_waits() {
        let mut a = TimeAccount::new();
        a.charge(Category::Base, SimTime::from_nanos(100));
        let w = a.wait_until(Category::Pessimistic, SimTime::from_nanos(150));
        assert_eq!(w.as_nanos(), 50);
        let w = a.wait_until(Category::Pessimistic, SimTime::from_nanos(120));
        assert_eq!(w, SimTime::ZERO);
        assert_eq!(a.get(Category::Pessimistic).as_nanos(), 50);
    }

    #[test]
    fn normalization() {
        let mut a = TimeAccount::new();
        a.charge(Category::Base, SimTime::from_nanos(100));
        a.charge(Category::Communication, SimTime::from_nanos(40));
        assert!((a.normalized_to(SimTime::from_nanos(100)) - 1.4).abs() < 1e-9);
        assert_eq!(a.normalized_to(SimTime::ZERO), 1.0);
    }

    #[test]
    fn default_model_is_sane() {
        let m = CostModel::default();
        assert!(m.ts_pc_track < m.insn_base);
        assert!(m.lock_record > m.monitor_op);
    }
}
