//! Simulated time.
//!
//! All durations and instants are expressed in simulated nanoseconds. The
//! simulation is single-threaded and advances time explicitly: executing an
//! instruction, sending a message, or waiting for an acknowledgment each add
//! a known cost to the clock.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant (or duration) in simulated nanoseconds.
///
/// `SimTime` is deliberately a thin newtype over `u64`: replicas compare and
/// log instants, and tests assert exact reproducibility, so the type must be
/// total-ordered, hashable and exactly serializable.
///
/// ```
/// use ftjvm_netsim::SimTime;
/// let t = SimTime::from_micros(3) + SimTime::from_nanos(500);
/// assert_eq!(t.as_nanos(), 3_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant.
    pub const ZERO: SimTime = SimTime(0);

    /// The far future — a step target meaning "run to the next state
    /// transition". Never store it into a clock: adding any cost to it
    /// overflows.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a `SimTime` from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a `SimTime` from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a `SimTime` from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Returns the value in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the value in (truncated) microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the value in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the value as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction; durations never go negative.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Returns the larger of two instants.
    pub fn max(self, rhs: SimTime) -> SimTime {
        if self.0 >= rhs.0 {
            self
        } else {
            rhs
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// A monotonically advancing simulated clock.
///
/// ```
/// use ftjvm_netsim::{SimClock, SimTime};
/// let mut clk = SimClock::new();
/// clk.advance(SimTime::from_micros(5));
/// assert_eq!(clk.now().as_micros(), 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        SimClock { now: SimTime::ZERO }
    }

    /// Returns the current instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `delta`.
    pub fn advance(&mut self, delta: SimTime) {
        self.now += delta;
    }

    /// Advances the clock to `instant` if it is in the future; returns the
    /// time actually waited.
    pub fn advance_to(&mut self, instant: SimTime) -> SimTime {
        let waited = instant.saturating_sub(self.now);
        self.now = self.now.max(instant);
        waited
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = SimTime::from_millis(2);
        let b = SimTime::from_micros(500);
        assert_eq!((a + b).as_nanos(), 2_500_000);
        assert_eq!((a - b).as_micros(), 1_500);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut clk = SimClock::new();
        clk.advance(SimTime::from_nanos(10));
        let waited = clk.advance_to(SimTime::from_nanos(25));
        assert_eq!(waited.as_nanos(), 15);
        // Advancing to the past is a no-op.
        let waited = clk.advance_to(SimTime::from_nanos(5));
        assert_eq!(waited, SimTime::ZERO);
        assert_eq!(clk.now().as_nanos(), 25);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_nanos(3).to_string(), "3ns");
        assert_eq!(SimTime::from_micros(3).to_string(), "3.000us");
        assert_eq!(SimTime::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimTime::from_millis(3000).to_string(), "3.000s");
    }
}
