//! Simulated substrate for replica pairs: a virtual clock, a calibrated cost
//! model, a FIFO message channel with latency accounting, a wire format, and
//! fail-stop fault injection.
//!
//! The DSN 2003 fault-tolerant JVM paper ran its primary and backup on two
//! Sun E5000 servers connected by 100 Mbps Ethernet and decomposed the
//! measured overhead into categories (communication, pessimism, bookkeeping).
//! This crate provides the analogous *simulated* testbed: every action a
//! replica performs is charged to a [`Category`] of a [`TimeAccount`]
//! according to a [`CostModel`], and replica-to-replica messages flow through
//! a [`SimChannel`] that models per-message and per-byte latency.
//!
//! Nothing in this crate knows about the JVM; it is a reusable discrete-cost
//! simulation layer.
//!
//! # Example
//!
//! ```
//! use ftjvm_netsim::{CostModel, SimChannel, TimeAccount, Category};
//!
//! let cost = CostModel::default();
//! let mut acct = TimeAccount::new();
//! let mut chan = SimChannel::new(cost.net.clone());
//! acct.charge(Category::Communication, chan.send(acct.now(), b"hello".to_vec()));
//! assert_eq!(chan.stats().messages_sent, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod clock;
pub mod cost;
pub mod fault;
pub mod lossy;
pub mod shared;
pub mod wire;

pub use channel::{ChannelStats, NetParams, SimChannel};
pub use clock::{SimClock, SimTime};
pub use cost::{Category, CostModel, TimeAccount};
pub use fault::{FailureDetector, FaultPlan, HeartbeatMonitor};
pub use lossy::{FaultDecision, LossyChannel, NetFaultPlan};
pub use shared::{SharedBandwidth, SharedLink, SharedStats, TrunkWindow};
pub use wire::{crc32c, WireCodec, WireError, WireReader, WireWriter};
