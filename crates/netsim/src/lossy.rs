//! A fault-injecting wrapper around the simulated log link.
//!
//! The paper assumes TCP on a dedicated Ethernet segment between primary
//! and backup, so [`crate::SimChannel`] is reliable FIFO by construction.
//! This module drops that axiom: a [`LossyChannel`] applies a seeded,
//! deterministic [`NetFaultPlan`] — drop, duplicate, reorder (delay
//! jitter), corrupt-bytes, and transient partition windows — to every
//! *send attempt*, modelling a raw datagram link. The reliable-delivery
//! sublayer (sequence numbers + CRC + ack/nack + retransmission, built in
//! `ftjvm-core`) must recover exactly-once in-order delivery on top.
//!
//! Determinism: every fault decision is a pure function of
//! `(plan.seed, attempt_index)` via a splitmix64 hash, so a run is exactly
//! reproducible from the seed regardless of call interleaving, and
//! retransmissions of the same frame (new attempt indices) face fresh,
//! independent faults.

use crate::channel::{ChannelStats, NetParams};
use crate::clock::SimTime;
use bytes::Bytes;

/// A deterministic, seeded plan of network faults applied per send attempt.
///
/// Probabilities are evaluated independently per attempt; pinned indices
/// force a fault on one specific attempt (0-based, counting every send on
/// the link, retransmissions included). The default plan injects nothing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetFaultPlan {
    /// Seed for all probabilistic decisions.
    pub seed: u64,
    /// Probability that an attempt is silently dropped.
    pub drop: f64,
    /// Probability that an attempt is delivered twice.
    pub duplicate: f64,
    /// Probability that one payload byte is flipped in flight.
    pub corrupt: f64,
    /// Probability that an attempt is delayed by extra jitter (up to
    /// [`NetFaultPlan::jitter`]), allowing later sends to overtake it.
    pub reorder: f64,
    /// Maximum extra delay applied to jittered attempts.
    pub jitter: SimTime,
    /// Attempt indices that are always dropped.
    pub drop_at: Vec<u64>,
    /// Attempt indices that are always duplicated.
    pub duplicate_at: Vec<u64>,
    /// Attempt indices that are always corrupted.
    pub corrupt_at: Vec<u64>,
    /// Half-open attempt-index windows `[start, end)` during which the
    /// link is partitioned: every attempt inside a window is dropped.
    pub partitions: Vec<(u64, u64)>,
    /// Probability that a replica's record-bearing frame is *byzantine* —
    /// one payload byte flipped by the sender itself, after digests are
    /// computed but before the frame is CRC-sealed, so the link-level
    /// checksum validates and only quorum voting can catch it. Applied by
    /// the replica's send path (not the wire), per record frame.
    pub byzantine: f64,
    /// Record-frame indices (0-based, per replica) that are always sent
    /// byzantine.
    pub byzantine_at: Vec<u64>,
    /// Restricts byzantine flips to one fan-out link (equivocation: the
    /// replicas disagree with each other). `None` flips the same frame on
    /// every link (the sender itself is corrupted).
    pub byzantine_link: Option<u32>,
}

/// What the plan decided for one send attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultDecision {
    /// Drop the frame entirely (loss or partition window).
    pub drop: bool,
    /// Deliver the frame a second time.
    pub duplicate: bool,
    /// Flip one payload byte: `(byte index ∝ payload len, xor mask ≠ 0)`.
    pub corrupt: Option<(usize, u8)>,
    /// Extra in-flight delay beyond the nominal arrival.
    pub delay: SimTime,
}

/// splitmix64 — the same small PRNG the proptest shim uses; one hash per
/// decision keeps faults independent of call interleaving.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform probability in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl NetFaultPlan {
    /// A plan that drops each attempt with probability `drop`, nothing else.
    pub fn uniform_loss(seed: u64, drop: f64) -> Self {
        NetFaultPlan { seed, drop, ..NetFaultPlan::default() }
    }

    /// Whether this plan can inject any fault at all. An unarmed plan lets
    /// the runtime keep the perfect FIFO channel (and its exact seed-run
    /// timing) instead of paying for the reliability sublayer.
    pub fn is_armed(&self) -> bool {
        self.drop > 0.0
            || self.duplicate > 0.0
            || self.corrupt > 0.0
            || self.reorder > 0.0
            || !self.drop_at.is_empty()
            || !self.duplicate_at.is_empty()
            || !self.corrupt_at.is_empty()
            || !self.partitions.is_empty()
            || self.is_byzantine()
    }

    /// Whether this plan ever flips sender-side bytes (the BFT-lite
    /// adversary). Checked by the replica's send path, not the wire.
    pub fn is_byzantine(&self) -> bool {
        self.byzantine > 0.0 || !self.byzantine_at.is_empty()
    }

    /// The (deterministic) byzantine decision for the sender's
    /// `frame_index`-th record frame on fan-out link `link`: `Some((byte
    /// index ∝ payload len, xor mask ≠ 0))` if the sender flips a byte
    /// before sealing, `None` if the frame goes out honest. Uses a hash
    /// stream disjoint from [`NetFaultPlan::decide`]'s wire-fault lanes.
    pub fn byzantine_flip(&self, frame_index: u64, link: u32, len: usize) -> Option<(usize, u8)> {
        if len == 0 || !self.is_byzantine() {
            return None;
        }
        if self.byzantine_link.is_some_and(|only| only != link) {
            return None;
        }
        let roll = |lane: u64| {
            splitmix64(
                self.seed
                    ^ 0xB12A_17CE_0000_0000
                    ^ splitmix64(frame_index.wrapping_mul(8).wrapping_add(lane)),
            )
        };
        if self.byzantine_at.contains(&frame_index) || unit(roll(0)) < self.byzantine {
            let h = roll(1);
            let idx = (h as usize) % len;
            let mask = ((h >> 32) as u8).max(1);
            Some((idx, mask))
        } else {
            None
        }
    }

    fn roll(&self, attempt: u64, lane: u64) -> u64 {
        splitmix64(self.seed ^ splitmix64(attempt.wrapping_mul(4).wrapping_add(lane)))
    }

    /// The (deterministic) fault decision for send attempt `attempt` of a
    /// frame `len` bytes long.
    pub fn decide(&self, attempt: u64, len: usize) -> FaultDecision {
        let partitioned = self.partitions.iter().any(|&(s, e)| attempt >= s && attempt < e);
        let drop = partitioned
            || self.drop_at.contains(&attempt)
            || unit(self.roll(attempt, 0)) < self.drop;
        let duplicate =
            self.duplicate_at.contains(&attempt) || unit(self.roll(attempt, 1)) < self.duplicate;
        let corrupt = if len > 0
            && (self.corrupt_at.contains(&attempt) || unit(self.roll(attempt, 2)) < self.corrupt)
        {
            let h = self.roll(attempt, 3);
            let idx = (h as usize) % len;
            // A zero mask would be a no-op "corruption"; force at least one
            // flipped bit.
            let mask = ((h >> 32) as u8).max(1);
            Some((idx, mask))
        } else {
            None
        };
        let delay = if self.jitter > SimTime::ZERO && unit(self.roll(attempt, 4)) < self.reorder {
            let h = self.roll(attempt, 5);
            SimTime::from_nanos(h % self.jitter.as_nanos().max(1) + 1)
        } else {
            SimTime::ZERO
        };
        FaultDecision { drop, duplicate, corrupt, delay }
    }
}

/// An unreliable datagram link with the same cost model as
/// [`crate::SimChannel`] but none of its guarantees: frames can be lost,
/// duplicated, corrupted, or overtaken in flight according to a
/// [`NetFaultPlan`].
///
/// Unlike `SimChannel` there is no FIFO clamp — each frame's arrival is
/// `send + serialization + propagation (+ jitter)` independently, so a
/// delayed frame is overtaken by later ones.
#[derive(Debug)]
pub struct LossyChannel {
    params: NetParams,
    plan: NetFaultPlan,
    /// (arrival instant, payload), kept sorted by arrival.
    in_flight: Vec<(SimTime, Bytes)>,
    attempts: u64,
    stats: ChannelStats,
}

impl LossyChannel {
    /// Creates an empty lossy link.
    pub fn new(params: NetParams, plan: NetFaultPlan) -> Self {
        LossyChannel {
            params,
            plan,
            in_flight: Vec::new(),
            attempts: 0,
            stats: ChannelStats::default(),
        }
    }

    /// The link parameters.
    pub fn params(&self) -> &NetParams {
        &self.params
    }

    /// The fault plan in force.
    pub fn plan(&self) -> &NetFaultPlan {
        &self.plan
    }

    /// Sends one frame at instant `now`, returning the sender-side CPU
    /// cost. The fault plan decides whether the frame actually arrives,
    /// arrives twice, arrives corrupted, or arrives late.
    pub fn send(&mut self, now: SimTime, payload: impl Into<Bytes>) -> SimTime {
        let payload: Bytes = payload.into();
        let attempt = self.attempts;
        self.attempts += 1;
        let send_cost = self.params.per_message
            + SimTime::from_nanos(self.params.per_byte.as_nanos() * payload.len() as u64);
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += payload.len() as u64;
        let d = self.plan.decide(attempt, payload.len());
        if d.drop {
            self.stats.drops += 1;
            return send_cost;
        }
        let payload = match d.corrupt {
            Some((idx, mask)) => {
                let mut v = payload.to_vec();
                v[idx] ^= mask;
                Bytes::from(v)
            }
            None => payload,
        };
        let arrival =
            now + send_cost + self.params.propagation + self.params.recv_per_message + d.delay;
        self.deposit(arrival, payload.clone());
        if d.duplicate {
            // The duplicate trails its twin by one receive-processing slot.
            self.deposit(arrival + self.params.recv_per_message, payload);
        }
        send_cost
    }

    fn deposit(&mut self, arrival: SimTime, payload: Bytes) {
        let at = self.in_flight.partition_point(|(t, _)| *t <= arrival);
        self.in_flight.insert(at, (arrival, payload));
    }

    /// The earliest pending arrival, if any frame is in flight.
    pub fn next_arrival(&self) -> Option<SimTime> {
        self.in_flight.first().map(|(t, _)| *t)
    }

    /// Frames whose arrival instant is at or before `now`, in arrival order.
    pub fn recv_ready(&mut self, now: SimTime) -> Vec<(SimTime, Bytes)> {
        let n = self.in_flight.partition_point(|(t, _)| *t <= now);
        self.in_flight.drain(..n).collect()
    }

    /// Delivers everything in flight regardless of time (takeover: frames
    /// already on the wire still arrive; frames the plan dropped do not).
    pub fn drain(&mut self) -> Vec<(SimTime, Bytes)> {
        std::mem::take(&mut self.in_flight)
    }

    /// Number of frames still in flight.
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }

    /// Aggregate link statistics.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Mutable statistics, so the reliability sublayer can account
    /// receiver/sender protocol events (dups suppressed, retransmits,
    /// NACKs) next to the link-level counters.
    pub fn stats_mut(&mut self) -> &mut ChannelStats {
        &mut self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> NetParams {
        NetParams {
            per_message: SimTime::from_nanos(100),
            per_byte: SimTime::from_nanos(10),
            propagation: SimTime::from_nanos(1_000),
            recv_per_message: SimTime::from_nanos(50),
            ack_cost: SimTime::from_nanos(100),
        }
    }

    #[test]
    fn unarmed_plan_is_lossless_and_ordered() {
        let mut ch = LossyChannel::new(params(), NetFaultPlan::default());
        for i in 0..20u8 {
            ch.send(SimTime::from_nanos(i as u64 * 10_000), vec![i]);
        }
        let got: Vec<u8> = ch.drain().iter().map(|(_, b)| b[0]).collect();
        assert_eq!(got, (0..20).collect::<Vec<u8>>());
        assert_eq!(ch.stats().drops, 0);
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = NetFaultPlan { seed: 7, drop: 0.5, ..NetFaultPlan::default() };
        let b = NetFaultPlan { seed: 8, drop: 0.5, ..NetFaultPlan::default() };
        let da: Vec<bool> = (0..64).map(|i| a.decide(i, 16).drop).collect();
        let da2: Vec<bool> = (0..64).map(|i| a.decide(i, 16).drop).collect();
        let db: Vec<bool> = (0..64).map(|i| b.decide(i, 16).drop).collect();
        assert_eq!(da, da2);
        assert_ne!(da, db);
        let dropped = da.iter().filter(|&&d| d).count();
        assert!((16..=48).contains(&dropped), "≈50% drop rate, got {dropped}/64");
    }

    #[test]
    fn pinned_faults_hit_their_attempt() {
        let plan = NetFaultPlan {
            drop_at: vec![3],
            duplicate_at: vec![1],
            corrupt_at: vec![2],
            partitions: vec![(10, 12)],
            ..NetFaultPlan::default()
        };
        assert!(plan.decide(3, 8).drop);
        assert!(plan.decide(1, 8).duplicate);
        let (idx, mask) = plan.decide(2, 8).corrupt.expect("pinned corruption");
        assert!(idx < 8 && mask != 0);
        assert!(plan.decide(10, 8).drop && plan.decide(11, 8).drop);
        let clean = plan.decide(0, 8);
        assert!(!clean.drop && !clean.duplicate && clean.corrupt.is_none());
    }

    #[test]
    fn drop_duplicate_and_corrupt_are_applied() {
        let plan = NetFaultPlan {
            drop_at: vec![0],
            duplicate_at: vec![1],
            corrupt_at: vec![2],
            ..NetFaultPlan::default()
        };
        let mut ch = LossyChannel::new(params(), plan);
        ch.send(SimTime::ZERO, vec![0xAA; 4]); // dropped
        ch.send(SimTime::ZERO, vec![0xBB; 4]); // duplicated
        ch.send(SimTime::ZERO, vec![0xCC; 4]); // corrupted
        let got = ch.drain();
        assert_eq!(ch.stats().drops, 1);
        assert_eq!(got.len(), 3, "duplicate delivered twice, drop never");
        assert_eq!(got.iter().filter(|(_, b)| b[0] == 0xBB).count(), 2);
        assert_eq!(
            got.iter().filter(|(_, b)| b.iter().any(|&x| x != 0xCC) && b[0] != 0xBB).count(),
            1
        );
    }

    #[test]
    fn jitter_reorders_but_drops_nothing() {
        let plan = NetFaultPlan {
            seed: 42,
            reorder: 0.5,
            jitter: SimTime::from_micros(500),
            ..NetFaultPlan::default()
        };
        let mut ch = LossyChannel::new(params(), plan);
        for i in 0..32u8 {
            ch.send(SimTime::from_nanos(i as u64 * 2_000), vec![i]);
        }
        let got = ch.drain();
        assert_eq!(got.len(), 32);
        assert!(got.windows(2).all(|w| w[0].0 <= w[1].0), "sorted by arrival");
        let order: Vec<u8> = got.iter().map(|(_, b)| b[0]).collect();
        assert_ne!(order, (0..32).collect::<Vec<u8>>(), "some frame was overtaken");
    }
}
