//! Shared network capacity for fleet simulations.
//!
//! A single replicated pair owns its [`crate::SimChannel`] outright — the
//! paper's testbed is a dedicated link. A *fleet* of pairs shares rack and
//! core switches: when hundreds of primaries flush at once, frames queue
//! behind each other on the shared trunk. [`SharedBandwidth`] models that
//! trunk as one serializer on the fleet's global timeline, kept as a
//! calendar of busy intervals: a frame admitted at global instant `t`
//! transmits in the first idle gap at or after `t` and occupies the trunk
//! for `bytes × per_byte`; the admission delay (queue wait +
//! serialization) is added on top of the channel's own local-link costs.
//!
//! The calendar — rather than a scalar next-free pointer — makes the
//! model *admission-order independent*: pairs multiplexed by a scheduler
//! admit frames slightly out of global-time order (one pair's step can
//! jump past another's), and a frame sent at an early instant must not
//! queue behind a reservation made for the far future. With the
//! calendar, the delay a frame sees depends only on the set of other
//! frames' (instant, size) pairs, not on the order the scheduler
//! happened to discover them in.
//!
//! Channels attach a handle via [`crate::SimChannel::attach_shared`] with
//! the pair's local→global clock offset. Unattached channels are
//! byte-identical to a build without this module.

use crate::clock::SimTime;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Counters describing everything the shared trunk carried.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedStats {
    /// Frames admitted.
    pub frames: u64,
    /// Payload bytes serialized onto the trunk.
    pub bytes: u64,
    /// Total time frames spent queued behind other pairs' traffic.
    pub queue_total: SimTime,
    /// Largest single queue wait.
    pub queue_peak: SimTime,
    /// Time the trunk spent transmitting (busy time; divide by the global
    /// makespan for utilization).
    pub busy: SimTime,
}

/// One scheduler window's trunk activity on one port: the busy intervals
/// the port placed plus the statistics delta it accumulated. Plain data,
/// so it can cross worker-thread boundaries to the merge leader of a
/// windowed parallel scheduler.
#[derive(Debug, Clone, Default)]
pub struct TrunkWindow {
    /// Raw placed intervals `(start, end)` in ns, in admission order.
    pub intervals: Vec<(u64, u64)>,
    /// The statistics delta the port accumulated over the window.
    pub stats: SharedStats,
}

impl TrunkWindow {
    /// True when the window carried no traffic at all.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty() && self.stats.frames == 0
    }
}

/// One transmission capacity shared by every attached channel, on the
/// global fleet timeline.
#[derive(Debug)]
pub struct SharedBandwidth {
    /// Serialization cost per payload byte on the shared trunk.
    per_byte: SimTime,
    /// Busy intervals `start → end` (ns), disjoint and coalesced.
    calendar: BTreeMap<u64, u64>,
    stats: SharedStats,
    /// When windowed (a parallel scheduler port), the raw intervals placed
    /// since the last [`SharedBandwidth::sync_window`]. `None` keeps the
    /// classic always-coupled single-trunk behavior.
    window_log: Option<Vec<(u64, u64)>>,
}

impl SharedBandwidth {
    /// Creates an idle trunk with the given per-byte serialization cost.
    pub fn new(per_byte: SimTime) -> Self {
        SharedBandwidth {
            per_byte,
            calendar: BTreeMap::new(),
            stats: SharedStats::default(),
            window_log: None,
        }
    }

    /// Creates a trunk handle shareable between channels.
    pub fn shared(per_byte: SimTime) -> SharedLink {
        Rc::new(RefCell::new(SharedBandwidth::new(per_byte)))
    }

    /// Admits one frame at global instant `now`, returning the extra
    /// delay (queue wait plus trunk serialization) the frame suffers on
    /// top of its dedicated-link costs. The frame transmits in the first
    /// gap of `bytes × per_byte` at or after `now`.
    pub fn admit(&mut self, now: SimTime, bytes: usize) -> SimTime {
        let tx = self.per_byte.as_nanos() * bytes as u64;
        let mut start = now.as_nanos();
        // An interval already covering `start` pushes it to its end …
        if let Some((_, &end)) = self.calendar.range(..=start).next_back() {
            if end > start {
                start = end;
            }
        }
        // … and so does every later interval that leaves no tx-sized gap.
        while let Some((&s, &e)) = self.calendar.range(start..).next() {
            if s.saturating_sub(start) >= tx {
                break;
            }
            start = e;
        }
        if let Some(log) = &mut self.window_log {
            log.push((start, start + tx));
        }
        let mut lo = start;
        let mut hi = start + tx;
        // Coalesce with abutting neighbors so the calendar stays small
        // when traffic is back-to-back.
        if let Some((&s, &e)) = self.calendar.range(..=lo).next_back() {
            if e == lo {
                self.calendar.remove(&s);
                lo = s;
            }
        }
        if let Some(&e) = self.calendar.get(&hi) {
            self.calendar.remove(&hi);
            hi = e;
        }
        if hi > lo {
            self.calendar.insert(lo, hi);
        }
        let queue = SimTime::from_nanos(start - now.as_nanos());
        let tx = SimTime::from_nanos(tx);
        self.stats.frames += 1;
        self.stats.bytes += bytes as u64;
        self.stats.queue_total += queue;
        self.stats.queue_peak = self.stats.queue_peak.max(queue);
        self.stats.busy += tx;
        queue + tx
    }

    /// Aggregate trunk statistics.
    pub fn stats(&self) -> SharedStats {
        self.stats
    }

    /// Read-only view of the busy calendar, for frozen window snapshots.
    pub fn calendar(&self) -> &BTreeMap<u64, u64> {
        &self.calendar
    }

    /// Re-grounds this port on a frozen copy of a master calendar and
    /// starts a fresh window log: subsequent admissions see the master's
    /// reservations through the previous window plus only this port's own
    /// in-window placements. Stats reset to zero so
    /// [`SharedBandwidth::take_window`] yields a pure delta.
    pub fn sync_window(&mut self, frozen: &BTreeMap<u64, u64>) {
        self.calendar.clone_from(frozen);
        self.stats = SharedStats::default();
        self.window_log = Some(Vec::new());
    }

    /// Takes the finished window: the raw intervals this port placed and
    /// the statistics delta it accumulated since the last sync.
    pub fn take_window(&mut self) -> TrunkWindow {
        let intervals = self.window_log.take().unwrap_or_default();
        let stats = std::mem::take(&mut self.stats);
        TrunkWindow { intervals, stats }
    }

    /// Merges one finished port window into this (master) trunk: busy
    /// intervals union in — overlap-coalescing, because concurrent ports
    /// may have placed overlapping reservations inside one window — and
    /// the statistics delta adds on. Interval union and the commutative
    /// stat folds (sums and a max) make the merged state independent of
    /// the order windows are applied in.
    pub fn merge_window(&mut self, w: &TrunkWindow) {
        for &(lo, hi) in &w.intervals {
            self.insert_union(lo, hi);
        }
        self.stats.frames += w.stats.frames;
        self.stats.bytes += w.stats.bytes;
        self.stats.queue_total += w.stats.queue_total;
        self.stats.queue_peak = self.stats.queue_peak.max(w.stats.queue_peak);
        self.stats.busy += w.stats.busy;
    }

    /// Drops calendar intervals ending at or before `horizon`. Safe once
    /// every port's clock has passed the horizon: admissions only consult
    /// intervals covering or following their start instant, so a
    /// reservation wholly in the past can never move a future placement.
    /// Keeps the master calendar bounded to roughly one window of traffic.
    pub fn prune_before(&mut self, horizon: SimTime) {
        let h = horizon.as_nanos();
        // Disjoint intervals sorted by start have sorted ends too.
        while let Some((&s, &e)) = self.calendar.iter().next() {
            if e > h {
                break;
            }
            self.calendar.remove(&s);
        }
    }

    /// Inserts `[lo, hi)` as a union: absorbs every existing interval it
    /// overlaps or abuts, preserving the disjoint-and-coalesced invariant.
    /// Unlike [`SharedBandwidth::admit`]'s gap placement, overlapping
    /// input is expected here.
    fn insert_union(&mut self, mut lo: u64, mut hi: u64) {
        if hi <= lo {
            return;
        }
        if let Some((&s, &e)) = self.calendar.range(..=lo).next_back() {
            if e >= lo {
                self.calendar.remove(&s);
                lo = s;
                hi = hi.max(e);
            }
        }
        while let Some((&s, &e)) = self.calendar.range(lo..).next() {
            if s > hi {
                break;
            }
            self.calendar.remove(&s);
            hi = hi.max(e);
        }
        self.calendar.insert(lo, hi);
    }
}

/// A handle to a [`SharedBandwidth`] trunk, cloneable per channel. `Rc`
/// because the whole fleet runs on one thread — the simulation is
/// single-threaded by construction.
pub type SharedLink = Rc<RefCell<SharedBandwidth>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_queues_fifo() {
        let mut bw = SharedBandwidth::new(SimTime::from_nanos(10));
        // First frame at t=0: no queue, 1000ns of serialization.
        let d1 = bw.admit(SimTime::ZERO, 100);
        assert_eq!(d1.as_nanos(), 1_000);
        // Second frame at t=200 queues behind the first (busy to 1000).
        let d2 = bw.admit(SimTime::from_nanos(200), 50);
        assert_eq!(d2.as_nanos(), 800 + 500);
        // Third frame after the trunk went idle: serialization only.
        let d3 = bw.admit(SimTime::from_nanos(10_000), 10);
        assert_eq!(d3.as_nanos(), 100);
        let s = bw.stats();
        assert_eq!(s.frames, 3);
        assert_eq!(s.bytes, 160);
        assert_eq!(s.queue_total.as_nanos(), 800);
        assert_eq!(s.queue_peak.as_nanos(), 800);
        assert_eq!(s.busy.as_nanos(), 1_600);
    }

    #[test]
    fn out_of_order_admission_is_causal() {
        let mut bw = SharedBandwidth::new(SimTime::from_nanos(10));
        // A pair far ahead on the global clock reserves [1ms, 1ms+1µs).
        let far = bw.admit(SimTime::from_nanos(1_000_000), 100);
        assert_eq!(far.as_nanos(), 1_000);
        // A frame sent at t=0 must NOT queue behind the far-future
        // reservation — the trunk is idle at t=0.
        let early = bw.admit(SimTime::ZERO, 100);
        assert_eq!(early.as_nanos(), 1_000, "serialization only, no queue");
        assert_eq!(bw.stats().queue_total, SimTime::ZERO);
    }

    #[test]
    fn frames_fill_gaps_between_reservations() {
        let mut bw = SharedBandwidth::new(SimTime::from_nanos(10));
        bw.admit(SimTime::ZERO, 100); // busy [0, 1000)
        bw.admit(SimTime::from_nanos(5_000), 100); // busy [5000, 6000)
                                                   // 100ns frame at t=2000 fits in the gap: no queue.
        let d = bw.admit(SimTime::from_nanos(2_000), 10);
        assert_eq!(d.as_nanos(), 100);
        // A 401-byte frame at t=500 needs a 4.01µs gap; neither
        // [1000, 2000) nor [2100, 5000) is wide enough, so it starts
        // when the last reservation ends at 6000.
        let d = bw.admit(SimTime::from_nanos(500), 401);
        assert_eq!(d.as_nanos(), (6_000 - 500) + 4_010);
    }

    #[test]
    fn union_insert_coalesces_overlaps_and_abutments() {
        let mut master = SharedBandwidth::new(SimTime::from_nanos(10));
        let w = TrunkWindow {
            intervals: vec![(100, 200), (150, 300), (300, 400), (500, 600), (50, 120)],
            stats: SharedStats::default(),
        };
        master.merge_window(&w);
        let got: Vec<_> = master.calendar().iter().map(|(&s, &e)| (s, e)).collect();
        assert_eq!(got, vec![(50, 400), (500, 600)]);
    }

    #[test]
    fn merge_order_does_not_matter() {
        let a = TrunkWindow { intervals: vec![(0, 100), (250, 300)], ..Default::default() };
        let b = TrunkWindow { intervals: vec![(80, 260), (400, 500)], ..Default::default() };
        let mut m1 = SharedBandwidth::new(SimTime::from_nanos(10));
        m1.merge_window(&a);
        m1.merge_window(&b);
        let mut m2 = SharedBandwidth::new(SimTime::from_nanos(10));
        m2.merge_window(&b);
        m2.merge_window(&a);
        assert_eq!(m1.calendar(), m2.calendar());
        let got: Vec<_> = m1.calendar().iter().map(|(&s, &e)| (s, e)).collect();
        assert_eq!(got, vec![(0, 300), (400, 500)]);
    }

    #[test]
    fn windowed_port_sees_frozen_master_plus_own_traffic() {
        let mut master = SharedBandwidth::new(SimTime::from_nanos(10));
        master.admit(SimTime::ZERO, 100); // master busy [0, 1000)
        let mut port = SharedBandwidth::new(SimTime::from_nanos(10));
        port.sync_window(master.calendar());
        // The port queues behind the frozen reservation …
        let d = port.admit(SimTime::from_nanos(500), 50);
        assert_eq!(d.as_nanos(), 500 + 500);
        // … and behind its own in-window placement.
        let d = port.admit(SimTime::from_nanos(1_200), 10);
        assert_eq!(d.as_nanos(), 300 + 100);
        let w = port.take_window();
        assert_eq!(w.intervals, vec![(1_000, 1_500), (1_500, 1_600)]);
        assert_eq!(w.stats.frames, 2);
        assert_eq!(w.stats.queue_total.as_nanos(), 800);
        master.merge_window(&w);
        let got: Vec<_> = master.calendar().iter().map(|(&s, &e)| (s, e)).collect();
        assert_eq!(got, vec![(0, 1_600)]);
        assert_eq!(master.stats().frames, 3);
    }

    #[test]
    fn prune_drops_only_fully_past_intervals() {
        let mut bw = SharedBandwidth::new(SimTime::from_nanos(10));
        bw.admit(SimTime::ZERO, 100); // [0, 1000)
        bw.admit(SimTime::from_nanos(2_000), 100); // [2000, 3000)
        bw.admit(SimTime::from_nanos(5_000), 100); // [5000, 6000)
        bw.prune_before(SimTime::from_nanos(3_000));
        let got: Vec<_> = bw.calendar().iter().map(|(&s, &e)| (s, e)).collect();
        assert_eq!(got, vec![(5_000, 6_000)]);
        // Placement after the prune is unaffected for any admit at or
        // past the horizon.
        let d = bw.admit(SimTime::from_nanos(5_500), 10);
        assert_eq!(d.as_nanos(), 500 + 100);
    }
}
