//! A small, explicit wire format for replica log records.
//!
//! Records flowing from primary to backup are encoded with a hand-rolled
//! length-delimited format: fixed-width little-endian integers plus
//! length-prefixed byte strings. The format is deliberately simple so that
//! the per-record byte counts reported by the benchmark harness are easy to
//! audit against the paper's "lock acquisition messages are very small
//! (36 bytes)" observation.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::error::Error;
use std::fmt;

/// Error returned when decoding malformed wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    what: &'static str,
}

impl WireError {
    /// Creates an error describing the field that failed to decode.
    pub fn new(what: &'static str) -> Self {
        WireError { what }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "truncated or malformed wire data: {}", self.what)
    }
}

impl Error for WireError {}

/// Append-only encoder for one record.
///
/// ```
/// use ftjvm_netsim::{WireReader, WireWriter};
/// let mut w = WireWriter::new();
/// w.put_u8(7);
/// w.put_u64(42);
/// w.put_bytes(b"abc");
/// let frame = w.finish();
/// let mut r = WireReader::new(frame);
/// assert_eq!(r.get_u8().unwrap(), 7);
/// assert_eq!(r.get_u64().unwrap(), 42);
/// assert_eq!(&r.get_bytes().unwrap()[..], b"abc");
/// assert!(r.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: BytesMut,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        WireWriter { buf: BytesMut::new() }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.put_i64_le(v);
    }

    /// Appends a little-endian `f64` bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_u64_le(v.to_bits());
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.put_u32_le(v.len() as u32);
        self.buf.put_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Appends a length-prefixed sequence of `u32`s.
    pub fn put_u32_seq(&mut self, v: &[u32]) {
        self.buf.put_u32_le(v.len() as u32);
        for x in v {
            self.buf.put_u32_le(*x);
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finalizes the record into an immutable frame.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Decoder over one record frame.
#[derive(Debug)]
pub struct WireReader {
    buf: Bytes,
}

impl WireReader {
    /// Wraps a frame for decoding.
    pub fn new(buf: Bytes) -> Self {
        WireReader { buf }
    }

    /// Reads one byte.
    ///
    /// # Errors
    /// Returns [`WireError`] if the frame is exhausted.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        if self.buf.remaining() < 1 {
            return Err(WireError::new("u8"));
        }
        Ok(self.buf.get_u8())
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    /// Returns [`WireError`] if fewer than 4 bytes remain.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        if self.buf.remaining() < 4 {
            return Err(WireError::new("u32"));
        }
        Ok(self.buf.get_u32_le())
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    /// Returns [`WireError`] if fewer than 8 bytes remain.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        if self.buf.remaining() < 8 {
            return Err(WireError::new("u64"));
        }
        Ok(self.buf.get_u64_le())
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    /// Returns [`WireError`] if fewer than 8 bytes remain.
    pub fn get_i64(&mut self) -> Result<i64, WireError> {
        if self.buf.remaining() < 8 {
            return Err(WireError::new("i64"));
        }
        Ok(self.buf.get_i64_le())
    }

    /// Reads a little-endian `f64`.
    ///
    /// # Errors
    /// Returns [`WireError`] if fewer than 8 bytes remain.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    /// Returns [`WireError`] if the prefix or payload is truncated.
    pub fn get_bytes(&mut self) -> Result<Bytes, WireError> {
        let len = self.get_u32()? as usize;
        if self.buf.remaining() < len {
            return Err(WireError::new("bytes payload"));
        }
        Ok(self.buf.split_to(len))
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    /// Returns [`WireError`] if truncated or not valid UTF-8.
    pub fn get_str(&mut self) -> Result<String, WireError> {
        let b = self.get_bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::new("utf-8 string"))
    }

    /// Reads a length-prefixed sequence of `u32`s.
    ///
    /// # Errors
    /// Returns [`WireError`] if truncated.
    pub fn get_u32_seq(&mut self) -> Result<Vec<u32>, WireError> {
        let len = self.get_u32()? as usize;
        if self.buf.remaining() < len.saturating_mul(4) {
            return Err(WireError::new("u32 sequence"));
        }
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(self.buf.get_u32_le());
        }
        Ok(v)
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        !self.buf.has_remaining()
    }

    /// Bytes left to decode.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = WireWriter::new();
        w.put_u8(255);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_i64(-7);
        w.put_f64(3.5);
        w.put_str("hello");
        w.put_u32_seq(&[1, 2, 3]);
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.get_u8().unwrap(), 255);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -7);
        assert_eq!(r.get_f64().unwrap(), 3.5);
        assert_eq!(r.get_str().unwrap(), "hello");
        assert_eq!(r.get_u32_seq().unwrap(), vec![1, 2, 3]);
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_reads_error() {
        let mut w = WireWriter::new();
        w.put_u32(9);
        let mut r = WireReader::new(w.finish());
        assert!(r.get_u64().is_err());
        let _ = r.get_u32().unwrap();
        assert!(r.get_u8().is_err());
    }

    #[test]
    fn bogus_length_prefix_errors() {
        let mut w = WireWriter::new();
        w.put_u32(1_000_000); // claims a megabyte follows
        let mut r = WireReader::new(w.finish());
        assert!(r.get_bytes().is_err());
        let mut w = WireWriter::new();
        w.put_u32(0xFFFF_FFFF);
        let mut r = WireReader::new(w.finish());
        assert!(r.get_u32_seq().is_err());
    }

    #[test]
    fn invalid_utf8_errors() {
        let mut w = WireWriter::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let mut r = WireReader::new(w.finish());
        assert!(r.get_str().is_err());
    }
}
