//! A small, explicit wire format for replica log records.
//!
//! Records flowing from primary to backup are encoded with a hand-rolled
//! length-delimited format. Two codecs share this module's primitives,
//! selected by [`WireCodec`]:
//!
//! * **Fixed** — fixed-width little-endian integers plus length-prefixed
//!   byte strings. Deliberately simple so that the per-record byte counts
//!   reported by the benchmark harness are easy to audit against the
//!   paper's "lock acquisition messages are very small (36 bytes)"
//!   observation.
//! * **Compact** — LEB128 varints ([`WireWriter::put_uvarint`]) plus
//!   zig-zag signed varints ([`WireWriter::put_ivarint`]), used by the
//!   replication layer's delta/batch codec to shrink bytes on the wire.
//!
//! Both readers fail with [`WireError`] — never panic — on truncated or
//! malformed input.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::error::Error;
use std::fmt;

/// Which record encoding a replica pair uses on the wire.
///
/// The codec only changes the *representation* of the log; record contents
/// and ordering are identical under both, so a backup produces the same
/// state either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireCodec {
    /// Fixed-width fields, one channel message per record (paper-faithful,
    /// auditable byte counts).
    #[default]
    Fixed,
    /// Delta/varint-compressed record bodies, batched into one channel
    /// message per flush.
    Compact,
}

impl fmt::Display for WireCodec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireCodec::Fixed => write!(f, "fixed"),
            WireCodec::Compact => write!(f, "compact"),
        }
    }
}

/// CRC32C (Castagnoli) lookup table, built at compile time.
const CRC32C_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut b = 0;
        while b < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0x82f6_3b78 } else { crc >> 1 };
            b += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32C (Castagnoli polynomial, reflected) over `data` — the checksum
/// shared by sealed log frames and VM state snapshots.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ CRC32C_TABLE[((crc ^ byte as u32) & 0xff) as usize];
    }
    !crc
}

/// Maps a signed value onto an unsigned one so that small magnitudes of
/// either sign get short varints (protobuf's zig-zag transform).
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Error returned when decoding malformed wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    what: &'static str,
}

impl WireError {
    /// Creates an error describing the field that failed to decode.
    pub fn new(what: &'static str) -> Self {
        WireError { what }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "truncated or malformed wire data: {}", self.what)
    }
}

impl Error for WireError {}

/// Append-only encoder for one record.
///
/// ```
/// use ftjvm_netsim::{WireReader, WireWriter};
/// let mut w = WireWriter::new();
/// w.put_u8(7);
/// w.put_u64(42);
/// w.put_bytes(b"abc");
/// let frame = w.finish();
/// let mut r = WireReader::new(frame);
/// assert_eq!(r.get_u8().unwrap(), 7);
/// assert_eq!(r.get_u64().unwrap(), 42);
/// assert_eq!(&r.get_bytes().unwrap()[..], b"abc");
/// assert!(r.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: BytesMut,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        WireWriter { buf: BytesMut::new() }
    }

    /// Creates an empty writer with room for `cap` bytes, avoiding
    /// reallocation for records whose encoded size is known or bounded.
    pub fn with_capacity(cap: usize) -> Self {
        WireWriter { buf: BytesMut::with_capacity(cap) }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.put_i64_le(v);
    }

    /// Appends a little-endian `f64` bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_u64_le(v.to_bits());
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.put_u32_le(v.len() as u32);
        self.buf.put_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Appends a length-prefixed sequence of `u32`s.
    pub fn put_u32_seq(&mut self, v: &[u32]) {
        self.buf.put_u32_le(v.len() as u32);
        for x in v {
            self.buf.put_u32_le(*x);
        }
    }

    /// Appends an unsigned LEB128 varint: 7 value bits per byte, high bit
    /// set on every byte but the last. 1 byte for values < 128, at most 10.
    pub fn put_uvarint(&mut self, mut v: u64) {
        while v >= 0x80 {
            self.buf.put_u8((v as u8 & 0x7F) | 0x80);
            v >>= 7;
        }
        self.buf.put_u8(v as u8);
    }

    /// Appends a signed value as a zig-zag LEB128 varint, so small deltas
    /// of either sign stay short.
    pub fn put_ivarint(&mut self, v: i64) {
        self.put_uvarint(zigzag(v));
    }

    /// Appends bytes verbatim, with no length prefix — for framing layers
    /// that concatenate already-encoded bodies.
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }

    /// Appends a varint-length-prefixed byte string (compact counterpart
    /// of [`WireWriter::put_bytes`]).
    pub fn put_vbytes(&mut self, v: &[u8]) {
        self.put_uvarint(v.len() as u64);
        self.buf.put_slice(v);
    }

    /// Appends a varint-length-prefixed UTF-8 string.
    pub fn put_vstr(&mut self, v: &str) {
        self.put_vbytes(v.as_bytes());
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finalizes the record into an immutable frame.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Decoder over one record frame.
#[derive(Debug)]
pub struct WireReader {
    buf: Bytes,
}

impl WireReader {
    /// Wraps a frame for decoding.
    pub fn new(buf: Bytes) -> Self {
        WireReader { buf }
    }

    /// Reads one byte.
    ///
    /// # Errors
    /// Returns [`WireError`] if the frame is exhausted.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        if self.buf.remaining() < 1 {
            return Err(WireError::new("u8"));
        }
        Ok(self.buf.get_u8())
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    /// Returns [`WireError`] if fewer than 4 bytes remain.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        if self.buf.remaining() < 4 {
            return Err(WireError::new("u32"));
        }
        Ok(self.buf.get_u32_le())
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    /// Returns [`WireError`] if fewer than 8 bytes remain.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        if self.buf.remaining() < 8 {
            return Err(WireError::new("u64"));
        }
        Ok(self.buf.get_u64_le())
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    /// Returns [`WireError`] if fewer than 8 bytes remain.
    pub fn get_i64(&mut self) -> Result<i64, WireError> {
        if self.buf.remaining() < 8 {
            return Err(WireError::new("i64"));
        }
        Ok(self.buf.get_i64_le())
    }

    /// Reads a little-endian `f64`.
    ///
    /// # Errors
    /// Returns [`WireError`] if fewer than 8 bytes remain.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    /// Returns [`WireError`] if the prefix or payload is truncated.
    pub fn get_bytes(&mut self) -> Result<Bytes, WireError> {
        let len = self.get_u32()? as usize;
        if self.buf.remaining() < len {
            return Err(WireError::new("bytes payload"));
        }
        Ok(self.buf.split_to(len))
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    /// Returns [`WireError`] if truncated or not valid UTF-8.
    pub fn get_str(&mut self) -> Result<String, WireError> {
        let b = self.get_bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::new("utf-8 string"))
    }

    /// Reads a length-prefixed sequence of `u32`s.
    ///
    /// # Errors
    /// Returns [`WireError`] if truncated.
    pub fn get_u32_seq(&mut self) -> Result<Vec<u32>, WireError> {
        let len = self.get_u32()? as usize;
        if self.buf.remaining() < len.saturating_mul(4) {
            return Err(WireError::new("u32 sequence"));
        }
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(self.buf.get_u32_le());
        }
        Ok(v)
    }

    /// Reads an unsigned LEB128 varint.
    ///
    /// # Errors
    /// Returns [`WireError`] if the frame ends mid-varint or the encoding
    /// exceeds 10 bytes / overflows 64 bits.
    pub fn get_uvarint(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            if self.buf.remaining() < 1 {
                return Err(WireError::new("uvarint"));
            }
            let b = self.buf.get_u8();
            let low = (b & 0x7F) as u64;
            // The 10th byte (shift 63) may only contribute the final bit.
            if shift >= 64 || (shift == 63 && low > 1) {
                return Err(WireError::new("uvarint overflow"));
            }
            v |= low << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads a zig-zag LEB128 varint.
    ///
    /// # Errors
    /// Returns [`WireError`] on truncation or overlong encoding.
    pub fn get_ivarint(&mut self) -> Result<i64, WireError> {
        Ok(unzigzag(self.get_uvarint()?))
    }

    /// Reads a varint-length-prefixed byte string.
    ///
    /// # Errors
    /// Returns [`WireError`] if the prefix or payload is truncated.
    pub fn get_vbytes(&mut self) -> Result<Bytes, WireError> {
        let len = self.get_uvarint()? as usize;
        if self.buf.remaining() < len {
            return Err(WireError::new("vbytes payload"));
        }
        Ok(self.buf.split_to(len))
    }

    /// Reads a varint-length-prefixed UTF-8 string.
    ///
    /// # Errors
    /// Returns [`WireError`] if truncated or not valid UTF-8.
    pub fn get_vstr(&mut self) -> Result<String, WireError> {
        let b = self.get_vbytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::new("utf-8 string"))
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        !self.buf.has_remaining()
    }

    /// Bytes left to decode.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = WireWriter::new();
        w.put_u8(255);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_i64(-7);
        w.put_f64(3.5);
        w.put_str("hello");
        w.put_u32_seq(&[1, 2, 3]);
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.get_u8().unwrap(), 255);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -7);
        assert_eq!(r.get_f64().unwrap(), 3.5);
        assert_eq!(r.get_str().unwrap(), "hello");
        assert_eq!(r.get_u32_seq().unwrap(), vec![1, 2, 3]);
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_reads_error() {
        let mut w = WireWriter::new();
        w.put_u32(9);
        let mut r = WireReader::new(w.finish());
        assert!(r.get_u64().is_err());
        let _ = r.get_u32().unwrap();
        assert!(r.get_u8().is_err());
    }

    #[test]
    fn bogus_length_prefix_errors() {
        let mut w = WireWriter::new();
        w.put_u32(1_000_000); // claims a megabyte follows
        let mut r = WireReader::new(w.finish());
        assert!(r.get_bytes().is_err());
        let mut w = WireWriter::new();
        w.put_u32(0xFFFF_FFFF);
        let mut r = WireReader::new(w.finish());
        assert!(r.get_u32_seq().is_err());
    }

    #[test]
    fn invalid_utf8_errors() {
        let mut w = WireWriter::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let mut r = WireReader::new(w.finish());
        assert!(r.get_str().is_err());
    }

    #[test]
    fn uvarint_roundtrip_and_sizes() {
        let cases: &[(u64, usize)] = &[
            (0, 1),
            (1, 1),
            (127, 1),
            (128, 2),
            (16_383, 2),
            (16_384, 3),
            (u32::MAX as u64, 5),
            (u64::MAX, 10),
        ];
        for &(v, size) in cases {
            let mut w = WireWriter::new();
            w.put_uvarint(v);
            assert_eq!(w.len(), size, "encoded size of {v}");
            let mut r = WireReader::new(w.finish());
            assert_eq!(r.get_uvarint().unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn ivarint_zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, 64, -65, i64::MAX, i64::MIN] {
            let mut w = WireWriter::new();
            w.put_ivarint(v);
            let mut r = WireReader::new(w.finish());
            assert_eq!(r.get_ivarint().unwrap(), v);
        }
        // Small magnitudes of either sign stay one byte.
        for v in [-64i64, -1, 0, 1, 63] {
            let mut w = WireWriter::new();
            w.put_ivarint(v);
            assert_eq!(w.len(), 1, "zig-zag size of {v}");
        }
        assert_eq!(unzigzag(zigzag(i64::MIN)), i64::MIN);
    }

    #[test]
    fn uvarint_truncation_and_overflow_error() {
        // Continuation bit set on the final byte: truncated.
        let mut r = WireReader::new(Bytes::from(vec![0x80]));
        assert!(r.get_uvarint().is_err());
        // 11 continuation bytes: longer than any 64-bit value.
        let mut r = WireReader::new(Bytes::from(vec![0x80; 11]));
        assert!(r.get_uvarint().is_err());
        // 10th byte carrying more than the final bit: overflows u64.
        let mut overflowing = vec![0xFF; 9];
        overflowing.push(0x02);
        let mut r = WireReader::new(Bytes::from(overflowing));
        assert!(r.get_uvarint().is_err());
        // But u64::MAX itself (10th byte == 0x01) is fine.
        let mut max = vec![0xFF; 9];
        max.push(0x01);
        let mut r = WireReader::new(Bytes::from(max));
        assert_eq!(r.get_uvarint().unwrap(), u64::MAX);
    }

    #[test]
    fn vbytes_roundtrip_and_bogus_length() {
        let mut w = WireWriter::with_capacity(16);
        w.put_vbytes(b"abc");
        w.put_vstr("déjà");
        let mut r = WireReader::new(w.finish());
        assert_eq!(&r.get_vbytes().unwrap()[..], b"abc");
        assert_eq!(r.get_vstr().unwrap(), "déjà");
        assert!(r.is_empty());
        let mut w = WireWriter::new();
        w.put_uvarint(1 << 40); // claims a terabyte follows
        let mut r = WireReader::new(w.finish());
        assert!(r.get_vbytes().is_err());
    }

    #[test]
    fn codec_is_fixed_by_default_and_displays() {
        assert_eq!(WireCodec::default(), WireCodec::Fixed);
        assert_eq!(WireCodec::Fixed.to_string(), "fixed");
        assert_eq!(WireCodec::Compact.to_string(), "compact");
    }
}
