//! Property-based tests for the simulation substrate.

use ftjvm_netsim::{NetParams, SimChannel, SimTime, WireReader, WireWriter};
use proptest::prelude::*;

/// One wire-format operation paired with its expected readback.
#[derive(Debug, Clone)]
enum Op {
    U8(u8),
    U32(u32),
    U64(u64),
    I64(i64),
    F64(f64),
    Bytes(Vec<u8>),
    Str(String),
    U32Seq(Vec<u32>),
    UVar(u64),
    IVar(i64),
    VBytes(Vec<u8>),
    VStr(String),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::U8),
        any::<u32>().prop_map(Op::U32),
        any::<u64>().prop_map(Op::U64),
        any::<i64>().prop_map(Op::I64),
        // Finite doubles only: NaN breaks equality, and the VM never logs
        // NaN bit patterns through this path unmodified anyway.
        any::<f64>().prop_filter("finite", |f| f.is_finite()).prop_map(Op::F64),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Op::Bytes),
        "[a-zA-Z0-9 /._-]{0,48}".prop_map(Op::Str),
        proptest::collection::vec(any::<u32>(), 0..16).prop_map(Op::U32Seq),
        any::<u64>().prop_map(Op::UVar),
        any::<i64>().prop_map(Op::IVar),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Op::VBytes),
        "[a-zA-Z0-9 /._-]{0,48}".prop_map(Op::VStr),
    ]
}

proptest! {
    /// Any sequence of writes reads back exactly, in order, leaving the
    /// frame empty.
    #[test]
    fn wire_roundtrip(ops in proptest::collection::vec(op_strategy(), 0..32)) {
        let mut w = WireWriter::new();
        for op in &ops {
            match op {
                Op::U8(v) => w.put_u8(*v),
                Op::U32(v) => w.put_u32(*v),
                Op::U64(v) => w.put_u64(*v),
                Op::I64(v) => w.put_i64(*v),
                Op::F64(v) => w.put_f64(*v),
                Op::Bytes(v) => w.put_bytes(v),
                Op::Str(v) => w.put_str(v),
                Op::U32Seq(v) => w.put_u32_seq(v),
                Op::UVar(v) => w.put_uvarint(*v),
                Op::IVar(v) => w.put_ivarint(*v),
                Op::VBytes(v) => w.put_vbytes(v),
                Op::VStr(v) => w.put_vstr(v),
            }
        }
        let mut r = WireReader::new(w.finish());
        for op in &ops {
            match op {
                Op::U8(v) => prop_assert_eq!(r.get_u8().unwrap(), *v),
                Op::U32(v) => prop_assert_eq!(r.get_u32().unwrap(), *v),
                Op::U64(v) => prop_assert_eq!(r.get_u64().unwrap(), *v),
                Op::I64(v) => prop_assert_eq!(r.get_i64().unwrap(), *v),
                Op::F64(v) => prop_assert_eq!(r.get_f64().unwrap(), *v),
                Op::Bytes(v) => prop_assert_eq!(&r.get_bytes().unwrap()[..], &v[..]),
                Op::Str(v) => prop_assert_eq!(&r.get_str().unwrap(), v),
                Op::U32Seq(v) => prop_assert_eq!(&r.get_u32_seq().unwrap(), v),
                Op::UVar(v) => prop_assert_eq!(r.get_uvarint().unwrap(), *v),
                Op::IVar(v) => prop_assert_eq!(r.get_ivarint().unwrap(), *v),
                Op::VBytes(v) => prop_assert_eq!(&r.get_vbytes().unwrap()[..], &v[..]),
                Op::VStr(v) => prop_assert_eq!(&r.get_vstr().unwrap(), v),
            }
        }
        prop_assert!(r.is_empty());
    }

    /// Truncating a frame anywhere never panics — every decode error is a
    /// clean `WireError`.
    #[test]
    fn wire_truncation_is_graceful(
        ops in proptest::collection::vec(op_strategy(), 1..16),
        cut in any::<prop::sample::Index>()
    ) {
        let mut w = WireWriter::new();
        for op in &ops {
            match op {
                Op::U8(v) => w.put_u8(*v),
                Op::U32(v) => w.put_u32(*v),
                Op::U64(v) => w.put_u64(*v),
                Op::I64(v) => w.put_i64(*v),
                Op::F64(v) => w.put_f64(*v),
                Op::Bytes(v) => w.put_bytes(v),
                Op::Str(v) => w.put_str(v),
                Op::U32Seq(v) => w.put_u32_seq(v),
                Op::UVar(v) => w.put_uvarint(*v),
                Op::IVar(v) => w.put_ivarint(*v),
                Op::VBytes(v) => w.put_vbytes(v),
                Op::VStr(v) => w.put_vstr(v),
            }
        }
        let full = w.finish();
        if full.is_empty() {
            return Ok(());
        }
        let cut = cut.index(full.len());
        let mut r = WireReader::new(full.slice(..cut));
        // Read greedily until an error or exhaustion; must never panic.
        for op in &ops {
            let res = match op {
                Op::U8(_) => r.get_u8().map(|_| ()),
                Op::U32(_) => r.get_u32().map(|_| ()),
                Op::U64(_) => r.get_u64().map(|_| ()),
                Op::I64(_) => r.get_i64().map(|_| ()),
                Op::F64(_) => r.get_f64().map(|_| ()),
                Op::Bytes(_) => r.get_bytes().map(|_| ()),
                Op::Str(_) => r.get_str().map(|_| ()),
                Op::U32Seq(_) => r.get_u32_seq().map(|_| ()),
                Op::UVar(_) => r.get_uvarint().map(|_| ()),
                Op::IVar(_) => r.get_ivarint().map(|_| ()),
                Op::VBytes(_) => r.get_vbytes().map(|_| ()),
                Op::VStr(_) => r.get_vstr().map(|_| ()),
            };
            if res.is_err() {
                break;
            }
        }
    }

    /// FIFO delivery: messages arrive in send order with non-decreasing
    /// delivery instants, and byte accounting is exact.
    #[test]
    fn channel_is_fifo_and_accounts_bytes(
        sizes in proptest::collection::vec(1usize..512, 1..40),
        gaps in proptest::collection::vec(0u64..10_000, 1..40)
    ) {
        let mut ch = SimChannel::new(NetParams::default());
        let mut now = SimTime::ZERO;
        let mut total = 0u64;
        for (i, size) in sizes.iter().enumerate() {
            now += SimTime::from_nanos(gaps[i % gaps.len()]);
            let payload = vec![(i % 251) as u8; *size];
            total += *size as u64;
            ch.send(now, payload);
        }
        prop_assert_eq!(ch.stats().bytes_sent, total);
        prop_assert_eq!(ch.stats().messages_sent, sizes.len() as u64);
        let msgs = ch.drain();
        prop_assert_eq!(msgs.len(), sizes.len());
        for (i, (at, payload)) in msgs.iter().enumerate() {
            prop_assert_eq!(payload.len(), sizes[i]);
            if i > 0 {
                prop_assert!(*at >= msgs[i - 1].0, "FIFO delivery instants");
            }
        }
    }

    /// The acknowledgment for an output commit always arrives after every
    /// in-flight delivery plus the return propagation.
    #[test]
    fn ack_never_beats_deliveries(
        sizes in proptest::collection::vec(1usize..256, 1..20)
    ) {
        let mut ch = SimChannel::new(NetParams::default());
        for s in &sizes {
            ch.send(SimTime::ZERO, vec![0u8; *s]);
        }
        let ack = ch.ack_arrival(SimTime::ZERO);
        let last_delivery = ch.drain().last().map(|(at, _)| *at).unwrap();
        prop_assert!(ack > last_delivery);
    }
}

proptest! {
    /// Varint encodings are canonical enough to round-trip any value, and
    /// decoding arbitrary garbage never panics.
    #[test]
    fn varint_garbage_never_panics(noise in proptest::collection::vec(any::<u8>(), 0..32)) {
        let mut r = WireReader::new(bytes::Bytes::from(noise.clone()));
        while !r.is_empty() {
            if r.get_uvarint().is_err() {
                break;
            }
        }
        let mut r = WireReader::new(bytes::Bytes::from(noise));
        while !r.is_empty() {
            if r.get_ivarint().is_err() {
                break;
            }
        }
    }

    /// uvarint is order-preserving in length: larger values never encode
    /// shorter.
    #[test]
    fn uvarint_length_is_monotone(a in any::<u64>(), b in any::<u64>()) {
        let len = |v: u64| { let mut w = WireWriter::new(); w.put_uvarint(v); w.len() };
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(len(lo) <= len(hi));
    }
}
