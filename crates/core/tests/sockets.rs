//! Socket output across failover — the paper's canonical non-idempotent
//! output: "replaying messages on a socket would not recover the state at
//! the backup because sending messages is in general not an idempotent
//! operation. An extra layer must be added to make sending messages
//! either an idempotent or testable operation." The socket side-effect
//! handler is that layer; these tests crash the primary at every send and
//! assert the peer sees each message exactly once, in per-connection
//! order.

use ftjvm_core::{FtConfig, FtJvm, ReplicationMode};
use ftjvm_netsim::FaultPlan;
use ftjvm_vm::program::ProgramBuilder;
use ftjvm_vm::{Cmp, MethodId, Program};
use std::sync::Arc;

/// A metrics reporter: computes batch summaries and streams them to two
/// peers over sockets, interleaved with file-backed checkpoints.
fn reporter_program(b: &mut ProgramBuilder) -> MethodId {
    let connect = b.import_native("sock.connect", 1, true);
    let send = b.import_native("sock.send", 3, true);
    let close = b.import_native("sock.close", 1, false);
    let print = b.import_native("sys.print_int", 1, false);
    let peer_a = b.intern("collector-a");
    let peer_b = b.intern("collector-b");
    let msg = b.intern("metric:0000");
    let mut m = b.method("main", 1);
    // locals: 1=sd_a, 2=sd_b, 3=batch, 4=buf, 5=sum
    m.const_str(peer_a).invoke_native(connect, 1).store(1);
    m.const_str(peer_b).invoke_native(connect, 1).store(2);
    m.push_i(0).store(5);
    let done = m.new_label();
    m.push_i(0).store(3);
    let top = m.bind_new_label();
    m.load(3).push_i(6).icmp(Cmp::Ge).if_true(done);
    // Build the message: "metric:0000" with the batch number patched into
    // the last byte (ASCII digit).
    m.const_str(msg).store(4);
    m.load(4).push_i(10).load(3).push_i(48).add().astore();
    // Send to A every batch, to B every other batch.
    m.load(1).load(4).push_i(11).invoke_native(send, 3);
    m.load(5).add().store(5);
    {
        let skip = m.new_label();
        m.load(3).push_i(2).rem().if_true(skip);
        m.load(2).load(4).push_i(11).invoke_native(send, 3).pop();
        m.bind(skip);
    }
    m.inc(3, 1).goto(top);
    m.bind(done);
    m.load(5).invoke_native(print, 1); // total bytes sent to A
    m.load(1).invoke_native(close, 1);
    m.load(2).invoke_native(close, 1);
    m.ret_void();
    m.build(b)
}

fn build() -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    let entry = reporter_program(&mut b);
    Arc::new(b.build(entry).expect("verifies"))
}

fn peer_payloads(report: &ftjvm_core::PairReport, peer: &str) -> Vec<String> {
    report
        .world
        .borrow()
        .socket_stream(peer)
        .iter()
        .map(|m| String::from_utf8_lossy(&m.payload).into_owned())
        .collect()
}

#[test]
fn socket_streams_survive_crashes_exactly_once() {
    let program = build();
    let expected_a: Vec<String> = (0..6).map(|i| format!("metric:000{i}")).collect();
    let expected_b: Vec<String> = (0..6).step_by(2).map(|i| format!("metric:000{i}")).collect();
    for mode in [ReplicationMode::LockSync, ReplicationMode::ThreadSched] {
        // Sweep the uncertain window of every committed output (9 sends +
        // 1 print) plus instruction-count crashes.
        let mut faults: Vec<FaultPlan> = (0..10).map(FaultPlan::BeforeOutput).collect();
        faults.extend((0..10).map(FaultPlan::AfterOutput));
        faults.extend([200u64, 600, 1200].map(FaultPlan::AfterInstructions));
        for fault in faults {
            let cfg = FtConfig { mode, fault, ..FtConfig::default() };
            let report = FtJvm::new(program.clone(), cfg)
                .run_with_failure()
                .unwrap_or_else(|e| panic!("{mode} {fault:?}: {e}"));
            assert_eq!(peer_payloads(&report, "collector-a"), expected_a, "{mode} {fault:?}");
            assert_eq!(peer_payloads(&report, "collector-b"), expected_b, "{mode} {fault:?}");
            assert_eq!(report.console(), vec![(6 * 11).to_string()], "{mode} {fault:?}");
            // No message id delivered twice anywhere.
            let world = report.world.borrow();
            let mut seen = std::collections::BTreeSet::new();
            for msg in world.sockets() {
                assert!(seen.insert(msg.output_id), "{mode} {fault:?}: duplicate send {msg:?}");
            }
        }
    }
}

#[test]
fn socket_handler_restores_connection_state() {
    // Crash after a few sends; the backup's volatile socket table must be
    // recovered (descriptors and per-connection send counts) so its live
    // continuation keeps sending on the same descriptors.
    let program = build();
    let cfg = FtConfig {
        mode: ReplicationMode::LockSync,
        fault: FaultPlan::AfterOutput(3),
        ..FtConfig::default()
    };
    let report = FtJvm::new(program, cfg).run_with_failure().expect("failover");
    assert!(report.crashed);
    // All 9 sends arrived exactly once despite the crash mid-stream.
    assert_eq!(report.world.borrow().sockets().len(), 9);
}

#[test]
fn failure_free_socket_run_matches_crash_runs() {
    let program = build();
    let free = FtJvm::new(program.clone(), FtConfig::default()).run_replicated().expect("free");
    let crash =
        FtJvm::new(program, FtConfig { fault: FaultPlan::BeforeOutput(4), ..FtConfig::default() })
            .run_with_failure()
            .expect("crash");
    assert_eq!(
        free.world.borrow().sockets(),
        crash.world.borrow().sockets(),
        "identical peer-visible streams"
    );
}
