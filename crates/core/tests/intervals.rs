//! Tests for the two implemented extensions the paper points at:
//! interval-compressed lock synchronization (related work / DejaVu) and
//! the warm backup ("Keeping the backup updated would require only minor
//! modifications").

use ftjvm_core::{FtConfig, FtJvm, LockVariant, ReplicationMode};
use ftjvm_netsim::{FaultPlan, SimTime};
use ftjvm_vm::class::builtin;
use ftjvm_vm::program::ProgramBuilder;
use ftjvm_vm::{Cmp, MethodId, Program};
use std::sync::Arc;

fn build(f: impl FnOnce(&mut ProgramBuilder) -> MethodId) -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    let entry = f(&mut b);
    Arc::new(b.build(entry).expect("program verifies"))
}

fn interval_cfg(fault: FaultPlan) -> FtConfig {
    FtConfig {
        mode: ReplicationMode::LockSync,
        lock_variant: LockVariant::Intervals,
        fault,
        ..FtConfig::default()
    }
}

/// Multithreaded synchronized counter (the lock-heavy shape).
fn counter_program(b: &mut ProgramBuilder) -> MethodId {
    let print = b.import_native("sys.print_int", 1, false);
    let spawn = b.import_native("sys.spawn", 2, false);
    let yield_n = b.import_native("sys.yield", 0, false);
    let cls = b.add_class("Counter", builtin::OBJECT, 0, 2);
    let mut inc = b.method("inc", 1);
    inc.static_of(cls).synchronized();
    inc.get_static(cls, 0).push_i(1).add().put_static(cls, 0).ret_void();
    let inc = inc.build(b);
    let mut fin = b.method("finish", 1);
    fin.static_of(cls).synchronized();
    fin.get_static(cls, 1).push_i(1).add().put_static(cls, 1).ret_void();
    let fin = fin.build(b);
    let mut w = b.method("worker", 1);
    let done = w.new_label();
    w.push_i(80).store(1);
    let top = w.bind_new_label();
    w.load(1).if_not(done);
    w.push_i(0).invoke(inc);
    w.inc(1, -1).goto(top);
    w.bind(done).push_i(0).invoke(fin).ret_void();
    let w = w.build(b);
    let mut m = b.method("main", 1);
    m.push_i(0).put_static(cls, 0);
    m.push_i(0).put_static(cls, 1);
    for _ in 0..3 {
        m.push_method(w).push_i(0).invoke_native(spawn, 2);
    }
    let wait_loop = m.bind_new_label();
    let ready = m.new_label();
    m.get_static(cls, 1).push_i(3).icmp(Cmp::Eq).if_true(ready);
    m.invoke_native(yield_n, 0).goto(wait_loop);
    m.bind(ready);
    m.get_static(cls, 0).invoke_native(print, 1).ret_void();
    m.build(b)
}

#[test]
fn interval_failover_is_transparent() {
    let program = build(counter_program);
    for fault in [
        FaultPlan::AfterInstructions(500),
        FaultPlan::AfterInstructions(3000),
        FaultPlan::BeforeOutput(0),
        FaultPlan::AfterOutput(0),
    ] {
        let report = FtJvm::new(program.clone(), interval_cfg(fault))
            .run_with_failure()
            .unwrap_or_else(|e| panic!("{fault:?}: {e}"));
        assert_eq!(report.console(), vec!["240"], "{fault:?}");
        report.check_no_duplicate_outputs().expect("exactly-once");
    }
}

#[test]
fn intervals_compress_the_lock_log_dramatically() {
    let program = build(counter_program);
    let per_acq = FtJvm::new(
        program.clone(),
        FtConfig { mode: ReplicationMode::LockSync, ..FtConfig::default() },
    )
    .run_replicated()
    .unwrap();
    let intervals = FtJvm::new(program, interval_cfg(FaultPlan::None)).run_replicated().unwrap();
    // Same acquisitions replicated, far fewer messages (and no id maps).
    assert_eq!(per_acq.primary_stats.locks_acquired, intervals.primary_stats.locks_acquired);
    assert_eq!(intervals.primary_stats.id_map_records, 0);
    assert!(intervals.primary_stats.lock_interval_records > 0);
    assert!(
        intervals.primary_stats.messages_logged() * 4 < per_acq.primary_stats.messages_logged(),
        "intervals {} vs per-acquisition {}",
        intervals.primary_stats.messages_logged(),
        per_acq.primary_stats.messages_logged()
    );
    // And less simulated communication time.
    assert!(
        intervals.primary.acct.get(ftjvm_netsim::Category::Communication)
            < per_acq.primary.acct.get(ftjvm_netsim::Category::Communication)
    );
    // Output is identical either way.
    assert_eq!(per_acq.console(), intervals.console());
}

#[test]
fn interval_sweep_failure_points() {
    let program = build(counter_program);
    for k in (100..4000).step_by(333) {
        let report = FtJvm::new(program.clone(), interval_cfg(FaultPlan::AfterInstructions(k)))
            .run_with_failure()
            .unwrap_or_else(|e| panic!("k={k}: {e}"));
        assert_eq!(report.console(), vec!["240"], "k={k}");
    }
}

#[test]
fn interval_backup_consumes_every_interval() {
    let program = build(counter_program);
    let report = FtJvm::new(program, interval_cfg(FaultPlan::None)).run_backup_replay().unwrap();
    let b = report.backup_stats.expect("backup ran");
    assert_eq!(b.locks_acquired, report.primary_stats.locks_acquired);
}

#[test]
fn warm_backup_collapses_failover_latency_to_detection() {
    let program = build(counter_program);
    let mut cold = FtConfig {
        mode: ReplicationMode::LockSync,
        fault: FaultPlan::AfterInstructions(1500),
        ..FtConfig::default()
    };
    cold.flush_threshold = 0;
    let mut warm = cold.clone();
    warm.warm_backup = true;
    let cold_report = FtJvm::new(program.clone(), cold).run_with_failure().unwrap();
    let warm_report = FtJvm::new(program, warm).run_with_failure().unwrap();
    // Functionally identical...
    assert_eq!(cold_report.console(), warm_report.console());
    // ...but the cold failover pays detection + replay, the warm one only
    // detection.
    assert!(cold_report.recovery_replay_time > SimTime::ZERO);
    assert_eq!(
        cold_report.failover_latency,
        cold_report.detection_latency + cold_report.recovery_replay_time
    );
    assert_eq!(warm_report.failover_latency, warm_report.detection_latency);
    assert!(warm_report.failover_latency < cold_report.failover_latency);
}

#[test]
fn interval_detects_racy_divergence_too() {
    // The interval variant still assumes R4A: total-order replay of
    // acquisitions cannot mask unsynchronized shared accesses whose
    // outcome feeds back into the acquisition sequence.
    let program = build(|b| {
        let print = b.import_native("sys.print_int", 1, false);
        let spawn = b.import_native("sys.spawn", 2, false);
        let yield_n = b.import_native("sys.yield", 0, false);
        let cls = b.add_class("Racy", builtin::OBJECT, 0, 2);
        let fin = {
            let mut fin = b.method("finish", 1);
            fin.static_of(cls).synchronized();
            fin.get_static(cls, 1).push_i(1).add().put_static(cls, 1).ret_void();
            fin.build(b)
        };
        let guarded = {
            let mut g = b.method("guarded", 1);
            g.static_of(cls).synchronized();
            g.ret_void();
            g.build(b)
        };
        let mut w = b.method("worker", 1);
        let done = w.new_label();
        w.push_i(40).store(1);
        let top = w.bind_new_label();
        w.load(1).if_not(done);
        w.get_static(cls, 0).store(2);
        w.load(2).push_i(3).mul().push_i(7).rem().pop();
        w.load(2).push_i(1).add().put_static(cls, 0);
        let skip = w.new_label();
        w.get_static(cls, 0).push_i(2).rem().if_true(skip);
        w.push_i(0).invoke(guarded);
        w.bind(skip);
        w.inc(1, -1).goto(top);
        w.bind(done).push_i(0).invoke(fin).ret_void();
        let w = w.build(b);
        let mut m = b.method("main", 1);
        m.push_i(0).put_static(cls, 0);
        m.push_i(0).put_static(cls, 1);
        for _ in 0..3 {
            m.push_method(w).push_i(0).invoke_native(spawn, 2);
        }
        let wait = m.bind_new_label();
        let ready = m.new_label();
        m.get_static(cls, 1).push_i(3).icmp(Cmp::Eq).if_true(ready);
        m.invoke_native(yield_n, 0).goto(wait);
        m.bind(ready);
        m.get_static(cls, 0).invoke_native(print, 1).ret_void();
        m.build(b)
    });
    let mut diverged = false;
    for seed in 0..20u64 {
        let mut c = interval_cfg(FaultPlan::BeforeOutput(0));
        c.primary_seed = seed;
        c.backup_seed = seed.wrapping_mul(6007) ^ 0xA5A5;
        c.vm.quantum = 13;
        c.vm.quantum_jitter = 11;
        c.vm.max_units = 3_000_000;
        c.flush_threshold = 0;
        let mut free_cfg = c.clone();
        free_cfg.fault = FaultPlan::None;
        let free = match FtJvm::new(program.clone(), free_cfg).run_replicated() {
            Ok(r) => r.console(),
            Err(_) => continue,
        };
        match FtJvm::new(program.clone(), c).run_with_failure() {
            Err(_) => {
                diverged = true;
                break;
            }
            Ok(r) if r.console() != free => {
                diverged = true;
                break;
            }
            Ok(_) => {}
        }
    }
    assert!(diverged, "R4A violations must surface under interval replay as well");
}
