//! Property-based tests for the replication records and the failover
//! protocol itself.

use ftjvm_core::records::{LoggedResult, Record, WireValue};
use ftjvm_core::{FtConfig, FtJvm, LockVariant, ReplicationMode};
use ftjvm_netsim::FaultPlan;
use ftjvm_vm::program::ProgramBuilder;
use ftjvm_vm::{Cmp, Program, VtPath};
use proptest::prelude::*;
use std::sync::Arc;

fn vt_strategy() -> impl Strategy<Value = VtPath> {
    proptest::collection::vec(0u32..1000, 1..6).prop_map(VtPath::from_ordinals)
}

fn wire_value_strategy() -> impl Strategy<Value = WireValue> {
    prop_oneof![
        Just(WireValue::Null),
        any::<i64>().prop_map(WireValue::Int),
        any::<f64>().prop_filter("finite", |f| f.is_finite()).prop_map(WireValue::Double),
    ]
}

fn record_strategy() -> impl Strategy<Value = Record> {
    prop_oneof![
        (any::<u64>(), vt_strategy(), any::<u64>()).prop_map(|(l_id, t, t_asn)| Record::IdMap {
            l_id,
            t,
            t_asn
        }),
        (vt_strategy(), any::<u64>(), any::<u64>(), any::<u64>())
            .prop_map(|(t, t_asn, l_id, l_asn)| Record::LockAcq { t, t_asn, l_id, l_asn }),
        (
            vt_strategy(),
            any::<u64>(),
            any::<u32>(),
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            any::<bool>(),
            vt_strategy()
        )
            .prop_map(|(t, br_cnt, method, pc_off, mon_cnt, l_asn, in_native, next)| {
                Record::Sched { t, br_cnt, method, pc_off, mon_cnt, l_asn, in_native, next }
            }),
        (
            vt_strategy(),
            any::<u64>(),
            any::<u64>(),
            prop_oneof![
                proptest::option::of(wire_value_strategy()).prop_map(LoggedResult::Ok),
                (any::<i64>(), "[ -~]{0,40}")
                    .prop_map(|(code, msg)| LoggedResult::Err { code, msg }),
            ],
            proptest::collection::vec(
                (any::<u8>(), proptest::collection::vec(wire_value_strategy(), 0..16)),
                0..4
            )
        )
            .prop_map(|(t, seq, sig_hash, result, out_args)| Record::NativeResult {
                t,
                seq,
                sig_hash,
                result,
                out_args,
            }),
        (vt_strategy(), any::<u64>(), any::<u64>())
            .prop_map(|(t, seq, output_id)| Record::OutputCommit { t, seq, output_id }),
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(handler, payload)| Record::SeState { handler, payload: payload.into() }),
    ]
}

proptest! {
    /// Every record survives the wire exactly.
    #[test]
    fn record_roundtrip(rec in record_strategy()) {
        let decoded = Record::decode(rec.encode()).unwrap();
        prop_assert_eq!(decoded, rec);
    }

    /// Decoding arbitrary garbage never panics.
    #[test]
    fn record_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = Record::decode(bytes::Bytes::from(bytes));
    }

    /// Virtual thread ids survive ordinal-chain roundtrips.
    #[test]
    fn vtpath_roundtrip(vt in vt_strategy()) {
        let rt = VtPath::from_ordinals(vt.ordinals().to_vec());
        prop_assert_eq!(rt, vt);
    }
}

/// Builds a parameterized deterministic program: `n_threads` workers each
/// run `iters` iterations mixing synchronized increments, racy-free local
/// arithmetic and occasional prints; main prints the exact expected total.
fn param_program(n_threads: i64, iters: i64, print_every: i64) -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    let print = b.import_native("sys.print_int", 1, false);
    let spawn = b.import_native("sys.spawn", 2, false);
    let yield_n = b.import_native("sys.yield", 0, false);
    let cls = b.add_class("P", ftjvm_vm::class::builtin::OBJECT, 0, 2);
    let mut inc = b.method("inc", 1);
    inc.static_of(cls).synchronized();
    inc.get_static(cls, 0).load(0).add().put_static(cls, 0).ret_void();
    let inc = inc.build(&mut b);
    let mut fin = b.method("fin", 1);
    fin.static_of(cls).synchronized();
    fin.get_static(cls, 1).push_i(1).add().put_static(cls, 1).ret_void();
    let fin = fin.build(&mut b);
    let mut w = b.method("worker", 1);
    {
        let m = &mut w;
        let done = m.new_label();
        m.push_i(0).store(1);
        let top = m.bind_new_label();
        m.load(1).push_i(iters).icmp(Cmp::Ge).if_true(done);
        // local arithmetic + synchronized add of (id + i) % 7
        m.load(0).load(1).add().push_i(7).rem().invoke(inc);
        if print_every > 0 {
            let skip = m.new_label();
            m.load(1).push_i(print_every).rem().if_true(skip);
            m.load(1).load(0).push_i(1000).mul().add().invoke_native(print, 1);
            m.bind(skip);
        }
        m.inc(1, 1).goto(top);
        m.bind(done);
        m.push_i(0).invoke(fin).ret_void();
    }
    let w = w.build(&mut b);
    let mut m = b.method("main", 1);
    m.push_i(0).put_static(cls, 0);
    m.push_i(0).put_static(cls, 1);
    for id in 0..n_threads {
        m.push_method(w).push_i(id).invoke_native(spawn, 2);
    }
    let wait = m.bind_new_label();
    let ready = m.new_label();
    m.get_static(cls, 1).push_i(n_threads).icmp(Cmp::Eq).if_true(ready);
    m.invoke_native(yield_n, 0).goto(wait);
    m.bind(ready);
    m.get_static(cls, 0).invoke_native(print, 1).ret_void();
    let entry = m.build(&mut b);
    Arc::new(b.build(entry).expect("param program verifies"))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// THE protocol property: for random workload parameters, scheduler
    /// seeds, technique and crash point, a failover run's outputs equal the
    /// failure-free run's outputs exactly once, and the backup never
    /// reports divergence (the program is race-free).
    #[test]
    fn failover_is_transparent_for_race_free_programs(
        n_threads in 1i64..4,
        iters in 5i64..40,
        print_every in prop_oneof![Just(0i64), 3i64..10],
        pseed in any::<u64>(),
        bseed in any::<u64>(),
        technique in 0u8..3,
        crash_units in 50u64..30_000,
    ) {
        let program = param_program(n_threads, iters, print_every);
        let (mode, variant) = match technique {
            0 => (ReplicationMode::LockSync, LockVariant::PerAcquisition),
            1 => (ReplicationMode::LockSync, LockVariant::Intervals),
            _ => (ReplicationMode::ThreadSched, LockVariant::PerAcquisition),
        };
        let mk = |fault| FtConfig {
            mode,
            lock_variant: variant,
            fault,
            primary_seed: pseed,
            backup_seed: bseed,
            ..FtConfig::default()
        };
        let free = FtJvm::new(program.clone(), mk(FaultPlan::None))
            .run_replicated()
            .map_err(|e| TestCaseError::fail(format!("free run: {e}")))?;
        let failed = FtJvm::new(program.clone(), mk(FaultPlan::AfterInstructions(crash_units)))
            .run_with_failure()
            .map_err(|e| TestCaseError::fail(format!("failover: {e}")))?;
        // State-machine correctness: the failover execution must be *a*
        // correct execution. Each worker prints `id*1000 + i` so its own
        // output sequence is deterministic; the cross-thread interleaving
        // of the post-crash tail is the backup's to choose. Therefore:
        // per-thread subsequences are identical, and the final total is
        // identical.
        assert_per_thread_equal(&failed.console(), &free.console(), n_threads)?;
        failed
            .check_no_duplicate_outputs()
            .map_err(|id| TestCaseError::fail(format!("duplicate output {id}")))?;
    }

    /// Crashing in the uncertain-output window is always exactly-once.
    #[test]
    fn uncertain_outputs_are_exactly_once(
        n in 0u64..12,
        before in any::<bool>(),
        lock_mode in any::<bool>(),
        pseed in any::<u64>(),
    ) {
        let program = param_program(2, 12, 4);
        let mode = if lock_mode { ReplicationMode::LockSync } else { ReplicationMode::ThreadSched };
        let fault = if before { FaultPlan::BeforeOutput(n) } else { FaultPlan::AfterOutput(n) };
        let mk = |fault| FtConfig { mode, fault, primary_seed: pseed, ..FtConfig::default() };
        let free = FtJvm::new(program.clone(), mk(FaultPlan::None))
            .run_replicated()
            .map_err(|e| TestCaseError::fail(format!("free run: {e}")))?;
        let failed = FtJvm::new(program.clone(), mk(fault))
            .run_with_failure()
            .map_err(|e| TestCaseError::fail(format!("failover: {e}")))?;
        assert_per_thread_equal(&failed.console(), &free.console(), 2)?;
        failed
            .check_no_duplicate_outputs()
            .map_err(|id| TestCaseError::fail(format!("duplicate output {id}")))?;
    }
}

/// Asserts the two consoles contain identical per-thread output
/// subsequences (worker outputs are `id*1000 + i`) and an identical final
/// total line.
fn assert_per_thread_equal(
    got: &[String],
    expected: &[String],
    n_threads: i64,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.last(), expected.last(), "final totals differ");
    for id in 0..n_threads {
        let of_thread = |console: &[String]| -> Vec<i64> {
            console[..console.len() - 1]
                .iter()
                .map(|s| s.parse::<i64>().expect("numeric output"))
                .filter(|v| v / 1000 == id)
                .collect()
        };
        prop_assert_eq!(of_thread(got), of_thread(expected), "thread {} sequence differs", id);
    }
    Ok(())
}

// ===== compact codec properties =====

/// All eight record kinds (the base strategy skips LockInterval and
/// Heartbeat, which the fixed-roundtrip test doesn't need).
fn full_record_strategy() -> impl Strategy<Value = Record> {
    prop_oneof![
        record_strategy(),
        (vt_strategy(), any::<u64>(), any::<u64>())
            .prop_map(|(t, t_asn_start, count)| Record::LockInterval { t, t_asn_start, count }),
        any::<u64>().prop_map(|now_ns| Record::Heartbeat { now_ns }),
    ]
}

proptest! {
    /// A random record sequence, compact-encoded and split into batches at
    /// random boundaries, decodes back to exactly the original sequence —
    /// the delta context survives any batch split.
    #[test]
    fn compact_batch_roundtrip_any_split(
        recs in proptest::collection::vec(full_record_strategy(), 0..40),
        raw_splits in proptest::collection::vec(any::<prop::sample::Index>(), 0..4)
    ) {
        let mut enc = ftjvm_core::RecordEncoder::new();
        let bodies: Vec<_> = recs.iter().map(|r| enc.encode_body(r)).collect();
        let mut splits: Vec<usize> =
            raw_splits.iter().map(|ix| ix.index(bodies.len() + 1)).collect();
        splits.push(0);
        splits.push(bodies.len());
        splits.sort_unstable();
        splits.dedup();
        let frames: Vec<_> = splits
            .windows(2)
            .map(|w| ftjvm_core::build_batch_frame(&bodies[w[0]..w[1]]))
            .collect();
        let decoded = ftjvm_core::decode_frames(frames).unwrap();
        prop_assert_eq!(decoded, recs);
    }

    /// Fixed frames (e.g. heartbeats) interleave freely with compact
    /// batches on one channel.
    #[test]
    fn compact_and_fixed_frames_interleave(
        recs in proptest::collection::vec(full_record_strategy(), 1..20),
        hb in any::<u64>()
    ) {
        let mut enc = ftjvm_core::RecordEncoder::new();
        let bodies: Vec<_> = recs.iter().map(|r| enc.encode_body(r)).collect();
        let frames = vec![
            Record::Heartbeat { now_ns: hb }.encode(),
            ftjvm_core::build_batch_frame(&bodies),
            Record::Heartbeat { now_ns: hb.wrapping_add(1) }.encode(),
        ];
        let decoded = ftjvm_core::decode_frames(frames).unwrap();
        prop_assert_eq!(decoded.len(), recs.len() + 2);
        prop_assert_eq!(&decoded[1..=recs.len()], &recs[..]);
    }

    /// Truncating a batch frame anywhere yields a clean error, never a
    /// panic and never a silently shortened log.
    #[test]
    fn compact_truncation_errors_cleanly(
        recs in proptest::collection::vec(full_record_strategy(), 1..10),
        cut in any::<prop::sample::Index>()
    ) {
        let mut enc = ftjvm_core::RecordEncoder::new();
        let bodies: Vec<_> = recs.iter().map(|r| enc.encode_body(r)).collect();
        let frame = ftjvm_core::build_batch_frame(&bodies);
        let cut = cut.index(frame.len());
        prop_assert!(ftjvm_core::decode_frames(vec![frame.slice(..cut)]).is_err());
    }

    /// Arbitrary bytes behind a batch tag decode to an error or to records
    /// — never a panic.
    #[test]
    fn compact_garbage_never_panics(noise in proptest::collection::vec(any::<u8>(), 0..200)) {
        let mut frame = vec![0xBA];
        frame.extend_from_slice(&noise);
        let _ = ftjvm_core::decode_frames(vec![bytes::Bytes::from(frame)]);
    }
}
