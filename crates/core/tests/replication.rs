//! End-to-end replication tests: failure-free logging, crash + recovery at
//! many points, exactly-once output, non-deterministic native replay,
//! multithreading under both techniques, and divergence detection.

use ftjvm_core::{FtConfig, FtJvm, ReplicationMode};
use ftjvm_netsim::FaultPlan;
use ftjvm_vm::class::builtin;
use ftjvm_vm::program::ProgramBuilder;
use ftjvm_vm::{Cmp, MethodId, Program, VmError};
use std::sync::Arc;

fn build(f: impl FnOnce(&mut ProgramBuilder) -> MethodId) -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    let entry = f(&mut b);
    Arc::new(b.build(entry).expect("program verifies"))
}

fn cfg(mode: ReplicationMode, fault: FaultPlan) -> FtConfig {
    FtConfig { mode, fault, ..FtConfig::default() }
}

const MODES: [ReplicationMode; 2] = [ReplicationMode::LockSync, ReplicationMode::ThreadSched];

/// Prints the squares of 0..n — deterministic, single-threaded.
fn squares_program(b: &mut ProgramBuilder) -> MethodId {
    let print = b.import_native("sys.print_int", 1, false);
    let mut m = b.method("main", 1);
    let done = m.new_label();
    m.push_i(0).store(1);
    let top = m.bind_new_label();
    m.load(1).push_i(8).icmp(Cmp::Ge).if_true(done);
    m.load(1).load(1).mul().invoke_native(print, 1);
    m.inc(1, 1).goto(top);
    m.bind(done).ret_void();
    m.build(b)
}

/// Reads the clock and RNG, does arithmetic on them, prints derived values
/// (deterministic only if the backup adopts the primary's ND inputs).
fn nd_inputs_program(b: &mut ProgramBuilder) -> MethodId {
    let print = b.import_native("sys.print_int", 1, false);
    let clock = b.import_native("sys.clock", 0, true);
    let rand = b.import_native("sys.rand", 1, true);
    let mut m = b.method("main", 1);
    for _ in 0..4 {
        // print(clock() % 97 + rand(1000))
        m.invoke_native(clock, 0).push_i(97).rem();
        m.push_i(1000).invoke_native(rand, 1).add();
        m.invoke_native(print, 1);
    }
    m.ret_void();
    m.build(b)
}

/// Four workers increment a shared counter under a synchronized method;
/// main prints the total.
fn counter_program(b: &mut ProgramBuilder) -> MethodId {
    let print = b.import_native("sys.print_int", 1, false);
    let spawn = b.import_native("sys.spawn", 2, false);
    let yield_n = b.import_native("sys.yield", 0, false);
    let cls = b.add_class("Counter", builtin::OBJECT, 0, 2);
    let mut inc = b.method("inc", 1);
    inc.static_of(cls).synchronized();
    inc.get_static(cls, 0).push_i(1).add().put_static(cls, 0).ret_void();
    let inc = inc.build(b);
    let mut fin = b.method("finish", 1);
    fin.static_of(cls).synchronized();
    fin.get_static(cls, 1).push_i(1).add().put_static(cls, 1).ret_void();
    let fin = fin.build(b);
    let mut w = b.method("worker", 1);
    let done = w.new_label();
    w.push_i(60).store(1);
    let top = w.bind_new_label();
    w.load(1).if_not(done);
    w.push_i(0).invoke(inc);
    w.inc(1, -1).goto(top);
    w.bind(done).push_i(0).invoke(fin).ret_void();
    let w = w.build(b);
    let mut m = b.method("main", 1);
    m.push_i(0).put_static(cls, 0);
    m.push_i(0).put_static(cls, 1);
    for _ in 0..4 {
        m.push_method(w).push_i(0).invoke_native(spawn, 2);
    }
    let wait_loop = m.bind_new_label();
    let ready = m.new_label();
    m.get_static(cls, 1).push_i(4).icmp(Cmp::Eq).if_true(ready);
    m.invoke_native(yield_n, 0).goto(wait_loop);
    m.bind(ready);
    m.get_static(cls, 0).invoke_native(print, 1).ret_void();
    m.build(b)
}

/// Writes lines to a file, reads them back, prints a checksum.
fn file_program(b: &mut ProgramBuilder) -> MethodId {
    let print = b.import_native("sys.print_int", 1, false);
    let open = b.import_native("file.open", 1, true);
    let write = b.import_native("file.write", 3, true);
    let seek = b.import_native("file.seek", 2, false);
    let read = b.import_native("file.read", 3, true);
    let close = b.import_native("file.close", 1, false);
    let name = b.intern("journal.dat");
    let chunk = b.intern("entry!");
    let mut m = b.method("main", 1);
    m.const_str(name).invoke_native(open, 1).store(1); // fd
                                                       // Write "entry!" five times.
    m.push_i(5).store(2);
    let wdone = m.new_label();
    let wtop = m.bind_new_label();
    m.load(2).if_not(wdone);
    m.load(1).const_str(chunk).push_i(6).invoke_native(write, 3).pop();
    m.inc(2, -1).goto(wtop);
    m.bind(wdone);
    // Seek back, read 30 bytes, sum them.
    m.load(1).push_i(0).invoke_native(seek, 2);
    m.push_i(30).new_array().store(3);
    m.load(1).load(3).push_i(30).invoke_native(read, 3).invoke_native(print, 1);
    m.push_i(0).store(4); // sum
    m.push_i(0).store(5); // i
    let rdone = m.new_label();
    let rtop = m.bind_new_label();
    m.load(5).push_i(30).icmp(Cmp::Ge).if_true(rdone);
    m.load(4).load(3).load(5).aload().add().store(4);
    m.inc(5, 1).goto(rtop);
    m.bind(rdone);
    m.load(4).invoke_native(print, 1);
    m.load(1).invoke_native(close, 1);
    m.ret_void();
    m.build(b)
}

/// Reference console output of a program on a bare VM.
fn reference(program: &Arc<Program>) -> Vec<String> {
    let (report, world) =
        FtJvm::new(program.clone(), FtConfig::default()).run_unreplicated().expect("baseline runs");
    assert!(report.uncaught.is_empty());
    let texts = world.borrow().console_texts();
    texts
}

// ===== failure-free replication =====

#[test]
fn failure_free_replication_is_transparent() {
    for mode in MODES {
        for builder in [squares_program, nd_inputs_program, counter_program, file_program] {
            let program = build(builder);
            let reference = reference(&program);
            let report = FtJvm::new(program, cfg(mode, FaultPlan::None))
                .run_replicated()
                .expect("replicated run succeeds");
            assert!(!report.crashed);
            assert_eq!(report.console(), reference, "mode {mode}");
            assert!(report.channel.messages_sent > 0, "the primary must log");
            report.check_no_duplicate_outputs().expect("unique output ids");
        }
    }
}

#[test]
fn failure_free_overhead_is_positive_and_mode_dependent() {
    let program = build(counter_program);
    let base = FtJvm::new(program.clone(), FtConfig::default())
        .run_unreplicated()
        .expect("baseline")
        .0
        .acct
        .total();
    for mode in MODES {
        let report =
            FtJvm::new(program.clone(), cfg(mode, FaultPlan::None)).run_replicated().expect("runs");
        assert!(report.primary.acct.total() > base, "{mode}: replication must cost simulated time");
    }
}

#[test]
fn lock_sync_logs_lock_records_ts_logs_sched_records() {
    let program = build(counter_program);
    let lock = FtJvm::new(program.clone(), cfg(ReplicationMode::LockSync, FaultPlan::None))
        .run_replicated()
        .expect("lock-sync runs");
    assert!(lock.primary_stats.lock_acq_records > 200, "synchronized counter acquires many locks");
    assert!(lock.primary_stats.id_map_records > 0);
    assert_eq!(lock.primary_stats.sched_records, 0);
    let ts = FtJvm::new(program, cfg(ReplicationMode::ThreadSched, FaultPlan::None))
        .run_replicated()
        .expect("ts runs");
    assert_eq!(ts.primary_stats.lock_acq_records, 0);
    assert!(ts.primary_stats.sched_records > 0, "multithreaded program reschedules");
    // TS logs far fewer messages than lock-sync for lock-heavy programs.
    assert!(ts.primary_stats.messages_logged() < lock.primary_stats.messages_logged());
}

#[test]
fn single_threaded_ts_sends_no_sched_records() {
    let program = build(squares_program);
    let ts = FtJvm::new(program, cfg(ReplicationMode::ThreadSched, FaultPlan::None))
        .run_replicated()
        .expect("runs");
    assert_eq!(
        ts.primary_stats.sched_records, 0,
        "single-threaded programs do not transmit schedule records (paper §5)"
    );
}

// ===== crash + recovery =====

#[test]
fn recovery_reproduces_outputs_exactly_once_mid_run() {
    for mode in MODES {
        for builder in [squares_program, counter_program, file_program] {
            let program = build(builder);
            let expected = reference(&program);
            for fault in [
                FaultPlan::AfterInstructions(40),
                FaultPlan::AfterInstructions(400),
                FaultPlan::BeforeOutput(0),
                FaultPlan::BeforeOutput(2),
                FaultPlan::AfterOutput(0),
                FaultPlan::AfterOutput(3),
            ] {
                let report = FtJvm::new(program.clone(), cfg(mode, fault))
                    .run_with_failure()
                    .unwrap_or_else(|e| panic!("{mode} {fault:?}: {e}"));
                // Short programs may finish before an instruction-count
                // fault fires; the run is then simply failure-free.
                assert_eq!(report.console(), expected, "{mode} {fault:?}");
                report
                    .check_no_duplicate_outputs()
                    .unwrap_or_else(|id| panic!("{mode} {fault:?}: duplicate output {id}"));
                if let Some(backup) = &report.backup {
                    assert!(backup.uncaught.is_empty());
                }
            }
        }
    }
}

#[test]
fn recovery_adopts_nd_inputs_logged_before_the_crash() {
    // The program prints values derived from clock/rand. The primary and
    // backup have different skews and env seeds, so recovery only produces
    // the same output if the backup adopts the logged ND results.
    for mode in MODES {
        let program = build(nd_inputs_program);
        let reference = {
            // Reference = the *primary's* own failure-free replicated run
            // (its env seeds are what the log captures).
            let r = FtJvm::new(program.clone(), cfg(mode, FaultPlan::None))
                .run_replicated()
                .expect("runs");
            r.console()
        };
        // Crash after the 2nd output: outputs 0-1 performed by the primary,
        // 2-3 recomputed by the backup from logged ND inputs where
        // available.
        let report = FtJvm::new(program.clone(), cfg(mode, FaultPlan::AfterOutput(1)))
            .run_with_failure()
            .expect("failover");
        assert!(report.crashed);
        let console = report.console();
        assert_eq!(console.len(), 4, "{mode}: all four outputs appear");
        // The prefix the primary performed must match the reference exactly.
        assert_eq!(&console[..2], &reference[..2], "{mode}");
        report.check_no_duplicate_outputs().expect("exactly-once");
    }
}

#[test]
fn sweep_failure_points_property() {
    // Property-style sweep: crash after k instructions for many k; output
    // must always equal the reference, exactly once.
    for mode in MODES {
        let program = build(file_program);
        let expected = reference(&program);
        for k in (10..2000).step_by(97) {
            let report = FtJvm::new(program.clone(), cfg(mode, FaultPlan::AfterInstructions(k)))
                .run_with_failure()
                .unwrap_or_else(|e| panic!("{mode} k={k}: {e}"));
            assert_eq!(report.console(), expected, "{mode} k={k}");
            report
                .check_no_duplicate_outputs()
                .unwrap_or_else(|id| panic!("{mode} k={k}: duplicate output {id}"));
            // File contents must also be intact.
            assert_eq!(
                report.world.borrow().file("journal.dat").unwrap(),
                b"entry!entry!entry!entry!entry!",
                "{mode} k={k}"
            );
        }
    }
}

#[test]
fn crash_with_unflushed_suffix_still_recovers() {
    // AfterFlush(0): the primary dies right after its first buffer flush;
    // every later record is lost. The backup replays the prefix and then
    // continues as the live authority.
    for mode in MODES {
        let program = build(squares_program);
        let expected = reference(&program);
        let mut c = cfg(mode, FaultPlan::AfterFlush(0));
        c.vm.cost.net = ftjvm_netsim::NetParams::default();
        let report = FtJvm::new(program, c).run_with_failure().expect("failover");
        assert!(report.crashed);
        assert_eq!(report.console(), expected, "{mode}");
        report.check_no_duplicate_outputs().expect("exactly-once");
    }
}

#[test]
fn multithreaded_failover_under_both_modes() {
    for mode in MODES {
        let program = build(counter_program);
        for k in [200u64, 1000, 3000, 6000] {
            let report = FtJvm::new(program.clone(), cfg(mode, FaultPlan::AfterInstructions(k)))
                .run_with_failure()
                .unwrap_or_else(|e| panic!("{mode} k={k}: {e}"));
            assert_eq!(report.console(), vec!["240"], "{mode} k={k}");
            report.check_no_duplicate_outputs().expect("exactly-once");
        }
    }
}

#[test]
fn uncertain_last_output_is_tested_not_duplicated() {
    // BeforeOutput(n) crashes after the commit was acknowledged but before
    // the output was performed: the backup must perform it (it will find
    // `test` = false). AfterOutput(n) crashes right after the output: the
    // backup must NOT perform it again (`test` = true via the world's
    // applied-ids, or a later record proves it happened).
    for mode in MODES {
        let program = build(squares_program);
        let expected = reference(&program);
        for n in 0..8 {
            for fault in [FaultPlan::BeforeOutput(n), FaultPlan::AfterOutput(n)] {
                let report = FtJvm::new(program.clone(), cfg(mode, fault))
                    .run_with_failure()
                    .unwrap_or_else(|e| panic!("{mode} {fault:?}: {e}"));
                assert_eq!(report.console(), expected, "{mode} {fault:?}");
                report.check_no_duplicate_outputs().expect("exactly-once");
            }
        }
    }
}

// ===== divergence detection (R4A violations) =====

/// A racy program: unsynchronized read-modify-write on a static, which
/// violates R4A. Under lock-sync the backup's replay can diverge; under
/// thread-scheduling replication it must still recover exactly.
fn racy_program(b: &mut ProgramBuilder) -> MethodId {
    let print = b.import_native("sys.print_int", 1, false);
    let spawn = b.import_native("sys.spawn", 2, false);
    let yield_n = b.import_native("sys.yield", 0, false);
    let cls = b.add_class("Racy", builtin::OBJECT, 0, 2);
    let fin = {
        let mut fin = b.method("finish", 1);
        fin.static_of(cls).synchronized();
        fin.get_static(cls, 1).push_i(1).add().put_static(cls, 1).ret_void();
        fin.build(b)
    };
    // Worker: racy increments, then a synchronized guard that runs a
    // *conditional* number of lock acquisitions depending on the racy value
    // (the paper's Figure 1 shape: a data race that changes the lock
    // acquisition sequence).
    let mut locked_touch = b.method("locked_touch", 1);
    locked_touch.static_of(cls).synchronized();
    locked_touch.ret_void();
    let locked_touch = locked_touch.build(b);
    let mut w = b.method("worker", 1);
    let done = w.new_label();
    w.push_i(40).store(1);
    let top = w.bind_new_label();
    w.load(1).if_not(done);
    // Racy read-modify-write with a deliberately wide window: read the
    // shared static into a local, burn a few instructions, then write it
    // back incremented. Lost updates depend on where quantum preemptions
    // land, i.e. on the scheduler seed — which is exactly what breaks
    // lock-sync replay (R4A).
    let skip = w.new_label();
    w.get_static(cls, 0).store(2);
    w.load(2).push_i(3).mul().push_i(7).rem().pop(); // widen the window
    w.load(2).push_i(1).add().put_static(cls, 0);
    // if (count % 2 == 0) locked_touch();  — the data race now changes the
    // lock acquisition sequence (the paper's Figure 1).
    w.get_static(cls, 0).push_i(2).rem().if_true(skip);
    w.push_i(0).invoke(locked_touch);
    w.bind(skip);
    w.inc(1, -1).goto(top);
    w.bind(done).push_i(0).invoke(fin).ret_void();
    let w = w.build(b);
    let mut m = b.method("main", 1);
    m.push_i(0).put_static(cls, 0);
    m.push_i(0).put_static(cls, 1);
    for _ in 0..3 {
        m.push_method(w).push_i(0).invoke_native(spawn, 2);
    }
    let wait_loop = m.bind_new_label();
    let ready = m.new_label();
    m.get_static(cls, 1).push_i(3).icmp(Cmp::Eq).if_true(ready);
    m.invoke_native(yield_n, 0).goto(wait_loop);
    m.bind(ready);
    m.get_static(cls, 0).invoke_native(print, 1).ret_void();
    m.build(b)
}

#[test]
fn ts_mode_masks_data_races_r4b() {
    // Under replicated thread scheduling (R4B), even racy programs recover
    // to the primary's exact state: the backup reproduces the primary's
    // interleaving, races included. Crashing in the committed-output
    // window (`BeforeOutput(0)`) guarantees the *entire* racy execution is
    // in the flushed log — the final print commits (and therefore flushes)
    // everything — so the backup must reproduce the primary's exact racy
    // counter, for every scheduling seed.
    let program = build(racy_program);
    for seed in [3u64, 11, 29, 71] {
        let mut free_cfg = cfg(ReplicationMode::ThreadSched, FaultPlan::None);
        free_cfg.primary_seed = seed;
        free_cfg.vm.quantum = 23;
        free_cfg.vm.quantum_jitter = 13;
        let free =
            FtJvm::new(program.clone(), free_cfg.clone()).run_replicated().expect("failure-free");
        let mut with_fault = free_cfg;
        with_fault.fault = FaultPlan::BeforeOutput(0);
        let report = FtJvm::new(program.clone(), with_fault)
            .run_with_failure()
            .unwrap_or_else(|e| panic!("seed={seed}: {e}"));
        assert!(report.crashed);
        assert_eq!(report.console(), free.console(), "seed={seed}");
        report.check_no_duplicate_outputs().expect("exactly-once");
    }
}

#[test]
fn ts_mode_masks_data_races_mid_run_with_eager_flushing() {
    // With an eager flush policy (every record shipped immediately) the
    // log is complete up to the crash even without output commits, so a
    // mid-run crash must also reproduce the primary's racy prefix — and
    // the final count equals the primary's, because the backup replays
    // every logged switch and the remaining tail is executed by the
    // single thread the final record designates, then freely.
    let program = build(racy_program);
    let mut free_cfg = cfg(ReplicationMode::ThreadSched, FaultPlan::None);
    free_cfg.vm.quantum = 23;
    free_cfg.vm.quantum_jitter = 13;
    free_cfg.flush_threshold = 0;
    let free = FtJvm::new(program.clone(), free_cfg.clone()).run_replicated().expect("free");
    // Crash very late (instruction counts past all switches but before the
    // end): the log then contains every schedule record of the execution.
    let total_units = free.primary.counters.instructions;
    let mut with_fault = free_cfg;
    with_fault.fault = FaultPlan::AfterInstructions(total_units.saturating_sub(20));
    let report = FtJvm::new(program, with_fault).run_with_failure().expect("failover");
    if report.crashed {
        assert_eq!(report.console(), free.console());
        report.check_no_duplicate_outputs().expect("exactly-once");
    }
}

#[test]
fn racy_primary_results_are_seed_dependent() {
    // Sanity for the divergence test below: the racy program's final count
    // must actually vary with the scheduling seed, otherwise there is no
    // race for lock-sync replay to trip over.
    let program = build(racy_program);
    let mut outcomes = std::collections::BTreeSet::new();
    for seed in 0..12u64 {
        let mut c = cfg(ReplicationMode::LockSync, FaultPlan::None);
        c.primary_seed = seed;
        c.vm.quantum = 13;
        c.vm.quantum_jitter = 11;
        let free = FtJvm::new(program.clone(), c).run_replicated().expect("free run");
        outcomes.insert(free.console().join(","));
    }
    eprintln!("distinct racy outcomes: {outcomes:?}");
    assert!(outcomes.len() > 1, "racy outcomes must vary across seeds: {outcomes:?}");
}

#[test]
fn lock_sync_detects_racy_divergence_somewhere() {
    // Under lock-sync, R4A violations can make the backup's replay diverge
    // (different schedule => different racy values => different lock
    // acquisition sequences). Sweep seeds and crash points until the
    // replay either diverges detectably or produces a different final
    // count. The paper had to remove such races from the JRE by hand; our
    // implementation must at least *detect* them instead of silently
    // corrupting state.
    let program = build(racy_program);
    let mut diverged = false;
    'outer: for seed in 0..20u64 {
        // Reference: the primary's own racy result with this seed.
        let mut free_cfg = cfg(ReplicationMode::LockSync, FaultPlan::None);
        free_cfg.primary_seed = seed;
        free_cfg.vm.quantum = 13;
        free_cfg.vm.quantum_jitter = 11;
        free_cfg.flush_threshold = 0;
        let free = match FtJvm::new(program.clone(), free_cfg.clone()).run_replicated() {
            Ok(r) => r.console(),
            Err(_) => continue,
        };
        for fault in [
            FaultPlan::BeforeOutput(0),
            FaultPlan::AfterInstructions(900),
            FaultPlan::AfterInstructions(2600),
        ] {
            let mut c = free_cfg.clone();
            c.fault = fault;
            c.backup_seed = seed.wrapping_mul(7919) ^ 0x5A5A;
            // Bound the budget: a diverged lock-sync replay can *livelock*
            // (a thread waits forever for a logged turn that never comes
            // while another busy-waits) — the same way the paper's replay
            // broke on the JRE's own data races until they were removed by
            // hand. Budget exhaustion therefore also counts as detection.
            c.vm.max_units = 3_000_000;
            match FtJvm::new(program.clone(), c).run_with_failure() {
                Err(VmError::ReplayDivergence { .. })
                | Err(VmError::Deadlock { .. })
                | Err(VmError::InstructionBudget) => {
                    diverged = true;
                    break 'outer;
                }
                Err(e) => panic!("unexpected error: {e}"),
                Ok(report) => {
                    if report.crashed && report.console() != free {
                        // Silent state divergence — the race corrupted the
                        // replay without tripping a protocol check, which
                        // is exactly why the paper demands R4A.
                        diverged = true;
                        break 'outer;
                    }
                }
            }
        }
    }
    assert!(
        diverged,
        "expected at least one seed/crash-point to expose the R4A violation under lock-sync"
    );
}

// ===== phased natives (locks inside native methods) =====

fn phased_native_program(b: &mut ProgramBuilder) -> MethodId {
    let print = b.import_native("sys.print_int", 1, false);
    let spawn = b.import_native("sys.spawn", 2, false);
    let yield_n = b.import_native("sys.yield", 0, false);
    let locked_sum = b.import_native("bulk.locked_sum", 2, true);
    let cls = b.add_class("P", builtin::OBJECT, 0, 4); // statics: 0=lock obj, 1=array, 2=done, 3=acc
    let mut w = b.method("worker", 1);
    let done = w.new_label();
    w.push_i(12).store(1);
    let top = w.bind_new_label();
    w.load(1).if_not(done);
    // acc += locked_sum(lock, arr) — the native acquires the lock
    // internally across phases.
    w.get_static(cls, 0).get_static(cls, 1).invoke_native(locked_sum, 2);
    w.class_obj(cls).monitor_enter();
    w.get_static(cls, 3).add().put_static(cls, 3);
    w.class_obj(cls).monitor_exit();
    w.inc(1, -1).goto(top);
    w.bind(done);
    w.class_obj(cls).monitor_enter();
    w.get_static(cls, 2).push_i(1).add().put_static(cls, 2);
    w.class_obj(cls).monitor_exit();
    w.ret_void();
    let w = w.build(b);
    let mut m = b.method("main", 1);
    m.new_obj(builtin::OBJECT).put_static(cls, 0);
    m.push_i(8).new_array().store(1);
    m.push_i(0).store(2);
    let fdone = m.new_label();
    let fill = m.bind_new_label();
    m.load(2).push_i(8).icmp(Cmp::Ge).if_true(fdone);
    m.load(1).load(2).load(2).push_i(3).mul().astore();
    m.inc(2, 1).goto(fill);
    m.bind(fdone);
    m.load(1).put_static(cls, 1);
    m.push_i(0).put_static(cls, 2);
    m.push_i(0).put_static(cls, 3);
    for _ in 0..3 {
        m.push_method(w).push_i(0).invoke_native(spawn, 2);
    }
    let wait_loop = m.bind_new_label();
    let ready = m.new_label();
    m.get_static(cls, 2).push_i(3).icmp(Cmp::Eq).if_true(ready);
    m.invoke_native(yield_n, 0).goto(wait_loop);
    m.bind(ready);
    m.get_static(cls, 3).invoke_native(print, 1).ret_void();
    m.build(b)
}

#[test]
fn locks_inside_native_methods_replay_correctly() {
    // sum(0,3,..,21) = 84; 3 workers * 12 iterations = 36 * 84 = 3024.
    for mode in MODES {
        let program = build(phased_native_program);
        for k in [300u64, 1500, 4000] {
            let report = FtJvm::new(program.clone(), cfg(mode, FaultPlan::AfterInstructions(k)))
                .run_with_failure()
                .unwrap_or_else(|e| panic!("{mode} k={k}: {e}"));
            assert_eq!(report.console(), vec!["3024"], "{mode} k={k}");
        }
    }
}

// ===== misc =====

#[test]
fn crash_after_everything_flushed_backup_finishes_quietly() {
    // Crash at a point past all outputs: the backup replays and simply
    // terminates with nothing left to do.
    for mode in MODES {
        let program = build(squares_program);
        let expected = reference(&program);
        let report =
            FtJvm::new(program.clone(), cfg(mode, FaultPlan::AfterInstructions(1_000_000)))
                .run_replicated()
                .expect("runs to completion — fault never fires");
        assert!(!report.crashed);
        assert_eq!(report.console(), expected, "{mode}");
    }
}

#[test]
fn backup_replay_harness_reports_backup_time() {
    let program = build(counter_program);
    for mode in MODES {
        let report = FtJvm::new(program.clone(), cfg(mode, FaultPlan::None))
            .run_backup_replay()
            .expect("replay harness runs");
        let backup = report.backup.expect("backup replayed");
        assert!(backup.acct.total() > ftjvm_netsim::SimTime::ZERO);
        // Replaying the full log consumes every lock/sched record.
        if mode == ReplicationMode::LockSync {
            assert_eq!(
                report.backup_stats.as_ref().unwrap().locks_acquired,
                report.primary_stats.lock_acq_records
            );
        }
    }
}

#[test]
fn detection_latency_is_reported() {
    let program = build(squares_program);
    let report = FtJvm::new(program, cfg(ReplicationMode::LockSync, FaultPlan::BeforeOutput(1)))
        .run_with_failure()
        .expect("failover");
    assert!(report.detection_latency > ftjvm_netsim::SimTime::ZERO);
}

// ===== cross-thread output ordering (paper §4.2, final remark of the
// lock-sync subsection) =====

/// Two workers each print their id `n` times; `guarded` additionally
/// serializes each print under a shared lock.
fn interleaved_printers(b: &mut ProgramBuilder, guarded: bool) -> MethodId {
    let print = b.import_native("sys.print_int", 1, false);
    let spawn = b.import_native("sys.spawn", 2, false);
    let yield_n = b.import_native("sys.yield", 0, false);
    let cls = b.add_class("IO", builtin::OBJECT, 0, 1);
    let mut fin = b.method("fin", 1);
    fin.static_of(cls).synchronized();
    fin.get_static(cls, 0).push_i(1).add().put_static(cls, 0).ret_void();
    let fin = fin.build(b);
    let mut w = b.method("printer", 1);
    let done = w.new_label();
    w.push_i(0).store(1);
    let top = w.bind_new_label();
    w.load(1).push_i(10).icmp(Cmp::Ge).if_true(done);
    if guarded {
        w.class_obj(cls).monitor_enter();
    }
    w.load(0).invoke_native(print, 1);
    if guarded {
        w.class_obj(cls).monitor_exit();
    }
    w.inc(1, 1).goto(top);
    w.bind(done).push_i(0).invoke(fin).ret_void();
    let w = w.build(b);
    let mut m = b.method("main", 1);
    m.push_i(0).put_static(cls, 0);
    m.push_method(w).push_i(1).invoke_native(spawn, 2);
    m.push_method(w).push_i(2).invoke_native(spawn, 2);
    let wait = m.bind_new_label();
    let ready = m.new_label();
    m.get_static(cls, 0).push_i(2).icmp(Cmp::Eq).if_true(ready);
    m.invoke_native(yield_n, 0).goto(wait);
    m.bind(ready).ret_void();
    m.build(b)
}

#[test]
fn lock_guarded_output_interleaving_is_reproduced_exactly() {
    // The paper: "If multiple threads are interacting with the environment
    // and the interleaved order is important, then synchronization is
    // required to ensure an identical order between the primary and the
    // backup even if the synchronization is not required for correctness
    // at the primary." With each print under a shared lock, lock-sync
    // replay reproduces the primary's cross-thread console interleaving
    // exactly — even with a complete-log crash.
    let program = build(|b| interleaved_printers(b, true));
    for seed in [2u64, 9, 33] {
        let mut c = cfg(ReplicationMode::LockSync, FaultPlan::None);
        c.primary_seed = seed;
        c.vm.quantum = 37;
        c.vm.quantum_jitter = 19;
        c.flush_threshold = 0;
        let free = FtJvm::new(program.clone(), c.clone()).run_replicated().expect("free");
        let mut crash = c;
        // Crash right before the very last committed output: the entire
        // interleaving is in the log.
        crash.fault = FaultPlan::BeforeOutput(19);
        let report = FtJvm::new(program.clone(), crash).run_with_failure().expect("failover");
        assert!(report.crashed, "seed {seed}");
        assert_eq!(report.console(), free.console(), "seed {seed}: exact interleaving");
    }
}

#[test]
fn unguarded_output_interleaving_may_differ_but_per_thread_order_holds() {
    // Without the synchronization, the backup's post-log interleaving is
    // its own — only per-thread subsequences are guaranteed. This is the
    // flip side of the paper's remark, demonstrated.
    let program = build(|b| interleaved_printers(b, false));
    let mut c = cfg(ReplicationMode::LockSync, FaultPlan::AfterInstructions(300));
    c.vm.quantum = 37;
    c.vm.quantum_jitter = 19;
    let report = FtJvm::new(program, c).run_with_failure().expect("failover");
    let console = report.console();
    let of = |id: &str| console.iter().filter(|l| l.as_str() == id).count();
    assert_eq!(of("1"), 10, "thread 1's outputs all present, exactly once");
    assert_eq!(of("2"), 10, "thread 2's outputs all present, exactly once");
    report.check_no_duplicate_outputs().expect("exactly-once");
}

#[test]
fn replayed_native_exceptions_are_reproduced() {
    // An ND native that aborts at the primary (reading a closed file)
    // must abort identically during replay: the logged Err is imposed and
    // the same catchable exception is raised at the backup.
    let program = build(|b| {
        let print = b.import_native("sys.print_int", 1, false);
        let open = b.import_native("file.open", 1, true);
        let close = b.import_native("file.close", 1, false);
        let read = b.import_native("file.read", 3, true);
        let name = b.intern("gone.dat");
        let mut m = b.method("main", 1);
        let try_start = m.new_label();
        let try_end = m.new_label();
        let catch = m.new_label();
        let done = m.new_label();
        m.const_str(name).invoke_native(open, 1).store(1);
        m.load(1).invoke_native(close, 1);
        m.bind(try_start);
        // Read on the closed descriptor: aborts with code 11.
        m.push_i(4).new_array().store(2);
        m.load(1).load(2).push_i(4).invoke_native(read, 3).pop();
        m.bind(try_end);
        m.goto(done);
        m.bind(catch);
        m.get_field(ftjvm_vm::class::builtin::THROWABLE_CODE_SLOT).invoke_native(print, 1);
        m.bind(done);
        m.push_i(77).invoke_native(print, 1);
        m.ret_void();
        m.handler(try_start, try_end, None, catch);
        m.build(b)
    });
    let expected = vec![(ftjvm_vm::class::excode::NATIVE_BASE + 11).to_string(), "77".to_string()];
    for mode in MODES {
        // Crash in the uncertain window of the final output: the aborting
        // read is fully in the log and must replay as an exception.
        let report = FtJvm::new(program.clone(), cfg(mode, FaultPlan::BeforeOutput(1)))
            .run_with_failure()
            .unwrap_or_else(|e| panic!("{mode}: {e}"));
        assert!(report.crashed);
        assert_eq!(report.console(), expected, "{mode}");
        if let Some(b) = &report.backup {
            assert!(b.uncaught.is_empty(), "{mode}: exception must be caught, not fatal");
        }
    }
}

#[test]
fn verify_r4a_classifies_programs() {
    // A fully disciplined counter: every shared access (including main's
    // join spin and final read) goes through synchronized methods.
    let clean = build(|b| {
        let print = b.import_native("sys.print_int", 1, false);
        let spawn = b.import_native("sys.spawn", 2, false);
        let yield_n = b.import_native("sys.yield", 0, false);
        let cls = b.add_class("Clean", builtin::OBJECT, 0, 2);
        let mut inc = b.method("inc", 1);
        inc.static_of(cls).synchronized();
        inc.get_static(cls, 0).push_i(1).add().put_static(cls, 0).ret_void();
        let inc = inc.build(b);
        let mut fin = b.method("fin", 1);
        fin.static_of(cls).synchronized();
        fin.get_static(cls, 1).push_i(1).add().put_static(cls, 1).ret_void();
        let fin = fin.build(b);
        let mut done_count = b.method("done_count", 1);
        done_count.static_of(cls).synchronized();
        done_count.get_static(cls, 1).ret_val();
        let done_count = done_count.build(b);
        let mut total = b.method("total", 1);
        total.static_of(cls).synchronized();
        total.get_static(cls, 0).ret_val();
        let total = total.build(b);
        let mut w = b.method("w", 1);
        let done = w.new_label();
        w.push_i(40).store(1);
        let top = w.bind_new_label();
        w.load(1).if_not(done);
        w.push_i(0).invoke(inc);
        w.inc(1, -1).goto(top);
        w.bind(done).push_i(0).invoke(fin).ret_void();
        let w = w.build(b);
        let mut m = b.method("main", 1);
        m.push_i(0).put_static(cls, 0);
        m.push_i(0).put_static(cls, 1);
        for _ in 0..3 {
            m.push_method(w).push_i(0).invoke_native(spawn, 2);
        }
        let wait = m.bind_new_label();
        let ready = m.new_label();
        m.push_i(0).invoke(done_count).push_i(3).icmp(Cmp::Eq).if_true(ready);
        m.invoke_native(yield_n, 0).goto(wait);
        m.bind(ready);
        m.push_i(0).invoke(total).invoke_native(print, 1).ret_void();
        m.build(b)
    });
    let races = FtJvm::new(clean, FtConfig::default()).verify_r4a().expect("runs");
    assert!(races.is_empty(), "disciplined counter is race-free: {races:?}");
    // The detector also (correctly) flags the benign join-spin pattern the
    // other test programs in this file use — Eraser discipline is strict.
    let benign = build(counter_program);
    let races = FtJvm::new(benign, FtConfig::default()).verify_r4a().expect("runs");
    assert!(!races.is_empty(), "the unlocked join spin violates the discipline");
    let racy = build(racy_program);
    let mut c = FtConfig::default();
    c.vm.quantum = 13;
    c.vm.quantum_jitter = 11;
    let races = FtJvm::new(racy, c).verify_r4a().expect("runs");
    assert!(!races.is_empty(), "the racy program must be flagged");
}

// ===== compact wire codec =====
//
// The compact codec changes only the log's *representation* (delta/varint
// bodies batched into one frame per flush); everything above the wire —
// record contents, replay order, exactly-once output — must be untouched.
// These tests re-run the failover coverage above under
// `WireCodec::Compact`.

fn compact_cfg(mode: ReplicationMode, fault: FaultPlan) -> FtConfig {
    FtConfig { codec: ftjvm_core::WireCodec::Compact, ..cfg(mode, fault) }
}

#[test]
fn compact_codec_failure_free_matches_fixed_and_shrinks_the_log() {
    for mode in MODES {
        for builder in [squares_program, nd_inputs_program, counter_program, file_program] {
            let program = build(builder);
            let fixed = FtJvm::new(program.clone(), cfg(mode, FaultPlan::None))
                .run_replicated()
                .expect("fixed run");
            let compact = FtJvm::new(program.clone(), compact_cfg(mode, FaultPlan::None))
                .run_replicated()
                .expect("compact run");
            assert_eq!(compact.console(), fixed.console(), "{mode}");
            // Identical event counts (Table 2 is codec-independent)...
            assert_eq!(
                compact.primary_stats.messages_logged(),
                fixed.primary_stats.messages_logged(),
                "{mode}"
            );
            assert_eq!(
                compact.primary_stats.lock_acq_records, fixed.primary_stats.lock_acq_records,
                "{mode}"
            );
            // ...but fewer bytes and far fewer channel messages.
            assert!(
                compact.primary_stats.bytes_logged < fixed.primary_stats.bytes_logged,
                "{mode}: {} !< {}",
                compact.primary_stats.bytes_logged,
                fixed.primary_stats.bytes_logged
            );
            assert!(compact.channel.messages_sent <= fixed.channel.messages_sent, "{mode}");
        }
    }
}

#[test]
fn compact_codec_recovery_exactly_once_mid_run() {
    for mode in MODES {
        for builder in [squares_program, counter_program, file_program] {
            let program = build(builder);
            let expected = reference(&program);
            for fault in [
                FaultPlan::AfterInstructions(40),
                FaultPlan::AfterInstructions(400),
                FaultPlan::BeforeOutput(0),
                FaultPlan::BeforeOutput(2),
                FaultPlan::AfterOutput(0),
                FaultPlan::AfterOutput(3),
            ] {
                let report = FtJvm::new(program.clone(), compact_cfg(mode, fault))
                    .run_with_failure()
                    .unwrap_or_else(|e| panic!("compact {mode} {fault:?}: {e}"));
                assert_eq!(report.console(), expected, "compact {mode} {fault:?}");
                report
                    .check_no_duplicate_outputs()
                    .unwrap_or_else(|id| panic!("compact {mode} {fault:?}: duplicate {id}"));
            }
        }
    }
}

#[test]
fn compact_codec_sweep_failure_points() {
    for mode in MODES {
        let program = build(file_program);
        let expected = reference(&program);
        for k in (10..2000).step_by(151) {
            let report =
                FtJvm::new(program.clone(), compact_cfg(mode, FaultPlan::AfterInstructions(k)))
                    .run_with_failure()
                    .unwrap_or_else(|e| panic!("compact {mode} k={k}: {e}"));
            assert_eq!(report.console(), expected, "compact {mode} k={k}");
            report.check_no_duplicate_outputs().expect("exactly-once");
            assert_eq!(
                report.world.borrow().file("journal.dat").unwrap(),
                b"entry!entry!entry!entry!entry!",
                "compact {mode} k={k}"
            );
        }
    }
}

#[test]
fn compact_codec_batch_boundaries_do_not_change_recovery() {
    // The flush threshold decides where batch frames split; any split must
    // decode identically because the delta context spans frames. Threshold
    // 0 degenerates to one-record batches; a large one to a single batch.
    // (The reference is computed per threshold: flush policy changes
    // simulated time, which nd_inputs_program's clock natives observe.)
    for mode in MODES {
        let program = build(nd_inputs_program);
        let deterministic = build(file_program);
        let expected = reference(&deterministic);
        for threshold in [0usize, 24, 256, 1 << 20] {
            let mut free = compact_cfg(mode, FaultPlan::None);
            free.flush_threshold = threshold;
            let free_console =
                FtJvm::new(program.clone(), free).run_replicated().expect("runs").console();
            let mut c = compact_cfg(mode, FaultPlan::AfterOutput(1));
            c.flush_threshold = threshold;
            let report = FtJvm::new(program.clone(), c)
                .run_with_failure()
                .unwrap_or_else(|e| panic!("compact {mode} thr={threshold}: {e}"));
            assert!(report.crashed);
            let console = report.console();
            assert_eq!(console.len(), 4, "compact {mode} thr={threshold}");
            // The performed prefix must match the primary's own trajectory.
            assert_eq!(&console[..2], &free_console[..2], "compact {mode} thr={threshold}");
            report.check_no_duplicate_outputs().expect("exactly-once");

            // A fully deterministic workload must match end to end at any
            // batch split.
            let mut d = compact_cfg(mode, FaultPlan::AfterInstructions(700));
            d.flush_threshold = threshold;
            let report = FtJvm::new(deterministic.clone(), d)
                .run_with_failure()
                .unwrap_or_else(|e| panic!("compact {mode} thr={threshold}: {e}"));
            assert_eq!(report.console(), expected, "compact {mode} thr={threshold}");
            report.check_no_duplicate_outputs().expect("exactly-once");
        }
    }
}

#[test]
fn compact_codec_native_result_se_state_stay_atomic() {
    // file_program's writes go through a side-effect handler: each logged
    // NativeResult is followed by an SeState snapshot, and the pair must
    // reach the backup in the same flush. Threshold 0 maximizes flush
    // pressure (every record crosses the threshold), so any atomicity bug
    // would split the pair at a batch boundary and corrupt recovery.
    for mode in MODES {
        let program = build(file_program);
        let expected = reference(&program);
        for k in (20..1200).step_by(89) {
            let mut c = compact_cfg(mode, FaultPlan::AfterInstructions(k));
            c.flush_threshold = 0;
            let report = FtJvm::new(program.clone(), c)
                .run_with_failure()
                .unwrap_or_else(|e| panic!("compact {mode} k={k}: {e}"));
            assert_eq!(report.console(), expected, "compact {mode} k={k}");
            assert_eq!(
                report.world.borrow().file("journal.dat").unwrap(),
                b"entry!entry!entry!entry!entry!",
                "compact {mode} k={k}"
            );
            report.check_no_duplicate_outputs().expect("exactly-once");
        }
    }
}

#[test]
fn compact_codec_unflushed_suffix_still_recovers() {
    for mode in MODES {
        let program = build(squares_program);
        let expected = reference(&program);
        let mut c = compact_cfg(mode, FaultPlan::AfterFlush(0));
        c.vm.cost.net = ftjvm_netsim::NetParams::default();
        let report = FtJvm::new(program, c).run_with_failure().expect("failover");
        assert!(report.crashed);
        assert_eq!(report.console(), expected, "compact {mode}");
        report.check_no_duplicate_outputs().expect("exactly-once");
    }
}

#[test]
fn compact_codec_handles_natives_and_interval_locks() {
    // Locks acquired inside native methods (phased_native_program) and the
    // interval-compressed lock variant both ride the compact codec.
    for mode in MODES {
        let program = build(phased_native_program);
        for k in [300u64, 4000] {
            let report =
                FtJvm::new(program.clone(), compact_cfg(mode, FaultPlan::AfterInstructions(k)))
                    .run_with_failure()
                    .unwrap_or_else(|e| panic!("compact {mode} k={k}: {e}"));
            assert_eq!(report.console(), vec!["3024"], "compact {mode} k={k}");
        }
    }
    let program = build(counter_program);
    let mut c = compact_cfg(ReplicationMode::LockSync, FaultPlan::AfterInstructions(1500));
    c.lock_variant = ftjvm_core::LockVariant::Intervals;
    let report = FtJvm::new(program, c).run_with_failure().expect("failover");
    assert_eq!(report.console(), vec!["240"]);
    report.check_no_duplicate_outputs().expect("exactly-once");
}
