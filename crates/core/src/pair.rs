//! Pair-as-value: one replicated primary/backup pair as a resumable
//! state machine.
//!
//! [`PairTask`] owns everything a single pair needs — the two
//! [`Replica`]s, the heartbeat monitor, the checkpoint bookkeeping, the
//! snapshot assembler — and exposes a poll-style
//! [`step`](PairTask::step): *run until your local clock reaches the
//! target instant or something notable happens, then yield a
//! [`PairEvent`]*. The legacy single-pair drivers
//! ([`ReplicaRuntime::run_cold`] and friends) are thin wrappers that step
//! a task to completion in one go and are pinned byte-identical to the
//! pre-refactor monolithic loops by `tests/pair_equivalence.rs`; a fleet
//! scheduler ([`crate::fleet`]) multiplexes hundreds of tasks on one
//! global timeline by stepping each in bounded increments.
//!
//! Granularity contract (load-bearing for byte-identity):
//!
//! * **Hot and checkpointed states** execute *exactly one* legacy loop
//!   iteration per internal pass — a [`SLICE_UNITS`] primary slice, the
//!   receive/pump step, then the epoch bookkeeping — so interleaving
//!   them more finely or coarsely from outside cannot change the
//!   simulated timeline.
//! * **Cold states** run the primary with one coarse `run_to_end` call,
//!   exactly as the legacy cold driver did. Slicing a cold primary would
//!   perturb the thread-scheduling technique's per-consult progress
//!   accounting and change frame timing, so the `until` target is
//!   deliberately ignored there.

use crate::backup::EpochStore;
use crate::codec::{frame_is_heartbeat, frame_is_snapshot_chunk, SnapshotAssembler};
use crate::ftjvm::PairReport;
use crate::runtime::{
    observe_heartbeats, CheckpointPlan, CheckpointReport, LagBudget, Replica, ReplicaRuntime,
    SLICE_UNITS,
};
use crate::stats::ReplicationStats;
use bytes::Bytes;
use ftjvm_netsim::{ChannelStats, FaultPlan, HeartbeatMonitor, SimTime};
use ftjvm_vm::{RunOutcome, RunReport, SharedWorld, SliceOutcome, VmError, World};

/// What a [`PairTask::step`] call observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairEvent {
    /// The local clock reached the step target; the pair is still running.
    Running {
        /// The pair-local instant after the step.
        now: SimTime,
    },
    /// The primary fail-stopped; failover ran (detection, promotion, and
    /// suffix replay are complete — the measured latencies are in the
    /// report). The next step returns [`PairEvent::Done`].
    PrimaryCrashed {
        /// The pair-local crash instant.
        at: SimTime,
    },
    /// The checkpoint plan killed the backup (the primary has not noticed
    /// yet — its reverse-heartbeat detector is still counting down).
    BackupKilled {
        /// The pair-local kill instant.
        at: SimTime,
    },
    /// The primary's detector declared the backup dead: output commits
    /// stop waiting for acknowledgments.
    Degraded {
        /// The pair-local degraded-entry instant.
        at: SimTime,
    },
    /// A replacement standby finished state transfer and went live; the
    /// pair is 1-fault tolerant again.
    Reintegrated {
        /// The pair-local reintegration instant.
        at: SimTime,
    },
    /// The run is over and the report is ready
    /// ([`PairTask::into_pair_report`]).
    Done,
}

/// The phase a [`PairTask`] is in. Each variant owns exactly the state
/// the corresponding legacy driver kept in local variables.
// One task exists per pair and lives on the heap behind the fleet's
// slot vector; boxing the report-sized replay variant would only add an
// indirection to a non-hot path.
#[allow(clippy::large_enum_variant)]
enum TaskState {
    /// Cold pair: primary runs to completion/crash in one coarse step.
    ColdRun { primary: Box<Replica> },
    /// Cold pair after a crash: the drained log awaits replay.
    ColdReplay {
        primary_report: RunReport,
        primary_stats: ReplicationStats,
        channel_stats: ChannelStats,
        frames: Vec<Bytes>,
        detection_latency: SimTime,
    },
    /// Hot pair mid co-simulation.
    HotRun {
        primary: Box<Replica>,
        backup: Box<Replica>,
        monitor: HeartbeatMonitor,
        backup_report: Option<RunReport>,
    },
    /// Checkpointed hot pair mid co-simulation (kill/degraded/reintegrate
    /// machinery live).
    CkptRun {
        primary: Box<Replica>,
        standby: Standby,
        monitor: HeartbeatMonitor,
        backup_report: Option<RunReport>,
        assembler: SnapshotAssembler,
        units_run: u64,
        degraded_deadline: Option<SimTime>,
        ack_base: u64,
    },
    /// Checkpointed cold pair: durable epoch store absorbing the stream.
    ColdCkptRun { primary: Box<Replica>, store: EpochStore, monitor: HeartbeatMonitor },
    /// Report ready.
    Finished,
    /// A step returned an error; the task is poisoned.
    Failed,
}

/// The backup half of a checkpointed run, as the driver sees it.
enum Standby {
    /// A live hot standby consuming the stream.
    Live(Box<Replica>),
    /// Killed, with no replacement recruited (yet).
    Dead,
    /// State transfer in progress: record frames buffer here until the
    /// snapshot chunks assemble and the replacement comes up.
    Transfer(Vec<(SimTime, Bytes)>),
}

/// One replicated pair as a resumable value: replicas, links, failure
/// detection, and checkpoint state in a single owned task.
pub struct PairTask {
    rt: ReplicaRuntime,
    world: SharedWorld,
    plan: CheckpointPlan,
    state: TaskState,
    backup_killed_at: Option<SimTime>,
    degraded_entered_at: Option<SimTime>,
    reintegrated_at: Option<SimTime>,
    report: Option<PairReport>,
}

impl std::fmt::Debug for PairTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let phase = match &self.state {
            TaskState::ColdRun { .. } => "cold-run",
            TaskState::ColdReplay { .. } => "cold-replay",
            TaskState::HotRun { .. } => "hot-run",
            TaskState::CkptRun { .. } => "ckpt-run",
            TaskState::ColdCkptRun { .. } => "cold-ckpt-run",
            TaskState::Finished => "finished",
            TaskState::Failed => "failed",
        };
        f.debug_struct("PairTask").field("phase", &phase).field("now", &self.now()).finish()
    }
}

impl PairTask {
    /// A cold pair: store-only backup, whole-log replay at failover.
    ///
    /// # Errors
    /// Propagates program-loading errors.
    pub fn cold(rt: ReplicaRuntime, fault: FaultPlan) -> Result<Self, VmError> {
        let world = World::shared();
        let primary = Box::new(rt.build_primary(&world, fault)?);
        Ok(PairTask::with_state(
            rt,
            world,
            CheckpointPlan { fault, ..CheckpointPlan::default() },
            TaskState::ColdRun { primary },
        ))
    }

    /// A hot pair: primary and streaming standby co-simulated.
    ///
    /// # Errors
    /// Propagates program-loading errors.
    pub fn hot(rt: ReplicaRuntime, fault: FaultPlan) -> Result<Self, VmError> {
        let world = World::shared();
        let primary = Box::new(rt.build_primary(&world, fault)?);
        let backup = Box::new(rt.build_hot_backup(&world)?);
        let monitor = rt.cfg().detector.monitor(SimTime::ZERO);
        Ok(PairTask::with_state(
            rt,
            world,
            CheckpointPlan { fault, ..CheckpointPlan::default() },
            TaskState::HotRun { primary, backup, monitor, backup_report: None },
        ))
    }

    /// A checkpointed hot pair under `plan` (backup kill, degraded mode,
    /// re-integration).
    ///
    /// # Errors
    /// Returns an error when [`crate::FtConfig::checkpoint_interval`] is
    /// unset, and propagates program-loading errors.
    pub fn checkpointed(rt: ReplicaRuntime, plan: CheckpointPlan) -> Result<Self, VmError> {
        if rt.cfg().checkpoint_interval.is_none() {
            return Err(VmError::Internal(
                "run_checkpointed requires FtConfig::checkpoint_interval".into(),
            ));
        }
        let world = World::shared();
        let primary = Box::new(rt.build_primary(&world, plan.fault)?);
        let standby = Standby::Live(Box::new(rt.build_hot_backup(&world)?));
        let monitor = rt.cfg().detector.monitor(SimTime::ZERO);
        Ok(PairTask::with_state(
            rt,
            world,
            plan,
            TaskState::CkptRun {
                primary,
                standby,
                monitor,
                backup_report: None,
                assembler: SnapshotAssembler::new(),
                units_run: 0,
                degraded_deadline: None,
                ack_base: 0,
            },
        ))
    }

    /// A checkpointed cold pair: durable [`EpochStore`] backup,
    /// snapshot-restored recovery.
    ///
    /// # Errors
    /// Returns an error when [`crate::FtConfig::checkpoint_interval`] is
    /// unset, and propagates program-loading errors.
    pub fn cold_checkpointed(rt: ReplicaRuntime, fault: FaultPlan) -> Result<Self, VmError> {
        if rt.cfg().checkpoint_interval.is_none() {
            return Err(VmError::Internal(
                "run_cold_checkpointed requires FtConfig::checkpoint_interval".into(),
            ));
        }
        let world = World::shared();
        let primary = Box::new(rt.build_primary(&world, fault)?);
        let store = EpochStore::new();
        let monitor = rt.cfg().detector.monitor(SimTime::ZERO);
        Ok(PairTask::with_state(
            rt,
            world,
            CheckpointPlan { fault, ..CheckpointPlan::default() },
            TaskState::ColdCkptRun { primary, store, monitor },
        ))
    }

    /// Builds the task variant the runtime's configuration selects, as
    /// [`ReplicaRuntime::run_pair`] does — with `plan`'s kill and
    /// re-integration machinery applied when the configuration is a
    /// checkpointed hot pair.
    ///
    /// # Errors
    /// Propagates construction errors from the selected variant.
    pub fn from_config(rt: ReplicaRuntime, plan: CheckpointPlan) -> Result<Self, VmError> {
        match (rt.cfg().lag_budget, rt.cfg().checkpoint_interval) {
            (LagBudget::Cold, None) => PairTask::cold(rt, plan.fault),
            (LagBudget::Cold, Some(_)) => PairTask::cold_checkpointed(rt, plan.fault),
            (LagBudget::Hot, None) => PairTask::hot(rt, plan.fault),
            (LagBudget::Hot, Some(_)) => PairTask::checkpointed(rt, plan),
        }
    }

    fn with_state(
        rt: ReplicaRuntime,
        world: SharedWorld,
        plan: CheckpointPlan,
        state: TaskState,
    ) -> Self {
        PairTask {
            rt,
            world,
            plan,
            state,
            backup_killed_at: None,
            degraded_entered_at: None,
            reintegrated_at: None,
            report: None,
        }
    }

    /// The pair-local instant the task has reached (the primary's clock
    /// while it lives; the final report's latest clock once finished).
    pub fn now(&self) -> SimTime {
        match &self.state {
            TaskState::ColdRun { primary }
            | TaskState::HotRun { primary, .. }
            | TaskState::CkptRun { primary, .. }
            | TaskState::ColdCkptRun { primary, .. } => primary.now(),
            TaskState::ColdReplay { primary_report, .. } => primary_report.acct.now(),
            TaskState::Finished | TaskState::Failed => self
                .report
                .as_ref()
                .map(|r| {
                    let backup_end =
                        r.backup.as_ref().map(|b| b.acct.now()).unwrap_or(SimTime::ZERO);
                    r.primary.acct.now().max(backup_end)
                })
                .unwrap_or(SimTime::ZERO),
        }
    }

    /// True once the report is ready and further steps return
    /// [`PairEvent::Done`].
    pub fn is_done(&self) -> bool {
        matches!(self.state, TaskState::Finished)
    }

    /// Advances the pair until its local clock reaches `until`, a state
    /// transition happens, or the run completes. Pass [`SimTime::MAX`] to
    /// run to the next transition regardless of time.
    ///
    /// # Errors
    /// Propagates fatal VM errors from either replica; the task is
    /// poisoned afterwards (subsequent steps keep failing).
    pub fn step(&mut self, until: SimTime) -> Result<PairEvent, VmError> {
        match std::mem::replace(&mut self.state, TaskState::Failed) {
            TaskState::Finished => {
                self.state = TaskState::Finished;
                Ok(PairEvent::Done)
            }
            TaskState::Failed => Err(VmError::Internal("stepping a failed pair task".into())),
            TaskState::ColdRun { primary } => self.step_cold(primary),
            TaskState::ColdReplay {
                primary_report,
                primary_stats,
                channel_stats,
                frames,
                detection_latency,
            } => self.step_cold_replay(
                primary_report,
                primary_stats,
                channel_stats,
                frames,
                detection_latency,
            ),
            TaskState::HotRun { primary, backup, monitor, backup_report } => {
                self.step_hot(primary, backup, monitor, backup_report, until)
            }
            TaskState::CkptRun {
                primary,
                standby,
                monitor,
                backup_report,
                assembler,
                units_run,
                degraded_deadline,
                ack_base,
            } => self.step_ckpt(
                CkptState {
                    primary,
                    standby,
                    monitor,
                    backup_report,
                    assembler,
                    units_run,
                    degraded_deadline,
                    ack_base,
                },
                until,
            ),
            TaskState::ColdCkptRun { primary, store, monitor } => {
                self.step_cold_ckpt(primary, store, monitor, until)
            }
        }
    }

    /// Steps the task to completion (the legacy single-pair drivers).
    ///
    /// # Errors
    /// Propagates the first step error.
    pub fn run_to_completion(mut self) -> Result<Self, VmError> {
        while !self.is_done() {
            self.step(SimTime::MAX)?;
        }
        Ok(self)
    }

    /// Consumes the task, returning the pair report.
    ///
    /// # Errors
    /// Returns an error if the task has not finished.
    pub fn into_pair_report(self) -> Result<PairReport, VmError> {
        self.report.ok_or_else(|| VmError::Internal("pair task has no report yet".into()))
    }

    /// Consumes the task, returning the checkpointed-run report (the pair
    /// report plus the kill/degraded/reintegration timeline).
    ///
    /// # Errors
    /// Returns an error if the task has not finished.
    pub fn into_checkpoint_report(self) -> Result<CheckpointReport, VmError> {
        let backup_killed_at = self.backup_killed_at;
        let degraded_entered_at = self.degraded_entered_at;
        let reintegrated_at = self.reintegrated_at;
        let pair = self.into_pair_report()?;
        Ok(CheckpointReport {
            pair,
            backup_killed_at,
            degraded_entered_at,
            reintegrated_at,
            reintegrated: reintegrated_at.is_some(),
        })
    }

    /// The finished report, if the run is over.
    pub fn report(&self) -> Option<&PairReport> {
        self.report.as_ref()
    }

    /// The kill/degraded/reintegration timeline observed so far.
    pub fn checkpoint_timeline(&self) -> (Option<SimTime>, Option<SimTime>, Option<SimTime>) {
        (self.backup_killed_at, self.degraded_entered_at, self.reintegrated_at)
    }

    // --- Cold ------------------------------------------------------------

    fn step_cold(&mut self, mut primary: Box<Replica>) -> Result<PairEvent, VmError> {
        let primary_report = primary.run_to_end()?;
        let crashed = primary_report.outcome == RunOutcome::Stopped;
        if crashed {
            // Fail-stop: the primary's volatile environment state is lost
            // with its process; the external world survives.
            primary.fail_env();
        }
        let (mut channel, primary_stats) = primary.into_primary_parts()?;
        if !crashed {
            let channel_stats = channel.stats();
            self.report = Some(PairReport {
                primary: primary_report,
                primary_stats,
                crashed: false,
                backup: None,
                backup_stats: None,
                detection_latency: SimTime::ZERO,
                recovery_replay_time: SimTime::ZERO,
                failover_latency: SimTime::ZERO,
                channel: channel_stats,
                world: self.world.clone(),
            });
            self.state = TaskState::Finished;
            return Ok(PairEvent::Done);
        }
        let crash_at = primary_report.acct.now();
        let drained = channel.drain();
        let channel_stats = channel.stats();
        // Failure detection from the heartbeats the backup actually
        // received: the detector's deadline re-arms at each heartbeat
        // arrival and fires when the next one never comes.
        let mut monitor = self.rt.cfg().detector.monitor(SimTime::ZERO);
        let detection_at = observe_heartbeats(&mut monitor, &drained).max(crash_at);
        let detection_latency = detection_at - crash_at;
        let frames: Vec<Bytes> = drained.into_iter().map(|(_, b)| b).collect();
        self.state = TaskState::ColdReplay {
            primary_report,
            primary_stats,
            channel_stats,
            frames,
            detection_latency,
        };
        Ok(PairEvent::PrimaryCrashed { at: crash_at })
    }

    fn step_cold_replay(
        &mut self,
        primary_report: RunReport,
        primary_stats: ReplicationStats,
        channel_stats: ChannelStats,
        frames: Vec<Bytes>,
        detection_latency: SimTime,
    ) -> Result<PairEvent, VmError> {
        let (backup_report, backup_stats, recovered_at) =
            self.rt.replay_log(&self.world, frames)?;
        let recovery_replay_time = recovered_at.unwrap_or_else(|| backup_report.acct.now());
        // Cold backups pay the replay at failover; the legacy warm flag
        // models a backup that already replayed everything flushed, so
        // only detection remains.
        let failover_latency = if self.rt.cfg().warm_backup {
            detection_latency
        } else {
            detection_latency + recovery_replay_time
        };
        self.report = Some(PairReport {
            primary: primary_report,
            primary_stats,
            crashed: true,
            backup: Some(backup_report),
            backup_stats: Some(backup_stats),
            detection_latency,
            recovery_replay_time,
            failover_latency,
            channel: channel_stats,
            world: self.world.clone(),
        });
        self.state = TaskState::Finished;
        Ok(PairEvent::Done)
    }

    // --- Hot -------------------------------------------------------------

    fn step_hot(
        &mut self,
        mut primary: Box<Replica>,
        mut backup: Box<Replica>,
        mut monitor: HeartbeatMonitor,
        mut backup_report: Option<RunReport>,
        until: SimTime,
    ) -> Result<PairEvent, VmError> {
        // Co-simulation: slice the primary, deliver what arrived, let the
        // backup consume it until it starves, repeat.
        let (primary_report, crashed) = loop {
            let outcome = primary.step(SLICE_UNITS)?;
            let now_p = primary.now();
            let ready = primary.recv_ready(now_p)?;
            pump_backup(&mut backup, &mut monitor, ready, &mut backup_report)?;
            match outcome {
                SliceOutcome::Budget => {
                    if now_p >= until {
                        self.state = TaskState::HotRun { primary, backup, monitor, backup_report };
                        return Ok(PairEvent::Running { now: now_p });
                    }
                }
                SliceOutcome::Paused => {
                    return Err(VmError::Internal("primary paused without a feeder".into()));
                }
                SliceOutcome::Completed(r) => break (r, false),
                SliceOutcome::Stopped(r) => break (r, true),
            }
        };

        let crash_at = primary_report.acct.now();
        if crashed {
            // Fail-stop: the primary's volatile environment state is lost
            // with its process; the external world survives.
            primary.fail_env();
        }
        let (mut channel, primary_stats) = primary.into_primary_parts()?;
        // Everything flushed *and verified in order* is delivered; records
        // still in the primary's buffer — and, on a lossy link, frames
        // beyond an unresolved gap — are lost with it (longest verified
        // frame prefix).
        pump_backup(&mut backup, &mut monitor, channel.drain(), &mut backup_report)?;
        let channel_stats = channel.stats();

        if !crashed {
            // Failure-free: the primary finished; the stream is over. The
            // standby replays the remainder quietly (every output was
            // performed by the primary, so replay suppresses them all).
            backup.finish_stream();
            let backup_report = match backup_report {
                Some(r) => r,
                None => backup.run_to_end()?,
            };
            self.report = Some(PairReport {
                primary: primary_report,
                primary_stats,
                crashed: false,
                backup: Some(backup_report),
                backup_stats: Some(backup.backup_stats()),
                detection_latency: SimTime::ZERO,
                recovery_replay_time: SimTime::ZERO,
                failover_latency: SimTime::ZERO,
                channel: channel_stats,
                world: self.world.clone(),
            });
            self.state = TaskState::Finished;
            return Ok(PairEvent::Done);
        }

        // Crash: detection fires when the heartbeat deadline lapses —
        // measured on the arrival timeline, not computed from the crash
        // instant (which no one observes).
        let detection_at = monitor.deadline().max(crash_at);
        let detection_latency = detection_at - crash_at;
        // Promotion: the backup learns of the failure at the detection
        // instant and becomes the authority.
        backup.wait_until(detection_at);
        let promoted_at = backup.now();
        backup.finish_stream();
        let backup_report = match backup_report {
            Some(r) => r,
            None => backup.run_to_end()?,
        };
        let recovered_at =
            backup.recovery_completed_at().unwrap_or_else(|| backup_report.acct.now());
        // Only the unconsumed suffix of the log remains to replay.
        let suffix_replay =
            if recovered_at > promoted_at { recovered_at - promoted_at } else { SimTime::ZERO };
        self.report = Some(PairReport {
            primary: primary_report,
            primary_stats,
            crashed: true,
            backup: Some(backup_report),
            backup_stats: Some(backup.backup_stats()),
            detection_latency,
            recovery_replay_time: suffix_replay,
            failover_latency: detection_latency + suffix_replay,
            channel: channel_stats,
            world: self.world.clone(),
        });
        self.state = TaskState::Finished;
        Ok(PairEvent::PrimaryCrashed { at: crash_at })
    }

    // --- Checkpointed hot ------------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn step_ckpt(&mut self, mut st: CkptState, until: SimTime) -> Result<PairEvent, VmError> {
        let (primary_report, crashed) = loop {
            let outcome = st.primary.step(SLICE_UNITS)?;
            st.units_run += SLICE_UNITS;
            let now_p = st.primary.now();
            let mut killed_now = false;
            let mut degraded_now = false;
            let reintegrated_before = self.reintegrated_at;

            // Scheduled backup kill: fail-stop at a slice boundary. The
            // primary only learns of it when the reverse-heartbeat
            // deadline lapses below.
            if let Some(kill) = self.plan.kill_backup_after_units {
                if self.backup_killed_at.is_none()
                    && st.units_run >= kill
                    && matches!(st.standby, Standby::Live(_))
                {
                    if let Standby::Live(mut dead) =
                        std::mem::replace(&mut st.standby, Standby::Dead)
                    {
                        dead.fail_env();
                    }
                    self.backup_killed_at = Some(now_p);
                    st.degraded_deadline = Some(self.rt.cfg().detector.monitor(now_p).deadline());
                    st.backup_report = None;
                    killed_now = true;
                }
            }

            // Degraded-mode entry once the reverse detector fires.
            if let (Some(deadline), None) = (st.degraded_deadline, self.degraded_entered_at) {
                if now_p >= deadline {
                    st.primary.enter_degraded();
                    self.degraded_entered_at = Some(deadline);
                    degraded_now = true;
                }
            }

            // Recruit a replacement once degraded: force-cut a fresh
            // epoch (retried until the VM is at a cuttable boundary) and
            // start the state transfer on a fresh channel.
            if self.plan.reintegrate
                && self.degraded_entered_at.is_some()
                && matches!(st.standby, Standby::Dead)
                && st.primary.begin_state_transfer(self.rt.make_channel())?
            {
                st.ack_base = st.primary.snapshot_epoch();
                st.assembler = SnapshotAssembler::new();
                st.standby = Standby::Transfer(Vec::new());
            }

            let ready = st.primary.recv_ready(now_p)?;
            st.standby = deliver(
                &self.rt,
                st.standby,
                ready,
                &mut st.assembler,
                &mut st.monitor,
                &mut st.backup_report,
                &mut self.reintegrated_at,
                &self.world,
            )?;
            if let Standby::Live(b) = &st.standby {
                st.primary.relay_epoch_ack(st.ack_base + b.epochs_absorbed());
                if self.reintegrated_at.is_some() {
                    st.primary.exit_degraded();
                }
            }

            match outcome {
                SliceOutcome::Budget => {
                    st.primary.try_cut_epoch()?;
                    // Yield on milestones (latest wins) or on reaching the
                    // step target; otherwise keep iterating.
                    let event = if self.reintegrated_at != reintegrated_before {
                        Some(PairEvent::Reintegrated { at: self.reintegrated_at.unwrap_or(now_p) })
                    } else if degraded_now {
                        Some(PairEvent::Degraded { at: self.degraded_entered_at.unwrap_or(now_p) })
                    } else if killed_now {
                        Some(PairEvent::BackupKilled { at: now_p })
                    } else if now_p >= until {
                        Some(PairEvent::Running { now: now_p })
                    } else {
                        None
                    };
                    if let Some(event) = event {
                        self.state = TaskState::CkptRun {
                            primary: st.primary,
                            standby: st.standby,
                            monitor: st.monitor,
                            backup_report: st.backup_report,
                            assembler: st.assembler,
                            units_run: st.units_run,
                            degraded_deadline: st.degraded_deadline,
                            ack_base: st.ack_base,
                        };
                        return Ok(event);
                    }
                }
                SliceOutcome::Paused => {
                    return Err(VmError::Internal("primary paused without a feeder".into()));
                }
                SliceOutcome::Completed(r) => break (r, false),
                SliceOutcome::Stopped(r) => break (r, true),
            }
        };

        let crash_at = primary_report.acct.now();
        if crashed {
            st.primary.fail_env();
        }
        let (mut channel, primary_stats) = st.primary.into_primary_parts()?;
        let drained = channel.drain();
        let channel_stats = channel.stats();
        // Takeover delivery: the state transfer may complete during the
        // drain (chunks already on the wire when the primary died).
        let standby = deliver(
            &self.rt,
            st.standby,
            drained,
            &mut st.assembler,
            &mut st.monitor,
            &mut st.backup_report,
            &mut self.reintegrated_at,
            &self.world,
        )?;

        self.report = Some(match standby {
            Standby::Live(mut b) => {
                if !crashed {
                    b.finish_stream();
                    let br = match st.backup_report.take() {
                        Some(r) => r,
                        None => b.run_to_end()?,
                    };
                    PairReport {
                        primary: primary_report,
                        primary_stats,
                        crashed: false,
                        backup: Some(br),
                        backup_stats: Some(b.backup_stats()),
                        detection_latency: SimTime::ZERO,
                        recovery_replay_time: SimTime::ZERO,
                        failover_latency: SimTime::ZERO,
                        channel: channel_stats,
                        world: self.world.clone(),
                    }
                } else {
                    let detection_at = st.monitor.deadline().max(crash_at);
                    let detection_latency = detection_at - crash_at;
                    b.wait_until(detection_at);
                    let promoted_at = b.now();
                    b.finish_stream();
                    let br = match st.backup_report.take() {
                        Some(r) => r,
                        None => b.run_to_end()?,
                    };
                    let recovered_at = b.recovery_completed_at().unwrap_or_else(|| br.acct.now());
                    let suffix_replay = if recovered_at > promoted_at {
                        recovered_at - promoted_at
                    } else {
                        SimTime::ZERO
                    };
                    PairReport {
                        primary: primary_report,
                        primary_stats,
                        crashed: true,
                        backup: Some(br),
                        backup_stats: Some(b.backup_stats()),
                        detection_latency,
                        recovery_replay_time: suffix_replay,
                        failover_latency: detection_latency + suffix_replay,
                        channel: channel_stats,
                        world: self.world.clone(),
                    }
                }
            }
            // No survivor standby: either the plan killed it without
            // re-integration, or the transfer never completed. If the
            // primary also crashed, this run exceeded the 1-fault model;
            // report what happened.
            Standby::Dead | Standby::Transfer(_) => PairReport {
                primary: primary_report,
                primary_stats,
                crashed,
                backup: None,
                backup_stats: None,
                detection_latency: SimTime::ZERO,
                recovery_replay_time: SimTime::ZERO,
                failover_latency: SimTime::ZERO,
                channel: channel_stats,
                world: self.world.clone(),
            },
        });
        self.state = TaskState::Finished;
        Ok(if crashed { PairEvent::PrimaryCrashed { at: crash_at } } else { PairEvent::Done })
    }

    // --- Checkpointed cold -----------------------------------------------

    fn step_cold_ckpt(
        &mut self,
        mut primary: Box<Replica>,
        mut store: EpochStore,
        mut monitor: HeartbeatMonitor,
        until: SimTime,
    ) -> Result<PairEvent, VmError> {
        let (primary_report, crashed) = loop {
            let outcome = primary.step(SLICE_UNITS)?;
            let now_p = primary.now();
            for (arrival, frame) in primary.recv_ready(now_p)? {
                if frame_is_heartbeat(&frame) {
                    monitor.observe(arrival);
                }
                store.absorb(frame)?;
            }
            primary.relay_epoch_ack(store.epochs_stored);
            match outcome {
                SliceOutcome::Budget => {
                    if primary.try_cut_epoch()? {
                        primary.ship_latest_snapshot()?;
                    }
                    if now_p >= until {
                        self.state = TaskState::ColdCkptRun { primary, store, monitor };
                        return Ok(PairEvent::Running { now: now_p });
                    }
                }
                SliceOutcome::Paused => {
                    return Err(VmError::Internal("primary paused without a feeder".into()));
                }
                SliceOutcome::Completed(r) => break (r, false),
                SliceOutcome::Stopped(r) => break (r, true),
            }
        };

        let crash_at = primary_report.acct.now();
        if crashed {
            primary.fail_env();
        }
        let (mut channel, primary_stats) = primary.into_primary_parts()?;
        let drained = channel.drain();
        let channel_stats = channel.stats();
        for (arrival, frame) in drained {
            if frame_is_heartbeat(&frame) {
                monitor.observe(arrival);
            }
            store.absorb(frame)?;
        }
        let store_peak = store.peak_frames;
        if !crashed {
            self.report = Some(PairReport {
                primary: primary_report,
                primary_stats,
                crashed: false,
                backup: None,
                backup_stats: None,
                detection_latency: SimTime::ZERO,
                recovery_replay_time: SimTime::ZERO,
                failover_latency: SimTime::ZERO,
                channel: channel_stats,
                world: self.world.clone(),
            });
            self.state = TaskState::Finished;
            return Ok(PairEvent::Done);
        }
        let detection_at = monitor.deadline().max(crash_at);
        let detection_latency = detection_at - crash_at;
        let (snapshot, suffix) = store.into_recovery();
        let (backup_report, mut backup_stats, recovery_replay_time) = match snapshot {
            Some((_epoch, blob)) => {
                // Snapshot-based recovery: restore, replay the stored
                // suffix, promote.
                let mut b = self.rt.build_resumed_backup(&self.world, &blob)?;
                b.feed_frames_bulk(detection_at, suffix, self.rt.cfg().replay_threads)?;
                b.finish_stream();
                let r = b.run_to_end()?;
                let recovered = b.recovery_completed_at().unwrap_or_else(|| r.acct.now());
                let replay =
                    if recovered > detection_at { recovered - detection_at } else { SimTime::ZERO };
                let stats = b.backup_stats();
                (r, stats, replay)
            }
            None => {
                // No epoch completed before the crash: classic cold
                // replay from the initial state.
                let (r, stats, recovered_at) = self.rt.replay_log(&self.world, suffix)?;
                let replay = recovered_at.unwrap_or_else(|| r.acct.now());
                (r, stats, replay)
            }
        };
        backup_stats.peak_backup_pending = backup_stats.peak_backup_pending.max(store_peak);
        self.report = Some(PairReport {
            primary: primary_report,
            primary_stats,
            crashed: true,
            backup: Some(backup_report),
            backup_stats: Some(backup_stats),
            detection_latency,
            recovery_replay_time,
            failover_latency: detection_latency + recovery_replay_time,
            channel: channel_stats,
            world: self.world.clone(),
        });
        self.state = TaskState::Finished;
        Ok(PairEvent::PrimaryCrashed { at: crash_at })
    }
}

/// The owned loop state of a checkpointed hot pair, bundled so
/// [`PairTask::step_ckpt`] stays readable.
struct CkptState {
    primary: Box<Replica>,
    standby: Standby,
    monitor: HeartbeatMonitor,
    backup_report: Option<RunReport>,
    assembler: SnapshotAssembler,
    units_run: u64,
    degraded_deadline: Option<SimTime>,
    ack_base: u64,
}

/// Routes delivered frames to the standby per its state: a live standby
/// consumes them (streaming replay); a dead one loses them (they were
/// addressed to a failed host); during state transfer, snapshot chunks
/// assemble — completion brings the replacement up at the final chunk's
/// arrival instant and replays the buffered suffix — and everything else
/// buffers behind the snapshot.
#[allow(clippy::too_many_arguments)]
fn deliver(
    rt: &ReplicaRuntime,
    standby: Standby,
    delivered: Vec<(SimTime, Bytes)>,
    assembler: &mut SnapshotAssembler,
    monitor: &mut HeartbeatMonitor,
    backup_report: &mut Option<RunReport>,
    reintegrated_at: &mut Option<SimTime>,
    world: &SharedWorld,
) -> Result<Standby, VmError> {
    match standby {
        Standby::Live(mut b) => {
            pump_backup(&mut b, monitor, delivered, backup_report)?;
            Ok(Standby::Live(b))
        }
        Standby::Dead => Ok(Standby::Dead),
        Standby::Transfer(mut buffered) => {
            let mut live: Option<Box<Replica>> = None;
            let mut iter = delivered.into_iter();
            for (arrival, frame) in iter.by_ref() {
                if frame_is_snapshot_chunk(&frame) {
                    let done = assembler
                        .offer(&frame)
                        .map_err(|e| VmError::Internal(format!("snapshot transfer: {e}")))?;
                    if let Some((_epoch, blob)) = done {
                        let mut nb = Box::new(rt.build_resumed_backup(world, &blob)?);
                        nb.wait_until(arrival);
                        *monitor = rt.cfg().detector.monitor(arrival);
                        *backup_report = None;
                        *reintegrated_at = Some(arrival);
                        let seeded = std::mem::take(&mut buffered);
                        pump_backup(&mut nb, monitor, seeded, backup_report)?;
                        live = Some(nb);
                        break;
                    }
                } else {
                    buffered.push((arrival, frame));
                }
            }
            match live {
                Some(mut b) => {
                    let rest: Vec<(SimTime, Bytes)> = iter.collect();
                    pump_backup(&mut b, monitor, rest, backup_report)?;
                    Ok(Standby::Live(b))
                }
                None => Ok(Standby::Transfer(buffered)),
            }
        }
    }
}

/// Feeds delivered `(arrival, frame)` pairs into a hot backup, re-arming
/// the failure detector at each heartbeat arrival, then lets the backup
/// replay until it catches up with the log (starves) or finishes.
pub(crate) fn pump_backup(
    backup: &mut Replica,
    monitor: &mut HeartbeatMonitor,
    delivered: Vec<(SimTime, Bytes)>,
    done: &mut Option<RunReport>,
) -> Result<(), VmError> {
    if delivered.is_empty() {
        return Ok(());
    }
    for (arrival, frame) in delivered {
        if backup.feed_frame(arrival, frame)? > 0 {
            monitor.observe(arrival);
        }
    }
    if done.is_some() {
        return Ok(());
    }
    backup.poll_suspended();
    match backup.step(u64::MAX)? {
        SliceOutcome::Paused => {}
        SliceOutcome::Completed(r) | SliceOutcome::Stopped(r) => *done = Some(r),
        SliceOutcome::Budget => {
            Err(VmError::Internal("unbounded backup slice exhausted its budget".into()))?;
        }
    }
    Ok(())
}
