//! The replication log records and their wire encoding.
//!
//! Four record families carry everything the backup needs (paper §4):
//!
//! * [`Record::IdMap`] — `(l_id, t_id, t_asn)`: the primary lazily assigns
//!   virtual lock ids on first acquisition and tells the backup which
//!   thread/acquisition assigned each id;
//! * [`Record::LockAcq`] — `(t_id, t_asn, l_id, l_asn)`: one per monitor
//!   acquisition under replicated lock synchronization;
//! * [`Record::Sched`] — `(br_cnt, pc_off, mon_cnt, l_asn, t_id)` plus the
//!   preempted thread and method (a documented widening of the paper's
//!   5-tuple, see `DESIGN.md` §6): one per application-to-application
//!   context switch under replicated thread scheduling;
//! * [`Record::NativeResult`] / [`Record::OutputCommit`] /
//!   [`Record::SeState`] — non-deterministic native results, output-commit
//!   points, and side-effect-handler state.
//!
//! Thread ids on the wire are [`VtPath`] ordinal chains — raw thread
//! indices are meaningless across replicas (§4.2).

use bytes::Bytes;
use ftjvm_netsim::{WireError, WireReader, WireWriter};
use ftjvm_vm::{Value, VtPath};

/// Error produced when a replica-local reference value reaches the log
/// (restriction R2: pointers are meaningless at the other replica).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefNotLoggable;

impl std::fmt::Display for RefNotLoggable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("reference values cannot cross the replication log (R2)")
    }
}

impl std::error::Error for RefNotLoggable {}

/// A value crossing the wire in a logged native result. References cannot
/// be logged (restriction R2: a native returning a replica-local pointer is
/// non-deterministic output the protocol cannot mask).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireValue {
    /// Null.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Double(f64),
}

impl WireValue {
    /// Converts a VM value, rejecting references.
    ///
    /// # Errors
    /// Returns [`RefNotLoggable`] for reference values (an R2 violation
    /// the primary must surface, not silently log).
    pub fn from_value(v: Value) -> Result<WireValue, RefNotLoggable> {
        match v {
            Value::Null => Ok(WireValue::Null),
            Value::Int(i) => Ok(WireValue::Int(i)),
            Value::Double(d) => Ok(WireValue::Double(d)),
            Value::Ref(_) => Err(RefNotLoggable),
        }
    }

    /// Converts back to a VM value.
    pub fn to_value(self) -> Value {
        match self {
            WireValue::Null => Value::Null,
            WireValue::Int(i) => Value::Int(i),
            WireValue::Double(d) => Value::Double(d),
        }
    }

    fn encode(self, w: &mut WireWriter) {
        match self {
            WireValue::Null => w.put_u8(0),
            WireValue::Int(i) => {
                w.put_u8(1);
                w.put_i64(i);
            }
            WireValue::Double(d) => {
                w.put_u8(2);
                w.put_f64(d);
            }
        }
    }

    fn decode(r: &mut WireReader) -> Result<WireValue, WireError> {
        match r.get_u8()? {
            0 => Ok(WireValue::Null),
            1 => Ok(WireValue::Int(r.get_i64()?)),
            2 => Ok(WireValue::Double(r.get_f64()?)),
            _ => Err(WireError::new("wire value tag")),
        }
    }
}

/// The result of a logged native call.
#[derive(Debug, Clone, PartialEq)]
pub enum LoggedResult {
    /// Normal completion with an optional return value.
    Ok(Option<WireValue>),
    /// Abort (exception) with code and message.
    Err {
        /// Application-visible code.
        code: i64,
        /// Diagnostic message.
        msg: String,
    },
}

/// One record in the primary-to-backup log.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// Virtual-lock-id assignment: thread `t`'s `t_asn`-th acquisition
    /// named the lock `l_id`.
    IdMap {
        /// Assigned virtual lock id.
        l_id: u64,
        /// Assigning thread.
        t: VtPath,
        /// The assigning acquisition's thread sequence number (1-based).
        t_asn: u64,
    },
    /// One replicated lock acquisition.
    LockAcq {
        /// Acquiring thread.
        t: VtPath,
        /// Thread acquire sequence number after this acquisition.
        t_asn: u64,
        /// Virtual lock id.
        l_id: u64,
        /// Lock acquire sequence number after this acquisition.
        l_asn: u64,
    },
    /// One replicated scheduling decision: `t` was descheduled at the given
    /// progress point and `next` runs next.
    Sched {
        /// The preempted thread.
        t: VtPath,
        /// Control-flow changes `t` had executed.
        br_cnt: u64,
        /// Method id of `t`'s innermost frame (paper infers this from log
        /// position; carried explicitly for robustness).
        method: u32,
        /// Bytecode offset of the PC within that method.
        pc_off: u32,
        /// Monitor acquisitions + releases `t` had performed.
        mon_cnt: u64,
        /// If `t` yielded on a monitor operation, that monitor's acquire
        /// sequence number at preemption (wake-order consistency check);
        /// 0 otherwise.
        l_asn: u64,
        /// True if `t` was preempted while inside a native method (replay
        /// then runs the native until `mon_cnt` matches, §4.2).
        in_native: bool,
        /// The thread scheduled next.
        next: VtPath,
    },
    /// Logged outcome of a non-deterministic native call (§4.1).
    NativeResult {
        /// Calling thread.
        t: VtPath,
        /// 1-based sequence number of this ND call within `t`.
        seq: u64,
        /// FNV-1a hash of the native's signature name (divergence check
        /// against the backup's own hash table).
        sig_hash: u64,
        /// Return value or exception.
        result: LoggedResult,
        /// Mutated array arguments (index, contents).
        out_args: Vec<(u8, Vec<WireValue>)>,
    },
    /// Output commit: the primary is about to perform output `output_id`
    /// from thread `t` (its `seq`-th output).
    OutputCommit {
        /// Outputting thread.
        t: VtPath,
        /// 1-based sequence number of this output within `t`.
        seq: u64,
        /// Globally unique output id.
        output_id: u64,
    },
    /// A *lock interval* (the DejaVu-style compression the paper's related
    /// work discusses): `count` globally-consecutive monitor acquisitions,
    /// all performed by thread `t`, starting at its acquisition number
    /// `t_asn_start`. Replaces `count` individual [`Record::LockAcq`]
    /// records (and all id maps) under
    /// [`crate::ftjvm::LockVariant::Intervals`].
    LockInterval {
        /// The acquiring thread.
        t: VtPath,
        /// `t`'s thread acquire sequence number at the first acquisition of
        /// the interval (1-based).
        t_asn_start: u64,
        /// Number of consecutive acquisitions.
        count: u64,
    },
    /// A failure-detector heartbeat (the paper adds a system thread for
    /// failure detection; heartbeats ride the same channel as log
    /// records). Carries the primary's current simulated instant.
    Heartbeat {
        /// Sender's simulated clock, in nanoseconds.
        now_ns: u64,
    },
    /// Opaque side-effect-handler state (handler id + payload), produced by
    /// the handler's `log` method and consumed by `receive`.
    SeState {
        /// Registered handler id.
        handler: u8,
        /// Handler-defined payload.
        payload: Bytes,
    },
}

impl std::fmt::Display for Record {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Record::IdMap { l_id, t, t_asn } => {
                write!(f, "id-map       lock {l_id} assigned by {t} at t_asn {t_asn}")
            }
            Record::LockAcq { t, t_asn, l_id, l_asn } => {
                write!(f, "lock-acq     {t} t_asn={t_asn} lock={l_id} l_asn={l_asn}")
            }
            Record::Sched { t, br_cnt, method, pc_off, mon_cnt, l_asn, in_native, next } => write!(
                f,
                "sched        {t} br={br_cnt} m{method}@{pc_off} mon={mon_cnt} l_asn={l_asn}{} -> {next}",
                if *in_native { " [in-native]" } else { "" }
            ),
            Record::NativeResult { t, seq, result, out_args, .. } => write!(
                f,
                "nd-result    {t} #{seq} {} ({} out-args)",
                match result {
                    LoggedResult::Ok(Some(v)) => format!("ok {v:?}"),
                    LoggedResult::Ok(None) => "ok".into(),
                    LoggedResult::Err { code, .. } => format!("err {code}"),
                },
                out_args.len()
            ),
            Record::OutputCommit { t, seq, output_id } => {
                write!(f, "output-commit {t} #{seq} id={output_id}")
            }
            Record::LockInterval { t, t_asn_start, count } => {
                write!(f, "lock-interval {t} t_asn {t_asn_start}..+{count}")
            }
            Record::Heartbeat { now_ns } => write!(f, "heartbeat    t={now_ns}ns"),
            Record::SeState { handler, payload } => {
                write!(f, "se-state     handler {handler}, {} bytes", payload.len())
            }
        }
    }
}

/// FNV-1a hash of a native signature name.
pub fn sig_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn put_vt(w: &mut WireWriter, vt: &VtPath) {
    w.put_u32_seq(vt.ordinals());
}

fn get_vt(r: &mut WireReader) -> Result<VtPath, WireError> {
    let ords = r.get_u32_seq()?;
    if ords.is_empty() {
        return Err(WireError::new("empty thread id"));
    }
    Ok(VtPath::from_ordinals(ords))
}

impl Record {
    /// Upper bound on the fixed encoding's size, so [`Record::encode`] can
    /// allocate once.
    fn fixed_size_hint(&self) -> usize {
        let vt = |t: &VtPath| 4 + 4 * t.ordinals().len();
        match self {
            Record::IdMap { t, .. } => 17 + vt(t),
            Record::LockAcq { t, .. } => 25 + vt(t),
            Record::Sched { t, next, .. } => 34 + vt(t) + vt(next),
            Record::NativeResult { t, result, out_args, .. } => {
                let result = match result {
                    LoggedResult::Ok(None) => 2,
                    LoggedResult::Ok(Some(_)) => 11,
                    LoggedResult::Err { msg, .. } => 14 + msg.len(),
                };
                let args: usize = out_args.iter().map(|(_, vals)| 5 + 9 * vals.len()).sum();
                21 + vt(t) + result + 4 + args
            }
            Record::OutputCommit { t, .. } => 17 + vt(t),
            Record::LockInterval { t, .. } => 17 + vt(t),
            Record::Heartbeat { .. } => 9,
            Record::SeState { payload, .. } => 6 + payload.len(),
        }
    }

    /// Encodes the record into one wire frame.
    pub fn encode(&self) -> Bytes {
        let mut w = WireWriter::with_capacity(self.fixed_size_hint());
        match self {
            Record::IdMap { l_id, t, t_asn } => {
                w.put_u8(1);
                w.put_u64(*l_id);
                put_vt(&mut w, t);
                w.put_u64(*t_asn);
            }
            Record::LockAcq { t, t_asn, l_id, l_asn } => {
                w.put_u8(2);
                put_vt(&mut w, t);
                w.put_u64(*t_asn);
                w.put_u64(*l_id);
                w.put_u64(*l_asn);
            }
            Record::Sched { t, br_cnt, method, pc_off, mon_cnt, l_asn, in_native, next } => {
                w.put_u8(3);
                put_vt(&mut w, t);
                w.put_u64(*br_cnt);
                w.put_u32(*method);
                w.put_u32(*pc_off);
                w.put_u64(*mon_cnt);
                w.put_u64(*l_asn);
                w.put_u8(*in_native as u8);
                put_vt(&mut w, next);
            }
            Record::NativeResult { t, seq, sig_hash, result, out_args } => {
                w.put_u8(4);
                put_vt(&mut w, t);
                w.put_u64(*seq);
                w.put_u64(*sig_hash);
                match result {
                    LoggedResult::Ok(v) => {
                        w.put_u8(0);
                        match v {
                            Some(v) => {
                                w.put_u8(1);
                                v.encode(&mut w);
                            }
                            None => w.put_u8(0),
                        }
                    }
                    LoggedResult::Err { code, msg } => {
                        w.put_u8(1);
                        w.put_i64(*code);
                        w.put_str(msg);
                    }
                }
                w.put_u32(out_args.len() as u32);
                for (idx, contents) in out_args {
                    w.put_u8(*idx);
                    w.put_u32(contents.len() as u32);
                    for v in contents {
                        v.encode(&mut w);
                    }
                }
            }
            Record::OutputCommit { t, seq, output_id } => {
                w.put_u8(5);
                put_vt(&mut w, t);
                w.put_u64(*seq);
                w.put_u64(*output_id);
            }
            Record::Heartbeat { now_ns } => {
                w.put_u8(8);
                w.put_u64(*now_ns);
            }
            Record::LockInterval { t, t_asn_start, count } => {
                w.put_u8(7);
                put_vt(&mut w, t);
                w.put_u64(*t_asn_start);
                w.put_u64(*count);
            }
            Record::SeState { handler, payload } => {
                w.put_u8(6);
                w.put_u8(*handler);
                w.put_bytes(payload);
            }
        }
        w.finish()
    }

    /// Decodes one wire frame.
    ///
    /// # Errors
    /// Returns [`WireError`] on truncated or malformed frames.
    pub fn decode(frame: Bytes) -> Result<Record, WireError> {
        let mut r = WireReader::new(frame);
        let rec = match r.get_u8()? {
            1 => Record::IdMap { l_id: r.get_u64()?, t: get_vt(&mut r)?, t_asn: r.get_u64()? },
            2 => Record::LockAcq {
                t: get_vt(&mut r)?,
                t_asn: r.get_u64()?,
                l_id: r.get_u64()?,
                l_asn: r.get_u64()?,
            },
            3 => Record::Sched {
                t: get_vt(&mut r)?,
                br_cnt: r.get_u64()?,
                method: r.get_u32()?,
                pc_off: r.get_u32()?,
                mon_cnt: r.get_u64()?,
                l_asn: r.get_u64()?,
                in_native: r.get_u8()? != 0,
                next: get_vt(&mut r)?,
            },
            4 => {
                let t = get_vt(&mut r)?;
                let seq = r.get_u64()?;
                let sig_hash = r.get_u64()?;
                let result = match r.get_u8()? {
                    0 => {
                        if r.get_u8()? == 1 {
                            LoggedResult::Ok(Some(WireValue::decode(&mut r)?))
                        } else {
                            LoggedResult::Ok(None)
                        }
                    }
                    1 => LoggedResult::Err { code: r.get_i64()?, msg: r.get_str()? },
                    _ => return Err(WireError::new("logged result tag")),
                };
                let n = r.get_u32()? as usize;
                let mut out_args = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    let idx = r.get_u8()?;
                    let len = r.get_u32()? as usize;
                    if len > r.remaining() {
                        return Err(WireError::new("out-arg length"));
                    }
                    let mut contents = Vec::with_capacity(len);
                    for _ in 0..len {
                        contents.push(WireValue::decode(&mut r)?);
                    }
                    out_args.push((idx, contents));
                }
                Record::NativeResult { t, seq, sig_hash, result, out_args }
            }
            5 => Record::OutputCommit {
                t: get_vt(&mut r)?,
                seq: r.get_u64()?,
                output_id: r.get_u64()?,
            },
            6 => Record::SeState { handler: r.get_u8()?, payload: r.get_bytes()? },
            7 => Record::LockInterval {
                t: get_vt(&mut r)?,
                t_asn_start: r.get_u64()?,
                count: r.get_u64()?,
            },
            8 => Record::Heartbeat { now_ns: r.get_u64()? },
            _ => return Err(WireError::new("record tag")),
        };
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rec: Record) {
        let decoded = Record::decode(rec.encode()).expect("decodes");
        assert_eq!(decoded, rec);
    }

    #[test]
    fn roundtrip_all_kinds() {
        let t = VtPath::root().child(2);
        roundtrip(Record::IdMap { l_id: 9, t: t.clone(), t_asn: 3 });
        roundtrip(Record::LockAcq { t: t.clone(), t_asn: 4, l_id: 9, l_asn: 17 });
        roundtrip(Record::Sched {
            t: t.clone(),
            br_cnt: 1_000_000,
            method: 3,
            pc_off: 42,
            mon_cnt: 88,
            l_asn: 5,
            in_native: true,
            next: VtPath::root(),
        });
        roundtrip(Record::NativeResult {
            t: t.clone(),
            seq: 7,
            sig_hash: sig_hash("sys.clock"),
            result: LoggedResult::Ok(Some(WireValue::Int(-5))),
            out_args: vec![(1, vec![WireValue::Int(104), WireValue::Null, WireValue::Double(2.5)])],
        });
        roundtrip(Record::NativeResult {
            t: t.clone(),
            seq: 8,
            sig_hash: 1,
            result: LoggedResult::Err { code: 12, msg: "write to unknown descriptor".into() },
            out_args: vec![],
        });
        roundtrip(Record::LockInterval { t: t.clone(), t_asn_start: 5, count: 900 });
        roundtrip(Record::Heartbeat { now_ns: 123_456 });
        roundtrip(Record::OutputCommit { t, seq: 2, output_id: 41 });
        roundtrip(Record::SeState { handler: 3, payload: Bytes::from_static(b"state") });
    }

    #[test]
    fn lock_record_stays_small() {
        // The paper reports 36-byte lock-acquisition messages; ours must be
        // in the same ballpark for a shallow thread.
        let rec =
            Record::LockAcq { t: VtPath::root().child(1), t_asn: 1000, l_id: 12, l_asn: 4000 };
        let len = rec.encode().len();
        assert!(len <= 48, "lock record is {len} bytes");
    }

    #[test]
    fn refs_are_rejected_by_wirevalue() {
        use ftjvm_vm::ObjRef;
        assert_eq!(WireValue::from_value(Value::Ref(ObjRef::from_index(1))), Err(RefNotLoggable));
        assert_eq!(WireValue::from_value(Value::Int(5)), Ok(WireValue::Int(5)));
    }

    #[test]
    fn sig_hash_distinguishes_names() {
        assert_ne!(sig_hash("sys.clock"), sig_hash("sys.rand"));
        assert_eq!(sig_hash("file.open"), sig_hash("file.open"));
    }

    #[test]
    fn malformed_frames_error() {
        assert!(Record::decode(Bytes::from_static(&[99])).is_err());
        assert!(Record::decode(Bytes::from_static(&[4, 1])).is_err());
        assert!(Record::decode(Bytes::new()).is_err());
    }
}
