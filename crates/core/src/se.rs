//! Side-effect (SE) handlers — the paper's novel interface for recovering
//! volatile environment state and guaranteeing exactly-once output (§4.4).
//!
//! A handler manages a family of related native methods (e.g. all file
//! I/O) through five methods, named exactly as in the paper:
//!
//! * [`SideEffectHandler::register`] — declares which native methods the
//!   handler manages;
//! * [`SideEffectHandler::log`] — called at the **primary** after one of
//!   the managed natives executes; returns a message with whatever state
//!   is needed to recover the output or the volatile state it created;
//! * [`SideEffectHandler::receive`] — called at the **backup** for each
//!   logged message; may *compress* (e.g. keep only the latest file offset
//!   rather than every write);
//! * [`SideEffectHandler::test`] — called at the backup during recovery to
//!   decide whether an *uncertain* output (committed, but possibly not
//!   performed before the crash) actually reached the environment;
//! * [`SideEffectHandler::restore`] — called exactly once at the backup to
//!   re-create the primary's lost volatile state (e.g. reopen files and
//!   seek to the recovered offsets).

use bytes::Bytes;
use ftjvm_netsim::{WireReader, WireWriter};
use ftjvm_vm::native::NativeOutcome;
use ftjvm_vm::{SimEnv, Value, World};
use std::collections::BTreeMap;

/// What a handler declares about itself.
#[derive(Debug, Clone)]
pub struct SeRegistration {
    /// Handler name (diagnostics).
    pub name: &'static str,
    /// Signature names of the natives this handler manages.
    pub natives: Vec<&'static str>,
}

/// A side-effect handler. See the module docs for the protocol; all
/// methods have defaults so simple handlers implement only what they need.
pub trait SideEffectHandler {
    /// Declares the handler's name and managed natives.
    fn register(&self) -> SeRegistration;

    /// Primary-side: called after a managed native executed. May return a
    /// state message to ship to the backup.
    fn log(
        &mut self,
        env: &SimEnv,
        native: &str,
        args: &[Value],
        outcome: &NativeOutcome,
        output_id: Option<u64>,
    ) -> Option<Bytes> {
        let _ = (env, native, args, outcome, output_id);
        None
    }

    /// Backup-side: absorbs (and may compress) one logged state message.
    fn receive(&mut self, payload: Bytes) {
        let _ = payload;
    }

    /// Backup-side: did the uncertain output `output_id` reach the
    /// environment before the crash? The default consults the world's
    /// applied-output registry, which is how both built-in handlers make
    /// their outputs *testable* (restriction R5).
    fn test(&self, world: &World, output_id: u64) -> bool {
        world.output_applied(output_id)
    }

    /// Backup-side: installs the recovered volatile state into this
    /// replica's environment. Invoked exactly once.
    fn restore(&mut self, env: &mut SimEnv) {
        let _ = env;
    }
}

/// The registry of side-effect handlers for one replica pair.
#[derive(Default)]
pub struct SeRegistry {
    handlers: Vec<Box<dyn SideEffectHandler>>,
    by_native: BTreeMap<String, u8>,
}

impl std::fmt::Debug for SeRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.handlers.iter().map(|h| h.register().name).collect();
        f.debug_struct("SeRegistry").field("handlers", &names).finish()
    }
}

impl SeRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SeRegistry::default()
    }

    /// The registry with the standard-library handlers installed (file
    /// I/O and console), as the paper's implementation installs its JRE
    /// handlers at startup.
    pub fn with_builtins() -> Self {
        let mut r = SeRegistry::new();
        r.add(Box::new(FileIoHandler::default()));
        r.add(Box::new(ConsoleHandler));
        r.add(Box::new(SocketHandler::default()));
        r
    }

    /// Adds a handler (applications add their own the same way).
    ///
    /// # Panics
    /// Panics if more than 255 handlers are registered or two handlers
    /// claim the same native.
    pub fn add(&mut self, handler: Box<dyn SideEffectHandler>) -> u8 {
        let id = u8::try_from(self.handlers.len()).expect("at most 255 side-effect handlers");
        let reg = handler.register();
        for n in &reg.natives {
            let prev = self.by_native.insert((*n).to_string(), id);
            assert!(prev.is_none(), "native `{n}` already managed by another handler");
        }
        self.handlers.push(handler);
        id
    }

    /// The handler id managing `native`, if any.
    pub fn handler_for(&self, native: &str) -> Option<u8> {
        self.by_native.get(native).copied()
    }

    /// Primary-side log hook; returns `(handler id, payload)` to ship.
    pub fn log(
        &mut self,
        env: &SimEnv,
        native: &str,
        args: &[Value],
        outcome: &NativeOutcome,
        output_id: Option<u64>,
    ) -> Option<(u8, Bytes)> {
        let id = self.handler_for(native)?;
        let payload = self.handlers[id as usize].log(env, native, args, outcome, output_id)?;
        Some((id, payload))
    }

    /// Backup-side receive hook.
    pub fn receive(&mut self, handler: u8, payload: Bytes) {
        if let Some(h) = self.handlers.get_mut(handler as usize) {
            h.receive(payload);
        }
    }

    /// Backup-side testable-output query for the native's handler; natives
    /// without a handler fall back to the world's applied registry.
    pub fn test(&self, native: &str, world: &World, output_id: u64) -> bool {
        match self.handler_for(native) {
            Some(id) => self.handlers[id as usize].test(world, output_id),
            None => world.output_applied(output_id),
        }
    }

    /// Backup-side restore: every handler installs its recovered state.
    pub fn restore(&mut self, env: &mut SimEnv) {
        for h in &mut self.handlers {
            h.restore(env);
        }
    }
}

/// Built-in handler for the `file.*` natives.
///
/// At the primary it logs, after every managed call, a compressed snapshot
/// of the volatile open-file table (descriptor, name, offset, plus the
/// next-descriptor counter). `receive` keeps only the latest snapshot —
/// the paper's example of compressing "the results of several file writes
/// into one offset for the file pointer". `restore` reopens every file at
/// its recovered offset.
#[derive(Debug, Default)]
pub struct FileIoHandler {
    latest: Option<Bytes>,
}

impl FileIoHandler {
    fn snapshot(env: &SimEnv) -> Bytes {
        let mut w = WireWriter::new();
        let files: Vec<(u64, String, u64)> =
            env.open_files().map(|(vfd, f)| (vfd, f.name.clone(), f.offset as u64)).collect();
        w.put_u64(env.peek_next_vfd());
        w.put_u32(files.len() as u32);
        for (vfd, name, offset) in files {
            w.put_u64(vfd);
            w.put_str(&name);
            w.put_u64(offset);
        }
        w.finish()
    }
}

impl SideEffectHandler for FileIoHandler {
    fn register(&self) -> SeRegistration {
        SeRegistration {
            name: "file-io",
            natives: vec![
                "file.open",
                "file.close",
                "file.read",
                "file.write",
                "file.seek",
                "file.size",
            ],
        }
    }

    fn log(
        &mut self,
        env: &SimEnv,
        _native: &str,
        _args: &[Value],
        _outcome: &NativeOutcome,
        _output_id: Option<u64>,
    ) -> Option<Bytes> {
        Some(Self::snapshot(env))
    }

    fn receive(&mut self, payload: Bytes) {
        // Compression: only the latest snapshot matters.
        self.latest = Some(payload);
    }

    fn restore(&mut self, env: &mut SimEnv) {
        let Some(payload) = self.latest.take() else { return };
        let mut r = WireReader::new(payload);
        let Ok(next_vfd) = r.get_u64() else { return };
        let Ok(n) = r.get_u32() else { return };
        for _ in 0..n {
            let (Ok(vfd), Ok(name), Ok(offset)) = (r.get_u64(), r.get_str(), r.get_u64()) else {
                return;
            };
            env.restore_open_file(vfd, &name, offset as usize);
        }
        env.set_next_vfd(next_vfd);
    }
}

/// Built-in handler for the `sock.*` natives — the paper's motivating
/// case for side-effect handlers: socket sends are not idempotent, so the
/// extra layer (a) tags each send with its committed output id, letting
/// the receiving side discard retransmissions (idempotence) and the
/// backup `test` whether an uncertain send was delivered (testability),
/// and (b) recovers the volatile connection table (descriptors +
/// per-connection send counts) via `log`/`receive`/`restore`, so a
/// recovered backup resumes the stream at the right sequence number.
#[derive(Debug, Default)]
pub struct SocketHandler {
    latest: Option<Bytes>,
}

impl SocketHandler {
    fn snapshot(env: &SimEnv) -> Bytes {
        let mut w = WireWriter::new();
        let socks: Vec<(u64, String, u64)> =
            env.open_sockets().map(|(sd, c)| (sd, c.peer.clone(), c.sent)).collect();
        w.put_u64(env.peek_next_sd());
        w.put_u32(socks.len() as u32);
        for (sd, peer, sent) in socks {
            w.put_u64(sd);
            w.put_str(&peer);
            w.put_u64(sent);
        }
        w.finish()
    }
}

impl SideEffectHandler for SocketHandler {
    fn register(&self) -> SeRegistration {
        SeRegistration { name: "socket", natives: vec!["sock.connect", "sock.send", "sock.close"] }
    }

    fn log(
        &mut self,
        env: &SimEnv,
        _native: &str,
        _args: &[Value],
        _outcome: &NativeOutcome,
        _output_id: Option<u64>,
    ) -> Option<Bytes> {
        Some(Self::snapshot(env))
    }

    fn receive(&mut self, payload: Bytes) {
        self.latest = Some(payload);
    }

    fn restore(&mut self, env: &mut SimEnv) {
        let Some(payload) = self.latest.take() else { return };
        let mut r = WireReader::new(payload);
        let Ok(next_sd) = r.get_u64() else { return };
        let Ok(n) = r.get_u32() else { return };
        for _ in 0..n {
            let (Ok(sd), Ok(peer), Ok(sent)) = (r.get_u64(), r.get_str(), r.get_u64()) else {
                return;
            };
            env.restore_socket(sd, &peer, sent);
        }
        env.set_next_sd(next_sd);
    }
}

/// Built-in handler for console output (`sys.print`, `sys.print_int`).
///
/// Console output creates no volatile state, so `log`/`receive`/`restore`
/// are no-ops; the handler exists to make console output *testable*
/// through the default `test`.
#[derive(Debug)]
pub struct ConsoleHandler;

impl SideEffectHandler for ConsoleHandler {
    fn register(&self) -> SeRegistration {
        SeRegistration { name: "console", natives: vec!["sys.print", "sys.print_int"] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftjvm_netsim::SimTime;

    #[test]
    fn registry_routes_by_native() {
        let r = SeRegistry::with_builtins();
        assert_eq!(r.handler_for("file.open"), Some(0));
        assert_eq!(r.handler_for("sys.print"), Some(1));
        assert_eq!(r.handler_for("sock.send"), Some(2));
        assert_eq!(r.handler_for("sys.clock"), None);
    }

    #[test]
    #[should_panic(expected = "already managed")]
    fn duplicate_native_claims_panic() {
        let mut r = SeRegistry::with_builtins();
        r.add(Box::new(ConsoleHandler));
    }

    #[test]
    fn file_handler_snapshot_roundtrip() {
        let world = World::shared();
        let mut penv = SimEnv::new("p", world.clone(), SimTime::ZERO, 1);
        let fd1 = penv.open("a.txt", None);
        let fd2 = penv.open("b.txt", None);
        penv.write(fd1, b"hello", 1).unwrap();
        penv.seek(fd2, 3).unwrap();

        let mut h = FileIoHandler::default();
        let snap = FileIoHandler::snapshot(&penv);
        h.receive(snap);

        let mut benv = SimEnv::new("b", world, SimTime::ZERO, 2);
        h.restore(&mut benv);
        assert_eq!(benv.offset(fd1), Some(5));
        assert_eq!(benv.offset(fd2), Some(3));
        // Fresh descriptors do not collide with anything the primary used.
        let fd3 = benv.open("c.txt", None);
        assert!(fd3 > fd2);
    }

    #[test]
    fn test_defaults_to_world_applied_registry() {
        let world = World::shared();
        world.borrow_mut().println(7, "p", "x");
        let r = SeRegistry::with_builtins();
        assert!(r.test("sys.print", &world.borrow(), 7));
        assert!(!r.test("sys.print", &world.borrow(), 8));
        assert!(r.test("unmanaged.native", &world.borrow(), 7));
    }

    #[test]
    fn compression_keeps_only_latest() {
        let mut h = FileIoHandler::default();
        h.receive(Bytes::from_static(b"old"));
        h.receive(Bytes::from_static(b"new"));
        assert_eq!(h.latest.as_deref(), Some(&b"new"[..]));
    }
}
