//! The primary-side replication runtime and the two primary coordinators.
//!
//! [`PrimaryCore`] implements everything both techniques share: the
//! buffered record log and its flush policy, the non-deterministic
//! native-method interception (§4.1), output commit with pessimistic
//! acknowledgment waits (§3.4), side-effect-handler `log` upcalls (§4.4),
//! and fail-stop fault injection. On top of it:
//!
//! * [`LockSyncPrimary`] logs an id map on first acquisition and a lock
//!   acquisition record on every monitor acquisition (§4.2, *Replicated
//!   Lock Synchronization*);
//! * [`TsPrimary`] charges the per-instruction progress bookkeeping and
//!   logs a thread-schedule record whenever the scheduler switches between
//!   two application threads (§4.2, *Replicated Thread Scheduling*).

use crate::backup::{Control, RecvWindow};
use crate::codec::{
    build_batch_frame, build_epoch_frame, build_vote_frame, flush_digest, frame_digest, seal_frame,
    RecordEncoder,
};
use crate::records::{sig_hash, LoggedResult, Record, WireValue};
use crate::se::SeRegistry;
use crate::stats::ReplicationStats;
use bytes::Bytes;
use ftjvm_netsim::{
    Category, ChannelStats, CostModel, FaultPlan, LossyChannel, NetFaultPlan, SimChannel, SimTime,
    TimeAccount, WireCodec, WireError, WireReader, WireWriter,
};

use ftjvm_vm::native::{NativeDecl, NativeOutcome};
use ftjvm_vm::{
    Coordinator, NativeDirective, ObjRef, StopReason, SwitchReason, ThreadObs, ThreadSnap, Value,
    VmError, VtPath,
};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// One unacknowledged sealed frame in the sender's sliding window.
#[derive(Debug)]
struct Unacked {
    sealed: Bytes,
    /// Next timeout-retransmission deadline.
    deadline: SimTime,
    /// Current retransmission timeout (doubles per expiry, capped).
    rto: SimTime,
    last_sent: SimTime,
}

/// Sender-side sliding-window retransmission buffer: every sealed frame
/// stays here until the receiver's cumulative ACK covers it; timeouts
/// back off exponentially, NACKs trigger prompt retransmission.
#[derive(Debug)]
pub struct SendWindow {
    next_seq: u64,
    window: BTreeMap<u64, Unacked>,
    rto_base: SimTime,
    rto_cap: SimTime,
    /// Minimum spacing between retransmissions of one frame (absorbs
    /// NACK bursts for the same gap).
    min_spacing: SimTime,
    /// Frames retransmitted (timeout- or NACK-triggered).
    pub retransmits: u64,
    /// Deepest the window ever got — with epoch checkpointing the
    /// pessimistic ack waits drain it at every output commit, so this
    /// stays bounded by one epoch's flushes.
    pub peak_outstanding: u64,
    /// Instant the most recent cumulative ACK was processed.
    last_ack_at: SimTime,
}

impl SendWindow {
    pub(crate) fn new(rto_base: SimTime) -> Self {
        SendWindow {
            next_seq: 0,
            window: BTreeMap::new(),
            rto_base,
            rto_cap: SimTime::from_nanos(rto_base.as_nanos().saturating_mul(32)),
            min_spacing: SimTime::from_nanos(rto_base.as_nanos() / 4),
            retransmits: 0,
            peak_outstanding: 0,
            last_ack_at: SimTime::ZERO,
        }
    }

    /// Seals `payload` with the next sequence number and starts tracking
    /// it; returns the sealed frame to put on the wire.
    pub(crate) fn track(&mut self, now: SimTime, payload: &[u8]) -> Bytes {
        let seq = self.next_seq;
        self.next_seq += 1;
        let sealed = seal_frame(seq, payload);
        self.window.insert(
            seq,
            Unacked {
                sealed: sealed.clone(),
                deadline: now + self.rto_base,
                rto: self.rto_base,
                last_sent: now,
            },
        );
        self.peak_outstanding = self.peak_outstanding.max(self.window.len() as u64);
        sealed
    }

    /// Applies one control message received at `at`; frames to retransmit
    /// now are appended to `resend`.
    pub(crate) fn on_control(&mut self, at: SimTime, ctrl: Control, resend: &mut Vec<Bytes>) {
        match ctrl {
            Control::Ack { next } => {
                self.window = self.window.split_off(&next);
                self.last_ack_at = self.last_ack_at.max(at);
            }
            Control::Nack { seq } => {
                if let Some(u) = self.window.get_mut(&seq) {
                    if at >= u.last_sent + self.min_spacing {
                        u.last_sent = at;
                        u.deadline = at + u.rto;
                        self.retransmits += 1;
                        resend.push(u.sealed.clone());
                    }
                }
            }
        }
    }

    /// The earliest pending timeout, if any frame is unacknowledged.
    fn next_deadline(&self) -> Option<SimTime> {
        // Matches `expired`: only the head-of-line frame owns a timer.
        self.window.values().next().map(|u| u.deadline)
    }

    /// Frames whose timeout fired at or before `now`; each has its RTO
    /// doubled (up to the cap) and its deadline pushed out.
    fn expired(&mut self, now: SimTime) -> Vec<Bytes> {
        // Only the lowest outstanding sequence can time out (as in TCP's
        // RTO of the first unacked segment). Later frames are often
        // already buffered at the receiver behind a gap — the cumulative
        // ack cannot say so, and retransmitting all of them on every gap
        // would collapse into go-back-N. Once the head is repaired the
        // cumulative ack clears the rest (or exposes the next true loss).
        let mut out = Vec::new();
        if let Some(u) = self.window.values_mut().next() {
            if u.deadline <= now {
                u.rto = SimTime::from_nanos(u.rto.as_nanos().saturating_mul(2)).min(self.rto_cap);
                u.last_sent = now;
                u.deadline = now + u.rto;
                self.retransmits += 1;
                out.push(u.sealed.clone());
            }
        }
        out
    }

    pub(crate) fn outstanding(&self) -> usize {
        self.window.len()
    }
}

/// The reliable-delivery sublayer, co-simulating both endpoints over one
/// lossy link: the primary's [`SendWindow`] and the backup's
/// [`RecvWindow`], plus the (reliable, tiny) reverse control path.
///
/// The primary drives it from its own simulated clock: every tick pumps
/// arrivals, control processing, and retransmission timeouts up to "now";
/// output commit spins the event loop forward until the window is empty
/// (the pessimistic ack wait). The backup side only ever consumes frames
/// this layer has verified and released in order.
#[derive(Debug)]
pub struct ReliableLink {
    link: LossyChannel,
    window: SendWindow,
    recv: RecvWindow,
    /// Control messages in flight on the reverse path, time-sorted.
    ctrl: VecDeque<(SimTime, Control)>,
    /// Sender CPU cost accrued by retransmissions since last collected.
    pending_cost: SimTime,
    ack_round_trips: u64,
}

impl ReliableLink {
    /// Builds the sublayer over a lossy link. The base RTO is derived
    /// from the link parameters (≈2× a loaded round trip).
    pub fn new(link: LossyChannel) -> Self {
        let p = link.params();
        let rtt = p.propagation + p.propagation + p.per_message + p.recv_per_message + p.ack_cost;
        // Base timeout: two RTTs of slack plus four times the plan's
        // jitter bound, so delay variance alone cannot fire the timer.
        let jitter = link.plan().jitter;
        let rto_base = rtt + rtt + SimTime::from_nanos(jitter.as_nanos().saturating_mul(4));
        ReliableLink {
            link,
            window: SendWindow::new(rto_base),
            recv: RecvWindow::new(),
            ctrl: VecDeque::new(),
            pending_cost: SimTime::ZERO,
            ack_round_trips: 0,
        }
    }

    /// Seals, tracks, and transmits one frame; returns the sender CPU cost.
    pub fn send(&mut self, now: SimTime, payload: Bytes) -> SimTime {
        let sealed = self.window.track(now, &payload);
        self.link.send(now, sealed)
    }

    fn push_ctrl(&mut self, at: SimTime, ctrl: Control) {
        let pos = self.ctrl.partition_point(|(t, _)| *t <= at);
        self.ctrl.insert(pos, (at, ctrl));
    }

    /// Advances the transport's event processing to `now`: delivers link
    /// arrivals into the receive window, turns around control messages,
    /// applies those that have arrived back, and fires due timeouts.
    pub fn pump(&mut self, now: SimTime) {
        loop {
            let mut progressed = false;
            let arrivals = self.link.recv_ready(now);
            for (at, raw) in arrivals {
                let mut ctrls = Vec::new();
                self.recv.offer(at, raw, &mut ctrls);
                let p = self.link.params();
                let reply_at = at + p.ack_cost + p.propagation;
                for c in ctrls {
                    self.push_ctrl(reply_at, c);
                }
                progressed = true;
            }
            let mut resend = Vec::new();
            while let Some(&(at, ctrl)) = self.ctrl.front() {
                if at > now {
                    break;
                }
                self.ctrl.pop_front();
                self.window.on_control(at, ctrl, &mut resend);
                progressed = true;
            }
            resend.extend(self.window.expired(now));
            for sealed in resend {
                self.pending_cost += self.link.send(now, sealed);
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
    }

    /// Takes the CPU cost retransmissions accrued since the last call, so
    /// the primary can charge it to its communication category.
    fn collect_cost(&mut self) -> SimTime {
        std::mem::take(&mut self.pending_cost)
    }

    /// Runs the event loop until every tracked frame is acknowledged,
    /// returning the instant the final ACK arrived — the pessimistic
    /// output-commit wait under a lossy link.
    pub fn ack_arrival(&mut self, now: SimTime) -> SimTime {
        self.ack_round_trips += 1;
        self.pump(now);
        let mut t = now;
        // Bounded for pathological plans (e.g. a partition window that
        // swallows every retransmission for a long stretch): each
        // iteration advances the simulated event horizon, so real plans
        // converge in a handful of rounds per lost frame.
        for _ in 0..1_000_000 {
            if self.window.outstanding() == 0 {
                break;
            }
            let next = [
                self.link.next_arrival(),
                self.ctrl.front().map(|(at, _)| *at),
                self.window.next_deadline(),
            ]
            .into_iter()
            .flatten()
            .min();
            let Some(nt) = next else { break };
            t = t.max(nt);
            self.pump(t);
        }
        self.window.last_ack_at.max(now)
    }

    /// Verified, in-order payloads released by the receive window up to
    /// `now` (pumping the transport first).
    pub fn recv_verified(&mut self, now: SimTime) -> Vec<(SimTime, Bytes)> {
        self.pump(now);
        self.recv.take_ready()
    }

    /// Takeover: every frame already on the wire still arrives, then the
    /// receive window keeps only the longest verified in-order prefix —
    /// frames buffered beyond an unresolved gap are discarded (§ the
    /// paper's epoch argument: equivalent to records lost in the crashed
    /// primary's buffer).
    pub fn drain_prefix(&mut self) -> Vec<(SimTime, Bytes)> {
        let mut ctrls = Vec::new();
        for (at, raw) in self.link.drain() {
            self.recv.offer(at, raw, &mut ctrls);
        }
        let (prefix, _discarded) = self.recv.take_prefix();
        prefix
    }

    /// Merged statistics: link-level counters plus the protocol counters
    /// from both window endpoints.
    pub fn stats(&self) -> ChannelStats {
        let mut s = self.link.stats();
        s.ack_round_trips = self.ack_round_trips;
        s.retransmits = self.window.retransmits;
        s.dup_deliveries = self.recv.dup_deliveries;
        s.corrupted_frames = self.recv.corrupted_frames;
        s.reordered = self.recv.reordered;
        s.nacks = self.recv.nacks;
        s
    }

    /// Frames still in flight on the forward link.
    pub fn in_flight_len(&self) -> usize {
        self.link.in_flight_len()
    }
}

/// The primary's log transport: either the paper's perfect FIFO channel
/// (frames travel bare) or the reliability sublayer over an adversarial
/// lossy link (frames travel sealed).
#[derive(Debug)]
pub enum LogChannel {
    /// Reliable FIFO — the paper's 100 Mbps dedicated-segment assumption.
    Perfect(SimChannel),
    /// Lossy datagram link plus seq/CRC/ack/nack/retransmit sublayer.
    Reliable(Box<ReliableLink>),
}

impl LogChannel {
    /// Sends one log frame, returning the sender-side CPU cost.
    pub fn send(&mut self, now: SimTime, payload: Bytes) -> SimTime {
        match self {
            LogChannel::Perfect(ch) => ch.send(now, payload),
            LogChannel::Reliable(link) => link.send(now, payload),
        }
    }

    /// The instant an acknowledgment of everything sent so far arrives
    /// back at the primary (the pessimistic output-commit wait). On the
    /// reliable transport this spins the retransmission event loop until
    /// the send window is empty.
    pub fn ack_arrival(&mut self, now: SimTime) -> SimTime {
        match self {
            LogChannel::Perfect(ch) => ch.ack_arrival(now),
            LogChannel::Reliable(link) => link.ack_arrival(now),
        }
    }

    /// Verified in-order payloads delivered by `now`, for a co-simulated
    /// hot standby.
    pub fn recv_ready(&mut self, now: SimTime) -> Vec<(SimTime, Bytes)> {
        match self {
            LogChannel::Perfect(ch) => ch.recv_ready(now),
            LogChannel::Reliable(link) => link.recv_verified(now),
        }
    }

    /// Takeover: delivers everything that will ever arrive. On the
    /// reliable transport this is the longest verified frame prefix.
    pub fn drain(&mut self) -> Vec<(SimTime, Bytes)> {
        match self {
            LogChannel::Perfect(ch) => ch.drain(),
            LogChannel::Reliable(link) => link.drain_prefix(),
        }
    }

    /// Frames still in flight toward the backup.
    pub fn in_flight_len(&self) -> usize {
        match self {
            LogChannel::Perfect(ch) => ch.in_flight_len(),
            LogChannel::Reliable(link) => link.in_flight_len(),
        }
    }

    /// Current send-side depth: in-flight frames on a perfect channel,
    /// unacknowledged frames in the sliding window on a reliable one.
    pub fn depth(&self) -> usize {
        match self {
            LogChannel::Perfect(ch) => ch.in_flight_len(),
            LogChannel::Reliable(link) => link.window.outstanding(),
        }
    }

    /// Aggregate channel statistics (fault and retransmission counters
    /// included on the reliable transport).
    pub fn stats(&self) -> ChannelStats {
        match self {
            LogChannel::Perfect(ch) => ch.stats(),
            LogChannel::Reliable(link) => link.stats(),
        }
    }

    /// Periodic transport maintenance: pump timers/acks up to `now` and
    /// return the retransmission CPU cost accrued since the last call.
    fn maintain(&mut self, now: SimTime) -> SimTime {
        match self {
            LogChannel::Perfect(_) => SimTime::ZERO,
            LogChannel::Reliable(link) => {
                link.pump(now);
                link.collect_cost()
            }
        }
    }

    /// Graceful-completion settle: the instant every outstanding frame is
    /// acknowledged (a crashing primary never calls this — its unacked
    /// frames are simply lost, like records still in its buffer).
    fn settle(&mut self, now: SimTime) -> SimTime {
        match self {
            LogChannel::Perfect(_) => now,
            LogChannel::Reliable(link) => {
                if link.window.outstanding() == 0 {
                    link.pump(now);
                    now
                } else {
                    link.ack_arrival(now)
                }
            }
        }
    }
}

/// Output-commit acknowledgment policy across a replica group's fan-out
/// links: how many standbys must acknowledge the flushed log before an
/// output may be performed (§3.4 generalized to k standbys).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AckPolicy {
    /// The fastest live standby's acknowledgment suffices.
    Any,
    /// A majority of live standbys (`n/2 + 1`) must acknowledge.
    Majority,
    /// Every live standby must acknowledge — the strictest policy and the
    /// single-backup pair's behavior, hence the default.
    #[default]
    All,
}

impl AckPolicy {
    /// Acknowledgments required out of `n` live links (the commit waits
    /// for the m-th smallest ack arrival). Zero when no links are live.
    pub fn required(self, n: usize) -> usize {
        match self {
            AckPolicy::Any => n.min(1),
            AckPolicy::Majority => {
                if n == 0 {
                    0
                } else {
                    n / 2 + 1
                }
            }
            AckPolicy::All => n,
        }
    }
}

/// Shared primary-side machinery.
pub struct PrimaryCore {
    channel: LogChannel,
    cost: CostModel,
    fault: FaultPlan,
    buffer: Vec<bytes::Bytes>,
    buffered_bytes: usize,
    /// Flush when this many bytes are buffered (also flushed at output
    /// commit and program exit — the paper's "periodically or on an output
    /// commit").
    pub flush_threshold: usize,
    /// Record encoding on the wire. Under [`WireCodec::Compact`] records
    /// are delta/varint-encoded at log time and a flush sends one batch
    /// frame instead of one message per record.
    codec: WireCodec,
    enc: RecordEncoder,
    crashed: bool,
    error: Option<VmError>,
    units: u64,
    flushes: u64,
    next_output_id: u64,
    heartbeat_interval: SimTime,
    next_heartbeat: SimTime,
    nd_seq: HashMap<VtPath, u64>,
    out_seq: HashMap<VtPath, u64>,
    se: SeRegistry,
    /// Epoch checkpointing: cut after this many flushes (`None` disables
    /// everything below — the default path is untouched).
    checkpoint_interval: Option<u64>,
    /// Epochs cut so far; epoch 0 is "before the first cut".
    epoch: u64,
    /// `flushes` value at the last cut, to schedule the next one.
    flushes_at_cut: u64,
    /// Record-bearing frames flushed since the last cut — the replay
    /// suffix a replacement backup needs on top of the latest snapshot.
    /// Truncated at every cut; empty unless checkpointing is enabled.
    retained: Vec<Bytes>,
    retained_bytes: usize,
    /// The snapshot taken at the most recent cut, keyed by its epoch.
    latest_snapshot: Option<(u64, Bytes)>,
    /// Latest side-effect-handler state payload per handler, captured so a
    /// cut can transplant volatile-state knowledge into the snapshot's
    /// extension section. Only maintained while checkpointing.
    last_se: HashMap<u8, Bytes>,
    /// Degraded mode: the backup is known dead, output commits stop
    /// waiting for acknowledgments (there is no one to wait for) and the
    /// uncovered outputs are counted.
    degraded: bool,
    /// Group fan-out: additional links to standbys beyond the first
    /// (`channel` is link 0). Empty in single-backup pair mode, where
    /// every loop below degenerates to the legacy single-channel path.
    fanout: Vec<LogChannel>,
    /// Liveness per link (index 0 = `channel`); dead links are skipped by
    /// sends, maintenance, and ack waits.
    link_live: Vec<bool>,
    /// Links whose record stream was byzantine-flipped at least once by
    /// this replica's own send path — their standby's digest votes can
    /// never match the claim, so vote gating excludes them.
    link_tainted: Vec<bool>,
    ack_policy: AckPolicy,
    /// BFT-lite voting: total matching digests (the primary's own claim
    /// included) required before an output releases. `None` disables the
    /// vote frames and the gating entirely.
    vote_quorum: Option<u32>,
    /// Byzantine fault injection applied by this replica's send path
    /// (bit flips after digest computation, before CRC sealing).
    byz_plan: Option<NetFaultPlan>,
    /// Index of the next record-bearing frame in this reign's broadcast
    /// stream; digest votes and byzantine flip decisions key off it.
    record_frame_index: u64,
    /// Honest per-frame digests of the flush currently being sent. One
    /// vote frame per flush covers the whole group — records and their
    /// side-effect snapshots verify (and release) atomically downstream.
    flush_claims: Vec<u32>,
    /// Aggregate statistics (Table 2 raw material).
    pub stats: ReplicationStats,
}

impl std::fmt::Debug for PrimaryCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrimaryCore")
            .field("crashed", &self.crashed)
            .field("stats", &self.stats)
            .finish()
    }
}

impl PrimaryCore {
    /// Creates the shared primary machinery over a perfect FIFO channel.
    pub fn new(channel: SimChannel, cost: CostModel, fault: FaultPlan, se: SeRegistry) -> Self {
        Self::with_transport(LogChannel::Perfect(channel), cost, fault, se)
    }

    /// Creates the shared primary machinery over an explicit transport
    /// (the runtime picks [`LogChannel::Reliable`] when a net-fault plan
    /// is armed).
    pub fn with_transport(
        channel: LogChannel,
        cost: CostModel,
        fault: FaultPlan,
        se: SeRegistry,
    ) -> Self {
        PrimaryCore {
            channel,
            cost,
            fault,
            buffer: Vec::new(),
            buffered_bytes: 0,
            flush_threshold: 16 * 1024,
            codec: WireCodec::Fixed,
            enc: RecordEncoder::new(),
            crashed: false,
            error: None,
            units: 0,
            flushes: 0,
            next_output_id: 0,
            heartbeat_interval: SimTime::from_millis(50),
            next_heartbeat: SimTime::ZERO,
            nd_seq: HashMap::new(),
            out_seq: HashMap::new(),
            se,
            checkpoint_interval: None,
            epoch: 0,
            flushes_at_cut: 0,
            retained: Vec::new(),
            retained_bytes: 0,
            latest_snapshot: None,
            last_se: HashMap::new(),
            degraded: false,
            fanout: Vec::new(),
            link_live: vec![true],
            link_tainted: vec![false],
            ack_policy: AckPolicy::All,
            vote_quorum: None,
            byz_plan: None,
            record_frame_index: 0,
            flush_claims: Vec::new(),
            stats: ReplicationStats::default(),
        }
    }

    /// Selects the wire codec. Call before the first record is logged: the
    /// compact encoder's delta context starts at the log's beginning.
    pub fn set_codec(&mut self, codec: WireCodec) {
        debug_assert_eq!(self.stats.messages_logged(), 0, "codec chosen after logging began");
        self.codec = codec;
    }

    /// Consumes the core, returning the channel (the harness drains it into
    /// the backup's log) and the final statistics.
    pub fn into_parts(self) -> (LogChannel, ReplicationStats) {
        (self.channel, self.stats)
    }

    /// Consumes the core, returning *every* fan-out link in rank order
    /// plus the final statistics (the group driver drains each survivor's
    /// link into its own standby).
    pub fn into_group_parts(self) -> (Vec<LogChannel>, ReplicationStats) {
        let mut links = vec![self.channel];
        links.extend(self.fanout);
        (links, self.stats)
    }

    /// The replication channel, for a co-simulation driver that pulls
    /// delivered frames for a hot standby while the primary still runs.
    pub fn channel_mut(&mut self) -> &mut LogChannel {
        &mut self.channel
    }

    /// Replication statistics so far (final values via
    /// [`into_parts`](PrimaryCore::into_parts)).
    pub fn stats(&self) -> &ReplicationStats {
        &self.stats
    }

    // --- Group fan-out (k standby links; link 0 is `channel`) -------------

    /// Total fan-out width, the first link included.
    pub fn link_count(&self) -> usize {
        1 + self.fanout.len()
    }

    /// Links currently believed live.
    pub fn live_links(&self) -> usize {
        (0..self.link_count()).filter(|&i| self.is_link_live(i)).count()
    }

    fn is_link_live(&self, idx: usize) -> bool {
        self.link_live.get(idx).copied().unwrap_or(false)
    }

    /// Adds fan-out links toward standbys of rank 1.. (link 0 keeps rank
    /// 0). Call before execution starts.
    pub fn enable_fanout(&mut self, links: Vec<LogChannel>) {
        for link in links {
            self.fanout.push(link);
            self.link_live.push(true);
            self.link_tainted.push(false);
        }
    }

    /// Selects the output-commit acknowledgment policy (default
    /// [`AckPolicy::All`], the single-backup behavior).
    pub fn set_ack_policy(&mut self, policy: AckPolicy) {
        self.ack_policy = policy;
    }

    /// Enables BFT-lite digest voting: every record-bearing frame is
    /// followed by a digest vote on each link, and outputs release only
    /// once `q` matching digests (the primary's claim included) exist.
    pub fn set_vote_quorum(&mut self, quorum: Option<u32>) {
        self.vote_quorum = quorum;
    }

    /// Arms sender-side byzantine corruption: the plan's byzantine knobs
    /// flip record payload bits after digests are computed but before the
    /// frames are CRC-sealed.
    pub fn set_byzantine(&mut self, plan: NetFaultPlan) {
        self.byz_plan = plan.is_byzantine().then_some(plan);
    }

    /// The digest-vote quorum, if voting is enabled.
    pub fn vote_quorum(&self) -> Option<u32> {
        self.vote_quorum
    }

    /// Marks a link's standby dead: sends and ack waits skip it.
    pub fn mark_link_dead(&mut self, idx: usize) {
        if let Some(l) = self.link_live.get_mut(idx) {
            *l = false;
        }
    }

    /// True if this replica's own send path ever flipped a frame on `idx`.
    pub fn link_is_tainted(&self, idx: usize) -> bool {
        self.link_tainted.get(idx).copied().unwrap_or(false)
    }

    /// One fan-out link by index (0 = the pair channel).
    pub fn link_mut(&mut self, idx: usize) -> &mut LogChannel {
        if idx == 0 {
            &mut self.channel
        } else {
            &mut self.fanout[idx - 1]
        }
    }

    /// Replaces link `idx`'s transport (state-transfer re-integration of
    /// that standby), reviving the link and clearing its taint — the
    /// replacement's state comes from the honest retained snapshot, not
    /// the flipped stream. Returns the old transport.
    pub fn swap_link(&mut self, idx: usize, new: LogChannel) -> LogChannel {
        if let Some(l) = self.link_live.get_mut(idx) {
            *l = true;
        }
        if let Some(t) = self.link_tainted.get_mut(idx) {
            *t = false;
        }
        std::mem::replace(self.link_mut(idx), new)
    }

    /// Sends one frame on every live link (heartbeats, epoch marks —
    /// anything that carries no digest vote).
    fn broadcast(&mut self, frame: Bytes, acct: &mut TimeAccount) {
        let now = acct.now();
        for idx in 0..self.link_count() {
            if !self.is_link_live(idx) {
                continue;
            }
            let cost = self.link_mut(idx).send(now, frame.clone());
            acct.charge(Category::Communication, cost);
        }
    }

    /// Sends one record-bearing frame on every live link, applying any
    /// armed byzantine flip per link (equivocation: the copies may differ).
    /// When voting is enabled the frame's honest digest joins the current
    /// flush's claim set — the vote covering the whole flush follows in
    /// [`Self::flush`]. The claims cover the *honest* payloads — flips
    /// happen after digest computation, so only voting can expose them.
    fn send_record_frame(&mut self, frame: Bytes, acct: &mut TimeAccount) {
        let fi = self.record_frame_index;
        self.record_frame_index += 1;
        if self.vote_quorum.is_some() {
            self.flush_claims.push(frame_digest(&frame));
        }
        let now = acct.now();
        for idx in 0..self.link_count() {
            if !self.is_link_live(idx) {
                continue;
            }
            let flip =
                self.byz_plan.as_ref().and_then(|p| p.byzantine_flip(fi, idx as u32, frame.len()));
            let payload = match flip {
                Some((pos, mask)) => {
                    let mut raw = frame.to_vec();
                    raw[pos] ^= mask;
                    self.link_tainted[idx] = true;
                    self.stats.byzantine_flips += 1;
                    Bytes::from(raw)
                }
                None => frame.clone(),
            };
            let cost = self.link_mut(idx).send(now, payload);
            acct.charge(Category::Communication, cost);
        }
    }

    /// Ends the current flush's vote group: one digest vote per live link
    /// covering every record frame of the flush, in order. Voting per
    /// flush (not per frame) keeps the atomic sets the protocol relies on
    /// — a native's result and its side-effect snapshot, an output commit
    /// and its payload — inside one verification unit, so a mismatch can
    /// never release half of one.
    fn send_flush_vote(&mut self, acct: &mut TimeAccount) {
        if self.flush_claims.is_empty() {
            return;
        }
        let claim = flush_digest(&self.flush_claims);
        self.flush_claims.clear();
        // The vote references the last record frame of the group.
        let fi = self.record_frame_index - 1;
        let now = acct.now();
        for idx in 0..self.link_count() {
            if !self.is_link_live(idx) {
                continue;
            }
            let cost = self.link_mut(idx).send(now, build_vote_frame(fi, claim));
            acct.charge(Category::Communication, cost);
            self.stats.votes_sent += 1;
        }
    }

    /// The instant the acknowledgment policy is satisfied: the m-th
    /// smallest ack arrival over the live links, pushed out to the
    /// (q-1)-th arrival over vote-matching links when voting gates the
    /// release. Returns `now` if no link is live (the caller is degraded
    /// or about to be).
    fn policy_ack_arrival(&mut self, now: SimTime) -> SimTime {
        let mut live = Vec::new();
        let mut matching = Vec::new();
        for idx in 0..self.link_count() {
            if !self.is_link_live(idx) {
                continue;
            }
            let tainted = self.link_is_tainted(idx);
            let at = self.link_mut(idx).ack_arrival(now);
            live.push(at);
            if !tainted {
                matching.push(at);
            }
        }
        if live.is_empty() {
            return now;
        }
        live.sort_unstable();
        let m = self.ack_policy.required(live.len());
        let mut at = live[m - 1];
        if let Some(q) = self.vote_quorum {
            // The primary's own claim is the first matching digest; the
            // remaining q-1 must arrive from untainted standbys. The
            // demotion check in `begin_output` guarantees enough exist.
            let need = (q as usize).saturating_sub(1).min(matching.len());
            if need > 0 {
                matching.sort_unstable();
                at = at.max(matching[need - 1]);
            }
        }
        at
    }

    fn vt(t: &ThreadObs<'_>) -> VtPath {
        t.vt.expect("replication hooks fire for application threads only").clone()
    }

    /// Buffers one record, charging its creation to `cat`.
    fn log(&mut self, rec: Record, cat: Category, create_cost: SimTime, acct: &mut TimeAccount) {
        self.log_deferred(rec, cat, create_cost, acct);
        self.maybe_flush(acct);
    }

    /// Buffers one record *without* a threshold flush — used when several
    /// records must reach the backup atomically (a native's result and its
    /// side-effect snapshot): a flush boundary between them would leave
    /// the backup with a logged result but a stale volatile-state
    /// snapshot, silently corrupting recovery.
    fn log_deferred(
        &mut self,
        rec: Record,
        cat: Category,
        create_cost: SimTime,
        acct: &mut TimeAccount,
    ) {
        if self.crashed {
            return;
        }
        acct.charge(cat, create_cost);
        if self.checkpoint_interval.is_some() {
            if let Record::SeState { handler, payload } = &rec {
                // Cuts transplant the latest volatile-state snapshot per
                // handler into the epoch snapshot's extension section.
                self.last_se.insert(*handler, payload.clone());
            }
        }
        // Compact bodies are encoded *now*, not at flush, so the delta
        // context sees records in log order regardless of flush boundaries.
        let frame = match self.codec {
            WireCodec::Fixed => rec.encode(),
            WireCodec::Compact => self.enc.encode_body(&rec),
        };
        self.stats.count_record(&rec, frame.len() as u64);
        self.stats.bytes_logged += frame.len() as u64;
        self.buffered_bytes += frame.len();
        self.buffer.push(frame);
    }

    fn maybe_flush(&mut self, acct: &mut TimeAccount) {
        if self.buffered_bytes >= self.flush_threshold {
            self.flush(acct);
        }
    }

    /// Sends every buffered record to the backup, charging the sender-side
    /// cost to the communication category. Fixed codec: one message per
    /// record. Compact codec: one batch frame for the whole buffer.
    pub fn flush(&mut self, acct: &mut TimeAccount) {
        if self.buffer.is_empty() {
            return;
        }
        let retain = self.checkpoint_interval.is_some();
        match self.codec {
            WireCodec::Fixed => {
                for frame in std::mem::take(&mut self.buffer) {
                    if retain {
                        self.retain_frame(frame.clone());
                    }
                    self.send_record_frame(frame, acct);
                }
            }
            WireCodec::Compact => {
                let frame = build_batch_frame(&self.buffer);
                self.buffer.clear();
                // The frame header (tag + count) is wire overhead the
                // bodies didn't account for.
                self.stats.bytes_logged += (frame.len() - self.buffered_bytes) as u64;
                if retain {
                    self.retain_frame(frame.clone());
                }
                self.send_record_frame(frame, acct);
            }
        }
        if self.vote_quorum.is_some() {
            self.send_flush_vote(acct);
        }
        self.buffered_bytes = 0;
        self.flushes += 1;
        self.stats.flushes = self.flushes;
        self.stats.peak_send_window = self.stats.peak_send_window.max(self.channel.depth() as u64);
        if let FaultPlan::AfterFlush(n) = self.fault {
            if self.flushes > n {
                self.crashed = true;
            }
        }
    }

    /// Sets the failure-detector heartbeat interval (the harness aligns it
    /// with [`ftjvm_netsim::FailureDetector`]).
    pub fn set_heartbeat_interval(&mut self, interval: SimTime) {
        self.heartbeat_interval = interval;
    }

    /// Seeds the output-id allocator: a backup promoting to primary
    /// continues the dead reign's exactly-once numbering instead of
    /// restarting at zero.
    pub fn seed_output_ids(&mut self, next: u64) {
        self.next_output_id = next;
    }

    /// Progress tick for `n` executed units: drives the instruction-count
    /// fault plan and the failure-detection heartbeat (the paper's
    /// dedicated system thread; here a time-driven send on the log
    /// channel). Called once per block, not per unit.
    fn tick_n(&mut self, n: u64, acct: &mut TimeAccount) {
        self.units += n;
        if let FaultPlan::AfterInstructions(n) = self.fault {
            if self.units > n {
                self.crashed = true;
            }
        }
        if !self.crashed && acct.now() >= self.next_heartbeat {
            self.next_heartbeat = acct.now() + self.heartbeat_interval;
            // Heartbeats bypass the batch buffer under both codecs: they
            // are liveness signals sent the moment they are due, and the
            // self-describing frame format lets fixed heartbeat frames
            // interleave with compact batches.
            let rec = Record::Heartbeat { now_ns: acct.now().as_nanos() };
            let frame = rec.encode();
            self.stats.count_record(&rec, frame.len() as u64);
            self.broadcast(frame, acct);
        }
        if !self.crashed {
            // Reliable-transport maintenance: fire due retransmission
            // timers and process returned acks; a crashed primary stops
            // retransmitting, so unacked frames become lost suffix.
            for idx in 0..self.link_count() {
                if !self.is_link_live(idx) {
                    continue;
                }
                let now = acct.now();
                let cost = self.link_mut(idx).maintain(now);
                if cost > SimTime::ZERO {
                    acct.charge(Category::Communication, cost);
                }
            }
        }
    }

    /// Graceful program exit: flush the buffer and, on a reliable
    /// transport, linger until every frame is acknowledged so a standby
    /// receives the complete log. Crash paths never reach this.
    pub(crate) fn finish(&mut self, acct: &mut TimeAccount) {
        self.flush(acct);
        if !self.crashed {
            let mut settled = acct.now();
            for idx in 0..self.link_count() {
                if !self.is_link_live(idx) {
                    continue;
                }
                let now = acct.now();
                settled = settled.max(self.link_mut(idx).settle(now));
            }
            acct.wait_until(Category::Pessimistic, settled);
        }
    }

    fn stop(&mut self) -> Option<StopReason> {
        if let Some(e) = self.error.take() {
            return Some(StopReason::Error(e));
        }
        if self.crashed {
            return Some(StopReason::Crash);
        }
        None
    }

    /// True if a side-effect handler manages this native.
    pub(crate) fn se_manages(&self, name: &str) -> bool {
        self.se.handler_for(name).is_some()
    }

    /// ND-table lookup on every native invocation (§4.1): non-deterministic
    /// natives are intercepted; everything else runs untouched.
    fn pre_native(&mut self, decl: &NativeDecl, acct: &mut TimeAccount) -> NativeDirective {
        acct.charge(Category::Misc, self.cost.nd_table_lookup);
        if decl.nondeterministic {
            self.stats.nm_intercepted += 1;
        }
        NativeDirective::Execute
    }

    /// Logs the result of an intercepted native and runs the SE-handler
    /// `log` upcall. Needs the environment for handler snapshots.
    fn post_native(
        &mut self,
        env: &ftjvm_vm::SimEnv,
        t: &ThreadObs<'_>,
        decl: &NativeDecl,
        outcome: &NativeOutcome,
        output_id: Option<u64>,
        acct: &mut TimeAccount,
    ) {
        if self.crashed {
            return;
        }
        let vt = Self::vt(t);
        if decl.nondeterministic {
            let result = match &outcome.result {
                Ok(v) => match v.map(WireValue::from_value).transpose() {
                    Ok(wv) => LoggedResult::Ok(wv),
                    Err(_) => {
                        // Restriction R2: native results containing
                        // replica-local references cannot be replicated.
                        self.error = Some(VmError::Internal(format!(
                            "native `{}` returned a reference value; R2 forbids logging it",
                            decl.name
                        )));
                        return;
                    }
                },
                Err(abort) => LoggedResult::Err { code: abort.code, msg: abort.msg.clone() },
            };
            let mut wire_out_args = Vec::with_capacity(outcome.out_args.len());
            for (idx, contents) in &outcome.out_args {
                let mut wire = Vec::with_capacity(contents.len());
                for v in contents {
                    match WireValue::from_value(*v) {
                        Ok(w) => wire.push(w),
                        Err(_) => {
                            self.error = Some(VmError::Internal(format!(
                                "native `{}` stored a reference into a logged out-argument (R2)",
                                decl.name
                            )));
                            return;
                        }
                    }
                }
                wire_out_args.push((*idx, wire));
            }
            let seq = self.nd_seq.entry(vt.clone()).or_insert(0);
            *seq += 1;
            let rec = Record::NativeResult {
                t: vt.clone(),
                seq: *seq,
                sig_hash: sig_hash(&decl.name),
                result,
                out_args: wire_out_args,
            };
            self.log_deferred(rec, Category::Misc, self.cost.nd_result_record, acct);
        }
        // Side-effect handler `log` upcall — for every native a registered
        // handler manages (the handler's `register` method declared them).
        if self.se.handler_for(&decl.name).is_some() {
            if let Some((handler, payload)) =
                self.se.log(env, &decl.name, &[] as &[Value], outcome, output_id)
            {
                self.log_deferred(
                    Record::SeState { handler, payload },
                    Category::Misc,
                    self.cost.se_log,
                    acct,
                );
            }
        }
        // Single flush point: the result record and its side-effect
        // snapshot always travel in the same flush.
        self.maybe_flush(acct);
        // Fault plan: crash right after performing the n-th output.
        if decl.output {
            if let (FaultPlan::AfterOutput(n), Some(id)) = (self.fault, output_id) {
                if id >= n {
                    self.crashed = true;
                }
            }
        }
    }

    /// Output commit (§3.4): log the commit record, flush everything, and
    /// wait pessimistically for the backup's acknowledgment.
    fn begin_output(&mut self, t: &ThreadObs<'_>, acct: &mut TimeAccount) -> u64 {
        let vt = Self::vt(t);
        let id = self.next_output_id;
        self.next_output_id += 1;
        let seq = self.out_seq.entry(vt.clone()).or_insert(0);
        *seq += 1;
        let rec = Record::OutputCommit { t: vt, seq: *seq, output_id: id };
        self.log(rec, Category::Misc, self.cost.nd_result_record, acct);
        self.stats.output_commits += 1;
        self.flush(acct);
        if let Some(q) = self.vote_quorum {
            // BFT-lite gate: the output may only release once q digests
            // match the claim. The primary's own claim counts as one; a
            // link this replica ever flipped can never vote with it. When
            // enough links are live that q is reachable yet tainted copies
            // make it unattainable, the primary *is* the outlier — demote
            // instead of releasing a corrupted output (the group driver
            // promotes the lowest-rank survivor). An under-formed group
            // (fewer than q-1 live links, e.g. mid re-homing after a
            // failover) releases uncovered outputs like degraded mode does:
            // the quorum guarantee applies to formed groups.
            let live = (0..self.link_count()).filter(|&i| self.is_link_live(i)).count() as u32;
            let matching = (0..self.link_count())
                .filter(|&i| self.is_link_live(i) && !self.link_is_tainted(i))
                .count() as u32;
            if matching + 1 < q && live + 1 >= q {
                self.stats.byzantine_demotions += 1;
                self.crashed = true;
                return id;
            }
        }
        if self.degraded {
            // The backup is dead: there is nothing to wait for. The commit
            // record still went out (and sits in the retained suffix for
            // re-integration); the uncovered output is counted as the
            // fault-tolerance gap this run accumulated.
            self.stats.degraded_outputs += 1;
            self.stats.commit_samples.push((acct.now().as_nanos(), 0));
        } else {
            let ack_at = self.policy_ack_arrival(acct.now());
            let wait = ack_at.saturating_sub(acct.now());
            acct.wait_until(Category::Pessimistic, ack_at);
            self.stats.commit_samples.push((acct.now().as_nanos(), wait.as_nanos()));
        }
        // Fault plan: crash after the commit but before the output itself —
        // the paper's "uncertain output" window.
        if let FaultPlan::BeforeOutput(n) = self.fault {
            if id >= n {
                self.crashed = true;
            }
        }
        id
    }

    // --- Epoch checkpointing (bounded logs + re-integration) -------------

    /// Enables epoch checkpointing: cut after every `n` flushes. Call
    /// before execution starts; `None` (the default) leaves every
    /// checkpointing path dormant.
    pub fn set_checkpoint_interval(&mut self, interval: Option<u64>) {
        self.checkpoint_interval = interval;
    }

    /// True when enough flushes have accumulated that the driver should
    /// cut an epoch at the next quiescent point.
    pub fn wants_epoch_cut(&self) -> bool {
        match self.checkpoint_interval {
            Some(n) => !self.crashed && self.flushes - self.flushes_at_cut >= n,
            None => false,
        }
    }

    /// Epochs cut so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// First half of an epoch cut: flush the buffer so every logged record
    /// is on the wire (and in the retained suffix), then package the
    /// replication-layer state the snapshot must carry — the compact
    /// encoder's delta context, the per-thread ND/output sequence maps,
    /// the global output/epoch counters, and the latest side-effect
    /// payloads. The caller feeds the result to `Vm::snapshot` and hands
    /// the blob back to [`PrimaryCore::commit_epoch`].
    pub fn prepare_epoch_cut(&mut self, acct: &mut TimeAccount) -> Vec<(u8, Bytes)> {
        self.flush(acct);
        let mut counters = WireWriter::with_capacity(24);
        counters.put_uvarint(self.next_output_id);
        counters.put_uvarint(self.epoch + 1);
        let mut se = WireWriter::with_capacity(32);
        let mut latest: Vec<(u8, &Bytes)> = self.last_se.iter().map(|(&h, p)| (h, p)).collect();
        latest.sort_unstable_by_key(|(h, _)| *h);
        se.put_uvarint(latest.len() as u64);
        for (h, p) in latest {
            se.put_u8(h);
            se.put_vbytes(p);
        }
        vec![
            (EXT_CODEC_CTX, self.enc.export_ctx()),
            (EXT_ND_SEQ, encode_vt_map(&self.nd_seq)),
            (EXT_OUT_SEQ, encode_vt_map(&self.out_seq)),
            (EXT_COUNTERS, counters.finish()),
            (EXT_SE_LATEST, se.finish()),
        ]
    }

    /// Second half of an epoch cut: send the epoch mark, truncate the
    /// retained suffix (everything before the cut is now subsumed by the
    /// snapshot), and charge the snapshot's serialization cost. Returns
    /// the new epoch number.
    pub fn commit_epoch(&mut self, blob: Bytes, acct: &mut TimeAccount) -> u64 {
        let covered = self.retained.len() as u64;
        self.epoch += 1;
        let frame = build_epoch_frame(self.epoch, covered);
        self.broadcast(frame, acct);
        // Serializing the snapshot is primary CPU work, charged per byte
        // at the wire's marginal rate (it is a memory copy plus CRC, the
        // same order of work as packetizing).
        let per_byte = self.cost.net.per_byte.as_nanos();
        acct.charge(
            Category::Misc,
            SimTime::from_nanos(per_byte.saturating_mul(blob.len() as u64)),
        );
        self.retained.clear();
        self.retained_bytes = 0;
        self.flushes_at_cut = self.flushes;
        self.stats.epochs_cut += 1;
        self.stats.epoch_cut_flushes.push(self.flushes);
        self.stats.snapshot_bytes = blob.len() as u64;
        self.latest_snapshot = Some((self.epoch, blob));
        self.epoch
    }

    /// The snapshot taken at the most recent cut, with its epoch.
    pub fn latest_snapshot(&self) -> Option<&(u64, Bytes)> {
        self.latest_snapshot.as_ref()
    }

    /// Record-bearing frames flushed since the last cut — what a
    /// replacement backup replays on top of the latest snapshot.
    pub fn retained_frames(&self) -> &[Bytes] {
        &self.retained
    }

    /// Relays the backup's epoch acknowledgment (driver-carried: the
    /// backup counts absorbed epoch marks, the driver copies the count
    /// here).
    pub fn record_epoch_ack(&mut self, acked: u64) {
        self.stats.epochs_acked = self.stats.epochs_acked.max(acked);
    }

    /// Whether the core is running without a live backup.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Enters degraded mode: the failure detector declared the backup
    /// dead, so output commits stop waiting for acknowledgments.
    pub fn enter_degraded(&mut self) {
        self.degraded = true;
    }

    /// Exits degraded mode once a replacement backup has caught up.
    pub fn exit_degraded(&mut self) {
        self.degraded = false;
    }

    /// Replaces the log transport (re-integration points the primary at a
    /// fresh channel toward the replacement backup) and returns the old
    /// one.
    pub fn swap_channel(&mut self, new: LogChannel) -> LogChannel {
        self.swap_link(0, new)
    }

    /// Sends one pre-built frame (snapshot chunk or retained suffix frame
    /// during state transfer), charging the communication cost.
    pub fn send_raw(&mut self, payload: Bytes, acct: &mut TimeAccount) {
        self.send_raw_on(0, payload, acct);
    }

    /// [`send_raw`](PrimaryCore::send_raw) targeted at one fan-out link
    /// (state transfer re-integrates a single standby; the other links
    /// must not see its snapshot chunks).
    pub fn send_raw_on(&mut self, idx: usize, payload: Bytes, acct: &mut TimeAccount) {
        let now = acct.now();
        let cost = self.link_mut(idx).send(now, payload);
        acct.charge(Category::Communication, cost);
    }

    fn retain_frame(&mut self, frame: Bytes) {
        self.retained_bytes += frame.len();
        self.retained.push(frame);
        self.stats.peak_suffix_frames =
            self.stats.peak_suffix_frames.max(self.retained.len() as u64);
        self.stats.peak_suffix_bytes = self.stats.peak_suffix_bytes.max(self.retained_bytes as u64);
    }
}

// --- Snapshot extension sections (replication-layer state at a cut) -------

/// Extension tag: compact-codec encoder context ([`RecordEncoder::export_ctx`]).
pub const EXT_CODEC_CTX: u8 = 1;
/// Extension tag: per-thread ND sequence map.
pub const EXT_ND_SEQ: u8 = 2;
/// Extension tag: per-thread output-commit sequence map.
pub const EXT_OUT_SEQ: u8 = 3;
/// Extension tag: `uvarint(next_output_id) · uvarint(epoch)`.
pub const EXT_COUNTERS: u8 = 4;
/// Extension tag: latest side-effect payload per handler.
pub const EXT_SE_LATEST: u8 = 5;

/// Serializes a per-thread counter map deterministically (sorted by
/// ordinal chain).
pub(crate) fn encode_vt_map(map: &HashMap<VtPath, u64>) -> Bytes {
    let mut entries: Vec<(&VtPath, u64)> = map.iter().map(|(k, &v)| (k, v)).collect();
    entries.sort_unstable_by(|a, b| a.0.ordinals().cmp(b.0.ordinals()));
    let mut w = WireWriter::with_capacity(8 + 8 * entries.len());
    w.put_uvarint(entries.len() as u64);
    for (vt, v) in entries {
        let ords = vt.ordinals();
        w.put_uvarint(ords.len() as u64);
        for &o in ords {
            w.put_uvarint(o as u64);
        }
        w.put_uvarint(v);
    }
    w.finish()
}

/// Mirror of [`encode_vt_map`].
pub(crate) fn decode_vt_map(blob: &Bytes) -> Result<HashMap<VtPath, u64>, WireError> {
    let mut r = WireReader::new(blob.clone());
    let n = r.get_uvarint()? as usize;
    if n > r.remaining() {
        return Err(WireError::new("vt map count"));
    }
    let mut map = HashMap::with_capacity(n);
    for _ in 0..n {
        let n_ords = r.get_uvarint()? as usize;
        if n_ords == 0 || n_ords > r.remaining() {
            return Err(WireError::new("vt map ordinal chain"));
        }
        let mut ords = Vec::with_capacity(n_ords);
        for _ in 0..n_ords {
            let o = r.get_uvarint()?;
            if o > u32::MAX as u64 {
                return Err(WireError::new("vt map ordinal"));
            }
            ords.push(o as u32);
        }
        let v = r.get_uvarint()?;
        map.insert(VtPath::from_ordinals(ords), v);
    }
    if !r.is_empty() {
        return Err(WireError::new("trailing bytes after vt map"));
    }
    Ok(map)
}

/// Primary coordinator for **replicated lock synchronization** (§4.2).
#[derive(Debug)]
pub struct LockSyncPrimary {
    /// Shared primary machinery.
    pub common: PrimaryCore,
    next_l_id: u64,
}

impl LockSyncPrimary {
    /// Creates the coordinator.
    pub fn new(common: PrimaryCore) -> Self {
        LockSyncPrimary { common, next_l_id: 0 }
    }

    /// Creates the coordinator for a backup promoting to primary: the
    /// virtual-lock-id allocator starts past every id the replayed
    /// history already assigned, so fresh assignments never collide.
    pub fn resumed(common: PrimaryCore, next_l_id: u64) -> Self {
        LockSyncPrimary { common, next_l_id }
    }
}

impl Coordinator for LockSyncPrimary {
    fn mode(&self) -> &'static str {
        "lock-sync-primary"
    }

    fn stop(&mut self) -> Option<StopReason> {
        self.common.stop()
    }

    fn note_units(&mut self, n: u64, acct: &mut TimeAccount) {
        self.common.tick_n(n, acct);
    }

    fn post_monitor_acquire(
        &mut self,
        t: &ThreadObs<'_>,
        _obj: ObjRef,
        l_id: Option<u64>,
        l_asn: u64,
        acct: &mut TimeAccount,
    ) -> Option<u64> {
        let vt = PrimaryCore::vt(t);
        let (l_id, assigned) = match l_id {
            Some(id) => (id, None),
            None => {
                // First acquisition anywhere: assign the virtual lock id
                // and log the id map (§4.2).
                let id = self.next_l_id;
                self.next_l_id += 1;
                let id_map_cost = self.common.cost.id_map_record;
                self.common.log(
                    Record::IdMap { l_id: id, t: vt.clone(), t_asn: t.t_asn },
                    Category::LockAcquire,
                    id_map_cost,
                    acct,
                );
                (id, Some(id))
            }
        };
        let lock_cost = self.common.cost.lock_record;
        self.common.log(
            Record::LockAcq { t: vt, t_asn: t.t_asn, l_id, l_asn },
            Category::LockAcquire,
            lock_cost,
            acct,
        );
        self.common.stats.locks_acquired += 1;
        self.common.stats.largest_lasn = self.common.stats.largest_lasn.max(l_asn);
        assigned
    }

    fn pre_native(
        &mut self,
        _t: &ThreadObs<'_>,
        decl: &NativeDecl,
        _args: &[Value],
        acct: &mut TimeAccount,
    ) -> NativeDirective {
        self.common.pre_native(decl, acct)
    }

    fn post_native(
        &mut self,
        t: &ThreadObs<'_>,
        decl: &NativeDecl,
        outcome: &NativeOutcome,
        output_id: Option<u64>,
        env: &ftjvm_vm::SimEnv,
        acct: &mut TimeAccount,
    ) {
        self.common.post_native(env, t, decl, outcome, output_id, acct);
    }

    fn begin_output(
        &mut self,
        t: &ThreadObs<'_>,
        _decl: &NativeDecl,
        acct: &mut TimeAccount,
    ) -> u64 {
        self.common.begin_output(t, acct)
    }

    fn on_exit(&mut self, acct: &mut TimeAccount) {
        self.common.finish(acct);
    }
}

/// Primary coordinator for **interval-compressed replicated lock
/// synchronization** — the DejaVu-style optimization the paper's related
/// work points at ("there would only be 56 intervals instead of 700258
/// lock acquisitions"). Globally-consecutive acquisitions by one thread
/// collapse into a single [`Record::LockInterval`]; virtual lock ids and
/// id maps become unnecessary because the backup enforces a *total* order
/// over all acquisitions rather than a per-lock order.
#[derive(Debug)]
pub struct IntervalPrimary {
    /// Shared primary machinery.
    pub common: PrimaryCore,
    open: Option<(VtPath, u64, u64)>, // (thread, t_asn_start, count)
}

impl IntervalPrimary {
    /// Creates the coordinator.
    pub fn new(common: PrimaryCore) -> Self {
        IntervalPrimary { common, open: None }
    }

    /// Closes the open acquisition interval, logging it. A no-op when no
    /// interval is open. Epoch cuts call this so the flushed prefix is
    /// self-contained.
    pub(crate) fn close_open(&mut self, acct: &mut TimeAccount) {
        if let Some((t, t_asn_start, count)) = self.open.take() {
            let cost = self.common.cost.lock_record;
            self.common.log(
                Record::LockInterval { t, t_asn_start, count },
                Category::LockAcquire,
                cost,
                acct,
            );
        }
    }
}

impl Coordinator for IntervalPrimary {
    fn mode(&self) -> &'static str {
        "lock-interval-primary"
    }

    fn stop(&mut self) -> Option<StopReason> {
        self.common.stop()
    }

    fn note_units(&mut self, n: u64, acct: &mut TimeAccount) {
        self.common.tick_n(n, acct);
    }

    fn post_monitor_acquire(
        &mut self,
        t: &ThreadObs<'_>,
        _obj: ObjRef,
        _l_id: Option<u64>,
        l_asn: u64,
        acct: &mut TimeAccount,
    ) -> Option<u64> {
        let vt = PrimaryCore::vt(t);
        let extended = match &mut self.open {
            Some((open_t, _, count)) if *open_t == vt => {
                *count += 1;
                true
            }
            _ => false,
        };
        acct.charge(Category::LockAcquire, self.common.cost.interval_update);
        if !extended {
            self.close_open(acct);
            self.open = Some((vt, t.t_asn, 1));
        }
        self.common.stats.locks_acquired += 1;
        self.common.stats.largest_lasn = self.common.stats.largest_lasn.max(l_asn);
        None
    }

    fn pre_native(
        &mut self,
        _t: &ThreadObs<'_>,
        decl: &NativeDecl,
        _args: &[Value],
        acct: &mut TimeAccount,
    ) -> NativeDirective {
        self.common.pre_native(decl, acct)
    }

    fn post_native(
        &mut self,
        t: &ThreadObs<'_>,
        decl: &NativeDecl,
        outcome: &NativeOutcome,
        output_id: Option<u64>,
        env: &ftjvm_vm::SimEnv,
        acct: &mut TimeAccount,
    ) {
        // The result record must be ordered after the interval that covers
        // the acquisitions preceding it — close the interval first when the
        // native was intercepted.
        if decl.nondeterministic || self.common.se_manages(&decl.name) {
            self.close_open(acct);
        }
        self.common.post_native(env, t, decl, outcome, output_id, acct);
    }

    fn begin_output(
        &mut self,
        t: &ThreadObs<'_>,
        _decl: &NativeDecl,
        acct: &mut TimeAccount,
    ) -> u64 {
        // Output commit is a synchronization point: the open interval must
        // reach the backup with everything else.
        self.close_open(acct);
        self.common.begin_output(t, acct)
    }

    fn on_exit(&mut self, acct: &mut TimeAccount) {
        self.close_open(acct);
        self.common.finish(acct);
    }
}

/// Primary coordinator for **replicated thread scheduling** (§4.2).
#[derive(Debug)]
pub struct TsPrimary {
    /// Shared primary machinery.
    pub common: PrimaryCore,
    /// The last application thread that yielded (its progress snapshot),
    /// pending the next application dispatch.
    pending_from: Option<ThreadSnap>,
    /// Last observed `br_cnt` per thread, to charge `br_cnt`-maintenance
    /// costs once per control-flow change.
    last_br: HashMap<u32, u64>,
}

impl TsPrimary {
    /// Creates the coordinator.
    pub fn new(common: PrimaryCore) -> Self {
        TsPrimary { common, pending_from: None, last_br: HashMap::new() }
    }

    /// Creates the coordinator for a backup promoting to primary, seeding
    /// the per-thread branch counters from the replayed VM so progress
    /// accounting continues rather than restarting.
    pub fn resumed(common: PrimaryCore, last_br: HashMap<u32, u64>) -> Self {
        TsPrimary { common, pending_from: None, last_br }
    }

    /// True when no schedule record is half-captured — the only moment an
    /// epoch cut is sound under replicated thread scheduling (a pending
    /// yield snapshot would be lost by the snapshot/suffix split).
    pub(crate) fn cut_ready(&self) -> bool {
        self.pending_from.is_none()
    }
}

impl Coordinator for TsPrimary {
    fn mode(&self) -> &'static str {
        "ts-primary"
    }

    fn stop(&mut self) -> Option<StopReason> {
        self.common.stop()
    }

    fn check_preempt(&mut self, t: &ThreadObs<'_>, acct: &mut TimeAccount) -> bool {
        // The extra interpreter-loop work that tracks progress (the
        // paper's dominant "Misc" overhead). With block-granular fusion
        // the counters materialize once per consult, not once per unit: a
        // PC update at each block boundary, plus one `br_cnt` store when
        // any control flow happened since the last consult.
        let mut cost = self.common.cost.ts_pc_track;
        let last = self.last_br.entry(t.t.0).or_insert(0);
        if t.br_cnt > *last {
            *last = t.br_cnt;
            cost += self.common.cost.ts_br_track;
        }
        acct.charge(Category::Misc, cost);
        false
    }

    fn note_units(&mut self, n: u64, acct: &mut TimeAccount) {
        self.common.tick_n(n, acct);
    }

    fn on_switch(
        &mut self,
        from: Option<&ThreadSnap>,
        _reason: SwitchReason,
        to: &ThreadSnap,
        acct: &mut TimeAccount,
    ) {
        if let Some(f) = from {
            if f.vt.is_some() {
                self.pending_from = Some(f.clone());
            }
        }
        if to.vt.is_none() {
            return; // switches to system threads are not replicated
        }
        if let Some(prev) = self.pending_from.take() {
            if prev.t != to.t {
                let rec = Record::Sched {
                    t: prev.vt.clone().expect("pending_from is an app thread"),
                    br_cnt: prev.br_cnt,
                    method: prev.method.map(|m| m.0).unwrap_or(u32::MAX),
                    pc_off: prev.pc,
                    mon_cnt: prev.mon_cnt,
                    l_asn: prev.blocked_lasn,
                    in_native: prev.in_native,
                    next: to.vt.clone().expect("checked vt above"),
                };
                let cost = self.common.cost.sched_record;
                self.common.log(rec, Category::Resched, cost, acct);
            }
        }
    }

    fn begin_output(
        &mut self,
        t: &ThreadObs<'_>,
        _decl: &NativeDecl,
        acct: &mut TimeAccount,
    ) -> u64 {
        self.common.begin_output(t, acct)
    }

    fn pre_native(
        &mut self,
        _t: &ThreadObs<'_>,
        decl: &NativeDecl,
        _args: &[Value],
        acct: &mut TimeAccount,
    ) -> NativeDirective {
        self.common.pre_native(decl, acct)
    }

    fn post_native(
        &mut self,
        t: &ThreadObs<'_>,
        decl: &NativeDecl,
        outcome: &NativeOutcome,
        output_id: Option<u64>,
        env: &ftjvm_vm::SimEnv,
        acct: &mut TimeAccount,
    ) {
        self.common.post_native(env, t, decl, outcome, output_id, acct);
    }

    fn on_exit(&mut self, acct: &mut TimeAccount) {
        self.common.finish(acct);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftjvm_netsim::NetParams;

    fn core_with(fault: FaultPlan) -> PrimaryCore {
        let channel = SimChannel::new(NetParams::default());
        PrimaryCore::new(channel, CostModel::default(), fault, SeRegistry::with_builtins())
    }

    fn lock_rec(n: u64) -> Record {
        Record::LockAcq { t: VtPath::root(), t_asn: n, l_id: 0, l_asn: n }
    }

    #[test]
    fn records_buffer_until_threshold_then_flush_together() {
        let mut core = core_with(FaultPlan::None);
        core.flush_threshold = 200; // a handful of 40-byte records
        let mut acct = TimeAccount::new();
        for n in 1..=4 {
            core.log(lock_rec(n), Category::LockAcquire, SimTime::from_nanos(10), &mut acct);
        }
        assert_eq!(core.stats.lock_acq_records, 4);
        // Below threshold: nothing sent yet.
        let sent_before = {
            let (channel, _) = core.into_parts();
            channel.stats().messages_sent
        };
        assert!(sent_before <= 4, "some records may have flushed at the boundary");
    }

    #[test]
    fn zero_threshold_flushes_every_record() {
        let mut core = core_with(FaultPlan::None);
        core.flush_threshold = 0;
        let mut acct = TimeAccount::new();
        for n in 1..=5 {
            core.log(lock_rec(n), Category::LockAcquire, SimTime::from_nanos(10), &mut acct);
        }
        assert_eq!(core.stats.flushes, 5);
        let (channel, stats) = core.into_parts();
        assert_eq!(channel.stats().messages_sent, 5);
        assert_eq!(stats.lock_acq_records, 5);
    }

    #[test]
    fn crashed_core_stops_logging() {
        let mut core = core_with(FaultPlan::AfterInstructions(2));
        core.flush_threshold = 0;
        let mut acct = TimeAccount::new();
        core.tick_n(1, &mut acct);
        core.tick_n(1, &mut acct);
        core.tick_n(1, &mut acct); // > 2 -> crash
        assert!(matches!(core.stop(), Some(StopReason::Crash)));
        core.log(lock_rec(1), Category::LockAcquire, SimTime::from_nanos(10), &mut acct);
        assert_eq!(core.stats.lock_acq_records, 0, "post-crash records are dropped");
    }

    #[test]
    fn heartbeats_ride_the_channel_on_schedule() {
        let mut core = core_with(FaultPlan::None);
        core.set_heartbeat_interval(SimTime::from_millis(10));
        let mut acct = TimeAccount::new();
        core.tick_n(1, &mut acct); // t=0: first heartbeat
        acct.charge(Category::Base, SimTime::from_millis(25));
        core.tick_n(1, &mut acct); // t=25ms: second
        core.tick_n(1, &mut acct); // still within interval: none
        assert_eq!(core.stats.heartbeats, 2);
    }

    #[test]
    fn output_commit_flushes_and_waits_pessimistically() {
        let mut core = core_with(FaultPlan::None);
        core.flush_threshold = usize::MAX; // only commits flush
        let mut acct = TimeAccount::new();
        core.log(lock_rec(1), Category::LockAcquire, SimTime::from_nanos(10), &mut acct);
        let obs = ThreadObs {
            t: ftjvm_vm::ThreadIdx(0),
            vt: Some(&VtPath::root()),
            br_cnt: 0,
            mon_cnt: 0,
            t_asn: 0,
            method: None,
            pc: 0,
            in_native: false,
        };
        let before = acct.get(Category::Pessimistic);
        let id = core.begin_output(&obs, &mut acct);
        assert_eq!(id, 0);
        assert!(acct.get(Category::Pessimistic) > before, "ack wait must be charged");
        assert!(core.stats.flushes >= 1);
        assert_eq!(core.stats.output_commit_records, 1);
        let id2 = core.begin_output(&obs, &mut acct);
        assert_eq!(id2, 1, "output ids are the global commit sequence");
    }

    #[test]
    fn before_output_fault_fires_in_the_uncertain_window() {
        let mut core = core_with(FaultPlan::BeforeOutput(0));
        let mut acct = TimeAccount::new();
        let vt = VtPath::root();
        let obs = ThreadObs {
            t: ftjvm_vm::ThreadIdx(0),
            vt: Some(&vt),
            br_cnt: 0,
            mon_cnt: 0,
            t_asn: 0,
            method: None,
            pc: 0,
            in_native: false,
        };
        let _ = core.begin_output(&obs, &mut acct);
        // Commit happened (record sent) but the crash flag is up before
        // the output body can run.
        assert!(matches!(core.stop(), Some(StopReason::Crash)));
        assert_eq!(core.stats.output_commit_records, 1);
    }
}
