//! The primary-side replication runtime and the two primary coordinators.
//!
//! [`PrimaryCore`] implements everything both techniques share: the
//! buffered record log and its flush policy, the non-deterministic
//! native-method interception (§4.1), output commit with pessimistic
//! acknowledgment waits (§3.4), side-effect-handler `log` upcalls (§4.4),
//! and fail-stop fault injection. On top of it:
//!
//! * [`LockSyncPrimary`] logs an id map on first acquisition and a lock
//!   acquisition record on every monitor acquisition (§4.2, *Replicated
//!   Lock Synchronization*);
//! * [`TsPrimary`] charges the per-instruction progress bookkeeping and
//!   logs a thread-schedule record whenever the scheduler switches between
//!   two application threads (§4.2, *Replicated Thread Scheduling*).

use crate::codec::{build_batch_frame, RecordEncoder};
use crate::records::{sig_hash, LoggedResult, Record, WireValue};
use crate::se::SeRegistry;
use crate::stats::ReplicationStats;
use ftjvm_netsim::{Category, CostModel, FaultPlan, SimChannel, SimTime, TimeAccount, WireCodec};

use ftjvm_vm::native::{NativeDecl, NativeOutcome};
use ftjvm_vm::{
    Coordinator, NativeDirective, ObjRef, StopReason, SwitchReason, ThreadObs, ThreadSnap, Value,
    VmError, VtPath,
};
use std::collections::HashMap;

/// Shared primary-side machinery.
pub struct PrimaryCore {
    channel: SimChannel,
    cost: CostModel,
    fault: FaultPlan,
    buffer: Vec<bytes::Bytes>,
    buffered_bytes: usize,
    /// Flush when this many bytes are buffered (also flushed at output
    /// commit and program exit — the paper's "periodically or on an output
    /// commit").
    pub flush_threshold: usize,
    /// Record encoding on the wire. Under [`WireCodec::Compact`] records
    /// are delta/varint-encoded at log time and a flush sends one batch
    /// frame instead of one message per record.
    codec: WireCodec,
    enc: RecordEncoder,
    crashed: bool,
    error: Option<VmError>,
    units: u64,
    flushes: u64,
    next_output_id: u64,
    heartbeat_interval: SimTime,
    next_heartbeat: SimTime,
    nd_seq: HashMap<VtPath, u64>,
    out_seq: HashMap<VtPath, u64>,
    se: SeRegistry,
    /// Aggregate statistics (Table 2 raw material).
    pub stats: ReplicationStats,
}

impl std::fmt::Debug for PrimaryCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrimaryCore")
            .field("crashed", &self.crashed)
            .field("stats", &self.stats)
            .finish()
    }
}

impl PrimaryCore {
    /// Creates the shared primary machinery over `channel`.
    pub fn new(channel: SimChannel, cost: CostModel, fault: FaultPlan, se: SeRegistry) -> Self {
        PrimaryCore {
            channel,
            cost,
            fault,
            buffer: Vec::new(),
            buffered_bytes: 0,
            flush_threshold: 16 * 1024,
            codec: WireCodec::Fixed,
            enc: RecordEncoder::new(),
            crashed: false,
            error: None,
            units: 0,
            flushes: 0,
            next_output_id: 0,
            heartbeat_interval: SimTime::from_millis(50),
            next_heartbeat: SimTime::ZERO,
            nd_seq: HashMap::new(),
            out_seq: HashMap::new(),
            se,
            stats: ReplicationStats::default(),
        }
    }

    /// Selects the wire codec. Call before the first record is logged: the
    /// compact encoder's delta context starts at the log's beginning.
    pub fn set_codec(&mut self, codec: WireCodec) {
        debug_assert_eq!(self.stats.messages_logged(), 0, "codec chosen after logging began");
        self.codec = codec;
    }

    /// Consumes the core, returning the channel (the harness drains it into
    /// the backup's log) and the final statistics.
    pub fn into_parts(self) -> (SimChannel, ReplicationStats) {
        (self.channel, self.stats)
    }

    /// The replication channel, for a co-simulation driver that pulls
    /// delivered frames for a hot standby while the primary still runs.
    pub fn channel_mut(&mut self) -> &mut SimChannel {
        &mut self.channel
    }

    /// Replication statistics so far (final values via
    /// [`into_parts`](PrimaryCore::into_parts)).
    pub fn stats(&self) -> &ReplicationStats {
        &self.stats
    }

    fn vt(t: &ThreadObs<'_>) -> VtPath {
        t.vt.expect("replication hooks fire for application threads only").clone()
    }

    /// Buffers one record, charging its creation to `cat`.
    fn log(&mut self, rec: Record, cat: Category, create_cost: SimTime, acct: &mut TimeAccount) {
        self.log_deferred(rec, cat, create_cost, acct);
        self.maybe_flush(acct);
    }

    /// Buffers one record *without* a threshold flush — used when several
    /// records must reach the backup atomically (a native's result and its
    /// side-effect snapshot): a flush boundary between them would leave
    /// the backup with a logged result but a stale volatile-state
    /// snapshot, silently corrupting recovery.
    fn log_deferred(
        &mut self,
        rec: Record,
        cat: Category,
        create_cost: SimTime,
        acct: &mut TimeAccount,
    ) {
        if self.crashed {
            return;
        }
        acct.charge(cat, create_cost);
        // Compact bodies are encoded *now*, not at flush, so the delta
        // context sees records in log order regardless of flush boundaries.
        let frame = match self.codec {
            WireCodec::Fixed => rec.encode(),
            WireCodec::Compact => self.enc.encode_body(&rec),
        };
        self.stats.count_record(&rec, frame.len() as u64);
        self.stats.bytes_logged += frame.len() as u64;
        self.buffered_bytes += frame.len();
        self.buffer.push(frame);
    }

    fn maybe_flush(&mut self, acct: &mut TimeAccount) {
        if self.buffered_bytes >= self.flush_threshold {
            self.flush(acct);
        }
    }

    /// Sends every buffered record to the backup, charging the sender-side
    /// cost to the communication category. Fixed codec: one message per
    /// record. Compact codec: one batch frame for the whole buffer.
    pub fn flush(&mut self, acct: &mut TimeAccount) {
        if self.buffer.is_empty() {
            return;
        }
        match self.codec {
            WireCodec::Fixed => {
                for frame in self.buffer.drain(..) {
                    let cost = self.channel.send(acct.now(), frame);
                    acct.charge(Category::Communication, cost);
                }
            }
            WireCodec::Compact => {
                let frame = build_batch_frame(&self.buffer);
                self.buffer.clear();
                // The frame header (tag + count) is wire overhead the
                // bodies didn't account for.
                self.stats.bytes_logged += (frame.len() - self.buffered_bytes) as u64;
                let cost = self.channel.send(acct.now(), frame);
                acct.charge(Category::Communication, cost);
            }
        }
        self.buffered_bytes = 0;
        self.flushes += 1;
        self.stats.flushes = self.flushes;
        if let FaultPlan::AfterFlush(n) = self.fault {
            if self.flushes > n {
                self.crashed = true;
            }
        }
    }

    /// Sets the failure-detector heartbeat interval (the harness aligns it
    /// with [`ftjvm_netsim::FailureDetector`]).
    pub fn set_heartbeat_interval(&mut self, interval: SimTime) {
        self.heartbeat_interval = interval;
    }

    /// Per-unit tick: drives the instruction-count fault plan and the
    /// failure-detection heartbeat (the paper's dedicated system thread;
    /// here a time-driven send on the log channel).
    fn tick(&mut self, acct: &mut TimeAccount) {
        self.units += 1;
        if let FaultPlan::AfterInstructions(n) = self.fault {
            if self.units > n {
                self.crashed = true;
            }
        }
        if !self.crashed && acct.now() >= self.next_heartbeat {
            self.next_heartbeat = acct.now() + self.heartbeat_interval;
            // Heartbeats bypass the batch buffer under both codecs: they
            // are liveness signals sent the moment they are due, and the
            // self-describing frame format lets fixed heartbeat frames
            // interleave with compact batches.
            let rec = Record::Heartbeat { now_ns: acct.now().as_nanos() };
            let frame = rec.encode();
            self.stats.count_record(&rec, frame.len() as u64);
            let cost = self.channel.send(acct.now(), frame);
            acct.charge(Category::Communication, cost);
        }
    }

    fn stop(&mut self) -> Option<StopReason> {
        if let Some(e) = self.error.take() {
            return Some(StopReason::Error(e));
        }
        if self.crashed {
            return Some(StopReason::Crash);
        }
        None
    }

    /// True if a side-effect handler manages this native.
    pub(crate) fn se_manages(&self, name: &str) -> bool {
        self.se.handler_for(name).is_some()
    }

    /// ND-table lookup on every native invocation (§4.1): non-deterministic
    /// natives are intercepted; everything else runs untouched.
    fn pre_native(&mut self, decl: &NativeDecl, acct: &mut TimeAccount) -> NativeDirective {
        acct.charge(Category::Misc, self.cost.nd_table_lookup);
        if decl.nondeterministic {
            self.stats.nm_intercepted += 1;
        }
        NativeDirective::Execute
    }

    /// Logs the result of an intercepted native and runs the SE-handler
    /// `log` upcall. Needs the environment for handler snapshots.
    fn post_native(
        &mut self,
        env: &ftjvm_vm::SimEnv,
        t: &ThreadObs<'_>,
        decl: &NativeDecl,
        outcome: &NativeOutcome,
        output_id: Option<u64>,
        acct: &mut TimeAccount,
    ) {
        if self.crashed {
            return;
        }
        let vt = Self::vt(t);
        if decl.nondeterministic {
            let result = match &outcome.result {
                Ok(v) => match v.map(WireValue::from_value).transpose() {
                    Ok(wv) => LoggedResult::Ok(wv),
                    Err(_) => {
                        // Restriction R2: native results containing
                        // replica-local references cannot be replicated.
                        self.error = Some(VmError::Internal(format!(
                            "native `{}` returned a reference value; R2 forbids logging it",
                            decl.name
                        )));
                        return;
                    }
                },
                Err(abort) => LoggedResult::Err { code: abort.code, msg: abort.msg.clone() },
            };
            let mut wire_out_args = Vec::with_capacity(outcome.out_args.len());
            for (idx, contents) in &outcome.out_args {
                let mut wire = Vec::with_capacity(contents.len());
                for v in contents {
                    match WireValue::from_value(*v) {
                        Ok(w) => wire.push(w),
                        Err(_) => {
                            self.error = Some(VmError::Internal(format!(
                                "native `{}` stored a reference into a logged out-argument (R2)",
                                decl.name
                            )));
                            return;
                        }
                    }
                }
                wire_out_args.push((*idx, wire));
            }
            let seq = self.nd_seq.entry(vt.clone()).or_insert(0);
            *seq += 1;
            let rec = Record::NativeResult {
                t: vt.clone(),
                seq: *seq,
                sig_hash: sig_hash(&decl.name),
                result,
                out_args: wire_out_args,
            };
            self.log_deferred(rec, Category::Misc, self.cost.nd_result_record, acct);
        }
        // Side-effect handler `log` upcall — for every native a registered
        // handler manages (the handler's `register` method declared them).
        if self.se.handler_for(&decl.name).is_some() {
            if let Some((handler, payload)) =
                self.se.log(env, &decl.name, &[] as &[Value], outcome, output_id)
            {
                self.log_deferred(
                    Record::SeState { handler, payload },
                    Category::Misc,
                    self.cost.se_log,
                    acct,
                );
            }
        }
        // Single flush point: the result record and its side-effect
        // snapshot always travel in the same flush.
        self.maybe_flush(acct);
        // Fault plan: crash right after performing the n-th output.
        if decl.output {
            if let (FaultPlan::AfterOutput(n), Some(id)) = (self.fault, output_id) {
                if id >= n {
                    self.crashed = true;
                }
            }
        }
    }

    /// Output commit (§3.4): log the commit record, flush everything, and
    /// wait pessimistically for the backup's acknowledgment.
    fn begin_output(&mut self, t: &ThreadObs<'_>, acct: &mut TimeAccount) -> u64 {
        let vt = Self::vt(t);
        let id = self.next_output_id;
        self.next_output_id += 1;
        let seq = self.out_seq.entry(vt.clone()).or_insert(0);
        *seq += 1;
        let rec = Record::OutputCommit { t: vt, seq: *seq, output_id: id };
        self.log(rec, Category::Misc, self.cost.nd_result_record, acct);
        self.stats.output_commits += 1;
        self.flush(acct);
        let ack_at = self.channel.ack_arrival(acct.now());
        acct.wait_until(Category::Pessimistic, ack_at);
        // Fault plan: crash after the commit but before the output itself —
        // the paper's "uncertain output" window.
        if let FaultPlan::BeforeOutput(n) = self.fault {
            if id >= n {
                self.crashed = true;
            }
        }
        id
    }
}

/// Primary coordinator for **replicated lock synchronization** (§4.2).
#[derive(Debug)]
pub struct LockSyncPrimary {
    /// Shared primary machinery.
    pub common: PrimaryCore,
    next_l_id: u64,
}

impl LockSyncPrimary {
    /// Creates the coordinator.
    pub fn new(common: PrimaryCore) -> Self {
        LockSyncPrimary { common, next_l_id: 0 }
    }
}

impl Coordinator for LockSyncPrimary {
    fn mode(&self) -> &'static str {
        "lock-sync-primary"
    }

    fn stop(&mut self) -> Option<StopReason> {
        self.common.stop()
    }

    fn check_preempt(&mut self, _t: &ThreadObs<'_>, acct: &mut TimeAccount) -> bool {
        self.common.tick(acct);
        false
    }

    fn post_monitor_acquire(
        &mut self,
        t: &ThreadObs<'_>,
        _obj: ObjRef,
        l_id: Option<u64>,
        l_asn: u64,
        acct: &mut TimeAccount,
    ) -> Option<u64> {
        let vt = PrimaryCore::vt(t);
        let (l_id, assigned) = match l_id {
            Some(id) => (id, None),
            None => {
                // First acquisition anywhere: assign the virtual lock id
                // and log the id map (§4.2).
                let id = self.next_l_id;
                self.next_l_id += 1;
                let id_map_cost = self.common.cost.id_map_record;
                self.common.log(
                    Record::IdMap { l_id: id, t: vt.clone(), t_asn: t.t_asn },
                    Category::LockAcquire,
                    id_map_cost,
                    acct,
                );
                (id, Some(id))
            }
        };
        let lock_cost = self.common.cost.lock_record;
        self.common.log(
            Record::LockAcq { t: vt, t_asn: t.t_asn, l_id, l_asn },
            Category::LockAcquire,
            lock_cost,
            acct,
        );
        self.common.stats.locks_acquired += 1;
        self.common.stats.largest_lasn = self.common.stats.largest_lasn.max(l_asn);
        assigned
    }

    fn pre_native(
        &mut self,
        _t: &ThreadObs<'_>,
        decl: &NativeDecl,
        _args: &[Value],
        acct: &mut TimeAccount,
    ) -> NativeDirective {
        self.common.pre_native(decl, acct)
    }

    fn post_native(
        &mut self,
        t: &ThreadObs<'_>,
        decl: &NativeDecl,
        outcome: &NativeOutcome,
        output_id: Option<u64>,
        env: &ftjvm_vm::SimEnv,
        acct: &mut TimeAccount,
    ) {
        self.common.post_native(env, t, decl, outcome, output_id, acct);
    }

    fn begin_output(
        &mut self,
        t: &ThreadObs<'_>,
        _decl: &NativeDecl,
        acct: &mut TimeAccount,
    ) -> u64 {
        self.common.begin_output(t, acct)
    }

    fn on_exit(&mut self, acct: &mut TimeAccount) {
        self.common.flush(acct);
    }
}

/// Primary coordinator for **interval-compressed replicated lock
/// synchronization** — the DejaVu-style optimization the paper's related
/// work points at ("there would only be 56 intervals instead of 700258
/// lock acquisitions"). Globally-consecutive acquisitions by one thread
/// collapse into a single [`Record::LockInterval`]; virtual lock ids and
/// id maps become unnecessary because the backup enforces a *total* order
/// over all acquisitions rather than a per-lock order.
#[derive(Debug)]
pub struct IntervalPrimary {
    /// Shared primary machinery.
    pub common: PrimaryCore,
    open: Option<(VtPath, u64, u64)>, // (thread, t_asn_start, count)
}

impl IntervalPrimary {
    /// Creates the coordinator.
    pub fn new(common: PrimaryCore) -> Self {
        IntervalPrimary { common, open: None }
    }

    fn close_open(&mut self, acct: &mut TimeAccount) {
        if let Some((t, t_asn_start, count)) = self.open.take() {
            let cost = self.common.cost.lock_record;
            self.common.log(
                Record::LockInterval { t, t_asn_start, count },
                Category::LockAcquire,
                cost,
                acct,
            );
        }
    }
}

impl Coordinator for IntervalPrimary {
    fn mode(&self) -> &'static str {
        "lock-interval-primary"
    }

    fn stop(&mut self) -> Option<StopReason> {
        self.common.stop()
    }

    fn check_preempt(&mut self, _t: &ThreadObs<'_>, acct: &mut TimeAccount) -> bool {
        self.common.tick(acct);
        false
    }

    fn post_monitor_acquire(
        &mut self,
        t: &ThreadObs<'_>,
        _obj: ObjRef,
        _l_id: Option<u64>,
        l_asn: u64,
        acct: &mut TimeAccount,
    ) -> Option<u64> {
        let vt = PrimaryCore::vt(t);
        let extended = match &mut self.open {
            Some((open_t, _, count)) if *open_t == vt => {
                *count += 1;
                true
            }
            _ => false,
        };
        acct.charge(Category::LockAcquire, self.common.cost.interval_update);
        if !extended {
            self.close_open(acct);
            self.open = Some((vt, t.t_asn, 1));
        }
        self.common.stats.locks_acquired += 1;
        self.common.stats.largest_lasn = self.common.stats.largest_lasn.max(l_asn);
        None
    }

    fn pre_native(
        &mut self,
        _t: &ThreadObs<'_>,
        decl: &NativeDecl,
        _args: &[Value],
        acct: &mut TimeAccount,
    ) -> NativeDirective {
        self.common.pre_native(decl, acct)
    }

    fn post_native(
        &mut self,
        t: &ThreadObs<'_>,
        decl: &NativeDecl,
        outcome: &NativeOutcome,
        output_id: Option<u64>,
        env: &ftjvm_vm::SimEnv,
        acct: &mut TimeAccount,
    ) {
        // The result record must be ordered after the interval that covers
        // the acquisitions preceding it — close the interval first when the
        // native was intercepted.
        if decl.nondeterministic || self.common.se_manages(&decl.name) {
            self.close_open(acct);
        }
        self.common.post_native(env, t, decl, outcome, output_id, acct);
    }

    fn begin_output(
        &mut self,
        t: &ThreadObs<'_>,
        _decl: &NativeDecl,
        acct: &mut TimeAccount,
    ) -> u64 {
        // Output commit is a synchronization point: the open interval must
        // reach the backup with everything else.
        self.close_open(acct);
        self.common.begin_output(t, acct)
    }

    fn on_exit(&mut self, acct: &mut TimeAccount) {
        self.close_open(acct);
        self.common.flush(acct);
    }
}

/// Primary coordinator for **replicated thread scheduling** (§4.2).
#[derive(Debug)]
pub struct TsPrimary {
    /// Shared primary machinery.
    pub common: PrimaryCore,
    /// The last application thread that yielded (its progress snapshot),
    /// pending the next application dispatch.
    pending_from: Option<ThreadSnap>,
    /// Last observed `br_cnt` per thread, to charge `br_cnt`-maintenance
    /// costs once per control-flow change.
    last_br: HashMap<u32, u64>,
}

impl TsPrimary {
    /// Creates the coordinator.
    pub fn new(common: PrimaryCore) -> Self {
        TsPrimary { common, pending_from: None, last_br: HashMap::new() }
    }
}

impl Coordinator for TsPrimary {
    fn mode(&self) -> &'static str {
        "ts-primary"
    }

    fn stop(&mut self) -> Option<StopReason> {
        self.common.stop()
    }

    fn check_preempt(&mut self, t: &ThreadObs<'_>, acct: &mut TimeAccount) -> bool {
        self.common.tick(acct);
        // The extra interpreter-loop work that tracks progress (the
        // paper's dominant "Misc" overhead): a PC update after every
        // bytecode plus `br_cnt` maintenance on each control-flow change.
        let mut cost = self.common.cost.ts_pc_track;
        let last = self.last_br.entry(t.t.0).or_insert(0);
        if t.br_cnt > *last {
            let delta = t.br_cnt - *last;
            *last = t.br_cnt;
            cost += SimTime::from_nanos(self.common.cost.ts_br_track.as_nanos() * delta);
        }
        acct.charge(Category::Misc, cost);
        false
    }

    fn on_switch(
        &mut self,
        from: Option<&ThreadSnap>,
        _reason: SwitchReason,
        to: &ThreadSnap,
        acct: &mut TimeAccount,
    ) {
        if let Some(f) = from {
            if f.vt.is_some() {
                self.pending_from = Some(f.clone());
            }
        }
        if to.vt.is_none() {
            return; // switches to system threads are not replicated
        }
        if let Some(prev) = self.pending_from.take() {
            if prev.t != to.t {
                let rec = Record::Sched {
                    t: prev.vt.clone().expect("pending_from is an app thread"),
                    br_cnt: prev.br_cnt,
                    method: prev.method.map(|m| m.0).unwrap_or(u32::MAX),
                    pc_off: prev.pc,
                    mon_cnt: prev.mon_cnt,
                    l_asn: prev.blocked_lasn,
                    in_native: prev.in_native,
                    next: to.vt.clone().expect("checked vt above"),
                };
                let cost = self.common.cost.sched_record;
                self.common.log(rec, Category::Resched, cost, acct);
            }
        }
    }

    fn begin_output(
        &mut self,
        t: &ThreadObs<'_>,
        _decl: &NativeDecl,
        acct: &mut TimeAccount,
    ) -> u64 {
        self.common.begin_output(t, acct)
    }

    fn pre_native(
        &mut self,
        _t: &ThreadObs<'_>,
        decl: &NativeDecl,
        _args: &[Value],
        acct: &mut TimeAccount,
    ) -> NativeDirective {
        self.common.pre_native(decl, acct)
    }

    fn post_native(
        &mut self,
        t: &ThreadObs<'_>,
        decl: &NativeDecl,
        outcome: &NativeOutcome,
        output_id: Option<u64>,
        env: &ftjvm_vm::SimEnv,
        acct: &mut TimeAccount,
    ) {
        self.common.post_native(env, t, decl, outcome, output_id, acct);
    }

    fn on_exit(&mut self, acct: &mut TimeAccount) {
        self.common.flush(acct);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftjvm_netsim::NetParams;

    fn core_with(fault: FaultPlan) -> PrimaryCore {
        let channel = SimChannel::new(NetParams::default());
        PrimaryCore::new(channel, CostModel::default(), fault, SeRegistry::with_builtins())
    }

    fn lock_rec(n: u64) -> Record {
        Record::LockAcq { t: VtPath::root(), t_asn: n, l_id: 0, l_asn: n }
    }

    #[test]
    fn records_buffer_until_threshold_then_flush_together() {
        let mut core = core_with(FaultPlan::None);
        core.flush_threshold = 200; // a handful of 40-byte records
        let mut acct = TimeAccount::new();
        for n in 1..=4 {
            core.log(lock_rec(n), Category::LockAcquire, SimTime::from_nanos(10), &mut acct);
        }
        assert_eq!(core.stats.lock_acq_records, 4);
        // Below threshold: nothing sent yet.
        let sent_before = {
            let (channel, _) = core.into_parts();
            channel.stats().messages_sent
        };
        assert!(sent_before <= 4, "some records may have flushed at the boundary");
    }

    #[test]
    fn zero_threshold_flushes_every_record() {
        let mut core = core_with(FaultPlan::None);
        core.flush_threshold = 0;
        let mut acct = TimeAccount::new();
        for n in 1..=5 {
            core.log(lock_rec(n), Category::LockAcquire, SimTime::from_nanos(10), &mut acct);
        }
        assert_eq!(core.stats.flushes, 5);
        let (channel, stats) = core.into_parts();
        assert_eq!(channel.stats().messages_sent, 5);
        assert_eq!(stats.lock_acq_records, 5);
    }

    #[test]
    fn crashed_core_stops_logging() {
        let mut core = core_with(FaultPlan::AfterInstructions(2));
        core.flush_threshold = 0;
        let mut acct = TimeAccount::new();
        core.tick(&mut acct);
        core.tick(&mut acct);
        core.tick(&mut acct); // > 2 -> crash
        assert!(matches!(core.stop(), Some(StopReason::Crash)));
        core.log(lock_rec(1), Category::LockAcquire, SimTime::from_nanos(10), &mut acct);
        assert_eq!(core.stats.lock_acq_records, 0, "post-crash records are dropped");
    }

    #[test]
    fn heartbeats_ride_the_channel_on_schedule() {
        let mut core = core_with(FaultPlan::None);
        core.set_heartbeat_interval(SimTime::from_millis(10));
        let mut acct = TimeAccount::new();
        core.tick(&mut acct); // t=0: first heartbeat
        acct.charge(Category::Base, SimTime::from_millis(25));
        core.tick(&mut acct); // t=25ms: second
        core.tick(&mut acct); // still within interval: none
        assert_eq!(core.stats.heartbeats, 2);
    }

    #[test]
    fn output_commit_flushes_and_waits_pessimistically() {
        let mut core = core_with(FaultPlan::None);
        core.flush_threshold = usize::MAX; // only commits flush
        let mut acct = TimeAccount::new();
        core.log(lock_rec(1), Category::LockAcquire, SimTime::from_nanos(10), &mut acct);
        let obs = ThreadObs {
            t: ftjvm_vm::ThreadIdx(0),
            vt: Some(&VtPath::root()),
            br_cnt: 0,
            mon_cnt: 0,
            t_asn: 0,
            method: None,
            pc: 0,
            in_native: false,
        };
        let before = acct.get(Category::Pessimistic);
        let id = core.begin_output(&obs, &mut acct);
        assert_eq!(id, 0);
        assert!(acct.get(Category::Pessimistic) > before, "ack wait must be charged");
        assert!(core.stats.flushes >= 1);
        assert_eq!(core.stats.output_commit_records, 1);
        let id2 = core.begin_output(&obs, &mut acct);
        assert_eq!(id2, 1, "output ids are the global commit sequence");
    }

    #[test]
    fn before_output_fault_fires_in_the_uncertain_window() {
        let mut core = core_with(FaultPlan::BeforeOutput(0));
        let mut acct = TimeAccount::new();
        let vt = VtPath::root();
        let obs = ThreadObs {
            t: ftjvm_vm::ThreadIdx(0),
            vt: Some(&vt),
            br_cnt: 0,
            mon_cnt: 0,
            t_asn: 0,
            method: None,
            pc: 0,
            in_native: false,
        };
        let _ = core.begin_output(&obs, &mut acct);
        // Commit happened (record sent) but the crash flag is up before
        // the output body can run.
        assert!(matches!(core.stop(), Some(StopReason::Crash)));
        assert_eq!(core.stats.output_commit_records, 1);
    }
}
