//! The top-level fault-tolerant JVM harness: a primary/backup replica pair
//! over a shared world, with fail-stop fault injection and recovery.
//!
//! [`FtJvm`] owns a program and a configuration; each `run_*` method builds
//! fresh replicas over a fresh [`World`]:
//!
//! * [`FtJvm::run_unreplicated`] — the baseline (the paper's "original
//!   JVM"), used as the denominator of every normalized figure;
//! * [`FtJvm::run_replicated`] — primary with full replication, cold
//!   backup just logging (the failure-free runs of Figures 2–4);
//! * [`FtJvm::run_with_failure`] — primary crashes per the fault plan, the
//!   backup detects the failure, replays the log, and carries the program
//!   to completion as the new authority.
//!
//! All orchestration lives in [`crate::runtime::ReplicaRuntime`]; the
//! `run_*` methods here are thin wrappers. Set
//! [`FtConfig::lag_budget`] to [`LagBudget::Hot`] to co-simulate a hot
//! standby that streams the log and replays only the unconsumed suffix at
//! failover.

use crate::runtime::{LagBudget, ReplicaRuntime};
use crate::se::SeRegistry;
use crate::stats::ReplicationStats;
use ftjvm_netsim::{ChannelStats, FailureDetector, FaultPlan, NetFaultPlan, SimTime, WireCodec};
use ftjvm_vm::{
    NativeRegistry, NoopCoordinator, Program, RunReport, SharedWorld, SimEnv, Vm, VmConfig,
    VmError, World,
};
use std::sync::Arc;

/// Which of the paper's two techniques masks multithreading
/// non-determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationMode {
    /// Replicated lock synchronization (§4.2; assumes R4A).
    LockSync,
    /// Replicated thread scheduling (§4.2; assumes R4B / green threads).
    ThreadSched,
}

/// How lock-synchronization records are encoded on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LockVariant {
    /// One record per acquisition, exactly as in the paper (§4.2).
    #[default]
    PerAcquisition,
    /// DejaVu-style interval compression (discussed in the paper's related
    /// work): globally-consecutive acquisitions by one thread collapse
    /// into a single record, typically shrinking the lock log by orders of
    /// magnitude on low-contention programs.
    Intervals,
}

impl std::fmt::Display for LockVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LockVariant::PerAcquisition => "per-acquisition",
            LockVariant::Intervals => "intervals",
        })
    }
}

impl std::fmt::Display for ReplicationMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ReplicationMode::LockSync => "lock-sync",
            ReplicationMode::ThreadSched => "thread-sched",
        })
    }
}

/// Configuration of a replica pair.
#[derive(Clone)]
pub struct FtConfig {
    /// Replication technique.
    pub mode: ReplicationMode,
    /// Lock-record encoding for [`ReplicationMode::LockSync`].
    pub lock_variant: LockVariant,
    /// A *warm* backup replays log records as they arrive instead of only
    /// after a failure (the paper: "Keeping the backup updated would
    /// require only minor modifications"). Functionally identical; the
    /// replay work moves from the failover path to normal operation, so
    /// [`PairReport::failover_latency`] collapses to detection time.
    /// Accounting-only — for an actually co-simulated standby see
    /// [`FtConfig::lag_budget`].
    pub warm_backup: bool,
    /// How far the backup may lag the primary's log: [`LagBudget::Cold`]
    /// (store-only, replay at failover — the paper's baseline) or
    /// [`LagBudget::Hot`] (co-simulated streaming replay; only the
    /// unconsumed suffix remains at failover).
    pub lag_budget: LagBudget,
    /// Base VM configuration (quantum, heap, cost model, entry argument).
    /// Seeds inside are overridden per replica.
    pub vm: VmConfig,
    /// Scheduler seed of the primary.
    pub primary_seed: u64,
    /// Scheduler seed of the backup — deliberately different: replication
    /// must mask the interleaving difference.
    pub backup_seed: u64,
    /// Wall-clock skew of each replica (ND input source).
    pub primary_skew: SimTime,
    /// Wall-clock skew of the backup.
    pub backup_skew: SimTime,
    /// Environment RNG seed of each replica (ND input source).
    pub primary_env_seed: u64,
    /// Environment RNG seed of the backup.
    pub backup_env_seed: u64,
    /// When (if ever) the primary fail-stops.
    pub fault: FaultPlan,
    /// Bytes of buffered records that trigger a periodic flush to the
    /// backup (also flushed at every output commit and at program exit).
    /// Smaller values narrow the window of records lost at a crash, at a
    /// higher communication cost.
    pub flush_threshold: usize,
    /// Wire codec for the primary-to-backup log. [`WireCodec::Fixed`]
    /// (default) sends one fixed-width message per record;
    /// [`WireCodec::Compact`] delta/varint-encodes records and sends one
    /// batch frame per flush. Replay behavior is identical under both.
    pub codec: WireCodec,
    /// Failure-detection parameters.
    pub detector: FailureDetector,
    /// Epoch checkpoint interval, in buffer flushes. `Some(n)`: after every
    /// `n` flushes the primary cuts an epoch at the next quiescent point —
    /// it snapshots the VM, marks the log, and truncates the retained
    /// replay suffix, bounding both its re-integration buffer and the
    /// backup's stored log to roughly one epoch. `None` (the default)
    /// disables checkpointing entirely; the primary's behavior is then
    /// byte-identical to a build without this feature.
    pub checkpoint_interval: Option<u64>,
    /// Network fault plan for the replication link. Unarmed (the default)
    /// keeps the paper's perfect FIFO channel; armed, the log travels over
    /// a lossy datagram link behind the seq/CRC/ack/nack/retransmit
    /// reliability sublayer.
    pub net_fault: NetFaultPlan,
    /// Factory for the side-effect-handler registry (one per replica).
    pub se_factory: fn() -> SeRegistry,
    /// Worker threads for the promotion path's suffix decode (seal
    /// verification and stateless record decode fan out; compact batches
    /// keep their sequential context chain). Replay output is
    /// byte-identical for every value — this knob trades wall-clock time
    /// only. Default 1 (fully sequential).
    pub replay_threads: usize,
}

impl Default for FtConfig {
    fn default() -> Self {
        FtConfig {
            mode: ReplicationMode::LockSync,
            lock_variant: LockVariant::PerAcquisition,
            warm_backup: false,
            lag_budget: LagBudget::Cold,
            vm: VmConfig::default(),
            primary_seed: 11,
            backup_seed: 1337,
            primary_skew: SimTime::from_millis(2),
            backup_skew: SimTime::from_millis(17),
            primary_env_seed: 0xA11CE,
            backup_env_seed: 0xB0B,
            fault: FaultPlan::None,
            flush_threshold: 16 * 1024,
            codec: WireCodec::Fixed,
            checkpoint_interval: None,
            detector: FailureDetector::default(),
            net_fault: NetFaultPlan::default(),
            se_factory: SeRegistry::with_builtins,
            replay_threads: 1,
        }
    }
}

impl std::fmt::Debug for FtConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FtConfig")
            .field("mode", &self.mode)
            .field("lag_budget", &self.lag_budget)
            .field("codec", &self.codec)
            .field("checkpoint_interval", &self.checkpoint_interval)
            .field("fault", &self.fault)
            .field("net_fault", &self.net_fault)
            .field("primary_seed", &self.primary_seed)
            .field("backup_seed", &self.backup_seed)
            .finish()
    }
}

/// Everything observable about one replicated run.
#[derive(Debug)]
pub struct PairReport {
    /// The primary's run report (per-category times, counters).
    pub primary: RunReport,
    /// The primary's replication statistics (Table 2 raw material).
    pub primary_stats: ReplicationStats,
    /// True if the fault plan fired.
    pub crashed: bool,
    /// The backup's run report, if it had to take over.
    pub backup: Option<RunReport>,
    /// Backup-side replication statistics, if it took over.
    pub backup_stats: Option<ReplicationStats>,
    /// How long failure detection took, measured from the heartbeat
    /// arrivals the backup actually observed: the detector's deadline
    /// re-arms at each heartbeat and fires when the next never comes.
    pub detection_latency: SimTime,
    /// Simulated time the backup spent replaying the log (recovery), as
    /// opposed to continuing live execution afterwards. For a hot standby
    /// this is only the unconsumed suffix left at promotion.
    pub recovery_replay_time: SimTime,
    /// End-to-end failover latency: detection plus the replay left to do —
    /// the whole log for a cold backup, the unconsumed suffix for a hot
    /// standby, nothing for the legacy warm accounting flag.
    pub failover_latency: SimTime,
    /// Log-channel statistics.
    pub channel: ChannelStats,
    /// The shared world: console, files, applied outputs.
    pub world: SharedWorld,
}

impl PairReport {
    /// The console text lines the external world observed, in order.
    pub fn console(&self) -> Vec<String> {
        self.world.borrow().console_texts()
    }

    /// Checks that every console output id is unique (no duplicated
    /// outputs — the observable half of exactly-once).
    ///
    /// # Errors
    /// Returns the offending output id.
    pub fn check_no_duplicate_outputs(&self) -> Result<(), u64> {
        let world = self.world.borrow();
        let mut seen = std::collections::BTreeSet::new();
        for line in world.console() {
            if !seen.insert(line.output_id) {
                return Err(line.output_id);
            }
        }
        Ok(())
    }
}

/// A fault-tolerant JVM: a program plus a replica-pair configuration.
#[derive(Debug)]
pub struct FtJvm {
    program: Arc<Program>,
    natives: NativeRegistry,
    cfg: FtConfig,
}

impl FtJvm {
    /// Creates a harness with the builtin native registry.
    pub fn new(program: Arc<Program>, cfg: FtConfig) -> Self {
        FtJvm { program, natives: NativeRegistry::with_builtins(), cfg }
    }

    /// Creates a harness with a custom native registry (applications with
    /// their own natives and SE handlers).
    pub fn with_natives(program: Arc<Program>, natives: NativeRegistry, cfg: FtConfig) -> Self {
        FtJvm { program, natives, cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &FtConfig {
        &self.cfg
    }

    fn vm_config(&self, seed: u64) -> VmConfig {
        VmConfig { sched_seed: seed, ..self.cfg.vm.clone() }
    }

    fn primary_env(&self, world: &SharedWorld) -> SimEnv {
        SimEnv::new("primary", world.clone(), self.cfg.primary_skew, self.cfg.primary_env_seed)
    }

    /// The replica runtime this harness drives (orchestration entry
    /// point — build replicas and step them directly for finer control).
    pub fn runtime(&self) -> ReplicaRuntime {
        ReplicaRuntime::new(self.program.clone(), self.natives.clone(), self.cfg.clone())
    }

    /// Runs the program on a single, unreplicated VM (the baseline of every
    /// normalized measurement).
    ///
    /// # Errors
    /// Propagates fatal VM errors.
    pub fn run_unreplicated(&self) -> Result<(RunReport, SharedWorld), VmError> {
        let world = World::shared();
        let env = self.primary_env(&world);
        let mut vm = Vm::new(
            self.program.clone(),
            self.natives.clone(),
            env,
            self.vm_config(self.cfg.primary_seed),
        )?;
        let report = vm.run(&mut NoopCoordinator::new())?;
        Ok((report, world))
    }

    /// Runs the primary under full replication. If the fault plan fires,
    /// the backup detects the failure, replays the log and finishes the
    /// program. With [`FtConfig::lag_budget`] set to [`LagBudget::Hot`]
    /// the pair is co-simulated and only the unconsumed log suffix is
    /// replayed at failover.
    ///
    /// # Errors
    /// Propagates fatal VM errors from either replica, including
    /// [`VmError::ReplayDivergence`] when recovery detects that the
    /// program violated the mode's assumptions (e.g. a data race under
    /// lock synchronization).
    pub fn run_replicated(&self) -> Result<PairReport, VmError> {
        self.runtime().run_pair(self.cfg.fault)
    }

    /// Like [`FtJvm::run_replicated`] but asserts that a fault plan is
    /// armed (catching benchmarks that forgot to arm one).
    ///
    /// # Errors
    /// Propagates fatal VM errors.
    ///
    /// # Panics
    /// Panics if the configured fault plan can never fire.
    pub fn run_with_failure(&self) -> Result<PairReport, VmError> {
        assert!(self.cfg.fault.is_armed(), "run_with_failure requires an armed fault plan");
        self.run_replicated()
    }

    /// Runs an N-replica group per `gcfg`: rank-ordered promotion chains,
    /// configurable ack policies, and optional ND-record digest voting
    /// (requires [`FtConfig::checkpoint_interval`]). See
    /// [`crate::group::GroupTask`].
    ///
    /// # Errors
    /// Propagates fatal VM errors from any replica and configuration
    /// errors from [`crate::group::GroupTask::new`].
    pub fn run_group(
        &self,
        gcfg: crate::group::GroupConfig,
    ) -> Result<crate::group::GroupReport, VmError> {
        crate::group::GroupTask::new(self.runtime(), gcfg)?.run_to_completion()?.into_report()
    }

    /// Runs a checkpointed hot pair per `plan` — backup kill, degraded
    /// mode, and re-integration (requires
    /// [`FtConfig::checkpoint_interval`]). See
    /// [`crate::runtime::ReplicaRuntime::run_checkpointed`].
    ///
    /// # Errors
    /// Propagates fatal VM errors from any replica.
    pub fn run_checkpointed(
        &self,
        plan: crate::runtime::CheckpointPlan,
    ) -> Result<crate::runtime::CheckpointReport, VmError> {
        self.runtime().run_checkpointed(plan)
    }

    /// Runs the failure-free pair, then replays the complete log on a
    /// backup — used by benchmarks to measure backup replay cost (the
    /// "backup" bars of Figure 2) without needing a mid-run crash.
    ///
    /// # Errors
    /// Propagates fatal VM errors.
    pub fn run_backup_replay(&self) -> Result<PairReport, VmError> {
        let runtime = self.runtime();
        let world = World::shared();
        let (primary_report, frames, primary_stats, channel_stats) =
            runtime.run_primary_to_log(&world, FaultPlan::None)?;
        let (backup_report, backup_stats, recovered_at) = runtime.replay_log(&world, frames)?;
        let recovery_replay_time = recovered_at.unwrap_or_else(|| backup_report.acct.now());
        Ok(PairReport {
            primary: primary_report,
            primary_stats,
            crashed: false,
            backup: Some(backup_report),
            backup_stats: Some(backup_stats),
            detection_latency: SimTime::ZERO,
            recovery_replay_time,
            failover_latency: SimTime::ZERO,
            channel: channel_stats,
            world,
        })
    }

    /// Verifies restriction R4A the way the paper suggests: one
    /// unreplicated run under the Eraser-style lockset detector. An empty
    /// result means the observed execution obeyed the locking discipline
    /// and the program is safe for [`ReplicationMode::LockSync`] (dynamic
    /// detection is sound for the observed interleaving only — run it
    /// under several seeds for confidence).
    ///
    /// # Errors
    /// Propagates fatal VM errors.
    pub fn verify_r4a(&self) -> Result<Vec<ftjvm_vm::RaceReport>, VmError> {
        let world = World::shared();
        let env = self.primary_env(&world);
        let mut cfg = self.vm_config(self.cfg.primary_seed);
        cfg.race_detect = true;
        let mut vm = Vm::new(self.program.clone(), self.natives.clone(), env, cfg)?;
        let report = vm.run(&mut NoopCoordinator::new())?;
        Ok(report.races)
    }

    /// Runs the failure-free primary and returns the decoded record stream
    /// it would ship to the backup — the log-inspection entry point used
    /// by `ftjvm-run --dump-log`.
    ///
    /// # Errors
    /// Propagates fatal VM errors.
    pub fn capture_log(&self) -> Result<Vec<crate::records::Record>, VmError> {
        let world = World::shared();
        let (_, frames, _, _) = self.runtime().run_primary_to_log(&world, FaultPlan::None)?;
        crate::codec::decode_frames(frames)
            .map_err(|e| VmError::Internal(format!("own log failed to decode: {e}")))
    }

    /// Convenience: returns a coordinator-less clone of the program for
    /// inspection.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }
}
