//! The top-level fault-tolerant JVM harness: a primary/backup replica pair
//! over a shared world, with fail-stop fault injection and recovery.
//!
//! [`FtJvm`] owns a program and a configuration; each `run_*` method builds
//! fresh replicas over a fresh [`World`]:
//!
//! * [`FtJvm::run_unreplicated`] — the baseline (the paper's "original
//!   JVM"), used as the denominator of every normalized figure;
//! * [`FtJvm::run_replicated`] — primary with full replication, cold
//!   backup just logging (the failure-free runs of Figures 2–4);
//! * [`FtJvm::run_with_failure`] — primary crashes per the fault plan, the
//!   backup detects the failure, replays the log, and carries the program
//!   to completion as the new authority.

use crate::backup::{BackupLog, IntervalBackup, LockSyncBackup, TsBackup};
use crate::primary::{IntervalPrimary, LockSyncPrimary, PrimaryCore, TsPrimary};
use crate::se::SeRegistry;
use crate::stats::ReplicationStats;
use ftjvm_netsim::{ChannelStats, FailureDetector, FaultPlan, SimChannel, SimTime, WireCodec};
use ftjvm_vm::{
    NativeRegistry, NoopCoordinator, Program, RunOutcome, RunReport, SharedWorld, SimEnv, Vm,
    VmConfig, VmError, World,
};
use std::sync::Arc;

/// Which of the paper's two techniques masks multithreading
/// non-determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationMode {
    /// Replicated lock synchronization (§4.2; assumes R4A).
    LockSync,
    /// Replicated thread scheduling (§4.2; assumes R4B / green threads).
    ThreadSched,
}

/// How lock-synchronization records are encoded on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LockVariant {
    /// One record per acquisition, exactly as in the paper (§4.2).
    #[default]
    PerAcquisition,
    /// DejaVu-style interval compression (discussed in the paper's related
    /// work): globally-consecutive acquisitions by one thread collapse
    /// into a single record, typically shrinking the lock log by orders of
    /// magnitude on low-contention programs.
    Intervals,
}

impl std::fmt::Display for LockVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LockVariant::PerAcquisition => "per-acquisition",
            LockVariant::Intervals => "intervals",
        })
    }
}

impl std::fmt::Display for ReplicationMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ReplicationMode::LockSync => "lock-sync",
            ReplicationMode::ThreadSched => "thread-sched",
        })
    }
}

/// Configuration of a replica pair.
#[derive(Clone)]
pub struct FtConfig {
    /// Replication technique.
    pub mode: ReplicationMode,
    /// Lock-record encoding for [`ReplicationMode::LockSync`].
    pub lock_variant: LockVariant,
    /// A *warm* backup replays log records as they arrive instead of only
    /// after a failure (the paper: "Keeping the backup updated would
    /// require only minor modifications"). Functionally identical; the
    /// replay work moves from the failover path to normal operation, so
    /// [`PairReport::failover_latency`] collapses to detection time.
    pub warm_backup: bool,
    /// Base VM configuration (quantum, heap, cost model, entry argument).
    /// Seeds inside are overridden per replica.
    pub vm: VmConfig,
    /// Scheduler seed of the primary.
    pub primary_seed: u64,
    /// Scheduler seed of the backup — deliberately different: replication
    /// must mask the interleaving difference.
    pub backup_seed: u64,
    /// Wall-clock skew of each replica (ND input source).
    pub primary_skew: SimTime,
    /// Wall-clock skew of the backup.
    pub backup_skew: SimTime,
    /// Environment RNG seed of each replica (ND input source).
    pub primary_env_seed: u64,
    /// Environment RNG seed of the backup.
    pub backup_env_seed: u64,
    /// When (if ever) the primary fail-stops.
    pub fault: FaultPlan,
    /// Bytes of buffered records that trigger a periodic flush to the
    /// backup (also flushed at every output commit and at program exit).
    /// Smaller values narrow the window of records lost at a crash, at a
    /// higher communication cost.
    pub flush_threshold: usize,
    /// Wire codec for the primary-to-backup log. [`WireCodec::Fixed`]
    /// (default) sends one fixed-width message per record;
    /// [`WireCodec::Compact`] delta/varint-encodes records and sends one
    /// batch frame per flush. Replay behavior is identical under both.
    pub codec: WireCodec,
    /// Failure-detection parameters.
    pub detector: FailureDetector,
    /// Factory for the side-effect-handler registry (one per replica).
    pub se_factory: fn() -> SeRegistry,
}

impl Default for FtConfig {
    fn default() -> Self {
        FtConfig {
            mode: ReplicationMode::LockSync,
            lock_variant: LockVariant::PerAcquisition,
            warm_backup: false,
            vm: VmConfig::default(),
            primary_seed: 11,
            backup_seed: 1337,
            primary_skew: SimTime::from_millis(2),
            backup_skew: SimTime::from_millis(17),
            primary_env_seed: 0xA11CE,
            backup_env_seed: 0xB0B,
            fault: FaultPlan::None,
            flush_threshold: 16 * 1024,
            codec: WireCodec::Fixed,
            detector: FailureDetector::default(),
            se_factory: SeRegistry::with_builtins,
        }
    }
}

impl std::fmt::Debug for FtConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FtConfig")
            .field("mode", &self.mode)
            .field("codec", &self.codec)
            .field("fault", &self.fault)
            .field("primary_seed", &self.primary_seed)
            .field("backup_seed", &self.backup_seed)
            .finish()
    }
}

/// Everything observable about one replicated run.
#[derive(Debug)]
pub struct PairReport {
    /// The primary's run report (per-category times, counters).
    pub primary: RunReport,
    /// The primary's replication statistics (Table 2 raw material).
    pub primary_stats: ReplicationStats,
    /// True if the fault plan fired.
    pub crashed: bool,
    /// The backup's run report, if it had to take over.
    pub backup: Option<RunReport>,
    /// Backup-side replication statistics, if it took over.
    pub backup_stats: Option<ReplicationStats>,
    /// How long failure detection took (heartbeat interval × misses).
    pub detection_latency: SimTime,
    /// Simulated time the backup spent replaying the log (recovery), as
    /// opposed to continuing live execution afterwards.
    pub recovery_replay_time: SimTime,
    /// End-to-end failover latency: detection plus — for a cold backup —
    /// the log replay. A warm backup already replayed during normal
    /// operation, so only detection remains.
    pub failover_latency: SimTime,
    /// Log-channel statistics.
    pub channel: ChannelStats,
    /// The shared world: console, files, applied outputs.
    pub world: SharedWorld,
}

impl PairReport {
    /// The console text lines the external world observed, in order.
    pub fn console(&self) -> Vec<String> {
        self.world.borrow().console_texts()
    }

    /// Checks that every console output id is unique (no duplicated
    /// outputs — the observable half of exactly-once).
    ///
    /// # Errors
    /// Returns the offending output id.
    pub fn check_no_duplicate_outputs(&self) -> Result<(), u64> {
        let world = self.world.borrow();
        let mut seen = std::collections::BTreeSet::new();
        for line in world.console() {
            if !seen.insert(line.output_id) {
                return Err(line.output_id);
            }
        }
        Ok(())
    }
}

/// A fault-tolerant JVM: a program plus a replica-pair configuration.
#[derive(Debug)]
pub struct FtJvm {
    program: Arc<Program>,
    natives: NativeRegistry,
    cfg: FtConfig,
}

impl FtJvm {
    /// Creates a harness with the builtin native registry.
    pub fn new(program: Arc<Program>, cfg: FtConfig) -> Self {
        FtJvm { program, natives: NativeRegistry::with_builtins(), cfg }
    }

    /// Creates a harness with a custom native registry (applications with
    /// their own natives and SE handlers).
    pub fn with_natives(program: Arc<Program>, natives: NativeRegistry, cfg: FtConfig) -> Self {
        FtJvm { program, natives, cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &FtConfig {
        &self.cfg
    }

    fn vm_config(&self, seed: u64) -> VmConfig {
        VmConfig { sched_seed: seed, ..self.cfg.vm.clone() }
    }

    fn primary_env(&self, world: &SharedWorld) -> SimEnv {
        SimEnv::new("primary", world.clone(), self.cfg.primary_skew, self.cfg.primary_env_seed)
    }

    fn backup_env(&self, world: &SharedWorld) -> SimEnv {
        SimEnv::new("backup", world.clone(), self.cfg.backup_skew, self.cfg.backup_env_seed)
    }

    /// Runs the program on a single, unreplicated VM (the baseline of every
    /// normalized measurement).
    ///
    /// # Errors
    /// Propagates fatal VM errors.
    pub fn run_unreplicated(&self) -> Result<(RunReport, SharedWorld), VmError> {
        let world = World::shared();
        let env = self.primary_env(&world);
        let mut vm = Vm::new(
            self.program.clone(),
            self.natives.clone(),
            env,
            self.vm_config(self.cfg.primary_seed),
        )?;
        let report = vm.run(&mut NoopCoordinator::new())?;
        Ok((report, world))
    }

    fn run_primary_phase(
        &self,
        world: &SharedWorld,
        fault: FaultPlan,
    ) -> Result<(RunReport, SimChannel, ReplicationStats, Vm), VmError> {
        let channel = SimChannel::new(self.cfg.vm.cost.net.clone());
        let mut core =
            PrimaryCore::new(channel, self.cfg.vm.cost.clone(), fault, (self.cfg.se_factory)());
        core.flush_threshold = self.cfg.flush_threshold;
        core.set_codec(self.cfg.codec);
        core.set_heartbeat_interval(self.cfg.detector.interval());
        let penv = self.primary_env(world);
        let mut vm = Vm::new(
            self.program.clone(),
            self.natives.clone(),
            penv,
            self.vm_config(self.cfg.primary_seed),
        )?;
        let (report, channel, stats) = match (self.cfg.mode, self.cfg.lock_variant) {
            (ReplicationMode::LockSync, LockVariant::PerAcquisition) => {
                let mut coord = LockSyncPrimary::new(core);
                let report = vm.run(&mut coord)?;
                let (channel, stats) = coord.common.into_parts();
                (report, channel, stats)
            }
            (ReplicationMode::LockSync, LockVariant::Intervals) => {
                let mut coord = IntervalPrimary::new(core);
                let report = vm.run(&mut coord)?;
                let (channel, stats) = coord.common.into_parts();
                (report, channel, stats)
            }
            (ReplicationMode::ThreadSched, _) => {
                let mut coord = TsPrimary::new(core);
                let report = vm.run(&mut coord)?;
                let (channel, stats) = coord.common.into_parts();
                (report, channel, stats)
            }
        };
        Ok((report, channel, stats, vm))
    }

    fn run_backup_phase(
        &self,
        world: &SharedWorld,
        frames: Vec<bytes::Bytes>,
    ) -> Result<(RunReport, ReplicationStats, Option<SimTime>), VmError> {
        let mut se = (self.cfg.se_factory)();
        let log = BackupLog::decode(frames, &mut se)?;
        let mut benv = self.backup_env(world);
        // SE-handler `restore`: re-create the primary's volatile
        // environment state (open files at their recovered offsets).
        se.restore(&mut benv);
        let mut bvm = Vm::new(
            self.program.clone(),
            self.natives.clone(),
            benv,
            self.vm_config(self.cfg.backup_seed),
        )?;
        let cost = self.cfg.vm.cost.clone();
        match (self.cfg.mode, self.cfg.lock_variant) {
            (ReplicationMode::LockSync, LockVariant::PerAcquisition) => {
                let mut coord = LockSyncBackup::new(log, world.clone(), se, cost);
                let report = bvm.run(&mut coord)?;
                Ok((report, coord.stats().clone(), coord.recovery_completed_at()))
            }
            (ReplicationMode::LockSync, LockVariant::Intervals) => {
                let mut coord = IntervalBackup::new(log, world.clone(), se, cost);
                let report = bvm.run(&mut coord)?;
                Ok((report, coord.stats().clone(), coord.recovery_completed_at()))
            }
            (ReplicationMode::ThreadSched, _) => {
                let mut coord = TsBackup::new(log, world.clone(), se, cost);
                let report = bvm.run(&mut coord)?;
                Ok((report, coord.stats().clone(), coord.recovery_completed_at()))
            }
        }
    }

    /// Runs the primary under full replication (cold or warm backup). If
    /// the fault plan fires, the backup detects the failure, replays the
    /// log and finishes the program.
    ///
    /// # Errors
    /// Propagates fatal VM errors from either replica, including
    /// [`VmError::ReplayDivergence`] when recovery detects that the
    /// program violated the mode's assumptions (e.g. a data race under
    /// lock synchronization).
    pub fn run_replicated(&self) -> Result<PairReport, VmError> {
        let world = World::shared();
        let (primary_report, mut channel, primary_stats, mut vm) =
            self.run_primary_phase(&world, self.cfg.fault)?;
        let crashed = primary_report.outcome == RunOutcome::Stopped;
        let channel_stats = channel.stats();
        if !crashed {
            return Ok(PairReport {
                primary: primary_report,
                primary_stats,
                crashed: false,
                backup: None,
                backup_stats: None,
                detection_latency: SimTime::ZERO,
                recovery_replay_time: SimTime::ZERO,
                failover_latency: SimTime::ZERO,
                channel: channel_stats,
                world,
            });
        }
        // Fail-stop: the primary's volatile environment state is lost.
        vm.core_mut().env.fail();
        let crash_at = primary_report.acct.now();
        let detection_latency = self.cfg.detector.detection_instant(crash_at) - crash_at;
        // The backup receives exactly the flushed prefix of the log.
        let frames: Vec<bytes::Bytes> = channel.drain().into_iter().map(|(_, b)| b).collect();
        let (backup_report, backup_stats, recovered_at) = self.run_backup_phase(&world, frames)?;
        let recovery_replay_time = recovered_at.unwrap_or_else(|| backup_report.acct.now());
        // Cold backups pay the replay at failover; warm backups already
        // replayed everything flushed before the crash, so only detection
        // (plus nothing in our model: all flushed records have arrived)
        // remains.
        let failover_latency = if self.cfg.warm_backup {
            detection_latency
        } else {
            detection_latency + recovery_replay_time
        };
        Ok(PairReport {
            primary: primary_report,
            primary_stats,
            crashed: true,
            backup: Some(backup_report),
            backup_stats: Some(backup_stats),
            detection_latency,
            recovery_replay_time,
            failover_latency,
            channel: channel_stats,
            world,
        })
    }

    /// Like [`FtJvm::run_replicated`] but asserts that a fault plan is
    /// armed (catching benchmarks that forgot to arm one).
    ///
    /// # Errors
    /// Propagates fatal VM errors.
    ///
    /// # Panics
    /// Panics if the configured fault plan can never fire.
    pub fn run_with_failure(&self) -> Result<PairReport, VmError> {
        assert!(self.cfg.fault.is_armed(), "run_with_failure requires an armed fault plan");
        self.run_replicated()
    }

    /// Runs the failure-free pair, then replays the complete log on a
    /// backup — used by benchmarks to measure backup replay cost (the
    /// "backup" bars of Figure 2) without needing a mid-run crash.
    ///
    /// # Errors
    /// Propagates fatal VM errors.
    pub fn run_backup_replay(&self) -> Result<PairReport, VmError> {
        let world = World::shared();
        let (primary_report, mut channel, primary_stats, _vm) =
            self.run_primary_phase(&world, FaultPlan::None)?;
        let channel_stats = channel.stats();
        let frames: Vec<bytes::Bytes> = channel.drain().into_iter().map(|(_, b)| b).collect();
        let (backup_report, backup_stats, recovered_at) = self.run_backup_phase(&world, frames)?;
        let recovery_replay_time = recovered_at.unwrap_or_else(|| backup_report.acct.now());
        Ok(PairReport {
            primary: primary_report,
            primary_stats,
            crashed: false,
            backup: Some(backup_report),
            backup_stats: Some(backup_stats),
            detection_latency: SimTime::ZERO,
            recovery_replay_time,
            failover_latency: SimTime::ZERO,
            channel: channel_stats,
            world,
        })
    }

    /// Verifies restriction R4A the way the paper suggests: one
    /// unreplicated run under the Eraser-style lockset detector. An empty
    /// result means the observed execution obeyed the locking discipline
    /// and the program is safe for [`ReplicationMode::LockSync`] (dynamic
    /// detection is sound for the observed interleaving only — run it
    /// under several seeds for confidence).
    ///
    /// # Errors
    /// Propagates fatal VM errors.
    pub fn verify_r4a(&self) -> Result<Vec<ftjvm_vm::RaceReport>, VmError> {
        let world = World::shared();
        let env = self.primary_env(&world);
        let mut cfg = self.vm_config(self.cfg.primary_seed);
        cfg.race_detect = true;
        let mut vm = Vm::new(self.program.clone(), self.natives.clone(), env, cfg)?;
        let report = vm.run(&mut NoopCoordinator::new())?;
        Ok(report.races)
    }

    /// Runs the failure-free primary and returns the decoded record stream
    /// it would ship to the backup — the log-inspection entry point used
    /// by `ftjvm-run --dump-log`.
    ///
    /// # Errors
    /// Propagates fatal VM errors.
    pub fn capture_log(&self) -> Result<Vec<crate::records::Record>, VmError> {
        let world = World::shared();
        let (_, mut channel, _, _) = self.run_primary_phase(&world, FaultPlan::None)?;
        let frames = channel.drain().into_iter().map(|(_, frame)| frame).collect();
        crate::codec::decode_frames(frames)
            .map_err(|e| VmError::Internal(format!("own log failed to decode: {e}")))
    }

    /// Convenience: returns a coordinator-less clone of the program for
    /// inspection.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }
}
