//! The *compact* wire codec: delta/varint record bodies batched into one
//! channel frame per flush.
//!
//! The fixed codec ([`Record::encode`]/[`Record::decode`]) sends one
//! channel message per record with fixed-width fields — easy to audit
//! against the paper's byte counts, but expensive: the simulated channel
//! charges ~18 µs *per message*, so a db run logging hundreds of thousands
//! of lock records pays that cost hundreds of thousands of times.
//!
//! Under [`ftjvm_netsim::WireCodec::Compact`] the primary instead:
//!
//! 1. encodes each record *eagerly at log time* (so the delta context
//!    observes records in log order) into a compact body: LEB128 varints,
//!    zig-zag deltas of monotone fields against a per-stream
//!    context, and interned thread ids / native signature hashes;
//! 2. on flush, concatenates the buffered bodies into **one** batch frame
//!    (`0xBA`, record count, bodies) and sends that single message.
//!
//! The backup mirrors the context while stream-decoding
//! ([`RecordDecoder`]): because bodies are decoded in the order they were
//! encoded, every delta lands on the same context slot value the encoder
//! used. A crash can only lose a *suffix* of frames (FIFO channel), never
//! bytes inside a frame, so the decoder's context never desynchronizes.
//!
//! Frames are self-describing: fixed record tags are `1..=8`, batch frames
//! start with `0xBA`, so a decoder needs no out-of-band codec flag and a
//! log may mix both kinds (heartbeats, for instance, are sent immediately
//! and stay fixed-encoded even in compact mode).
//!
//! ## Delta context rules
//!
//! Every context slot follows one rule on both sides: *read the slot to
//! delta the field, then write the field's new value back*. Deltas use
//! wrapping arithmetic, so arbitrary (even non-monotone) values still
//! round-trip — monotonicity only makes the varints short.
//!
//! | field | slot |
//! |---|---|
//! | `t_asn` (IdMap, LockAcq, LockInterval) | per-thread; an interval advances it to `t_asn_start + count` |
//! | `br_cnt`, `mon_cnt` (Sched) | per-thread |
//! | `seq` (NativeResult) | per-thread ND sequence |
//! | `seq` (OutputCommit) | per-thread output sequence |
//! | `l_asn` (LockAcq) | per-lock |
//! | `output_id` (OutputCommit) | global |
//! | `now_ns` (Heartbeat) | global |

use crate::records::{LoggedResult, Record, WireValue};
use bytes::Bytes;
use ftjvm_netsim::{WireError, WireReader, WireWriter};
use ftjvm_vm::VtPath;
use std::collections::HashMap;

/// First byte of a batch frame. Fixed-codec record tags are `1..=8`, so a
/// frame's first byte says which decoder to use.
pub const BATCH_TAG: u8 = 0xBA;

/// Per-thread delta slots (see the module-level table).
#[derive(Debug, Clone, Default)]
struct ThreadSlots {
    t_asn: u64,
    br_cnt: u64,
    mon_cnt: u64,
    nd_seq: u64,
    out_seq: u64,
}

/// The mirrored encode/decode context. Both sides mutate it identically,
/// which is what keeps the deltas consistent.
#[derive(Debug, Default)]
struct CodecCtx {
    /// Interned threads: wire id → (path, slots). First mention defines.
    threads: Vec<(VtPath, ThreadSlots)>,
    thread_ids: HashMap<VtPath, u32>,
    /// Per-lock last `l_asn`.
    locks: HashMap<u64, u64>,
    /// Interned native signature hashes.
    sigs: Vec<u64>,
    sig_ids: HashMap<u64, u32>,
    last_output_id: u64,
    heartbeat_ns: u64,
}

fn put_delta(w: &mut WireWriter, slot: &mut u64, v: u64) {
    w.put_ivarint(v.wrapping_sub(*slot) as i64);
    *slot = v;
}

fn get_delta(r: &mut WireReader, slot: &mut u64) -> Result<u64, WireError> {
    let d = r.get_ivarint()? as u64;
    *slot = slot.wrapping_add(d);
    Ok(*slot)
}

impl CodecCtx {
    /// Serializes the whole context (interned threads with their delta
    /// slots, per-lock `l_asn` slots sorted by lock id, interned signature
    /// hashes in intern order, and the two global slots) so a fresh decoder
    /// can resume mid-stream from an epoch checkpoint.
    fn export(&self) -> Bytes {
        let mut w = WireWriter::with_capacity(64 + 16 * self.threads.len());
        w.put_uvarint(self.threads.len() as u64);
        for (vt, s) in &self.threads {
            let ords = vt.ordinals();
            w.put_uvarint(ords.len() as u64);
            for &o in ords {
                w.put_uvarint(o as u64);
            }
            w.put_uvarint(s.t_asn);
            w.put_uvarint(s.br_cnt);
            w.put_uvarint(s.mon_cnt);
            w.put_uvarint(s.nd_seq);
            w.put_uvarint(s.out_seq);
        }
        let mut locks: Vec<(u64, u64)> = self.locks.iter().map(|(&k, &v)| (k, v)).collect();
        locks.sort_unstable();
        w.put_uvarint(locks.len() as u64);
        for (l_id, l_asn) in locks {
            w.put_uvarint(l_id);
            w.put_uvarint(l_asn);
        }
        w.put_uvarint(self.sigs.len() as u64);
        for &h in &self.sigs {
            w.put_u64(h);
        }
        w.put_uvarint(self.last_output_id);
        w.put_uvarint(self.heartbeat_ns);
        w.finish()
    }

    /// Mirror of [`CodecCtx::export`]. Rejects trailing bytes.
    fn import(blob: &Bytes) -> Result<CodecCtx, WireError> {
        let mut r = WireReader::new(blob.clone());
        let n_threads = r.get_uvarint()? as usize;
        if n_threads > r.remaining() {
            return Err(WireError::new("ctx thread count"));
        }
        let mut ctx = CodecCtx::default();
        for _ in 0..n_threads {
            let n_ords = r.get_uvarint()? as usize;
            if n_ords == 0 || n_ords > r.remaining() {
                return Err(WireError::new("ctx thread ordinal chain"));
            }
            let mut ords = Vec::with_capacity(n_ords);
            for _ in 0..n_ords {
                let o = r.get_uvarint()?;
                if o > u32::MAX as u64 {
                    return Err(WireError::new("ctx thread ordinal"));
                }
                ords.push(o as u32);
            }
            let vt = VtPath::from_ordinals(ords);
            let slots = ThreadSlots {
                t_asn: r.get_uvarint()?,
                br_cnt: r.get_uvarint()?,
                mon_cnt: r.get_uvarint()?,
                nd_seq: r.get_uvarint()?,
                out_seq: r.get_uvarint()?,
            };
            if ctx.thread_ids.contains_key(&vt) {
                return Err(WireError::new("ctx duplicate thread"));
            }
            ctx.thread_ids.insert(vt.clone(), ctx.threads.len() as u32);
            ctx.threads.push((vt, slots));
        }
        let n_locks = r.get_uvarint()? as usize;
        if n_locks > r.remaining() {
            return Err(WireError::new("ctx lock count"));
        }
        for _ in 0..n_locks {
            let l_id = r.get_uvarint()?;
            let l_asn = r.get_uvarint()?;
            ctx.locks.insert(l_id, l_asn);
        }
        let n_sigs = r.get_uvarint()? as usize;
        if n_sigs > r.remaining() {
            return Err(WireError::new("ctx sig count"));
        }
        for _ in 0..n_sigs {
            let h = r.get_u64()?;
            ctx.sig_ids.insert(h, ctx.sigs.len() as u32);
            ctx.sigs.push(h);
        }
        ctx.last_output_id = r.get_uvarint()?;
        ctx.heartbeat_ns = r.get_uvarint()?;
        if !r.is_empty() {
            return Err(WireError::new("trailing bytes after ctx"));
        }
        Ok(ctx)
    }

    /// Writes a thread reference: `idx+1` if interned, else `0` followed by
    /// the ordinal chain. Returns the thread's intern index.
    fn put_thread(&mut self, w: &mut WireWriter, vt: &VtPath) -> usize {
        if let Some(&id) = self.thread_ids.get(vt) {
            w.put_uvarint(id as u64 + 1);
            return id as usize;
        }
        w.put_uvarint(0);
        let ords = vt.ordinals();
        w.put_uvarint(ords.len() as u64);
        for &o in ords {
            w.put_uvarint(o as u64);
        }
        let id = self.threads.len();
        self.thread_ids.insert(vt.clone(), id as u32);
        self.threads.push((vt.clone(), ThreadSlots::default()));
        id
    }

    /// Mirror of [`CodecCtx::put_thread`].
    fn get_thread(&mut self, r: &mut WireReader) -> Result<usize, WireError> {
        let tag = r.get_uvarint()?;
        if tag != 0 {
            let id = (tag - 1) as usize;
            if id >= self.threads.len() {
                return Err(WireError::new("unknown thread reference"));
            }
            return Ok(id);
        }
        let n = r.get_uvarint()? as usize;
        if n == 0 {
            return Err(WireError::new("empty thread id"));
        }
        // Each ordinal takes at least one byte; reject absurd lengths
        // before allocating.
        if n > r.remaining() {
            return Err(WireError::new("thread ordinal chain"));
        }
        let mut ords = Vec::with_capacity(n);
        for _ in 0..n {
            let o = r.get_uvarint()?;
            if o > u32::MAX as u64 {
                return Err(WireError::new("thread ordinal"));
            }
            ords.push(o as u32);
        }
        let vt = VtPath::from_ordinals(ords);
        let id = self.threads.len();
        self.thread_ids.insert(vt.clone(), id as u32);
        self.threads.push((vt, ThreadSlots::default()));
        Ok(id)
    }

    /// Writes an interned signature hash: `idx+1`, or `0` + raw `u64` on
    /// first mention.
    fn put_sig(&mut self, w: &mut WireWriter, h: u64) {
        if let Some(&id) = self.sig_ids.get(&h) {
            w.put_uvarint(id as u64 + 1);
            return;
        }
        w.put_uvarint(0);
        w.put_u64(h);
        self.sig_ids.insert(h, self.sigs.len() as u32);
        self.sigs.push(h);
    }

    /// Mirror of [`CodecCtx::put_sig`].
    fn get_sig(&mut self, r: &mut WireReader) -> Result<u64, WireError> {
        let tag = r.get_uvarint()?;
        if tag == 0 {
            let h = r.get_u64()?;
            self.sig_ids.insert(h, self.sigs.len() as u32);
            self.sigs.push(h);
            return Ok(h);
        }
        self.sigs
            .get((tag - 1) as usize)
            .copied()
            .ok_or_else(|| WireError::new("unknown signature reference"))
    }
}

fn put_compact_value(w: &mut WireWriter, v: &WireValue) {
    match v {
        WireValue::Null => w.put_u8(0),
        WireValue::Int(i) => {
            w.put_u8(1);
            w.put_ivarint(*i);
        }
        WireValue::Double(d) => {
            w.put_u8(2);
            w.put_f64(*d);
        }
    }
}

fn get_compact_value(r: &mut WireReader) -> Result<WireValue, WireError> {
    match r.get_u8()? {
        0 => Ok(WireValue::Null),
        1 => Ok(WireValue::Int(r.get_ivarint()?)),
        2 => Ok(WireValue::Double(r.get_f64()?)),
        _ => Err(WireError::new("compact value tag")),
    }
}

/// Stateful compact encoder, owned by the primary. Bodies must be encoded
/// in log order and transmitted in that order (the batch frame preserves
/// it).
#[derive(Debug, Default)]
pub struct RecordEncoder {
    ctx: CodecCtx,
}

impl RecordEncoder {
    /// Fresh encoder with an empty delta context.
    pub fn new() -> Self {
        RecordEncoder::default()
    }

    /// Encodes one record into a compact body (tag + fields), advancing the
    /// delta context.
    pub fn encode_body(&mut self, rec: &Record) -> Bytes {
        let hint = match rec {
            Record::SeState { payload, .. } => 12 + payload.len(),
            Record::NativeResult { .. } => 48,
            _ => 24,
        };
        let mut w = WireWriter::with_capacity(hint);
        let ctx = &mut self.ctx;
        match rec {
            Record::IdMap { l_id, t, t_asn } => {
                w.put_u8(1);
                let tid = ctx.put_thread(&mut w, t);
                w.put_uvarint(*l_id);
                put_delta(&mut w, &mut ctx.threads[tid].1.t_asn, *t_asn);
            }
            Record::LockAcq { t, t_asn, l_id, l_asn } => {
                w.put_u8(2);
                let tid = ctx.put_thread(&mut w, t);
                put_delta(&mut w, &mut ctx.threads[tid].1.t_asn, *t_asn);
                w.put_uvarint(*l_id);
                put_delta(&mut w, ctx.locks.entry(*l_id).or_insert(0), *l_asn);
            }
            Record::Sched { t, br_cnt, method, pc_off, mon_cnt, l_asn, in_native, next } => {
                w.put_u8(3);
                let tid = ctx.put_thread(&mut w, t);
                put_delta(&mut w, &mut ctx.threads[tid].1.br_cnt, *br_cnt);
                w.put_uvarint(*method as u64);
                w.put_uvarint(*pc_off as u64);
                put_delta(&mut w, &mut ctx.threads[tid].1.mon_cnt, *mon_cnt);
                w.put_uvarint(*l_asn);
                w.put_u8(*in_native as u8);
                ctx.put_thread(&mut w, next);
            }
            Record::NativeResult { t, seq, sig_hash, result, out_args } => {
                w.put_u8(4);
                let tid = ctx.put_thread(&mut w, t);
                put_delta(&mut w, &mut ctx.threads[tid].1.nd_seq, *seq);
                ctx.put_sig(&mut w, *sig_hash);
                match result {
                    LoggedResult::Ok(None) => w.put_u8(0),
                    LoggedResult::Ok(Some(v)) => {
                        w.put_u8(1);
                        put_compact_value(&mut w, v);
                    }
                    LoggedResult::Err { code, msg } => {
                        w.put_u8(2);
                        w.put_ivarint(*code);
                        w.put_vstr(msg);
                    }
                }
                w.put_uvarint(out_args.len() as u64);
                for (idx, vals) in out_args {
                    w.put_u8(*idx);
                    w.put_uvarint(vals.len() as u64);
                    for v in vals {
                        put_compact_value(&mut w, v);
                    }
                }
            }
            Record::OutputCommit { t, seq, output_id } => {
                w.put_u8(5);
                let tid = ctx.put_thread(&mut w, t);
                put_delta(&mut w, &mut ctx.threads[tid].1.out_seq, *seq);
                put_delta(&mut w, &mut ctx.last_output_id, *output_id);
            }
            Record::SeState { handler, payload } => {
                w.put_u8(6);
                w.put_u8(*handler);
                w.put_vbytes(payload);
            }
            Record::LockInterval { t, t_asn_start, count } => {
                w.put_u8(7);
                let tid = ctx.put_thread(&mut w, t);
                // Delta against the slot, then advance it past the whole
                // interval so the next interval's delta stays small.
                let slot = &mut ctx.threads[tid].1.t_asn;
                w.put_ivarint(t_asn_start.wrapping_sub(*slot) as i64);
                *slot = t_asn_start.wrapping_add(*count);
                w.put_uvarint(*count);
            }
            Record::Heartbeat { now_ns } => {
                w.put_u8(8);
                put_delta(&mut w, &mut ctx.heartbeat_ns, *now_ns);
            }
        }
        w.finish()
    }

    /// Serializes the encoder's delta context at an epoch boundary. A
    /// replacement backup imports it ([`RecordDecoder::import_ctx`]) so
    /// the log *suffix* shipped during re-integration decodes against the
    /// same slot values the encoder used.
    pub fn export_ctx(&self) -> Bytes {
        self.ctx.export()
    }
}

/// Builds one batch frame from compact bodies: `0xBA`, record count, then
/// the concatenated bodies.
pub fn build_batch_frame(bodies: &[Bytes]) -> Bytes {
    let total: usize = bodies.iter().map(|b| b.len()).sum();
    let mut w = WireWriter::with_capacity(1 + 10 + total);
    w.put_u8(BATCH_TAG);
    w.put_uvarint(bodies.len() as u64);
    for b in bodies {
        w.put_raw(b);
    }
    w.finish()
}

/// Stateful frame decoder, owned by the backup. Feed it every frame in
/// arrival order; it handles fixed single-record frames and compact batch
/// frames interchangeably.
#[derive(Debug, Default)]
pub struct RecordDecoder {
    ctx: CodecCtx,
}

/// True when `frame` is a standalone fixed-codec heartbeat record.
/// Heartbeats bypass the batch buffer under both codecs (they are
/// time-driven liveness signals), so the check is codec-independent and
/// needs no decoder context.
pub fn frame_is_heartbeat(frame: &Bytes) -> bool {
    frame.len() == 9 && frame.first() == Some(&8)
}

impl RecordDecoder {
    /// Fresh decoder with an empty delta context.
    pub fn new() -> Self {
        RecordDecoder::default()
    }

    /// Decodes one channel frame, appending its record(s) to `out`.
    ///
    /// # Errors
    /// Returns [`WireError`] on any truncated or malformed input; never
    /// panics.
    pub fn decode_frame(&mut self, frame: Bytes, out: &mut Vec<Record>) -> Result<(), WireError> {
        // Epoch marks, snapshot chunks, and digest votes are control
        // frames: they carry no records and never touch the delta context.
        if matches!(frame.first(), Some(&EPOCH_TAG) | Some(&SNAP_TAG) | Some(&VOTE_TAG)) {
            return Ok(());
        }
        if frame.first() != Some(&BATCH_TAG) {
            out.push(Record::decode(frame)?);
            return Ok(());
        }
        let mut r = WireReader::new(frame.slice(1..));
        let count = r.get_uvarint()?;
        for _ in 0..count {
            out.push(self.decode_compact(&mut r)?);
        }
        if !r.is_empty() {
            return Err(WireError::new("trailing bytes after batch"));
        }
        Ok(())
    }

    /// Replaces the decoder's delta context with one exported by
    /// [`RecordEncoder::export_ctx`] at an epoch cut.
    ///
    /// # Errors
    /// Returns [`WireError`] if the blob is malformed; the existing context
    /// is left untouched in that case.
    pub fn import_ctx(&mut self, blob: &Bytes) -> Result<(), WireError> {
        self.ctx = CodecCtx::import(blob)?;
        Ok(())
    }

    fn decode_compact(&mut self, r: &mut WireReader) -> Result<Record, WireError> {
        let ctx = &mut self.ctx;
        Ok(match r.get_u8()? {
            1 => {
                let tid = ctx.get_thread(r)?;
                let l_id = r.get_uvarint()?;
                let t_asn = get_delta(r, &mut ctx.threads[tid].1.t_asn)?;
                Record::IdMap { l_id, t: ctx.threads[tid].0.clone(), t_asn }
            }
            2 => {
                let tid = ctx.get_thread(r)?;
                let t_asn = get_delta(r, &mut ctx.threads[tid].1.t_asn)?;
                let l_id = r.get_uvarint()?;
                let l_asn = get_delta(r, ctx.locks.entry(l_id).or_insert(0))?;
                Record::LockAcq { t: ctx.threads[tid].0.clone(), t_asn, l_id, l_asn }
            }
            3 => {
                let tid = ctx.get_thread(r)?;
                let br_cnt = get_delta(r, &mut ctx.threads[tid].1.br_cnt)?;
                let method = r.get_uvarint()?;
                let pc_off = r.get_uvarint()?;
                if method > u32::MAX as u64 || pc_off > u32::MAX as u64 {
                    return Err(WireError::new("sched code position"));
                }
                let mon_cnt = get_delta(r, &mut ctx.threads[tid].1.mon_cnt)?;
                let l_asn = r.get_uvarint()?;
                let in_native = match r.get_u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::new("in-native flag")),
                };
                let nid = ctx.get_thread(r)?;
                Record::Sched {
                    t: ctx.threads[tid].0.clone(),
                    br_cnt,
                    method: method as u32,
                    pc_off: pc_off as u32,
                    mon_cnt,
                    l_asn,
                    in_native,
                    next: ctx.threads[nid].0.clone(),
                }
            }
            4 => {
                let tid = ctx.get_thread(r)?;
                let seq = get_delta(r, &mut ctx.threads[tid].1.nd_seq)?;
                let sig_hash = ctx.get_sig(r)?;
                let result = match r.get_u8()? {
                    0 => LoggedResult::Ok(None),
                    1 => LoggedResult::Ok(Some(get_compact_value(r)?)),
                    2 => LoggedResult::Err { code: r.get_ivarint()?, msg: r.get_vstr()? },
                    _ => return Err(WireError::new("logged result tag")),
                };
                let n_args = r.get_uvarint()? as usize;
                if n_args > r.remaining() {
                    return Err(WireError::new("out-arg count"));
                }
                let mut out_args = Vec::with_capacity(n_args);
                for _ in 0..n_args {
                    let idx = r.get_u8()?;
                    let n_vals = r.get_uvarint()? as usize;
                    if n_vals > r.remaining() {
                        return Err(WireError::new("out-arg length"));
                    }
                    let mut vals = Vec::with_capacity(n_vals);
                    for _ in 0..n_vals {
                        vals.push(get_compact_value(r)?);
                    }
                    out_args.push((idx, vals));
                }
                Record::NativeResult {
                    t: ctx.threads[tid].0.clone(),
                    seq,
                    sig_hash,
                    result,
                    out_args,
                }
            }
            5 => {
                let tid = ctx.get_thread(r)?;
                let seq = get_delta(r, &mut ctx.threads[tid].1.out_seq)?;
                let output_id = get_delta(r, &mut ctx.last_output_id)?;
                Record::OutputCommit { t: ctx.threads[tid].0.clone(), seq, output_id }
            }
            6 => Record::SeState { handler: r.get_u8()?, payload: r.get_vbytes()? },
            7 => {
                let tid = ctx.get_thread(r)?;
                let delta = r.get_ivarint()? as u64;
                let slot = &mut ctx.threads[tid].1.t_asn;
                let t_asn_start = slot.wrapping_add(delta);
                let count = r.get_uvarint()?;
                *slot = t_asn_start.wrapping_add(count);
                Record::LockInterval { t: ctx.threads[tid].0.clone(), t_asn_start, count }
            }
            8 => Record::Heartbeat { now_ns: get_delta(r, &mut ctx.heartbeat_ns)? },
            _ => return Err(WireError::new("compact record tag")),
        })
    }
}

/// Decodes a whole captured log (mixed fixed and batch frames) into the
/// flat record sequence the primary logged.
///
/// # Errors
/// Returns [`WireError`] if any frame is malformed.
pub fn decode_frames(frames: Vec<Bytes>) -> Result<Vec<Record>, WireError> {
    let mut dec = RecordDecoder::new();
    let mut out = Vec::new();
    for frame in frames {
        dec.decode_frame(frame, &mut out)?;
    }
    Ok(out)
}

/// Below this many frames the pipelined decoder runs sequentially:
/// thread spawn costs more than it saves (results are identical either
/// way — the threshold affects wall-clock time only).
const PIPELINE_MIN_FRAMES: usize = 16;

/// Unseals one frame if it carries a CRC32C seal, passing unsealed
/// frames through untouched.
fn unseal(frame: &Bytes) -> Result<Bytes, WireError> {
    if frame.first() == Some(&SEAL_TAG) {
        let (_seq, payload) =
            open_frame(frame).map_err(|_| WireError::new("sealed frame failed verification"))?;
        Ok(payload)
    } else {
        Ok(frame.clone())
    }
}

/// Decodes a buffered multi-frame log suffix with worker-thread fan-out,
/// **byte-identical** to feeding each frame through
/// [`RecordDecoder::decode_frame`] in order (after unsealing): CRC32C
/// seal verification and stateless record decode (fixed-codec frames,
/// heartbeats, control frames) parallelize freely, while compact `0xBA`
/// batches — whose delta context chains across batches — decode
/// sequentially in arrival order, pipelined against the parallel work.
/// Returns one record vector per input frame, in input order, so callers
/// keep their per-frame bookkeeping (epoch marks, pending peaks).
///
/// On a malformed input the error reported is the one the sequential
/// decoder would have hit first (smallest frame index); the decoder's
/// delta context is unspecified after an error, exactly like the
/// sequential path's callers assume (decode errors abort replay).
///
/// # Errors
/// Returns [`WireError`] if any frame is malformed or a seal fails
/// verification.
pub fn decode_frames_pipelined(
    decoder: &mut RecordDecoder,
    frames: &[Bytes],
    threads: usize,
) -> Result<Vec<Vec<Record>>, WireError> {
    let threads = threads.max(1);
    if threads == 1 || frames.len() < PIPELINE_MIN_FRAMES {
        let mut out = Vec::with_capacity(frames.len());
        for frame in frames {
            let mut recs = Vec::new();
            decoder.decode_frame(unseal(frame)?, &mut recs)?;
            out.push(recs);
        }
        return Ok(out);
    }

    // Stage 1 (parallel when sealed traffic is present): verify and strip
    // every seal so stage 2 can classify frames by payload tag.
    let sealed: Vec<usize> = frames
        .iter()
        .enumerate()
        .filter(|(_, f)| f.first() == Some(&SEAL_TAG))
        .map(|(i, _)| i)
        .collect();
    let mut payloads: Vec<Bytes> = frames.to_vec();
    if !sealed.is_empty() {
        let opened: Vec<(usize, Result<Bytes, WireError>)> = std::thread::scope(|s| {
            let chunk = sealed.len().div_ceil(threads);
            let handles: Vec<_> = sealed
                .chunks(chunk.max(1))
                .map(|ids| {
                    let frames = &frames;
                    s.spawn(move || {
                        ids.iter().map(|&i| (i, unseal(&frames[i]))).collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("unseal worker")).collect()
        });
        // Earliest-index error wins, matching the sequential decoder.
        let mut first_err: Option<(usize, WireError)> = None;
        for (i, r) in opened {
            match r {
                Ok(p) => payloads[i] = p,
                Err(e) => {
                    if first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                        first_err = Some((i, e));
                    }
                }
            }
        }
        if let Some((_, e)) = first_err {
            return Err(e);
        }
    }

    // Stage 2: stateless frames fan out across workers while the calling
    // thread walks the stateful batch chain in arrival order.
    let is_batch: Vec<bool> = payloads.iter().map(|p| p.first() == Some(&BATCH_TAG)).collect();
    let batch: Vec<usize> = (0..payloads.len()).filter(|&i| is_batch[i]).collect();
    let stateless: Vec<usize> = (0..payloads.len()).filter(|&i| !is_batch[i]).collect();
    let mut out: Vec<Vec<Record>> = (0..payloads.len()).map(|_| Vec::new()).collect();
    let mut batch_err: Option<(usize, WireError)> = None;
    let stateless_results: Vec<(usize, Result<Vec<Record>, WireError>)> = std::thread::scope(|s| {
        let chunk = stateless.len().div_ceil(threads).max(1);
        let handles: Vec<_> = stateless
            .chunks(chunk)
            .map(|ids| {
                let payloads = &payloads;
                s.spawn(move || {
                    ids.iter()
                        .map(|&i| {
                            // Stateless decode needs no shared context:
                            // control frames yield nothing, everything
                            // else is a self-contained fixed record.
                            let mut recs = Vec::new();
                            let r = RecordDecoder::new()
                                .decode_frame(payloads[i].clone(), &mut recs)
                                .map(|()| recs);
                            (i, r)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        // The batch chain runs here, concurrent with the workers.
        for &i in &batch {
            let mut recs = Vec::new();
            match decoder.decode_frame(payloads[i].clone(), &mut recs) {
                Ok(()) => out[i] = recs,
                Err(e) => {
                    batch_err = Some((i, e));
                    break;
                }
            }
        }
        handles.into_iter().flat_map(|h| h.join().expect("decode worker")).collect()
    });
    let mut first_err = batch_err;
    for (i, r) in stateless_results {
        match r {
            Ok(recs) => out[i] = recs,
            Err(e) => {
                if first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                    first_err = Some((i, e));
                }
            }
        }
    }
    if let Some((_, e)) = first_err {
        return Err(e);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Epoch checkpoint control frames. An epoch mark tells the backup that
// everything before it is covered by a snapshot and may be dropped; a
// snapshot chunk carries a piece of that snapshot to a replacement backup
// during re-integration (and to a cold backup's durable store). Both are
// *control* frames: record decoders skip them, and their tags are disjoint
// from fixed record tags (1..=8), BATCH_TAG, and SEAL_TAG.
// ---------------------------------------------------------------------------

/// First byte of an epoch-mark control frame.
pub const EPOCH_TAG: u8 = 0xEC;

/// First byte of a snapshot-chunk control frame.
pub const SNAP_TAG: u8 = 0xC5;

/// Builds an epoch mark: `EPOCH_TAG · uvarint(epoch) · uvarint(covered)`.
/// `covered` is the number of record-bearing frames the epoch's snapshot
/// subsumes (everything flushed since the previous mark).
pub fn build_epoch_frame(epoch: u64, covered: u64) -> Bytes {
    let mut w = WireWriter::with_capacity(21);
    w.put_u8(EPOCH_TAG);
    w.put_uvarint(epoch);
    w.put_uvarint(covered);
    w.finish()
}

/// Parses an epoch mark back into `(epoch, covered)`.
///
/// # Errors
/// Returns [`WireError`] if the frame is not a well-formed epoch mark.
pub fn parse_epoch_frame(frame: &Bytes) -> Result<(u64, u64), WireError> {
    if frame.first() != Some(&EPOCH_TAG) {
        return Err(WireError::new("not an epoch mark"));
    }
    let mut r = WireReader::new(frame.slice(1..));
    let epoch = r.get_uvarint()?;
    let covered = r.get_uvarint()?;
    if !r.is_empty() {
        return Err(WireError::new("trailing bytes after epoch mark"));
    }
    Ok((epoch, covered))
}

/// True when `frame` is an epoch-mark control frame.
pub fn frame_is_epoch_mark(frame: &Bytes) -> bool {
    frame.first() == Some(&EPOCH_TAG)
}

/// True when `frame` is a snapshot-chunk control frame.
pub fn frame_is_snapshot_chunk(frame: &Bytes) -> bool {
    frame.first() == Some(&SNAP_TAG)
}

/// Builds one snapshot chunk:
/// `SNAP_TAG · uvarint(epoch) · uvarint(index) · uvarint(total) · vbytes(payload)`.
pub fn build_snapshot_chunk(epoch: u64, index: u64, total: u64, payload: &[u8]) -> Bytes {
    let mut w = WireWriter::with_capacity(payload.len() + 40);
    w.put_u8(SNAP_TAG);
    w.put_uvarint(epoch);
    w.put_uvarint(index);
    w.put_uvarint(total);
    w.put_vbytes(payload);
    w.finish()
}

/// Parses a snapshot chunk back into `(epoch, index, total, payload)`.
///
/// # Errors
/// Returns [`WireError`] if the frame is malformed or `index >= total`.
pub fn parse_snapshot_chunk(frame: &Bytes) -> Result<(u64, u64, u64, Bytes), WireError> {
    if frame.first() != Some(&SNAP_TAG) {
        return Err(WireError::new("not a snapshot chunk"));
    }
    let mut r = WireReader::new(frame.slice(1..));
    let epoch = r.get_uvarint()?;
    let index = r.get_uvarint()?;
    let total = r.get_uvarint()?;
    if index >= total {
        return Err(WireError::new("snapshot chunk index out of range"));
    }
    let payload = r.get_vbytes()?;
    if !r.is_empty() {
        return Err(WireError::new("trailing bytes after snapshot chunk"));
    }
    Ok((epoch, index, total, payload))
}

/// Reassembles a snapshot from chunk frames delivered (verified, in order,
/// but possibly interleaved with other frames) during re-integration.
///
/// Chunks from a newer epoch supersede a partial older one — the primary
/// only ever ships its *latest* snapshot, so a stale partial assembly means
/// the transfer restarted.
#[derive(Debug, Default)]
pub struct SnapshotAssembler {
    epoch: Option<u64>,
    total: u64,
    chunks: Vec<Option<Bytes>>,
    received: u64,
}

impl SnapshotAssembler {
    /// Fresh assembler with no pending chunks.
    pub fn new() -> Self {
        SnapshotAssembler::default()
    }

    /// Offers one snapshot-chunk frame. Returns `Some((epoch, blob))` once
    /// every chunk of the current epoch's snapshot has arrived.
    ///
    /// # Errors
    /// Returns [`WireError`] on a malformed chunk or one whose `total`
    /// disagrees with earlier chunks of the same epoch.
    pub fn offer(&mut self, frame: &Bytes) -> Result<Option<(u64, Bytes)>, WireError> {
        let (epoch, index, total, payload) = parse_snapshot_chunk(frame)?;
        if total > 1 << 20 {
            return Err(WireError::new("snapshot chunk count implausible"));
        }
        if self.epoch != Some(epoch) {
            self.epoch = Some(epoch);
            self.total = total;
            self.chunks = vec![None; total as usize];
            self.received = 0;
        } else if self.total != total {
            return Err(WireError::new("snapshot chunk total mismatch"));
        }
        let slot = &mut self.chunks[index as usize];
        if slot.is_none() {
            *slot = Some(payload);
            self.received += 1;
        }
        if self.received < self.total {
            return Ok(None);
        }
        let mut blob = Vec::new();
        for c in self.chunks.drain(..) {
            let c = c.ok_or_else(|| WireError::new("snapshot chunk missing at completion"))?;
            blob.extend_from_slice(&c);
        }
        let epoch = self
            .epoch
            .take()
            .ok_or_else(|| WireError::new("snapshot epoch unset at completion"))?;
        self.total = 0;
        self.received = 0;
        Ok(Some((epoch, Bytes::from(blob))))
    }
}

// ---------------------------------------------------------------------------
// Digest-vote control frames (BFT-lite). Each replica in a voting group
// computes a CRC32C digest over every record-bearing frame it sends
// (primary) or receives (standby) and publishes it as a vote; the group
// driver releases a frame to replay only once `vote_quorum` matching
// digests exist. The tag is disjoint from fixed record tags (1..=8),
// BATCH_TAG, EPOCH_TAG, SNAP_TAG, and SEAL_TAG.
// ---------------------------------------------------------------------------

/// First byte of a digest-vote control frame.
pub const VOTE_TAG: u8 = 0xD6;

/// Builds a digest vote:
/// `VOTE_TAG · uvarint(frame_index) · u32 digest`, where `frame_index`
/// counts the sender's record-bearing frames from zero and `digest` is
/// `crc32c` over the (pre-seal) frame payload.
pub fn build_vote_frame(frame_index: u64, digest: u32) -> Bytes {
    let mut w = WireWriter::with_capacity(15);
    w.put_u8(VOTE_TAG);
    w.put_uvarint(frame_index);
    w.put_u32(digest);
    w.finish()
}

/// Parses a digest vote back into `(frame_index, digest)`.
///
/// # Errors
/// Returns [`WireError`] if the frame is not a well-formed vote.
pub fn parse_vote_frame(frame: &Bytes) -> Result<(u64, u32), WireError> {
    if frame.first() != Some(&VOTE_TAG) {
        return Err(WireError::new("not a digest vote"));
    }
    let mut r = WireReader::new(frame.slice(1..));
    let frame_index = r.get_uvarint()?;
    let digest = r.get_u32()?;
    if !r.is_empty() {
        return Err(WireError::new("trailing bytes after digest vote"));
    }
    Ok((frame_index, digest))
}

/// True when `frame` is a digest-vote control frame.
pub fn frame_is_vote(frame: &Bytes) -> bool {
    frame.first() == Some(&VOTE_TAG)
}

/// The digest a replica votes with for one record-bearing frame: CRC32C
/// over the frame payload as it left (or reached) the replication layer,
/// before sealing.
pub fn frame_digest(payload: &[u8]) -> u32 {
    crc32c(payload)
}

/// The digest a vote claims for one whole flush group: CRC32C over the
/// per-frame digests in wire order. Votes cover flushes, not single
/// frames, so the atomic record sets the protocol keeps inside one flush
/// (a native's result plus its side-effect snapshot, an output commit
/// plus its payload) verify — and release downstream — as a unit.
pub fn flush_digest(frame_digests: &[u32]) -> u32 {
    let mut bytes = Vec::with_capacity(frame_digests.len() * 4);
    for d in frame_digests {
        bytes.extend_from_slice(&d.to_le_bytes());
    }
    crc32c(&bytes)
}

// ---------------------------------------------------------------------------
// Reliability sublayer framing: every frame put on a lossy link is *sealed*
// with a self-validating header so the receiver can detect loss, reorder,
// duplication, and corruption before any record decoder (whose delta
// context assumes a verified in-order prefix) ever sees the payload.
// ---------------------------------------------------------------------------

/// First byte of a sealed frame. Disjoint from fixed record tags (`1..=8`)
/// and [`BATCH_TAG`], so sealed and bare frames are distinguishable.
pub const SEAL_TAG: u8 = 0xF7;

/// Why a sealed frame failed to open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The frame is shorter than the minimal header.
    Truncated,
    /// The first byte is not [`SEAL_TAG`].
    BadTag(u8),
    /// The CRC32C over the sequence number and payload does not match the
    /// stored checksum — the frame was corrupted in flight.
    Crc {
        /// Checksum stored in the header.
        stored: u32,
        /// Checksum computed from the received bytes.
        computed: u32,
    },
    /// The sequence-number varint is malformed.
    Header(WireError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "sealed frame truncated"),
            FrameError::BadTag(t) => write!(f, "not a sealed frame (tag {t:#04x})"),
            FrameError::Crc { stored, computed } => {
                write!(f, "frame CRC mismatch: stored {stored:#010x}, computed {computed:#010x}")
            }
            FrameError::Header(e) => write!(f, "sealed frame header: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

pub use ftjvm_netsim::wire::crc32c;

/// Seals one wire frame for transmission over a lossy link:
/// `SEAL_TAG · crc32c(tail) as u32 · tail`, where
/// `tail = uvarint(seq) · payload`. The checksum covers the sequence
/// number too, so a bit flip in the header cannot silently re-address a
/// valid payload to the wrong log position.
pub fn seal_frame(seq: u64, payload: &[u8]) -> Bytes {
    let mut tail = WireWriter::with_capacity(payload.len() + 10);
    tail.put_uvarint(seq);
    tail.put_raw(payload);
    let tail = tail.finish();
    let mut w = WireWriter::with_capacity(tail.len() + 5);
    w.put_u8(SEAL_TAG);
    w.put_u32(crc32c(&tail));
    w.put_raw(&tail);
    w.finish()
}

/// Opens a sealed frame, returning `(sequence number, payload)`.
///
/// # Errors
/// Returns a [`FrameError`] if the frame is truncated, not sealed, fails
/// its CRC, or carries a malformed sequence varint. Never panics, for any
/// input bytes.
pub fn open_frame(raw: &Bytes) -> Result<(u64, Bytes), FrameError> {
    if raw.len() < 6 {
        return Err(FrameError::Truncated);
    }
    if raw[0] != SEAL_TAG {
        return Err(FrameError::BadTag(raw[0]));
    }
    let stored = u32::from_le_bytes([raw[1], raw[2], raw[3], raw[4]]);
    let tail = raw.slice(5..);
    let computed = crc32c(&tail);
    if stored != computed {
        return Err(FrameError::Crc { stored, computed });
    }
    let mut r = WireReader::new(tail.clone());
    let seq = r.get_uvarint().map_err(FrameError::Header)?;
    let payload = tail.slice(tail.len() - r.remaining()..);
    Ok((seq, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        let t0 = VtPath::root();
        let t1 = t0.child(0);
        vec![
            Record::IdMap { l_id: 3, t: t0.clone(), t_asn: 1 },
            Record::LockAcq { t: t0.clone(), t_asn: 1, l_id: 3, l_asn: 1 },
            Record::LockAcq { t: t1.clone(), t_asn: 1, l_id: 3, l_asn: 2 },
            Record::LockAcq { t: t0.clone(), t_asn: 2, l_id: 3, l_asn: 3 },
            Record::NativeResult {
                t: t0.clone(),
                seq: 1,
                sig_hash: crate::records::sig_hash("sys.time"),
                result: LoggedResult::Ok(Some(WireValue::Int(-42))),
                out_args: vec![(1, vec![WireValue::Null, WireValue::Double(2.5)])],
            },
            Record::SeState { handler: 2, payload: Bytes::from_static(b"snap") },
            Record::OutputCommit { t: t0.clone(), seq: 1, output_id: 7 },
            Record::Sched {
                t: t0.clone(),
                br_cnt: 100,
                method: 4,
                pc_off: 12,
                mon_cnt: 6,
                l_asn: 0,
                in_native: false,
                next: t1.clone(),
            },
            Record::LockInterval { t: t1, t_asn_start: 2, count: 50 },
            Record::Heartbeat { now_ns: 1_000_000 },
        ]
    }

    #[test]
    fn batch_roundtrip_preserves_records() {
        let records = sample_records();
        let mut enc = RecordEncoder::new();
        let bodies: Vec<Bytes> = records.iter().map(|r| enc.encode_body(r)).collect();
        let frame = build_batch_frame(&bodies);
        let decoded = decode_frames(vec![frame]).unwrap();
        assert_eq!(decoded, records);
    }

    #[test]
    fn split_batches_share_one_context() {
        // The same record stream split across several flushes must decode
        // identically: the context persists across frames.
        let records = sample_records();
        let mut enc = RecordEncoder::new();
        let bodies: Vec<Bytes> = records.iter().map(|r| enc.encode_body(r)).collect();
        let frames = vec![
            build_batch_frame(&bodies[..4]),
            build_batch_frame(&bodies[4..7]),
            build_batch_frame(&bodies[7..]),
        ];
        assert_eq!(decode_frames(frames).unwrap(), records);
    }

    /// A representative suffix: fixed frames, compact batches (context
    /// chained), sealed frames (over both kinds), and epoch marks — long
    /// enough to cross [`PIPELINE_MIN_FRAMES`]. Also returns a
    /// continuation batch whose compact body deltas against the stream's
    /// final encoder context, so a decoder that absorbed the stream can be
    /// checked for context equality behaviorally.
    fn mixed_stream() -> (Vec<Bytes>, Bytes) {
        let records = sample_records();
        let mut enc = RecordEncoder::new();
        let bodies: Vec<Bytes> = records.iter().map(|r| enc.encode_body(r)).collect();
        let fixed: Vec<Bytes> = records.iter().map(Record::encode).collect();
        let frames = vec![
            fixed[0].clone(),
            build_batch_frame(&bodies[..4]),
            seal_frame(1, &fixed[1]),
            build_epoch_frame(1, 2),
            fixed[2].clone(),
            seal_frame(2, &build_batch_frame(&bodies[4..7])),
            fixed[3].clone(),
            fixed[4].clone(),
            build_epoch_frame(2, 4),
            seal_frame(3, &fixed[5]),
            fixed[6].clone(),
            build_batch_frame(&bodies[7..]),
            fixed[7].clone(),
            seal_frame(4, &fixed[8]),
            fixed[0].clone(),
            fixed[1].clone(),
            fixed[2].clone(),
            fixed[3].clone(),
        ];
        let cont = build_batch_frame(&[enc.encode_body(&Record::Heartbeat { now_ns: 2_000_000 })]);
        (frames, cont)
    }

    #[test]
    fn pipelined_decode_is_thread_count_invariant() {
        let (frames, cont) = mixed_stream();
        assert!(frames.len() >= PIPELINE_MIN_FRAMES);
        let mut base_dec = RecordDecoder::new();
        let base = decode_frames_pipelined(&mut base_dec, &frames, 1).unwrap();
        assert_eq!(base.len(), frames.len());
        // Control frames decode to nothing; everything else to records.
        assert!(base[3].is_empty() && base[8].is_empty());
        assert_eq!(base[1].len(), 4);
        for threads in [2, 4, 8] {
            let mut dec = RecordDecoder::new();
            let got = decode_frames_pipelined(&mut dec, &frames, threads).unwrap();
            assert_eq!(got, base, "threads={threads}");
            // The stateful delta context must have advanced identically:
            // a continuation batch (heartbeat delta against the stream's
            // last heartbeat) decodes to the same record.
            let mut a = Vec::new();
            dec.decode_frame(cont.clone(), &mut a).unwrap();
            assert_eq!(a, vec![Record::Heartbeat { now_ns: 2_000_000 }], "threads={threads}");
        }
    }

    #[test]
    fn pipelined_decode_reports_the_sequential_error() {
        // Scenario 1: a corrupted seal early, a truncated batch later —
        // the seal failure (smaller index) must win at every thread count.
        let (mut frames, _) = mixed_stream();
        let mut bad = frames[2].to_vec();
        *bad.last_mut().unwrap() ^= 0xFF;
        frames[2] = Bytes::from(bad);
        frames[11] = Bytes::from_static(&[0xBA, 0x01]);
        let base =
            decode_frames_pipelined(&mut RecordDecoder::new(), &frames, 1).unwrap_err().to_string();
        for threads in [2, 4, 8] {
            let got = decode_frames_pipelined(&mut RecordDecoder::new(), &frames, threads)
                .unwrap_err()
                .to_string();
            assert_eq!(got, base, "threads={threads}");
        }

        // Scenario 2: a truncated batch early, a garbage fixed frame later.
        let (mut frames, _) = mixed_stream();
        frames[1] = Bytes::from_static(&[0xBA, 0x01]);
        frames[12] = Bytes::from_static(&[0x09, 0x00, 0x00]);
        let base =
            decode_frames_pipelined(&mut RecordDecoder::new(), &frames, 1).unwrap_err().to_string();
        for threads in [2, 4, 8] {
            let got = decode_frames_pipelined(&mut RecordDecoder::new(), &frames, threads)
                .unwrap_err()
                .to_string();
            assert_eq!(got, base, "threads={threads}");
        }
    }

    #[test]
    fn mixed_fixed_and_batch_frames_decode() {
        let records = sample_records();
        let mut enc = RecordEncoder::new();
        // Heartbeats ride as fixed frames between compact batches.
        let frames = vec![
            Record::Heartbeat { now_ns: 5 }.encode(),
            build_batch_frame(&records.iter().map(|r| enc.encode_body(r)).collect::<Vec<_>>()),
            Record::Heartbeat { now_ns: 6 }.encode(),
        ];
        let decoded = decode_frames(frames).unwrap();
        assert_eq!(decoded.len(), records.len() + 2);
        assert_eq!(decoded[0], Record::Heartbeat { now_ns: 5 });
        assert_eq!(&decoded[1..=records.len()], &records[..]);
    }

    #[test]
    fn compact_lock_acq_is_a_few_bytes() {
        let t = VtPath::root();
        let mut enc = RecordEncoder::new();
        // First mention pays for the thread definition...
        let first = enc.encode_body(&Record::LockAcq { t: t.clone(), t_asn: 1, l_id: 0, l_asn: 1 });
        assert!(first.len() <= 8, "first lock-acq body was {} bytes", first.len());
        // ...steady state is tag + thread ref + three deltas.
        let steady = enc.encode_body(&Record::LockAcq { t, t_asn: 2, l_id: 0, l_asn: 2 });
        assert_eq!(steady.len(), 5, "steady-state lock-acq body");
    }

    #[test]
    fn non_monotone_values_still_roundtrip() {
        // Wrapping deltas must survive arbitrary jumps in either direction.
        let t = VtPath::root();
        let records = vec![
            Record::LockAcq { t: t.clone(), t_asn: u64::MAX, l_id: 9, l_asn: u64::MAX },
            Record::LockAcq { t: t.clone(), t_asn: 0, l_id: 9, l_asn: 3 },
            Record::Heartbeat { now_ns: u64::MAX },
            Record::Heartbeat { now_ns: 0 },
            Record::LockInterval { t, t_asn_start: u64::MAX - 1, count: 10 },
        ];
        let mut enc = RecordEncoder::new();
        let bodies: Vec<Bytes> = records.iter().map(|r| enc.encode_body(r)).collect();
        assert_eq!(decode_frames(vec![build_batch_frame(&bodies)]).unwrap(), records);
    }

    #[test]
    fn truncated_batch_errors_not_panics() {
        let records = sample_records();
        let mut enc = RecordEncoder::new();
        let bodies: Vec<Bytes> = records.iter().map(|r| enc.encode_body(r)).collect();
        let frame = build_batch_frame(&bodies);
        for cut in 1..frame.len() {
            let truncated = frame.slice(..cut);
            let err = decode_frames(vec![truncated]);
            assert!(err.is_err(), "cut at {cut} should error");
        }
    }

    #[test]
    fn garbage_batch_errors_not_panics() {
        // A deterministic pseudo-random byte soup behind a batch tag.
        let mut state = 0x1234_5678_9abc_def0u64;
        for len in [1usize, 2, 7, 33, 256] {
            let mut frame = vec![BATCH_TAG];
            for _ in 0..len {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                frame.push((state >> 56) as u8);
            }
            let _ = decode_frames(vec![Bytes::from(frame)]);
        }
    }

    #[test]
    fn unknown_thread_and_sig_references_error() {
        let mut w = WireWriter::new();
        w.put_u8(2); // lock-acq
        w.put_uvarint(99); // thread ref that was never defined
        let body = w.finish();
        assert!(decode_frames(vec![build_batch_frame(&[body])]).is_err());

        let mut w = WireWriter::new();
        w.put_u8(4); // nd-result
        w.put_uvarint(0); // define thread
        w.put_uvarint(1);
        w.put_uvarint(0);
        w.put_ivarint(2); // seq delta
        w.put_uvarint(42); // sig ref that was never defined
        let body = w.finish();
        assert!(decode_frames(vec![build_batch_frame(&[body])]).is_err());
    }

    #[test]
    fn batch_header_is_small() {
        let frame = build_batch_frame(&[]);
        assert_eq!(frame.len(), 2); // tag + zero count
        let t = VtPath::root();
        let mut enc = RecordEncoder::new();
        let body = enc.encode_body(&Record::LockAcq { t, t_asn: 1, l_id: 0, l_asn: 1 });
        let frame = build_batch_frame(std::slice::from_ref(&body));
        assert_eq!(frame.len(), body.len() + 2);
    }

    #[test]
    fn ctx_export_import_resumes_mid_stream() {
        // Encode a prefix, export the encoder context, import it into a
        // FRESH decoder, and check that bodies encoded after the export
        // decode correctly — the re-integration resume path.
        let records = sample_records();
        let mut enc = RecordEncoder::new();
        for r in &records {
            let _ = enc.encode_body(r);
        }
        let ctx = enc.export_ctx();

        let t0 = VtPath::root();
        let suffix = vec![
            Record::LockAcq { t: t0.clone(), t_asn: 3, l_id: 3, l_asn: 4 },
            Record::OutputCommit { t: t0.clone(), seq: 2, output_id: 8 },
            Record::NativeResult {
                t: t0.clone(),
                seq: 2,
                sig_hash: crate::records::sig_hash("sys.time"),
                result: LoggedResult::Ok(Some(WireValue::Int(9))),
                out_args: vec![],
            },
            Record::Sched {
                t: t0,
                br_cnt: 120,
                method: 4,
                pc_off: 30,
                mon_cnt: 7,
                l_asn: 0,
                in_native: false,
                next: VtPath::root().child(0),
            },
        ];
        let bodies: Vec<Bytes> = suffix.iter().map(|r| enc.encode_body(r)).collect();
        let mut dec = RecordDecoder::new();
        dec.import_ctx(&ctx).expect("import");
        let mut out = Vec::new();
        dec.decode_frame(build_batch_frame(&bodies), &mut out).expect("decode suffix");
        assert_eq!(out, suffix);
    }

    #[test]
    fn ctx_import_rejects_mutations() {
        let records = sample_records();
        let mut enc = RecordEncoder::new();
        for r in &records {
            let _ = enc.encode_body(r);
        }
        let ctx = enc.export_ctx();
        let mut dec = RecordDecoder::new();
        dec.import_ctx(&ctx).expect("clean import");
        // Truncations must error, never panic.
        for cut in 0..ctx.len() {
            let _ = RecordDecoder::new().import_ctx(&ctx.slice(..cut)).is_err();
        }
        // Trailing garbage is rejected.
        let mut v = ctx.to_vec();
        v.push(0);
        assert!(RecordDecoder::new().import_ctx(&Bytes::from(v)).is_err());
    }

    #[test]
    fn epoch_mark_roundtrip_and_skip() {
        let frame = build_epoch_frame(7, 123);
        assert!(frame_is_epoch_mark(&frame));
        assert!(!frame_is_heartbeat(&frame));
        assert_eq!(parse_epoch_frame(&frame).unwrap(), (7, 123));
        // Record decoders skip control frames without touching context.
        let mut out = Vec::new();
        RecordDecoder::new().decode_frame(frame.clone(), &mut out).expect("skip");
        assert!(out.is_empty());
        // Malformed marks error.
        assert!(parse_epoch_frame(&frame.slice(..1)).is_err());
        let mut v = frame.to_vec();
        v.push(9);
        assert!(parse_epoch_frame(&Bytes::from(v)).is_err());
    }

    #[test]
    fn snapshot_chunks_reassemble() {
        let blob: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let chunk_size = 1024;
        let total = blob.len().div_ceil(chunk_size) as u64;
        let frames: Vec<Bytes> = blob
            .chunks(chunk_size)
            .enumerate()
            .map(|(i, c)| build_snapshot_chunk(3, i as u64, total, c))
            .collect();
        let mut asm = SnapshotAssembler::new();
        for f in &frames[..frames.len() - 1] {
            assert!(frame_is_snapshot_chunk(f));
            assert_eq!(asm.offer(f).unwrap(), None);
        }
        // Duplicate delivery of an already-held chunk is idempotent.
        assert_eq!(asm.offer(&frames[0]).unwrap(), None);
        let (epoch, got) = asm.offer(&frames[frames.len() - 1]).unwrap().expect("complete");
        assert_eq!(epoch, 3);
        assert_eq!(got.as_ref(), &blob[..]);
    }

    #[test]
    fn snapshot_assembler_newer_epoch_supersedes() {
        let mut asm = SnapshotAssembler::new();
        assert_eq!(asm.offer(&build_snapshot_chunk(1, 0, 2, b"old")).unwrap(), None);
        // Epoch 2's transfer restarts the assembly; epoch 1's partial state
        // is dropped.
        assert_eq!(asm.offer(&build_snapshot_chunk(2, 0, 2, b"ab")).unwrap(), None);
        let (epoch, blob) = asm.offer(&build_snapshot_chunk(2, 1, 2, b"cd")).unwrap().unwrap();
        assert_eq!((epoch, blob.as_ref()), (2, &b"abcd"[..]));
    }

    #[test]
    fn snapshot_chunk_malformed_rejected() {
        assert!(parse_snapshot_chunk(&Bytes::from_static(&[SNAP_TAG])).is_err());
        // index >= total.
        let mut w = WireWriter::new();
        w.put_u8(SNAP_TAG);
        w.put_uvarint(0);
        w.put_uvarint(5);
        w.put_uvarint(5);
        w.put_vbytes(b"x");
        assert!(parse_snapshot_chunk(&w.finish()).is_err());
        // Total mismatch across chunks of one epoch.
        let mut asm = SnapshotAssembler::new();
        asm.offer(&build_snapshot_chunk(4, 0, 3, b"a")).unwrap();
        assert!(asm.offer(&build_snapshot_chunk(4, 1, 2, b"b")).is_err());
    }

    #[test]
    fn crc32c_matches_known_vectors() {
        // RFC 3720 §B.4 test vectors.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(&[0u8; 32]), 0x8a91_36aa);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62a8_ab43);
        let ascending: Vec<u8> = (0..32).collect();
        assert_eq!(crc32c(&ascending), 0x46dd_794e);
    }

    #[test]
    fn seal_open_roundtrip() {
        for seq in [0u64, 1, 127, 128, 1 << 20, u64::MAX] {
            let payload = Bytes::from_static(b"some frame payload");
            let sealed = seal_frame(seq, &payload);
            let (got_seq, got) = open_frame(&sealed).expect("roundtrip");
            assert_eq!(got_seq, seq);
            assert_eq!(got, payload);
        }
        // Empty payloads seal too (not used on the wire, but must not panic).
        let sealed = seal_frame(3, b"");
        assert_eq!(open_frame(&sealed).expect("empty"), (3, Bytes::new()));
    }

    #[test]
    fn open_rejects_every_single_byte_flip() {
        let sealed = seal_frame(42, b"payload bytes under test");
        for i in 0..sealed.len() {
            for bit in 0..8u8 {
                let mut v = sealed.to_vec();
                v[i] ^= 1 << bit;
                let got = open_frame(&Bytes::from(v));
                assert!(got.is_err(), "flip byte {i} bit {bit} must not verify");
            }
        }
    }

    #[test]
    fn open_rejects_truncation_and_bad_tag() {
        let sealed = seal_frame(7, b"abc");
        for cut in 0..sealed.len() {
            assert!(open_frame(&sealed.slice(..cut)).is_err(), "cut {cut}");
        }
        assert_eq!(open_frame(&Bytes::from_static(&[1u8; 12])), Err(FrameError::BadTag(1)));
        assert_eq!(open_frame(&Bytes::from_static(b"ab")), Err(FrameError::Truncated));
    }
}
