//! Transparent primary-backup fault tolerance for the `ftjvm` virtual
//! machine — a from-scratch reproduction of *A Fault-Tolerant Java Virtual
//! Machine* (Napper, Alvisi, Vin; DSN 2003).
//!
//! The VM (crate `ftjvm-vm`) is modelled as a set of cooperating state
//! machines, one bytecode execution engine per application thread (§3).
//! This crate eliminates every source of non-determinism so that a cold
//! backup can replay the primary's log and take over transparently:
//!
//! * **Non-deterministic native methods** (§4.1) — results logged at the
//!   primary, adopted at the backup ([`primary`], [`backup`]);
//! * **Non-deterministic read sets** under multithreading (§4.2) — two
//!   interchangeable techniques, selected by [`ReplicationMode`]:
//!   *replicated lock synchronization* (per-acquisition records + virtual
//!   lock ids) and *replicated thread scheduling* (per-switch progress
//!   records: `br_cnt`, `pc_off`, `mon_cnt`);
//! * **Output to the environment** (§3.4) — output commit with pessimistic
//!   acknowledgment, testable/idempotent outputs, and *side-effect
//!   handlers* ([`se`]) recovering volatile environment state (§4.4).
//!
//! # Quick start
//!
//! ```
//! use ftjvm_core::{FtConfig, FtJvm, ReplicationMode};
//! use ftjvm_netsim::FaultPlan;
//! use ftjvm_vm::program::ProgramBuilder;
//! use std::sync::Arc;
//!
//! // A program that prints 1, 2, 3.
//! let mut b = ProgramBuilder::new();
//! let print = b.import_native("sys.print_int", 1, false);
//! let mut m = b.method("main", 1);
//! for i in 1..=3 {
//!     m.push_i(i).invoke_native(print, 1);
//! }
//! m.ret_void();
//! let entry = m.build(&mut b);
//! let program = Arc::new(b.build(entry)?);
//!
//! // Crash the primary before its second output; the backup takes over.
//! let cfg = FtConfig {
//!     mode: ReplicationMode::LockSync,
//!     fault: FaultPlan::BeforeOutput(1),
//!     ..FtConfig::default()
//! };
//! let report = FtJvm::new(program, cfg).run_with_failure()?;
//! assert!(report.crashed);
//! assert_eq!(report.console(), vec!["1", "2", "3"]);
//! report.check_no_duplicate_outputs().expect("exactly-once output");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backup;
pub mod codec;
pub mod fleet;
pub mod ftjvm;
pub mod group;
pub mod pair;
pub mod parallel;
pub mod primary;
pub mod records;
pub mod runtime;
pub mod se;
pub mod stats;

pub use backup::{
    BackupLog, Control, EpochStore, IntervalBackup, LockSyncBackup, RecvWindow, ReplayError,
    ResumeSeed, TsBackup,
};
pub use codec::{
    build_batch_frame, build_epoch_frame, build_snapshot_chunk, crc32c, decode_frames,
    decode_frames_pipelined, frame_is_epoch_mark, frame_is_snapshot_chunk, open_frame,
    parse_epoch_frame, parse_snapshot_chunk, seal_frame, FrameError, RecordDecoder, RecordEncoder,
    SnapshotAssembler,
};
pub use fleet::{
    run_fleet, split_seed, FleetConfig, FleetReport, PairOutcome, PairPlan, RouterMode,
};
pub use ftjvm::{FtConfig, FtJvm, LockVariant, PairReport, ReplicationMode};
pub use ftjvm_netsim::{NetFaultPlan, WireCodec};
pub use group::{
    FailoverRecord, GroupConfig, GroupEvent, GroupMoment, GroupReport, GroupTask, ReignStats,
};
pub use pair::{PairEvent, PairTask};
pub use parallel::{run_windowed, PoolOptions, PoolStats, WindowTask};
pub use primary::{
    AckPolicy, IntervalPrimary, LockSyncPrimary, LogChannel, PrimaryCore, ReliableLink, SendWindow,
    TsPrimary,
};
pub use records::{LoggedResult, Record, WireValue};
pub use runtime::{CheckpointPlan, CheckpointReport, LagBudget, Replica, ReplicaRuntime, Role};
pub use se::{SeRegistration, SeRegistry, SideEffectHandler, SocketHandler};
pub use stats::ReplicationStats;
