//! Fleet-scale serving simulation: hundreds of replicated pairs
//! multiplexed on one global timeline.
//!
//! The paper measures one primary/backup pair on two Sun E5000s. This
//! module asks the fleet question: what service levels does a *building
//! full* of such pairs deliver when faults arrive continuously? Each
//! pair is a [`PairTask`] (the pair-as-value state machine); the
//! windowed worker pool of [`crate::parallel`] advances every pair to
//! each global logical-time quantum boundary and merges the shared-trunk
//! reservations at a barrier, so hundreds of pairs interleave on one
//! timeline — on one thread or many, byte-identically
//! ([`FleetConfig::threads`]).
//!
//! The moving parts:
//!
//! * **Seed splitting** ([`split_seed`]) — every random choice a pair
//!   makes (workload size, technique, codec, fault plan, checkpoint
//!   jitter) derives from `(fleet_seed, pair_id, stream)` through a
//!   SplitMix64 finalizer. Pairs are decorrelated by construction, and
//!   any single pair is reproducible standalone from the fleet seed and
//!   its id alone — no fleet run required.
//! * **Fault plans** — per-pair primary crashes and backup kills are
//!   drawn independently per mille; a *rack partition* scenario
//!   additionally kills the backups of one rack at the same local
//!   instant (pairs are racked `pair_id % racks`), modeling correlated
//!   loss of a failure domain.
//! * **Shared capacity** — an optional fleet trunk
//!   ([`ftjvm_netsim::SharedBandwidth`]) that every pair's replication
//!   channel serializes through, so one pair's log burst queues behind
//!   another's (contention). Off, pairs are timing-independent.
//! * **Request router** — each journal write a pair commits serves one
//!   client request. Open-loop clients arrive on a fixed interarrival;
//!   closed-loop clients issue the next request a think time after the
//!   previous completion. Output-commit latency percentiles, failovers
//!   absorbed, and the recovery backlog come out of matching arrivals to
//!   commit completions.
//!
//! Every pair runs the hot + checkpointed configuration (the richest
//! machinery: streaming standby, epoch cuts, degraded mode,
//! re-integration); lock-sync vs thread-sched and fixed vs compact codec
//! are drawn per pair so the fleet exercises the full matrix.

use crate::ftjvm::{FtConfig, LockVariant, PairReport, ReplicationMode};
use crate::group::{GroupConfig, GroupReport, GroupTask};
use crate::pair::PairTask;
use crate::parallel::{run_windowed, PoolOptions, PoolStats, WindowTask};
use crate::runtime::{CheckpointPlan, LagBudget, ReplicaRuntime};
use ftjvm_netsim::{FailureDetector, FaultPlan, SharedLink, SharedStats, SimTime, WireCodec};
use ftjvm_vm::{NativeRegistry, Program, VmError};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Local simulated time a pair advances per scheduler turn. Small enough
/// that pairs interleave finely on the shared trunk, large enough that
/// scheduler overhead is negligible against a slice of real execution.
const QUANTUM: SimTime = SimTime::from_micros(500);

/// Bytes one journal entry writes (one output commit = one served
/// request); the final console line prints `14 × requests`.
const ENTRY_BYTES: u64 = 14;

/// Instruction units one journal iteration executes (measured: a
/// 130-request run is ~1183 instructions). Used to place backup kills
/// inside the run — instruction-unit instants, not wall time.
const UNITS_PER_REQUEST: u64 = 9;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed for one `(pair, stream)` slot of a fleet: two
/// SplitMix64 finalizer rounds over the fleet seed and the slot id.
/// Distinct pairs and distinct streams within a pair get decorrelated
/// values by construction, and the derivation needs nothing but
/// `(fleet_seed, pair_id)` — so a single pair's whole configuration can
/// be reproduced standalone.
pub fn split_seed(fleet_seed: u64, pair_id: u32, stream: u32) -> u64 {
    splitmix64(splitmix64(fleet_seed ^ ((u64::from(pair_id) << 32) | u64::from(stream))))
}

/// How the client population generates request arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterMode {
    /// Open loop: requests arrive on a fixed interarrival regardless of
    /// completions (arrival rate is exogenous; latency absorbs backlog).
    Open {
        /// Gap between consecutive request arrivals at one pair.
        interarrival: SimTime,
    },
    /// Closed loop: one client per pair issues the next request a think
    /// time after the previous completion (rate adapts to the server).
    Closed {
        /// Client think time between a completion and the next request.
        think: SimTime,
    },
}

/// Fleet-run parameters. Everything downstream — per-pair workload
/// sizes, fault plans, seeds, timing — derives deterministically from
/// this value.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of replicated pairs.
    pub pairs: u32,
    /// Fleet master seed; all per-pair streams split from it.
    pub seed: u64,
    /// Failure domains; a pair lives in rack `pair_id % racks`.
    pub racks: u32,
    /// Per-mille probability that a pair's primary fail-stops mid-run.
    pub crash_per_mille: u32,
    /// Per-mille probability that a pair's backup is killed mid-run.
    pub kill_per_mille: u32,
    /// Correlated scenario: kill the backup of *every* pair in this rack
    /// (in addition to the independent draws).
    pub partition_rack: Option<u32>,
    /// Local instruction-unit instant at which a rack-partition kill
    /// fires (the same for every victim, modeling one switch dying).
    pub partition_kill_units: u64,
    /// Recruit replacement standbys after degraded-mode entry.
    pub reintegrate: bool,
    /// Epoch checkpoint interval floor, in flushes.
    pub checkpoint_base: u64,
    /// Per-pair jitter added to the checkpoint interval (`0..jitter`),
    /// de-phasing epoch cuts across the fleet.
    pub checkpoint_jitter: u64,
    /// Start-time stagger between consecutive pair ids.
    pub stagger: SimTime,
    /// Shared-trunk serialization cost per payload byte; `None` gives
    /// every pair its own uncontended link.
    pub shared_per_byte: Option<SimTime>,
    /// Client arrival model.
    pub router: RouterMode,
    /// Smallest per-pair journal length (requests served).
    pub min_requests: u64,
    /// Largest per-pair journal length.
    pub max_requests: u64,
    /// Check every surviving pair's console against the analytically
    /// expected output and scan for duplicate output ids.
    pub verify: bool,
    /// Run every slot as an N-replica group instead of a classic pair:
    /// `Some(k)` gives each slot `k` replicas with rank-ordered
    /// promotion, the slot's drawn primary crash becoming the group's
    /// first kill and a drawn backup kill the rank-1 standby's death.
    /// `None` keeps classic pairs.
    pub group_size: Option<usize>,
    /// BFT-lite digest vote quorum forwarded to group slots (ignored for
    /// classic pairs).
    pub vote_quorum: Option<u32>,
    /// Worker threads for the windowed scheduler. The fleet result is
    /// byte-identical for every value — threads change wall-clock time
    /// only (see [`crate::parallel`]).
    pub threads: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            pairs: 64,
            seed: 0xF1EE7,
            racks: 8,
            crash_per_mille: 150,
            kill_per_mille: 100,
            partition_rack: None,
            partition_kill_units: 512,
            reintegrate: true,
            checkpoint_base: 3,
            checkpoint_jitter: 3,
            stagger: SimTime::from_micros(200),
            shared_per_byte: Some(SimTime::from_nanos(20)),
            router: RouterMode::Open { interarrival: SimTime::from_micros(300) },
            min_requests: 60,
            max_requests: 200,
            verify: true,
            group_size: None,
            vote_quorum: None,
            threads: 1,
        }
    }
}

/// Everything one pair needs, derived from `(fleet_seed, pair_id)`:
/// rack, start offset, workload size, technique, codec, fault plan, and
/// checkpoint cadence.
#[derive(Debug, Clone)]
pub struct PairPlan {
    /// The pair's fleet-wide id.
    pub pair_id: u32,
    /// Failure domain (`pair_id % racks`).
    pub rack: u32,
    /// Global instant the pair's local clock zero maps to.
    pub start_offset: SimTime,
    /// Journal entries the pair writes — requests it serves.
    pub requests: u64,
    /// Replication technique drawn for this pair.
    pub mode: ReplicationMode,
    /// Wire codec drawn for this pair.
    pub codec: WireCodec,
    /// Primary fault injection (a mid-journal `BeforeOutput` crash when
    /// the crash draw fires).
    pub fault: FaultPlan,
    /// Backup kill instant in instruction units, from the independent
    /// draw or the rack partition.
    pub kill_backup_after_units: Option<u64>,
    /// Epoch checkpoint interval (base + per-pair jitter), in flushes.
    pub checkpoint_interval: u64,
}

impl PairPlan {
    /// Derives pair `pair_id`'s plan from the fleet configuration. Pure:
    /// depends only on `(cfg.seed, pair_id)` and the scalar knobs.
    pub fn derive(cfg: &FleetConfig, pair_id: u32) -> PairPlan {
        let s = |stream: u32| split_seed(cfg.seed, pair_id, stream);
        let racks = cfg.racks.max(1);
        let rack = pair_id % racks;
        let span = cfg.max_requests.saturating_sub(cfg.min_requests) + 1;
        let requests = cfg.min_requests + s(0) % span;
        let mode =
            if s(1) % 2 == 0 { ReplicationMode::LockSync } else { ReplicationMode::ThreadSched };
        let codec = if s(2) % 2 == 0 { WireCodec::Fixed } else { WireCodec::Compact };
        let fault = if s(3) % 1000 < u64::from(cfg.crash_per_mille) {
            // Crash in the paper's uncertain-output window, somewhere in
            // the journal's middle half — late enough that epochs exist,
            // early enough that real replay remains.
            FaultPlan::BeforeOutput(requests / 4 + s(4) % (requests / 2).max(1))
        } else {
            FaultPlan::None
        };
        // Kills land in the run's middle half, like crashes: early enough
        // that degraded mode (and re-integration) has execution left to
        // cover, late enough that epochs exist to recover from.
        let total_units = requests * UNITS_PER_REQUEST;
        let drawn_kill = if s(5) % 1000 < u64::from(cfg.kill_per_mille) {
            Some(total_units / 4 + s(6) % (total_units / 2).max(1))
        } else {
            None
        };
        // The partition overrides the independent draw: one switch dies
        // at one instant, taking every victim rack backup with it.
        let kill_backup_after_units = if cfg.partition_rack == Some(rack) {
            Some(cfg.partition_kill_units)
        } else {
            drawn_kill
        };
        let checkpoint_interval = cfg.checkpoint_base + s(7) % cfg.checkpoint_jitter.max(1);
        PairPlan {
            pair_id,
            rack,
            start_offset: SimTime::from_nanos(cfg.stagger.as_nanos() * u64::from(pair_id)),
            requests,
            mode,
            codec,
            fault,
            kill_backup_after_units,
            checkpoint_interval,
        }
    }

    /// The replica-pair configuration this plan runs under: hot +
    /// checkpointed, per-pair derived seeds, a fast detector sized for
    /// journal-scale runs.
    pub fn ft_config(&self, cfg: &FleetConfig) -> FtConfig {
        let s = |stream: u32| split_seed(cfg.seed, self.pair_id, stream);
        FtConfig {
            mode: self.mode,
            lock_variant: LockVariant::PerAcquisition,
            lag_budget: LagBudget::Hot,
            codec: self.codec,
            fault: self.fault,
            checkpoint_interval: Some(self.checkpoint_interval),
            detector: FailureDetector::new(SimTime::from_millis(1), 2),
            primary_seed: s(8),
            backup_seed: s(9),
            primary_env_seed: s(10),
            backup_env_seed: s(11),
            ..FtConfig::default()
        }
    }

    /// The checkpoint plan (fault, kill, re-integration) for the task.
    pub fn checkpoint_plan(&self, cfg: &FleetConfig) -> CheckpointPlan {
        CheckpointPlan {
            fault: self.fault,
            kill_backup_after_units: self.kill_backup_after_units,
            reintegrate: cfg.reintegrate,
        }
    }

    /// The group configuration this plan runs under when the fleet
    /// schedules N-replica groups: the pair's drawn primary crash becomes
    /// the group's first (and only) kill, a drawn backup kill becomes the
    /// rank-1 standby's death.
    pub fn group_config(&self, cfg: &FleetConfig, size: usize) -> GroupConfig {
        GroupConfig {
            size,
            vote_quorum: cfg.vote_quorum,
            kills: if self.fault.is_armed() { vec![self.fault] } else { Vec::new() },
            kill_standby_after_units: self.kill_backup_after_units.map(|units| (1, units)),
            reintegrate: cfg.reintegrate,
            ..GroupConfig::default()
        }
    }

    /// The console line a correct run of this plan must end with: the
    /// journal's final size, `ENTRY_BYTES × requests`.
    pub fn expected_console(&self) -> Vec<String> {
        vec![format!("{}", ENTRY_BYTES * self.requests)]
    }
}

/// What happened to one pair of the fleet.
#[derive(Debug, Clone)]
pub struct PairOutcome {
    /// The pair's fleet-wide id.
    pub pair_id: u32,
    /// Failure domain.
    pub rack: u32,
    /// Requests the plan asked for.
    pub requests: u64,
    /// Requests matched to a commit completion.
    pub served: u64,
    /// The plan injected a primary crash.
    pub planned_crash: bool,
    /// The plan killed the backup (drawn or rack partition).
    pub planned_kill: bool,
    /// The primary actually fail-stopped and the pair failed over.
    pub crashed: bool,
    /// The primary entered degraded mode (detector declared the backup
    /// dead).
    pub degraded: bool,
    /// A replacement standby went live before the run ended.
    pub reintegrated: bool,
    /// An authority survived to the end (primary, or a promoted backup).
    pub survived: bool,
    /// The surviving console matched the expected output exactly and no
    /// output id was duplicated (only meaningful when `survived`).
    pub output_ok: bool,
    /// Measured failover latency (zero for failure-free pairs).
    pub failover_latency: SimTime,
    /// A fatal error the pair's run raised, if any.
    pub error: Option<String>,
    /// Failure timeline, newest last (group slots record promotion,
    /// eviction, and re-homing moments; classic pairs leave it empty).
    pub timeline: Vec<String>,
}

/// Aggregate service levels of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Pairs launched.
    pub pairs: u32,
    /// Pairs that ran to a final report without a fatal error.
    pub completed: u32,
    /// Primary crashes absorbed: the pair failed over *and* its output
    /// verified exactly-once and byte-identical.
    pub failovers_absorbed: u32,
    /// Backups killed by plan (drawn plus rack partition victims).
    pub backups_killed: u32,
    /// Pairs whose primary entered degraded mode.
    pub degraded_entries: u32,
    /// Pairs that re-integrated a replacement standby.
    pub reintegrated: u32,
    /// Pairs that lost both replicas (beyond the 1-fault model: crash
    /// while the backup was dead and no replacement was live).
    pub lost: u32,
    /// Pairs with a surviving authority whose output failed verification
    /// — must be zero.
    pub divergent: u32,
    /// Requests across all plans.
    pub total_requests: u64,
    /// Requests matched to commit completions.
    pub served_requests: u64,
    /// Peak outstanding matched requests (arrived, not yet committed)
    /// across the fleet timeline — the recovery backlog high-water mark.
    pub backlog_peak: u64,
    /// Median output-commit latency (arrival to commit release).
    pub commit_p50: SimTime,
    /// 99th-percentile output-commit latency.
    pub commit_p99: SimTime,
    /// Worst output-commit latency.
    pub commit_max: SimTime,
    /// Global instant the last pair finished.
    pub makespan: SimTime,
    /// Failovers absorbed per simulated second of makespan.
    pub failovers_per_sec: f64,
    /// Largest retained replay suffix any primary held, in frames (the
    /// re-integration buffer; bounded by one epoch under checkpointing).
    pub peak_suffix_frames: u64,
    /// Largest received-but-unconsumed record count any standby held.
    pub peak_backup_pending: u64,
    /// Shared-trunk statistics, when a trunk was configured.
    pub shared: Option<SharedStats>,
    /// Windowed-scheduler diagnostics: worker count, windows merged,
    /// barrier crossings, per-worker slot ownership.
    pub pool: PoolStats,
    /// Per-pair outcomes, indexed by pair id.
    pub outcomes: Vec<PairOutcome>,
}

impl FleetReport {
    /// True when every surviving pair verified and no pair errored.
    pub fn all_verified(&self) -> bool {
        self.divergent == 0 && self.completed == self.pairs
    }
}

/// Builds the per-pair journal workload: `n` file appends — each an
/// output commit, i.e. one served request — then one console print of
/// the resulting file size. Mirrors the `file_journal` micro workload
/// (the workloads crate sits above this one, so the builder is inlined).
/// Public so a single fleet pair can be reproduced standalone.
pub fn journal_program(n: i64) -> Result<Arc<Program>, VmError> {
    use ftjvm_vm::program::ProgramBuilder;
    let mut b = ProgramBuilder::new();
    let print_int = b.import_native("sys.print_int", 1, false);
    let fopen = b.import_native("file.open", 1, true);
    let fwrite = b.import_native("file.write", 3, true);
    let fsize = b.import_native("file.size", 1, true);
    let fclose = b.import_native("file.close", 1, false);
    let name = b.intern("journal.log");
    let entry_text = b.intern("journal-entry\n");
    let mut m = b.method("main", 1);
    m.const_str(name).invoke_native(fopen, 1).store(1);
    let done = m.new_label();
    m.push_i(n).store(2);
    let top = m.bind_new_label();
    m.load(2).if_not(done);
    m.load(1).const_str(entry_text).push_i(ENTRY_BYTES as i64).invoke_native(fwrite, 3).pop();
    m.inc(2, -1).goto(top);
    m.bind(done);
    m.load(1).invoke_native(fsize, 1).invoke_native(print_int, 1);
    m.load(1).invoke_native(fclose, 1);
    m.ret_void();
    let entry = m.build(&mut b);
    b.build(entry).map(Arc::new).map_err(|e| VmError::Internal(format!("journal program: {e:?}")))
}

/// One scheduler slot's replication machinery: a classic pair or an
/// N-replica group, stepped uniformly by the event loop.
enum SlotTask {
    /// The legacy primary/backup pair.
    Pair(Box<PairTask>),
    /// A k-replica group with rank-ordered promotion.
    Group(Box<GroupTask>),
}

impl WindowTask for SlotTask {
    fn now(&self) -> SimTime {
        match self {
            SlotTask::Pair(t) => t.now(),
            SlotTask::Group(t) => t.now(),
        }
    }

    fn is_done(&self) -> bool {
        match self {
            SlotTask::Pair(t) => t.is_done(),
            SlotTask::Group(t) => t.is_done(),
        }
    }

    fn step(&mut self, until: SimTime) -> Result<(), VmError> {
        match self {
            SlotTask::Pair(t) => t.step(until).map(|_| ()),
            SlotTask::Group(t) => t.step(until).map(|_| ()),
        }
    }
}

/// The routing inputs one finished slot contributes to aggregation:
/// plain data, produced on the slot's owning worker (the reports
/// themselves hold `Rc` state and never cross threads).
struct SlotRouting {
    /// Globalized commit completions `(release ns, pessimistic wait ns)`.
    done: Vec<(u64, u64)>,
    /// The slot's final local instant.
    end: SimTime,
    /// Largest retained replay suffix any of its primaries held.
    peak_suffix: u64,
    /// Largest received-but-unconsumed record count its standby held.
    peak_pending: u64,
}

/// One slot's [`Send`] result, carried back from its worker.
struct SlotResult {
    outcome: PairOutcome,
    /// `None` when the slot errored (mirrors the error path of the old
    /// event loop: errored slots route no requests).
    routing: Option<SlotRouting>,
}

/// Runs a whole fleet per `cfg` and aggregates service levels.
///
/// Deterministic: the same configuration always produces the same
/// report, pair for pair and nanosecond for nanosecond — at any
/// [`FleetConfig::threads`] count. Pair-level fatal errors are captured
/// in the pair's outcome (and fail verification) instead of aborting
/// the fleet.
///
/// # Errors
/// Propagates scheduler-invariant breaks (a bug, not a fault); workload
/// and task construction errors surface as per-pair outcomes.
pub fn run_fleet(cfg: &FleetConfig) -> Result<FleetReport, VmError> {
    let natives = NativeRegistry::with_builtins();
    let programs: Mutex<HashMap<u64, Arc<Program>>> = Mutex::new(HashMap::new());
    let plans: Vec<PairPlan> = (0..cfg.pairs).map(|id| PairPlan::derive(cfg, id)).collect();
    let offsets: Vec<SimTime> = plans.iter().map(|p| p.start_offset).collect();
    let opts = PoolOptions {
        threads: cfg.threads.max(1),
        quantum: QUANTUM,
        trunk_per_byte: cfg.shared_per_byte,
    };

    let build = |pair_id: u32, port: Option<&SharedLink>| -> Result<SlotTask, VmError> {
        let plan = &plans[pair_id as usize];
        let program = {
            let mut cache = programs
                .lock()
                .map_err(|_| VmError::Internal("fleet program cache poisoned".into()))?;
            match cache.get(&plan.requests) {
                Some(p) => p.clone(),
                None => {
                    let p = journal_program(plan.requests as i64)?;
                    cache.insert(plan.requests, p.clone());
                    p
                }
            }
        };
        let mut ft = plan.ft_config(cfg);
        if cfg.group_size.is_some() {
            // The group schedules its own kills; the runtime fault plan
            // would double-fire.
            ft.fault = FaultPlan::None;
        }
        let mut rt = ReplicaRuntime::new(program, natives.clone(), ft);
        if let Some(link) = port {
            rt.set_shared_bandwidth(link.clone(), plan.start_offset);
        }
        match cfg.group_size {
            Some(size) => GroupTask::new(rt, plan.group_config(cfg, size))
                .map(|t| SlotTask::Group(Box::new(t))),
            None => PairTask::checkpointed(rt, plan.checkpoint_plan(cfg))
                .map(|t| SlotTask::Pair(Box::new(t))),
        }
    };

    let finish = |pair_id: u32, task: Result<SlotTask, VmError>| -> SlotResult {
        let plan = &plans[pair_id as usize];
        match task {
            Err(e) => SlotResult { outcome: error_outcome(plan, &e), routing: None },
            Ok(SlotTask::Pair(task)) => {
                let (outcome, report) = finish_pair(plan, cfg, *task);
                let routing = report.map(|report| {
                    let backup_end =
                        report.backup.as_ref().map(|b| b.acct.now()).unwrap_or(SimTime::ZERO);
                    SlotRouting {
                        done: completions(plan, &report),
                        end: report.primary.acct.now().max(backup_end),
                        peak_suffix: report.primary_stats.peak_suffix_frames,
                        peak_pending: report
                            .backup_stats
                            .as_ref()
                            .map_or(0, |bs| bs.peak_backup_pending),
                    }
                });
                SlotResult { outcome, routing }
            }
            Ok(SlotTask::Group(task)) => {
                let (outcome, report) = finish_group(plan, cfg, *task);
                let routing = report.map(|report| SlotRouting {
                    done: group_completions(plan, &report),
                    end: report.final_report.acct.now(),
                    peak_suffix: report
                        .reigns
                        .iter()
                        .map(|r| r.stats.peak_suffix_frames)
                        .max()
                        .unwrap_or(0),
                    peak_pending: 0,
                });
                SlotResult { outcome, routing }
            }
        }
    };

    let (results, pool, shared) = run_windowed(&opts, &offsets, build, finish)?;
    Ok(aggregate(cfg, &plans, results, pool, shared))
}

/// Builds the error outcome for a pair whose run raised a fatal error.
fn error_outcome(plan: &PairPlan, e: &VmError) -> PairOutcome {
    PairOutcome {
        pair_id: plan.pair_id,
        rack: plan.rack,
        requests: plan.requests,
        served: 0,
        planned_crash: plan.fault.is_armed(),
        planned_kill: plan.kill_backup_after_units.is_some(),
        crashed: false,
        degraded: false,
        reintegrated: false,
        survived: false,
        output_ok: false,
        failover_latency: SimTime::ZERO,
        error: Some(e.to_string()),
        timeline: Vec::new(),
    }
}

/// Finalizes a completed pair: verification plus the outcome record.
/// The report rides back alongside so the router can pull its commit
/// samples (reports are dropped after aggregation; outcomes are kept).
fn finish_pair(
    plan: &PairPlan,
    cfg: &FleetConfig,
    task: PairTask,
) -> (PairOutcome, Option<PairReport>) {
    let (_killed, degraded_at, reintegrated_at) = task.checkpoint_timeline();
    let report = match task.into_pair_report() {
        Ok(r) => r,
        Err(e) => return (error_outcome(plan, &e), None),
    };
    let survived = !report.crashed || report.backup.is_some();
    let output_ok = if cfg.verify {
        survived
            && report.console() == plan.expected_console()
            && report.check_no_duplicate_outputs().is_ok()
    } else {
        survived
    };
    let outcome = PairOutcome {
        pair_id: plan.pair_id,
        rack: plan.rack,
        requests: plan.requests,
        served: 0, // filled by the router
        planned_crash: plan.fault.is_armed(),
        planned_kill: plan.kill_backup_after_units.is_some(),
        crashed: report.crashed,
        degraded: degraded_at.is_some(),
        reintegrated: reintegrated_at.is_some(),
        survived,
        output_ok,
        failover_latency: report.failover_latency,
        error: None,
        timeline: Vec::new(),
    };
    (outcome, Some(report))
}

/// Finalizes a completed group slot: verification plus the outcome
/// record, with the group's failure timeline carried into the outcome
/// for divergence reporting.
fn finish_group(
    plan: &PairPlan,
    cfg: &FleetConfig,
    task: GroupTask,
) -> (PairOutcome, Option<GroupReport>) {
    let report = match task.into_report() {
        Ok(r) => r,
        Err(e) => return (error_outcome(plan, &e), None),
    };
    let survived = report.completed;
    let output_ok = if cfg.verify {
        survived
            && report.console() == plan.expected_console()
            && report.check_no_duplicate_outputs().is_ok()
    } else {
        survived
    };
    let outcome = PairOutcome {
        pair_id: plan.pair_id,
        rack: plan.rack,
        requests: plan.requests,
        served: 0, // filled by the router
        planned_crash: plan.fault.is_armed(),
        planned_kill: plan.kill_backup_after_units.is_some(),
        crashed: !report.failovers.is_empty(),
        // Every promotion passes through a degraded window while the
        // survivors re-home.
        degraded: !report.failovers.is_empty(),
        reintegrated: report.timeline.iter().any(|m| m.what.contains("reintegrated")),
        survived,
        output_ok,
        failover_latency: report
            .failovers
            .first()
            .map(|f| f.detection_latency)
            .unwrap_or(SimTime::ZERO),
        error: None,
        timeline: report.timeline.iter().map(ToString::to_string).collect(),
    };
    (outcome, Some(report))
}

/// Globalized commit completions of one pair, sorted by release instant:
/// `(global release ns, pessimistic wait ns)`.
fn completions(plan: &PairPlan, report: &PairReport) -> Vec<(u64, u64)> {
    let base = plan.start_offset.as_nanos();
    let mut all: Vec<(u64, u64)> = report
        .primary_stats
        .commit_samples
        .iter()
        .chain(report.backup_stats.iter().flat_map(|s| s.commit_samples.iter()))
        .map(|&(at, wait)| (base + at, wait))
        .collect();
    all.sort_unstable();
    all
}

/// Globalized commit completions of one group slot: every reign's
/// primary-side commit samples, sorted by release instant.
fn group_completions(plan: &PairPlan, report: &GroupReport) -> Vec<(u64, u64)> {
    let base = plan.start_offset.as_nanos();
    let mut all: Vec<(u64, u64)> = report
        .reigns
        .iter()
        .flat_map(|r| r.stats.commit_samples.iter())
        .map(|&(at, wait)| (base + at, wait))
        .collect();
    all.sort_unstable();
    all
}

/// Matches one pair's request arrivals to its commit completions and
/// returns `(arrival, completion, latency)` triples plus the unserved
/// arrival count.
fn route_pair(
    cfg: &FleetConfig,
    plan: &PairPlan,
    done: &[(u64, u64)],
) -> (Vec<(u64, u64, u64)>, u64) {
    let n = plan.requests as usize;
    let m = n.min(done.len());
    let mut matched = Vec::with_capacity(m);
    let base = plan.start_offset.as_nanos();
    let mut prev_arrival = base;
    for (k, &(at, wait)) in done.iter().take(m).enumerate() {
        let arrival = match cfg.router {
            RouterMode::Open { interarrival } => base + interarrival.as_nanos() * (k as u64 + 1),
            RouterMode::Closed { think } => {
                let prev_done = if k == 0 { base } else { done[k - 1].0 };
                prev_arrival.max(prev_done) + think.as_nanos()
            }
        };
        prev_arrival = arrival;
        // A commit released after the arrival waited in line; one
        // released before it means the server was idle — the request
        // still pays the pessimistic ack wait.
        let latency = if at > arrival { at - arrival } else { wait };
        matched.push((arrival, at, latency));
    }
    (matched, (n - m) as u64)
}

/// Aggregates pair outcomes, routes requests, and computes fleet SLOs.
fn aggregate(
    cfg: &FleetConfig,
    plans: &[PairPlan],
    mut results: Vec<SlotResult>,
    pool: PoolStats,
    shared: Option<SharedStats>,
) -> FleetReport {
    let mut latencies: Vec<u64> = Vec::new();
    let mut sweep: Vec<(u64, i64)> = Vec::new();
    let mut served_total = 0u64;
    let mut makespan = SimTime::ZERO;
    let mut peak_suffix = 0u64;
    let mut peak_pending = 0u64;

    for (plan, result) in plans.iter().zip(results.iter_mut()) {
        // Both report kinds already reduced to the same routing inputs
        // on the owning worker: commit completions, the slot's end
        // instant, and the replay peaks.
        let Some(routing) = result.routing.as_ref() else { continue };
        let (matched, _unserved) = route_pair(cfg, plan, &routing.done);
        result.outcome.served = matched.len() as u64;
        served_total += matched.len() as u64;
        for &(arrival, at, latency) in &matched {
            latencies.push(latency);
            sweep.push((arrival, 1));
            sweep.push((at.max(arrival), -1));
        }
        makespan = makespan.max(plan.start_offset + routing.end);
        peak_suffix = peak_suffix.max(routing.peak_suffix);
        peak_pending = peak_pending.max(routing.peak_pending);
    }

    // Backlog high-water mark: arrivals open, completions close;
    // arrivals sort first at equal instants so the peak is inclusive.
    sweep.sort_unstable_by_key(|&(t, d)| (t, -d));
    let (mut outstanding, mut backlog_peak) = (0i64, 0i64);
    for (_, d) in sweep {
        outstanding += d;
        backlog_peak = backlog_peak.max(outstanding);
    }

    latencies.sort_unstable();
    let pct = |p: u64| -> SimTime {
        if latencies.is_empty() {
            return SimTime::ZERO;
        }
        SimTime::from_nanos(latencies[((latencies.len() - 1) as u64 * p / 100) as usize])
    };

    let outcomes: Vec<PairOutcome> = results.into_iter().map(|r| r.outcome).collect();
    let completed = outcomes.iter().filter(|o| o.error.is_none()).count() as u32;
    let failovers_absorbed = outcomes.iter().filter(|o| o.crashed && o.output_ok).count() as u32;
    let lost = outcomes.iter().filter(|o| o.error.is_none() && !o.survived).count() as u32;
    let divergent =
        outcomes.iter().filter(|o| o.error.is_some() || (o.survived && !o.output_ok)).count()
            as u32;
    let makespan_secs = makespan.as_secs_f64();
    FleetReport {
        pairs: cfg.pairs,
        completed,
        failovers_absorbed,
        backups_killed: outcomes.iter().filter(|o| o.planned_kill).count() as u32,
        degraded_entries: outcomes.iter().filter(|o| o.degraded).count() as u32,
        reintegrated: outcomes.iter().filter(|o| o.reintegrated).count() as u32,
        lost,
        divergent,
        total_requests: outcomes.iter().map(|o| o.requests).sum(),
        served_requests: served_total,
        backlog_peak: backlog_peak.max(0) as u64,
        commit_p50: pct(50),
        commit_p99: pct(99),
        commit_max: pct(100),
        makespan,
        failovers_per_sec: if makespan_secs > 0.0 {
            f64::from(failovers_absorbed) / makespan_secs
        } else {
            0.0
        },
        peak_suffix_frames: peak_suffix,
        peak_backup_pending: peak_pending,
        shared,
        pool,
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_seed_decorrelates_pairs_and_streams() {
        let a = split_seed(42, 0, 0);
        assert_eq!(a, split_seed(42, 0, 0), "deterministic");
        assert_ne!(a, split_seed(42, 1, 0), "pairs differ");
        assert_ne!(a, split_seed(42, 0, 1), "streams differ");
        assert_ne!(a, split_seed(43, 0, 0), "fleet seeds differ");
    }

    #[test]
    fn plans_are_standalone_reproducible() {
        let cfg = FleetConfig { pairs: 16, ..FleetConfig::default() };
        for id in 0..cfg.pairs {
            let a = PairPlan::derive(&cfg, id);
            let b = PairPlan::derive(&cfg, id);
            assert_eq!(a.requests, b.requests);
            assert_eq!(a.fault, b.fault);
            assert_eq!(a.kill_backup_after_units, b.kill_backup_after_units);
        }
    }

    #[test]
    fn small_group_fleet_serves_and_verifies() {
        let cfg = FleetConfig {
            pairs: 4,
            crash_per_mille: 400,
            kill_per_mille: 100,
            group_size: Some(3),
            shared_per_byte: None,
            verify: true,
            ..FleetConfig::default()
        };
        let report = run_fleet(&cfg).expect("group fleet runs");
        assert_eq!(report.completed, 4);
        assert_eq!(report.divergent, 0, "every surviving group byte-identical");
        assert!(report.served_requests > 0);
        let crashed: Vec<_> = report.outcomes.iter().filter(|o| o.crashed).collect();
        assert!(
            crashed.iter().all(|o| !o.timeline.is_empty()),
            "group failovers must carry a timeline"
        );
    }

    #[test]
    fn thread_count_is_invisible_in_results() {
        let base = FleetConfig {
            pairs: 12,
            crash_per_mille: 300,
            kill_per_mille: 150,
            ..FleetConfig::default()
        };
        let r1 = run_fleet(&FleetConfig { threads: 1, ..base.clone() }).expect("fleet runs");
        for threads in [2, 4] {
            let rn = run_fleet(&FleetConfig { threads, ..base.clone() }).expect("fleet runs");
            assert_eq!(r1.served_requests, rn.served_requests, "{threads} threads");
            assert_eq!(r1.commit_p50, rn.commit_p50, "{threads} threads");
            assert_eq!(r1.commit_p99, rn.commit_p99, "{threads} threads");
            assert_eq!(r1.makespan, rn.makespan, "{threads} threads");
            assert_eq!(r1.backlog_peak, rn.backlog_peak, "{threads} threads");
            assert_eq!(r1.shared, rn.shared, "{threads} threads");
            assert_eq!(
                format!("{:?}", r1.outcomes),
                format!("{:?}", rn.outcomes),
                "per-pair outcomes byte-identical at {threads} threads"
            );
            assert_eq!(rn.pool.threads, threads.min(base.pairs as usize));
            assert_eq!(r1.pool.windows, rn.pool.windows, "{threads} threads");
        }
    }

    #[test]
    fn small_fleet_serves_and_verifies() {
        let cfg = FleetConfig {
            pairs: 8,
            crash_per_mille: 400,
            kill_per_mille: 0,
            verify: true,
            ..FleetConfig::default()
        };
        let report = run_fleet(&cfg).expect("fleet runs");
        assert_eq!(report.pairs, 8);
        assert_eq!(report.completed, 8);
        assert_eq!(report.divergent, 0, "every survivor byte-identical");
        assert!(report.served_requests > 0);
        assert!(report.makespan > SimTime::ZERO);
    }
}
