//! N-replica groups: rank-ordered promotion chains and ND-record quorum
//! voting (BFT-lite).
//!
//! [`GroupTask`] generalizes [`crate::pair::PairTask`] from one standby to
//! `k`: the primary fans its sealed frame stream over `k` independent
//! links (one [`crate::primary::LogChannel`] per standby, each with its
//! own send/receive windows on a lossy transport), every standby
//! acknowledges independently, and output commit waits on a configurable
//! [`AckPolicy`] over the live links. Standbys carry a *static rank* —
//! their member id, assigned at construction — and on heartbeat-detected
//! primary death the lowest-rank live standby promotes **in place** via
//! the replica runtime's promotion path: it replays its verified log
//! prefix, keeps its VM, and swaps its coordinator to the primary side.
//! Survivors re-home to the new reign through snapshot-grounded state
//! transfer (their old decode context belongs to the dead reign's
//! stream), so the group tolerates a *chain* of failovers: each reign is
//! a fresh fan-out from the newest primary, and each promotion continues
//! the dead reign's exactly-once output numbering.
//!
//! # BFT-lite digest voting
//!
//! With [`GroupConfig::vote_quorum`]`= Some(q)` the primary follows every
//! record-bearing frame with a digest vote — CRC32C over the frame as the
//! replication layer produced it, *before* any (injected) byzantine bit
//! flip and before CRC sealing. Each standby recomputes the digest over
//! the copy it received and compares it with the claim:
//!
//! * a **mismatching minority** of standbys received corrupted copies —
//!   they refuse the frame (their replay state stays honest), are marked
//!   suspect, evicted, and re-recruited from an honest snapshot;
//! * a **mismatching majority** means the primary itself is the outlier
//!   (it equivocated): the primary's own quorum gate in
//!   [`crate::primary::PrimaryCore`] refuses to release the next output
//!   commit — fewer than `q` matching digests can ever arrive — and
//!   demotes itself *before the corrupted output byte escapes*; the group
//!   driver then runs the ordinary rank-ordered promotion.
//!
//! Outputs in vote mode release only after the ack policy **and** `q-1`
//! untainted standby acknowledgments (the primary's own claim is the
//! `q`-th matching digest).

use crate::codec::{
    flush_digest, frame_digest, frame_is_epoch_mark, frame_is_heartbeat, frame_is_snapshot_chunk,
    frame_is_vote, parse_vote_frame, SnapshotAssembler,
};
use crate::pair::pump_backup;
use crate::primary::{AckPolicy, PrimaryCore};
use crate::runtime::{Replica, ReplicaRuntime, SLICE_UNITS};
use crate::stats::ReplicationStats;
use bytes::Bytes;
use ftjvm_netsim::{ChannelStats, FaultPlan, HeartbeatMonitor, SimTime};
use ftjvm_vm::{RunReport, SharedWorld, SliceOutcome, VmError, World};

/// Configuration of one replica group run.
#[derive(Debug, Clone)]
pub struct GroupConfig {
    /// Total group size: one primary plus `size - 1` ranked standbys.
    pub size: usize,
    /// Output-commit acknowledgment policy over the live fan-out links.
    pub ack_policy: AckPolicy,
    /// BFT-lite digest voting: outputs release only once this many
    /// matching digests exist (the primary's claim included). `None`
    /// disables vote frames and the release gate entirely.
    pub vote_quorum: Option<u32>,
    /// Fault plan per reign: `kills[0]` fells the initial primary,
    /// `kills[1]` its successor, and so on. Missing entries mean the
    /// reigning primary runs to completion. `AfterInstructions` and
    /// `AfterFlush` counters are reign-relative (each promotion starts a
    /// fresh primary core); `BeforeOutput`/`AfterOutput` thresholds are in
    /// the *global* output-id sequence, which promotion continues.
    pub kills: Vec<FaultPlan>,
    /// Kill the standby at this rank slot after this many primary
    /// execution units (fail-stop; the primary notices via its reverse
    /// heartbeat detector). Fires at most once, in whatever reign reaches
    /// the unit count.
    pub kill_standby_after_units: Option<(usize, u64)>,
    /// Re-recruit dead, evicted, and re-homing standbys via snapshot +
    /// chunked state transfer. Without it any lost standby stays lost and
    /// each promotion leaves the new primary permanently degraded.
    pub reintegrate: bool,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            size: 3,
            ack_policy: AckPolicy::All,
            vote_quorum: None,
            kills: Vec::new(),
            kill_standby_after_units: None,
            reintegrate: true,
        }
    }
}

/// What a [`GroupTask::step`] call observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupEvent {
    /// The local clock reached the step target; the group is still running.
    Running {
        /// The group-local instant after the step.
        now: SimTime,
    },
    /// The scheduled standby kill fired.
    StandbyKilled {
        /// The kill instant.
        at: SimTime,
        /// Member id of the killed standby.
        member: u32,
    },
    /// Every standby is dead: the primary stopped waiting for
    /// acknowledgments.
    Degraded {
        /// The degraded-entry instant.
        at: SimTime,
    },
    /// A standby finished state transfer and went live.
    Reintegrated {
        /// The reintegration instant.
        at: SimTime,
        /// Member id of the reintegrated standby.
        member: u32,
    },
    /// A standby was evicted on a digest-vote mismatch.
    Evicted {
        /// The eviction instant.
        at: SimTime,
        /// Member id of the evicted standby.
        member: u32,
    },
    /// The reigning primary crashed or was demoted by the vote quorum. If
    /// a standby survived, the next reign is already running (promotion,
    /// catch-up replay, and re-homing kick-off happened inside the step);
    /// otherwise the next step returns [`GroupEvent::Done`].
    PrimaryFailed {
        /// The crash/demotion instant.
        at: SimTime,
        /// The 0-based reign that just ended.
        reign: usize,
    },
    /// The run is over and the report is ready
    /// ([`GroupTask::into_report`]).
    Done,
}

/// One successful rank-ordered promotion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverRecord {
    /// The 0-based reign that ended.
    pub reign: usize,
    /// When the reigning primary died (its own clock).
    pub crash_at: SimTime,
    /// Heartbeat-deadline detection latency on the promoting standby.
    pub detection_latency: SimTime,
    /// Verified-prefix suffix replay time after promotion.
    pub suffix_replay: SimTime,
    /// Member id of the standby that promoted.
    pub promoted: u32,
    /// True when the reign ended in a digest-vote demotion rather than a
    /// fail-stop crash.
    pub demoted_by_vote: bool,
}

/// Per-reign primary-side statistics.
#[derive(Debug, Clone)]
pub struct ReignStats {
    /// Member id of the replica that reigned.
    pub member: u32,
    /// Its replication statistics.
    pub stats: ReplicationStats,
    /// Per-link channel statistics, in rank-slot order.
    pub channels: Vec<ChannelStats>,
}

/// One entry of the human-readable failure timeline.
#[derive(Debug, Clone)]
pub struct GroupMoment {
    /// The simulated instant.
    pub at: SimTime,
    /// What happened.
    pub what: String,
}

impl std::fmt::Display for GroupMoment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:>12}ns] {}", self.at.as_nanos(), self.what)
    }
}

/// The finished report of one replica-group run.
#[derive(Debug)]
pub struct GroupReport {
    /// The configured group size.
    pub size: usize,
    /// Run report of the member that finished (or, when the whole group
    /// was lost, of the last primary to die).
    pub final_report: RunReport,
    /// Member id of that replica (0 is the original primary).
    pub survivor: u32,
    /// True when the program ran to completion on some member.
    pub completed: bool,
    /// True when at least one reign ended in a crash or demotion.
    pub crashed: bool,
    /// Every successful promotion, in order.
    pub failovers: Vec<FailoverRecord>,
    /// Standbys evicted on digest-vote mismatches.
    pub evictions: u64,
    /// Primary-side statistics per reign, in order.
    pub reigns: Vec<ReignStats>,
    /// The failure timeline, in order.
    pub timeline: Vec<GroupMoment>,
    /// The shared world: console, files, applied outputs.
    pub world: SharedWorld,
}

impl GroupReport {
    /// The console text lines the external world observed, in order.
    pub fn console(&self) -> Vec<String> {
        self.world.borrow().console_texts()
    }

    /// Checks that every console output id is unique (no duplicated
    /// outputs — the observable half of exactly-once).
    ///
    /// # Errors
    /// Returns the offending output id.
    pub fn check_no_duplicate_outputs(&self) -> Result<(), u64> {
        let world = self.world.borrow();
        let mut seen = std::collections::BTreeSet::new();
        for line in world.console() {
            if !seen.insert(line.output_id) {
                return Err(line.output_id);
            }
        }
        Ok(())
    }

    /// True when any reign ended in a digest-vote demotion.
    pub fn demoted_by_vote(&self) -> bool {
        self.reigns.iter().any(|r| r.stats.byzantine_demotions > 0)
    }

    /// Total byzantine flips the injection applied across all reigns.
    pub fn byzantine_flips(&self) -> u64 {
        self.reigns.iter().map(|r| r.stats.byzantine_flips).sum()
    }
}

/// Driver-side digest-vote gate for one fan-out link: accumulates the
/// record-bearing frames of one flush and releases the whole group to the
/// standby only when the flush's vote arrives with a matching combined
/// digest. Verifying per flush (not per frame) preserves the atomic sets
/// the protocol keeps inside one flush — a native's result and its
/// side-effect snapshot, an output commit and its payload — so a
/// mismatch (or a crash) can never release half of one: the gate's
/// verified prefix always ends on a flush boundary. Group-by-adjacency
/// (not index bookkeeping) keeps the gate robust to mid-reign joins: a
/// state-transferred standby starts a fresh gate on a fresh link and its
/// stream begins on a flush boundary.
struct VoteGate {
    /// False outside vote mode: everything passes through untouched.
    enabled: bool,
    /// The record-bearing frames of the in-progress flush group, awaiting
    /// the group's vote.
    pending: Vec<(SimTime, Bytes)>,
    /// A mismatch happened: this link's stream is poisoned past the
    /// verified prefix; nothing further is released.
    stalled: bool,
}

impl VoteGate {
    fn new(enabled: bool) -> Self {
        VoteGate { enabled, pending: Vec::new(), stalled: false }
    }

    fn reset(&mut self) {
        self.pending.clear();
        self.stalled = false;
    }

    /// Routes one arrived frame, appending anything releasable to `out`.
    /// Released records carry their *vote's* arrival instant — the
    /// standby may not act on them before verification completes.
    fn admit(&mut self, arrival: SimTime, frame: Bytes, out: &mut Vec<(SimTime, Bytes)>) {
        if !self.enabled {
            out.push((arrival, frame));
            return;
        }
        if self.stalled {
            return;
        }
        if frame_is_vote(&frame) {
            let claim = match parse_vote_frame(&frame) {
                Ok((_fi, claim)) => claim,
                Err(_) => {
                    self.stalled = true;
                    return;
                }
            };
            let digests: Vec<u32> = self.pending.iter().map(|(_, f)| frame_digest(f)).collect();
            if !self.pending.is_empty() && flush_digest(&digests) == claim {
                out.extend(self.pending.drain(..).map(|(_, rec)| (arrival, rec)));
            } else {
                // Mismatch, or a vote with no preceding records: the
                // copies on this link diverged from the primary's claim.
                self.pending.clear();
                self.stalled = true;
            }
            return;
        }
        if frame_is_heartbeat(&frame)
            || frame_is_snapshot_chunk(&frame)
            || frame_is_epoch_mark(&frame)
        {
            // Liveness and control traffic carries no vote, and is never
            // sent mid-flush — it cannot interleave with a vote group.
            out.push((arrival, frame));
            return;
        }
        self.pending.push((arrival, frame));
    }

    fn admit_all(&mut self, delivered: Vec<(SimTime, Bytes)>) -> Vec<(SimTime, Bytes)> {
        let mut out = Vec::with_capacity(delivered.len());
        for (arrival, frame) in delivered {
            self.admit(arrival, frame, &mut out);
        }
        out
    }
}

/// The standby occupying one rank slot, as the driver sees it.
enum SlotState {
    /// A live hot standby consuming the stream.
    Live(Box<Replica>),
    /// Killed, evicted, or awaiting re-homing; no replacement recruited.
    Dead,
    /// State transfer in progress: record frames buffer here until the
    /// snapshot chunks assemble and the replacement comes up.
    Transfer(Vec<(SimTime, Bytes)>),
}

/// One rank slot: link index on the reigning primary equals the slot's
/// position, the member id is the replica's static rank identity.
struct Slot {
    member: u32,
    /// Build rank for replica construction (environment naming and seed
    /// derivation) — distinct from `member` because a re-badged slot (a
    /// dead ex-primary's seat refilled by a fresh process) gets a fresh
    /// incarnation rank.
    rank: u32,
    state: SlotState,
    monitor: HeartbeatMonitor,
    assembler: SnapshotAssembler,
    /// Epoch the slot's snapshot covers — its epoch acks are relative to
    /// this base.
    ack_base: u64,
    report: Option<RunReport>,
    gate: VoteGate,
    /// Pending reverse-detection deadline after a kill; `None` once the
    /// primary has marked the link dead (or the death was a driver-level
    /// membership decision needing no detector).
    dead_deadline: Option<SimTime>,
}

impl Slot {
    fn is_live(&self) -> bool {
        matches!(self.state, SlotState::Live(_))
    }
}

/// One reign: the current primary plus the rank slots streaming from it.
struct ReignState {
    reign: usize,
    member: u32,
    primary: Box<Replica>,
    slots: Vec<Slot>,
    units_run: u64,
}

/// The phase a [`GroupTask`] is in.
#[allow(clippy::large_enum_variant)]
enum GState {
    /// A reign is running.
    Run(Box<ReignState>),
    /// Report ready.
    Finished,
    /// A step returned an error; the task is poisoned.
    Failed,
}

/// One replica group as a resumable value: the reigning primary, the
/// ranked standbys, per-slot failure detection, vote gates, and the
/// promotion chain in a single owned task.
pub struct GroupTask {
    rt: ReplicaRuntime,
    world: SharedWorld,
    cfg: GroupConfig,
    state: GState,
    /// Next unassigned incarnation rank — re-badged slots (refilled
    /// ex-primary seats) draw fresh ranks from here.
    fresh_rank: u32,
    standby_kill_done: bool,
    crashes: u64,
    evictions: u64,
    failovers: Vec<FailoverRecord>,
    reigns: Vec<ReignStats>,
    timeline: Vec<GroupMoment>,
    report: Option<GroupReport>,
}

impl std::fmt::Debug for GroupTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let phase = match &self.state {
            GState::Run(st) => format!("reign-{}", st.reign),
            GState::Finished => "finished".into(),
            GState::Failed => "failed".into(),
        };
        f.debug_struct("GroupTask")
            .field("phase", &phase)
            .field("size", &self.cfg.size)
            .field("now", &self.now())
            .finish()
    }
}

/// The reigning primary's core, for fan-out bookkeeping.
fn core_of(primary: &mut Replica) -> Result<&mut PrimaryCore, VmError> {
    primary
        .primary_core()
        .ok_or_else(|| VmError::Internal("group reign lost its primary coordinator".into()))
}

/// The group's collective epoch acknowledgment: the slowest slot bounds
/// how much retained log prefix the primary may truncate. Transferring
/// slots pin their snapshot's epoch; dead slots pin nothing (their
/// replacement restarts from a fresh snapshot).
fn group_epoch_ack(slots: &[Slot]) -> Option<u64> {
    let mut min: Option<u64> = None;
    for s in slots {
        let acked = match &s.state {
            SlotState::Live(b) => s.ack_base + b.epochs_absorbed(),
            SlotState::Transfer(_) => s.ack_base,
            SlotState::Dead => continue,
        };
        min = Some(min.map_or(acked, |m| m.min(acked)));
    }
    min
}

/// Routes delivered frames into one rank slot: live standbys consume them
/// through the vote gate, dead slots lose them, and during state transfer
/// snapshot chunks assemble (completion brings the replacement up at the
/// final chunk's arrival and replays the gated buffered suffix). Returns
/// the reintegration instant when the transfer completed.
fn deliver_slot(
    rt: &ReplicaRuntime,
    world: &SharedWorld,
    slot: &mut Slot,
    delivered: Vec<(SimTime, Bytes)>,
) -> Result<Option<SimTime>, VmError> {
    if delivered.is_empty() {
        return Ok(None);
    }
    match std::mem::replace(&mut slot.state, SlotState::Dead) {
        SlotState::Dead => Ok(None),
        SlotState::Live(mut b) => {
            let released = slot.gate.admit_all(delivered);
            pump_backup(&mut b, &mut slot.monitor, released, &mut slot.report)?;
            slot.state = SlotState::Live(b);
            Ok(None)
        }
        SlotState::Transfer(mut buffered) => {
            let mut live: Option<(Box<Replica>, SimTime)> = None;
            let mut iter = delivered.into_iter();
            for (arrival, frame) in iter.by_ref() {
                if frame_is_snapshot_chunk(&frame) {
                    let done = slot
                        .assembler
                        .offer(&frame)
                        .map_err(|e| VmError::Internal(format!("snapshot transfer: {e}")))?;
                    if let Some((_epoch, blob)) = done {
                        let mut nb =
                            Box::new(rt.build_resumed_backup_ranked(world, &blob, slot.rank)?);
                        nb.wait_until(arrival);
                        slot.monitor = rt.cfg().detector.monitor(arrival);
                        slot.report = None;
                        slot.gate.reset();
                        let seeded = slot.gate.admit_all(std::mem::take(&mut buffered));
                        pump_backup(&mut nb, &mut slot.monitor, seeded, &mut slot.report)?;
                        live = Some((nb, arrival));
                        break;
                    }
                } else {
                    buffered.push((arrival, frame));
                }
            }
            match live {
                Some((mut b, at)) => {
                    let rest = slot.gate.admit_all(iter.collect());
                    pump_backup(&mut b, &mut slot.monitor, rest, &mut slot.report)?;
                    slot.state = SlotState::Live(b);
                    Ok(Some(at))
                }
                None => {
                    slot.state = SlotState::Transfer(buffered);
                    Ok(None)
                }
            }
        }
    }
}

impl GroupTask {
    /// Builds a replica group: a primary fanning out to `size - 1` ranked
    /// hot standbys. Rank slot 0 is the classic pair backup, bit for bit.
    ///
    /// # Errors
    /// Returns an error when [`crate::FtConfig::checkpoint_interval`] is
    /// unset (state transfer grounds every join, so groups require
    /// checkpointing), when the size or quorum is out of range, and
    /// propagates program-loading errors.
    pub fn new(rt: ReplicaRuntime, cfg: GroupConfig) -> Result<Self, VmError> {
        if cfg.size < 2 {
            return Err(VmError::Internal("a replica group needs at least 2 members".into()));
        }
        if rt.cfg().checkpoint_interval.is_none() {
            return Err(VmError::Internal(
                "replica groups require FtConfig::checkpoint_interval (state transfer grounds every join)"
                    .into(),
            ));
        }
        if let Some(q) = cfg.vote_quorum {
            if q < 2 || q as usize > cfg.size {
                return Err(VmError::Internal(format!(
                    "vote_quorum {q} out of range for a group of {}",
                    cfg.size
                )));
            }
        }
        let world = World::shared();
        let fault = cfg.kills.first().copied().unwrap_or(FaultPlan::None);
        let mut primary = Box::new(rt.build_primary(&world, fault)?);
        {
            let core = core_of(&mut primary)?;
            let extra: Vec<_> =
                (0..cfg.size.saturating_sub(2)).map(|_| rt.make_channel()).collect();
            core.enable_fanout(extra);
            core.set_ack_policy(cfg.ack_policy);
            core.set_vote_quorum(cfg.vote_quorum);
            // Byzantine injection models the *original* primary's fault;
            // replacements promoted later are honest.
            core.set_byzantine(rt.cfg().net_fault.clone());
        }
        let mut slots = Vec::with_capacity(cfg.size - 1);
        for i in 0..cfg.size - 1 {
            let b = rt.build_hot_backup_ranked(&world, i as u32)?;
            slots.push(Slot {
                member: i as u32 + 1,
                rank: i as u32,
                state: SlotState::Live(Box::new(b)),
                monitor: rt.cfg().detector.monitor(SimTime::ZERO),
                assembler: SnapshotAssembler::new(),
                ack_base: 0,
                report: None,
                gate: VoteGate::new(cfg.vote_quorum.is_some()),
                dead_deadline: None,
            });
        }
        let state =
            GState::Run(Box::new(ReignState { reign: 0, member: 0, primary, slots, units_run: 0 }));
        let fresh_rank = cfg.size as u32 - 1;
        Ok(GroupTask {
            rt,
            world,
            cfg,
            state,
            fresh_rank,
            standby_kill_done: false,
            crashes: 0,
            evictions: 0,
            failovers: Vec::new(),
            reigns: Vec::new(),
            timeline: Vec::new(),
            report: None,
        })
    }

    /// The group-local instant the task has reached.
    pub fn now(&self) -> SimTime {
        match &self.state {
            GState::Run(st) => st.primary.now(),
            GState::Finished | GState::Failed => {
                self.report.as_ref().map(|r| r.final_report.acct.now()).unwrap_or(SimTime::ZERO)
            }
        }
    }

    /// True once the report is ready and further steps return
    /// [`GroupEvent::Done`].
    pub fn is_done(&self) -> bool {
        matches!(self.state, GState::Finished)
    }

    /// The finished report, if the run is over.
    pub fn report(&self) -> Option<&GroupReport> {
        self.report.as_ref()
    }

    /// Consumes the task, returning the group report.
    ///
    /// # Errors
    /// Returns an error if the task has not finished.
    pub fn into_report(self) -> Result<GroupReport, VmError> {
        self.report.ok_or_else(|| VmError::Internal("group task has no report yet".into()))
    }

    /// Steps the task to completion.
    ///
    /// # Errors
    /// Propagates the first step error.
    pub fn run_to_completion(mut self) -> Result<Self, VmError> {
        while !self.is_done() {
            self.step(SimTime::MAX)?;
        }
        Ok(self)
    }

    /// Advances the group until its local clock reaches `until`, a state
    /// transition happens, or the run completes. Pass [`SimTime::MAX`] to
    /// run to the next transition regardless of time.
    ///
    /// # Errors
    /// Propagates fatal VM errors from any replica; the task is poisoned
    /// afterwards.
    pub fn step(&mut self, until: SimTime) -> Result<GroupEvent, VmError> {
        match std::mem::replace(&mut self.state, GState::Failed) {
            GState::Finished => {
                self.state = GState::Finished;
                Ok(GroupEvent::Done)
            }
            GState::Failed => Err(VmError::Internal("stepping a failed group task".into())),
            GState::Run(st) => self.step_run(st, until),
        }
    }

    fn note(&mut self, at: SimTime, what: String) {
        self.timeline.push(GroupMoment { at, what });
    }

    fn finish(&mut self, final_report: RunReport, survivor: u32, completed: bool) {
        self.report = Some(GroupReport {
            size: self.cfg.size,
            final_report,
            survivor,
            completed,
            crashed: self.crashes > 0,
            failovers: std::mem::take(&mut self.failovers),
            evictions: self.evictions,
            reigns: std::mem::take(&mut self.reigns),
            timeline: std::mem::take(&mut self.timeline),
            world: self.world.clone(),
        });
        self.state = GState::Finished;
    }

    /// One reign's co-simulation pass: slice the primary, apply the kill
    /// schedule and reverse detection, recruit replacements, deliver every
    /// link through its vote gate, apply the eviction policy, and handle
    /// reign end (completion, crash, or vote demotion — the latter two
    /// flowing into rank-ordered promotion).
    #[allow(clippy::too_many_lines)]
    fn step_run(&mut self, mut st: Box<ReignState>, until: SimTime) -> Result<GroupEvent, VmError> {
        let (primary_report, crashed) = loop {
            let outcome = st.primary.step(SLICE_UNITS)?;
            st.units_run += SLICE_UNITS;
            let now_p = st.primary.now();
            let mut killed_now: Option<u32> = None;
            let mut degraded_now = false;
            let mut reintegrated_now: Option<(SimTime, u32)> = None;
            let mut evicted_now: Option<u32> = None;

            // Scheduled standby kill: fail-stop at a slice boundary. The
            // primary only learns of it when the reverse-heartbeat
            // deadline lapses below.
            if let Some((idx, after)) = self.cfg.kill_standby_after_units {
                if !self.standby_kill_done && st.units_run >= after {
                    self.standby_kill_done = true;
                    if let Some(slot) = st.slots.get_mut(idx) {
                        if let SlotState::Live(mut dead) =
                            std::mem::replace(&mut slot.state, SlotState::Dead)
                        {
                            dead.fail_env();
                            slot.report = None;
                            slot.dead_deadline =
                                Some(self.rt.cfg().detector.monitor(now_p).deadline());
                            let member = slot.member;
                            killed_now = Some(member);
                            self.note(now_p, format!("standby m{member} killed"));
                        }
                    }
                }
            }

            // Reverse failure detection, per slot: acknowledgment waits
            // keep counting a killed standby's link until its deadline
            // lapses (the same phantom-ack window the pair documents).
            for idx in 0..st.slots.len() {
                let Some(deadline) = st.slots[idx].dead_deadline else { continue };
                if now_p < deadline {
                    continue;
                }
                st.slots[idx].dead_deadline = None;
                let member = st.slots[idx].member;
                let core = core_of(&mut st.primary)?;
                core.mark_link_dead(idx);
                if core.live_links() == 0 && !core.is_degraded() {
                    core.enter_degraded();
                    degraded_now = true;
                    self.note(deadline, format!("standby m{member} declared dead; degraded"));
                } else {
                    self.note(deadline, format!("standby m{member} declared dead"));
                }
            }

            // Recruit one replacement per pass: force-cut a fresh epoch
            // (retried until the VM is at a cuttable boundary) and start
            // the state transfer on a fresh link toward that rank slot.
            if self.cfg.reintegrate {
                let dead = st
                    .slots
                    .iter()
                    .position(|s| matches!(s.state, SlotState::Dead) && s.dead_deadline.is_none());
                if let Some(idx) = dead {
                    let fresh = self.rt.make_channel();
                    if st.primary.begin_state_transfer_on(idx, fresh)? {
                        let base = st.primary.snapshot_epoch();
                        let slot = &mut st.slots[idx];
                        slot.ack_base = base;
                        slot.assembler = SnapshotAssembler::new();
                        slot.gate.reset();
                        slot.report = None;
                        slot.state = SlotState::Transfer(Vec::new());
                        let member = slot.member;
                        self.note(
                            st.primary.now(),
                            format!("state transfer to m{member} begun (epoch {base})"),
                        );
                    }
                }
            }

            // Fan-in: deliver each link's verified arrivals to its slot.
            for idx in 0..st.slots.len() {
                let ready = st.primary.recv_ready_link(idx, now_p)?;
                if let Some(at) = deliver_slot(&self.rt, &self.world, &mut st.slots[idx], ready)? {
                    let member = st.slots[idx].member;
                    reintegrated_now = Some((at, member));
                    self.note(at, format!("standby m{member} reintegrated at rank slot {idx}"));
                }
            }

            // Digest-vote eviction policy: stalled standbys received
            // corrupted copies — evict and re-recruit them from an honest
            // snapshot, unless they form a strict *majority* of the live
            // set. A stalled majority means the primary equivocated: leave
            // the honest survivors holding their verified prefixes and let
            // the primary's own quorum gate demote it. (A half-half split
            // sides with the unstalled half: availability-preserving, and
            // a primary that tainted that many links demotes itself at its
            // next output commit anyway.)
            let stalled: Vec<usize> = st
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.gate.stalled && s.is_live())
                .map(|(i, _)| i)
                .collect();
            if !stalled.is_empty() {
                let live = st.slots.iter().filter(|s| s.is_live()).count();
                if stalled.len() * 2 <= live {
                    for idx in stalled {
                        let member = st.slots[idx].member;
                        if let SlotState::Live(mut dead) =
                            std::mem::replace(&mut st.slots[idx].state, SlotState::Dead)
                        {
                            dead.fail_env();
                        }
                        st.slots[idx].report = None;
                        st.slots[idx].dead_deadline = None;
                        let core = core_of(&mut st.primary)?;
                        core.mark_link_dead(idx);
                        if core.live_links() == 0 && !core.is_degraded() {
                            core.enter_degraded();
                            degraded_now = true;
                        }
                        self.evictions += 1;
                        evicted_now = Some(member);
                        self.note(now_p, format!("standby m{member} evicted: digest mismatch"));
                    }
                }
            }

            // Epoch-ack relay (the slowest member gates prefix truncation)
            // and degraded exit once any healthy standby streams again.
            if let Some(ack) = group_epoch_ack(&st.slots) {
                st.primary.relay_epoch_ack(ack);
            }
            if st.slots.iter().any(|s| s.is_live() && !s.gate.stalled) {
                st.primary.exit_degraded();
            }

            match outcome {
                SliceOutcome::Budget => {
                    st.primary.try_cut_epoch()?;
                    let event = if let Some(member) = evicted_now {
                        Some(GroupEvent::Evicted { at: now_p, member })
                    } else if let Some((at, member)) = reintegrated_now {
                        Some(GroupEvent::Reintegrated { at, member })
                    } else if degraded_now {
                        Some(GroupEvent::Degraded { at: now_p })
                    } else if let Some(member) = killed_now {
                        Some(GroupEvent::StandbyKilled { at: now_p, member })
                    } else if now_p >= until {
                        Some(GroupEvent::Running { now: now_p })
                    } else {
                        None
                    };
                    if let Some(event) = event {
                        self.state = GState::Run(st);
                        return Ok(event);
                    }
                }
                SliceOutcome::Paused => {
                    return Err(VmError::Internal("primary paused without a feeder".into()));
                }
                SliceOutcome::Completed(r) => break (r, false),
                SliceOutcome::Stopped(r) => break (r, true),
            }
        };

        // --- Reign end -----------------------------------------------------
        let crash_at = primary_report.acct.now();
        let ReignState { reign, member, mut primary, mut slots, .. } = *st;
        if crashed {
            primary.fail_env();
        }
        let (mut links, pstats) = (*primary).into_group_parts()?;
        // Takeover delivery: everything flushed and verified in order per
        // link reaches its slot (a state transfer may complete during the
        // drain — chunks already on the wire when the primary died).
        let mut channels = Vec::with_capacity(links.len());
        for (idx, link) in links.iter_mut().enumerate() {
            let drained = link.drain();
            if let Some(slot) = slots.get_mut(idx) {
                if let Some(at) = deliver_slot(&self.rt, &self.world, slot, drained)? {
                    let m = slot.member;
                    self.note(at, format!("standby m{m} reintegrated during takeover"));
                }
            }
            channels.push(link.stats());
        }
        let demoted_by_vote = pstats.byzantine_demotions > 0;
        self.reigns.push(ReignStats { member, stats: pstats, channels });

        if !crashed {
            // Failure-free reign end: the stream is over; every healthy
            // standby replays the remainder quietly (each output has a
            // commit record, so replay suppresses them all). Stalled
            // standbys hold their verified prefix and are dropped — their
            // gate refused frames, so running them live would re-execute.
            for slot in &mut slots {
                if slot.gate.stalled {
                    continue;
                }
                if let SlotState::Live(b) = &mut slot.state {
                    b.finish_stream();
                    if slot.report.is_none() {
                        slot.report = Some(b.run_to_end()?);
                    }
                }
            }
            self.note(crash_at, format!("m{member} completed the program"));
            self.finish(primary_report, member, true);
            return Ok(GroupEvent::Done);
        }

        self.crashes += 1;
        self.note(
            crash_at,
            if demoted_by_vote {
                format!("m{member} demoted: digest-vote quorum unreachable")
            } else {
                format!("m{member} crashed")
            },
        );

        // Rank-ordered promotion: the lowest-rank live standby takes over.
        let Some(chosen) = slots.iter().position(Slot::is_live) else {
            self.note(crash_at, "no live standby: the group is lost".into());
            self.finish(primary_report, member, false);
            return Ok(GroupEvent::PrimaryFailed { at: crash_at, reign });
        };
        let slot = slots.remove(chosen);
        let SlotState::Live(mut b) = slot.state else { unreachable!("position() checked is_live") };
        let detection_at = slot.monitor.deadline().max(crash_at);
        let detection_latency = detection_at - crash_at;
        b.wait_until(detection_at);
        b.finish_stream();
        // Catch-up replay of the verified suffix, sliced so promotion
        // happens the moment recovery completes. The (rare) completion
        // here means the program ended inside the dead reign's log.
        let mut completed_report = slot.report;
        while completed_report.is_none() && (!b.recovery_complete() || b.replay_pending() > 0) {
            match b.step(SLICE_UNITS)? {
                SliceOutcome::Budget => {}
                SliceOutcome::Paused => {
                    return Err(VmError::Internal(
                        "promoting standby paused after stream end".into(),
                    ));
                }
                SliceOutcome::Completed(r) => completed_report = Some(r),
                SliceOutcome::Stopped(_) => {
                    return Err(VmError::Internal("promoting standby fail-stopped".into()));
                }
            }
        }
        let recovered_at = b.recovery_completed_at().unwrap_or_else(|| b.now());
        let suffix_replay =
            if recovered_at > detection_at { recovered_at - detection_at } else { SimTime::ZERO };
        self.failovers.push(FailoverRecord {
            reign,
            crash_at,
            detection_latency,
            suffix_replay,
            promoted: slot.member,
            demoted_by_vote,
        });
        self.note(detection_at, format!("m{} promoted (reign {})", slot.member, reign + 1));

        if let Some(r) = completed_report {
            self.finish(r, slot.member, true);
            return Ok(GroupEvent::PrimaryFailed { at: crash_at, reign });
        }

        // In-place promotion: the replayed VM keeps running; only the
        // coordinator changes sides. Survivors cannot consume the new
        // reign's stream mid-context (their decoders belong to the dead
        // reign), so each re-homes through snapshot-grounded state
        // transfer — the new reign's stream effectively begins at the new
        // primary's first epoch cut. The dead ex-primary's seat refills
        // too (a fresh process re-badged with its member id, at tail
        // promotion priority), so the group regains full strength — in
        // particular, a vote quorum of `size` stays reachable after a
        // demotion.
        let next_fault = self.cfg.kills.get(reign + 1).copied().unwrap_or(FaultPlan::None);
        let mut np = Box::new((*b).promote(&self.rt, next_fault, slots.len())?);
        {
            let core = core_of(&mut np)?;
            core.set_ack_policy(self.cfg.ack_policy);
            core.set_vote_quorum(self.cfg.vote_quorum);
        }
        let promoted_member = slot.member;
        let mut new_slots = Vec::with_capacity(slots.len() + 1);
        let reslot = |member: u32, rank: u32| Slot {
            member,
            rank,
            state: SlotState::Dead,
            monitor: self.rt.cfg().detector.monitor(detection_at),
            assembler: SnapshotAssembler::new(),
            ack_base: 0,
            report: None,
            gate: VoteGate::new(self.cfg.vote_quorum.is_some()),
            dead_deadline: None,
        };
        for old in slots {
            if let SlotState::Live(mut survivor) = old.state {
                // The survivor process discards its dead-reign replay
                // state; its re-homed incarnation restores from the new
                // primary's snapshot.
                survivor.fail_env();
            }
            new_slots.push(reslot(old.member, old.rank));
        }
        new_slots.push(reslot(member, self.fresh_rank));
        self.fresh_rank += 1;
        if !new_slots.is_empty() {
            self.note(detection_at, "survivors re-homing via state transfer".into());
        }
        self.state = GState::Run(Box::new(ReignState {
            reign: reign + 1,
            member: promoted_member,
            primary: np,
            slots: new_slots,
            units_run: 0,
        }));
        Ok(GroupEvent::PrimaryFailed { at: crash_at, reign })
    }
}
