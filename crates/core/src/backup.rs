//! The backup-side recovery runtime: the received log, the shared
//! non-deterministic-native replay, and the two recovery coordinators.
//!
//! The backup is *cold* (§1): during normal operation it only stores the
//! primary's records. On failure it re-executes the program from the
//! initial state, using the log to make every non-deterministic choice the
//! way the primary made it:
//!
//! * [`LockSyncBackup`] reproduces the primary's per-lock acquisition
//!   order from lock-acquisition records and id maps (§4.2), including the
//!   end-of-log rules for threads that run past their logged history;
//! * [`TsBackup`] reproduces the primary's thread schedule from schedule
//!   records, stopping each thread at exactly the recorded
//!   `(br_cnt, pc_off, mon_cnt)` point — including preemptions inside
//!   native methods, replayed via `mon_cnt` — and scheduling the recorded
//!   next thread (§4.2);
//! * [`NativeReplay`] (shared) imposes logged ND native results, suppresses
//!   already-performed outputs, `test`s the uncertain last output, and
//!   hands out fresh output ids once execution passes the end of the log
//!   (§3.4, §4.1).

use crate::codec::RecordDecoder;
use crate::records::{sig_hash, LoggedResult, Record};
use crate::se::SeRegistry;
use crate::stats::ReplicationStats;
use bytes::Bytes;
use ftjvm_netsim::{Category, CostModel, SimTime, TimeAccount};
use ftjvm_vm::coordinator::Pick;
use ftjvm_vm::native::NativeDecl;
use ftjvm_vm::ThreadIdx;
use ftjvm_vm::{
    AdoptedOutcome, Coordinator, MonitorDecision, NativeDirective, ObjRef, SharedWorld, StopReason,
    SwitchReason, ThreadObs, ThreadSnap, Value, VmError, VtPath,
};
use std::collections::{HashMap, VecDeque};

#[derive(Debug, Clone)]
struct NdRec {
    seq: u64,
    sig_hash: u64,
    result: LoggedResult,
    out_args: Vec<(u8, Vec<crate::records::WireValue>)>,
}

#[derive(Debug, Clone)]
struct CommitRec {
    seq: u64,
    output_id: u64,
    /// Arrival index within the whole log: if any record follows, the
    /// output is known to have been performed (the primary performs the
    /// output immediately after the acknowledged commit, before producing
    /// any further record).
    global_idx: usize,
}

#[derive(Debug, Clone)]
struct IntervalRec {
    t: VtPath,
    t_asn_start: u64,
    count: u64,
    remaining: u64,
}

#[derive(Debug, Clone)]
struct LockAcqRec {
    t_asn: u64,
    l_id: u64,
    l_asn: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct SchedRec {
    t: VtPath,
    br_cnt: u64,
    method: u32,
    pc_off: u32,
    mon_cnt: u64,
    l_asn: u64,
    in_native: bool,
    next: VtPath,
}

/// The decoded, indexed log the backup recovered from the channel.
#[derive(Debug, Default)]
pub struct BackupLog {
    lock_acqs: HashMap<VtPath, VecDeque<LockAcqRec>>,
    lock_total: usize,
    id_maps: HashMap<(VtPath, u64), u64>,
    sched: VecDeque<SchedRec>,
    nd: HashMap<VtPath, VecDeque<NdRec>>,
    commits: HashMap<VtPath, VecDeque<CommitRec>>,
    intervals: VecDeque<IntervalRec>,
    interval_total: usize,
    /// Per thread, the largest arrival index of a record that proves the
    /// thread made *execution progress* (lock acquisition, id map, native
    /// result, or a later output commit). Schedule records are excluded:
    /// a preemption can land exactly between an output commit and the
    /// output itself, so a schedule record after a commit does NOT prove
    /// the output was performed.
    progress_max: HashMap<VtPath, usize>,
    total_records: usize,
    max_output_id: u64,
    has_outputs: bool,
}

impl BackupLog {
    /// Decodes the flushed frames (in FIFO arrival order), feeding
    /// side-effect state records to `se` (its `receive` compression hook).
    ///
    /// # Errors
    /// Returns an error for malformed frames — a truncated *suffix* cannot
    /// happen (the channel is reliable and frames are whole records), so
    /// corruption means a protocol bug.
    pub fn decode(frames: Vec<Bytes>, se: &mut SeRegistry) -> Result<BackupLog, VmError> {
        let mut log = BackupLog::default();
        // One decoder across all frames: the compact codec's delta context
        // spans batch boundaries, mirroring the primary's encoder. Frames
        // are self-describing, so fixed records (heartbeats, or a whole
        // fixed-codec log) and compact batches may interleave.
        let mut decoder = RecordDecoder::new();
        let mut scratch = Vec::new();
        let mut idx = 0usize;
        for (frame_idx, frame) in frames.into_iter().enumerate() {
            scratch.clear();
            decoder.decode_frame(frame, &mut scratch).map_err(|e| {
                VmError::Internal(format!(
                    "malformed log record at index {idx} (frame {frame_idx}): {e}"
                ))
            })?;
            for rec in scratch.drain(..) {
                log.ingest(idx, rec, se);
                idx += 1;
            }
        }
        Ok(log)
    }

    /// Indexes one decoded record. `idx` is the record's position in the
    /// flat log (the global order replay replays in); under the compact
    /// codec a batch frame contributes one index per contained record.
    fn ingest(&mut self, idx: usize, rec: Record, se: &mut SeRegistry) {
        self.total_records += 1;
        match rec {
            Record::IdMap { l_id, t, t_asn } => {
                self.progress_max.insert(t.clone(), idx);
                self.id_maps.insert((t, t_asn), l_id);
            }
            Record::LockAcq { t, t_asn, l_id, l_asn } => {
                self.lock_total += 1;
                self.progress_max.insert(t.clone(), idx);
                self.lock_acqs.entry(t).or_default().push_back(LockAcqRec { t_asn, l_id, l_asn });
            }
            Record::Sched { t, br_cnt, method, pc_off, mon_cnt, l_asn, in_native, next } => {
                self.sched.push_back(SchedRec {
                    t,
                    br_cnt,
                    method,
                    pc_off,
                    mon_cnt,
                    l_asn,
                    in_native,
                    next,
                });
            }
            Record::NativeResult { t, seq, sig_hash, result, out_args } => {
                self.progress_max.insert(t.clone(), idx);
                self.nd.entry(t).or_default().push_back(NdRec { seq, sig_hash, result, out_args });
            }
            Record::OutputCommit { t, seq, output_id } => {
                self.max_output_id = self.max_output_id.max(output_id);
                self.has_outputs = true;
                self.progress_max.insert(t.clone(), idx);
                self.commits.entry(t).or_default().push_back(CommitRec {
                    seq,
                    output_id,
                    global_idx: idx,
                });
            }
            Record::LockInterval { t, t_asn_start, count } => {
                self.interval_total += count as usize;
                self.progress_max.insert(t.clone(), idx);
                self.intervals.push_back(IntervalRec { t, t_asn_start, count, remaining: count });
            }
            Record::Heartbeat { .. } => {
                // Liveness only; carries no replay information.
            }
            Record::SeState { handler, payload } => {
                se.receive(handler, payload);
            }
        }
    }

    /// Total records received.
    pub fn total_records(&self) -> usize {
        self.total_records
    }

    /// Lock-acquisition records received (lock-sync mode).
    pub fn lock_records(&self) -> usize {
        self.lock_total
    }

    /// Schedule records received (TS mode).
    pub fn sched_records(&self) -> usize {
        self.sched.len()
    }

    /// Interval records received (interval-compressed lock-sync).
    pub fn interval_records(&self) -> usize {
        self.intervals.len()
    }
}

/// Shared backup-side native replay (ND results, outputs, exactly-once).
pub struct NativeReplay {
    cost: CostModel,
    nd: HashMap<VtPath, VecDeque<NdRec>>,
    nd_consumed: HashMap<VtPath, u64>,
    commits: HashMap<VtPath, VecDeque<CommitRec>>,
    commit_consumed: HashMap<VtPath, u64>,
    progress_max: HashMap<VtPath, usize>,
    world: SharedWorld,
    se: SeRegistry,
    next_live_output: u64,
    error: Option<VmError>,
    /// Simulated instant at which recovery (log replay) completed, if it
    /// has.
    pub recovery_completed_at: Option<ftjvm_netsim::SimTime>,
    /// Backup-side observability.
    pub stats: ReplicationStats,
}

impl std::fmt::Debug for NativeReplay {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeReplay")
            .field("nd_threads", &self.nd.len())
            .field("next_live_output", &self.next_live_output)
            .finish()
    }
}

impl NativeReplay {
    fn new(log: &mut BackupLog, world: SharedWorld, se: SeRegistry, cost: CostModel) -> Self {
        NativeReplay {
            cost,
            nd: std::mem::take(&mut log.nd),
            nd_consumed: HashMap::new(),
            commit_consumed: HashMap::new(),
            commits: std::mem::take(&mut log.commits),
            progress_max: std::mem::take(&mut log.progress_max),
            world,
            se,
            next_live_output: if log.has_outputs { log.max_output_id + 1 } else { 0 },
            error: None,
            recovery_completed_at: None,
            stats: ReplicationStats::default(),
        }
    }

    fn mark_recovery_complete(&mut self, acct: &TimeAccount) {
        if self.recovery_completed_at.is_none() {
            self.recovery_completed_at = Some(acct.now());
        }
    }

    fn fail(&mut self, t: ThreadIdx, detail: String) {
        if self.error.is_none() {
            self.error = Some(VmError::ReplayDivergence { thread: t, detail });
        }
    }

    fn take_stop(&mut self) -> Option<StopReason> {
        self.error.take().map(StopReason::Error)
    }

    /// True once thread `vt` has no logged natives or outputs left.
    fn drained_for(&self, vt: &VtPath) -> bool {
        self.nd.get(vt).map(|q| q.is_empty()).unwrap_or(true)
            && self.commits.get(vt).map(|q| q.is_empty()).unwrap_or(true)
    }

    /// The replay decision for one native invocation (§4.1, §3.4).
    fn directive(
        &mut self,
        t: &ThreadObs<'_>,
        decl: &NativeDecl,
        acct: &mut TimeAccount,
    ) -> NativeDirective {
        if !(decl.nondeterministic || decl.output) {
            return NativeDirective::Execute;
        }
        let vt = t.vt.expect("app threads only").clone();
        let nd_rec = if decl.nondeterministic {
            self.nd.get_mut(&vt).and_then(|q| q.pop_front())
        } else {
            None
        };
        if let Some(rec) = &nd_rec {
            self.stats.nm_intercepted += 1;
            acct.charge(Category::Misc, self.cost.nd_result_record);
            let consumed = {
                let c = self.nd_consumed.entry(vt.clone()).or_insert(0);
                *c += 1;
                *c
            };
            if rec.seq != consumed {
                self.fail(
                    t.t,
                    format!("ND result sequence {} but thread consumed {}", rec.seq, consumed),
                );
            }
            if rec.sig_hash != sig_hash(&decl.name) {
                self.fail(
                    t.t,
                    format!(
                        "logged ND result is for a different native than `{}` — a data race (R4A violation) \
                         likely reordered this thread's execution",
                        decl.name
                    ),
                );
            }
        }
        let commit =
            if decl.output { self.commits.get_mut(&vt).and_then(|q| q.pop_front()) } else { None };
        if let Some(c) = &commit {
            let consumed = {
                let x = self.commit_consumed.entry(vt.clone()).or_insert(0);
                *x += 1;
                *x
            };
            if c.seq != consumed {
                self.fail(
                    t.t,
                    format!("output commit sequence {} but thread performed {}", c.seq, consumed),
                );
            }
        }
        if nd_rec.is_none() && commit.is_none() {
            // Past the end of this thread's logged history: the backup is
            // now the authority for this call.
            return NativeDirective::Execute;
        }
        if decl.output && commit.is_none() {
            // A logged result implies its (earlier) commit record arrived.
            self.fail(
                t.t,
                format!("native `{}` has a logged result but no output commit", decl.name),
            );
            return NativeDirective::Execute;
        }
        let performed = match &commit {
            Some(c) => {
                let proven =
                    self.progress_max.get(&vt).map(|max| c.global_idx < *max).unwrap_or(false);
                if proven {
                    // A later record from the same thread proves it ran
                    // past this output (the body executes before the
                    // thread can produce another lock/native/commit
                    // record). Schedule records deliberately don't count.
                    true
                } else {
                    // Uncertain: ask the environment (side-effect handler
                    // `test`, restriction R5).
                    self.stats.output_commits += 1;
                    self.se.test(&decl.name, &self.world.borrow(), c.output_id)
                }
            }
            None => true,
        };
        // Whether to run the body:
        // * logged result present — only re-run if the output still needs
        //   performing (imposing the logged result either way);
        // * no logged result (it was still in the primary's buffer at the
        //   crash) — re-run unless this is a pure console-style output
        //   that already reached the environment: re-running a performed
        //   file write is harmless (writes are idempotent by output id)
        //   and recomputes the return value the log lost, but re-running a
        //   performed console print would visibly duplicate it.
        let execute = match &nd_rec {
            Some(_) => decl.output && !performed,
            None => !performed || decl.returns || decl.creates_volatile,
        };
        let result = match &nd_rec {
            Some(r) => Some(match &r.result {
                LoggedResult::Ok(v) => Ok(v.map(|w| w.to_value())),
                LoggedResult::Err { code, msg } => Err((*code, msg.clone())),
            }),
            None => {
                if execute {
                    None // keep whatever the re-executed body produces
                } else {
                    Some(Ok(None)) // performed console output: skip
                }
            }
        };
        let out_args = nd_rec
            .map(|r| {
                r.out_args
                    .into_iter()
                    .map(|(i, vs)| {
                        (i, vs.into_iter().map(|w| w.to_value()).collect::<Vec<Value>>())
                    })
                    .collect()
            })
            .unwrap_or_default();
        NativeDirective::Replay(AdoptedOutcome {
            result,
            out_args,
            execute,
            output_id: commit.map(|c| c.output_id),
        })
    }

    fn live_output_id(&mut self) -> u64 {
        let id = self.next_live_output;
        self.next_live_output += 1;
        id
    }
}

/// Backup coordinator for **replicated lock synchronization** recovery.
#[derive(Debug)]
pub struct LockSyncBackup {
    replay: NativeReplay,
    lock_acqs: HashMap<VtPath, VecDeque<LockAcqRec>>,
    lock_total: usize,
    id_maps: HashMap<(VtPath, u64), u64>,
}

impl LockSyncBackup {
    /// Builds the coordinator from a decoded log.
    pub fn new(mut log: BackupLog, world: SharedWorld, se: SeRegistry, cost: CostModel) -> Self {
        let lock_acqs = std::mem::take(&mut log.lock_acqs);
        let lock_total = log.lock_total;
        let id_maps = std::mem::take(&mut log.id_maps);
        LockSyncBackup {
            replay: NativeReplay::new(&mut log, world, se, cost),
            lock_acqs,
            lock_total,
            id_maps,
        }
    }

    /// Backup-side statistics.
    pub fn stats(&self) -> &ReplicationStats {
        &self.replay.stats
    }

    /// True once every lock record has been consumed.
    pub fn recovery_complete(&self) -> bool {
        self.lock_total == 0
    }

    /// Simulated instant at which the log replay finished.
    pub fn recovery_completed_at(&self) -> Option<ftjvm_netsim::SimTime> {
        self.replay.recovery_completed_at
    }
}

impl Coordinator for LockSyncBackup {
    fn mode(&self) -> &'static str {
        "lock-sync-backup"
    }

    fn stop(&mut self) -> Option<StopReason> {
        self.replay.take_stop()
    }

    fn pre_monitor_acquire(
        &mut self,
        t: &ThreadObs<'_>,
        _obj: ObjRef,
        l_id: Option<u64>,
        l_asn: u64,
    ) -> MonitorDecision {
        if self.lock_total == 0 {
            // End of recovery: the log has no more lock-acquisition
            // records, so ordering constraints are over (§4.2).
            return MonitorDecision::Grant;
        }
        let vt = t.vt.expect("app threads only");
        let Some(rec) = self.lock_acqs.get(vt).and_then(|q| q.front()) else {
            // This thread ran past its logged history; it must wait until
            // the whole log drains before acquiring anything new.
            return MonitorDecision::Defer;
        };
        if rec.t_asn != t.t_asn + 1 {
            self.replay.fail(
                t.t,
                format!(
                    "lock record t_asn {} but thread is at acquisition {}",
                    rec.t_asn,
                    t.t_asn + 1
                ),
            );
            return MonitorDecision::Grant;
        }
        match l_id {
            Some(id) => {
                if rec.l_id != id {
                    self.replay.fail(
                        t.t,
                        format!(
                            "thread's next logged acquisition is lock {} but it is acquiring lock {id} — \
                             a data race (R4A violation) changed the acquisition sequence",
                            rec.l_id
                        ),
                    );
                    return MonitorDecision::Grant;
                }
                if rec.l_asn == l_asn + 1 {
                    MonitorDecision::Grant
                } else {
                    // Not this thread's turn for the lock yet.
                    MonitorDecision::Defer
                }
            }
            None => {
                // The lock has no id at the backup yet. If this thread
                // assigned the id at the primary, its id map names it.
                if self.id_maps.contains_key(&(vt.clone(), t.t_asn + 1)) {
                    if rec.l_asn == l_asn + 1 {
                        MonitorDecision::Grant
                    } else {
                        MonitorDecision::Defer
                    }
                } else if rec.l_asn <= 1 {
                    // First acquisition of the lock but no id map: the map
                    // cannot have been lost without the (later) acquisition
                    // record also being lost.
                    self.replay.fail(t.t, "acquisition record without its id map".into());
                    MonitorDecision::Grant
                } else {
                    // Another thread assigns this lock's id; wait for it.
                    MonitorDecision::Defer
                }
            }
        }
    }

    fn post_monitor_acquire(
        &mut self,
        t: &ThreadObs<'_>,
        _obj: ObjRef,
        l_id: Option<u64>,
        l_asn: u64,
        _acct: &mut TimeAccount,
    ) -> Option<u64> {
        if self.lock_total == 0 {
            return None; // live phase
        }
        let vt = t.vt.expect("app threads only");
        let Some(rec) = self.lock_acqs.get_mut(vt).and_then(|q| q.pop_front()) else {
            self.replay.fail(t.t, "granted an acquisition with no record to consume".into());
            return None;
        };
        self.lock_total -= 1;
        if self.lock_total == 0 {
            self.replay.mark_recovery_complete(_acct);
        }
        self.replay.stats.locks_acquired += 1;
        // Replay bookkeeping: locating and consuming the record costs
        // about what creating it did (no communication, though).
        _acct.charge(Category::LockAcquire, self.replay.cost.lock_record);
        if rec.l_asn != l_asn || rec.t_asn != t.t_asn {
            self.replay.fail(
                t.t,
                format!(
                    "acquisition replayed at (t_asn {}, l_asn {l_asn}) but record says ({}, {})",
                    t.t_asn, rec.t_asn, rec.l_asn
                ),
            );
        }
        match l_id {
            Some(id) => {
                debug_assert_eq!(id, rec.l_id, "pre_monitor_acquire verified the id");
                None
            }
            None => {
                // Claim this thread's id map (§4.2): it must exist, since
                // pre granted the first acquisition only on a map match.
                match self.id_maps.remove(&(vt.clone(), t.t_asn)) {
                    Some(mapped) => {
                        if mapped != rec.l_id {
                            self.replay.fail(
                                t.t,
                                format!(
                                    "id map assigns lock {mapped} but record names lock {}",
                                    rec.l_id
                                ),
                            );
                        }
                        Some(rec.l_id)
                    }
                    None => {
                        self.replay.fail(t.t, "first acquisition granted without an id map".into());
                        Some(rec.l_id)
                    }
                }
            }
        }
    }

    fn pre_native(
        &mut self,
        t: &ThreadObs<'_>,
        decl: &NativeDecl,
        _args: &[Value],
        acct: &mut TimeAccount,
    ) -> NativeDirective {
        self.replay.directive(t, decl, acct)
    }

    fn begin_output(
        &mut self,
        _t: &ThreadObs<'_>,
        _decl: &NativeDecl,
        _acct: &mut TimeAccount,
    ) -> u64 {
        self.replay.live_output_id()
    }

    fn on_stall(&mut self, _acct: &mut TimeAccount) -> bool {
        if self.lock_total > 0 {
            // Locks records remain but nobody can consume them: the
            // replayed execution diverged (typically a data race, Fig. 1).
            self.replay.error.get_or_insert(VmError::ReplayDivergence {
                thread: ThreadIdx(0),
                detail: format!(
                    "recovery stalled with {} unconsumed lock-acquisition records — \
                     the replay diverged from the primary (R4A violation?)",
                    self.lock_total
                ),
            });
            return true;
        }
        false
    }
}

/// Backup coordinator for **replicated thread scheduling** recovery.
#[derive(Debug)]
pub struct TsBackup {
    replay: NativeReplay,
    sched: VecDeque<SchedRec>,
    last_br: HashMap<u32, u64>,
    /// The thread the replay says must run now; `None` once recovery is
    /// over and free scheduling resumes.
    designated: Option<VtPath>,
}

impl TsBackup {
    /// Builds the coordinator from a decoded log.
    pub fn new(mut log: BackupLog, world: SharedWorld, se: SeRegistry, cost: CostModel) -> Self {
        let sched = std::mem::take(&mut log.sched);
        let replay = NativeReplay::new(&mut log, world, se, cost);
        // Execution always begins with the root thread; even with no
        // schedule records (single-threaded programs) the root stays
        // designated until its logged natives/outputs drain (the paper's
        // final-record rule).
        TsBackup { replay, sched, last_br: HashMap::new(), designated: Some(VtPath::root()) }
    }

    /// Backup-side statistics.
    pub fn stats(&self) -> &ReplicationStats {
        &self.replay.stats
    }

    /// True once free scheduling has resumed.
    pub fn recovery_complete(&self) -> bool {
        self.designated.is_none()
    }

    /// Simulated instant at which the log replay finished.
    pub fn recovery_completed_at(&self) -> Option<ftjvm_netsim::SimTime> {
        self.replay.recovery_completed_at
    }

    /// Does `snap`/`obs` match the front record's progress point?
    fn matches_front(
        rec: &SchedRec,
        br: u64,
        mon: u64,
        method: Option<u32>,
        pc: u32,
        in_native: bool,
    ) -> bool {
        if rec.br_cnt != br || rec.in_native != in_native {
            return false;
        }
        if in_native {
            // Inside a native method the JVM cannot see the PC; the replay
            // point is identified by the monitor-operation count (§4.2).
            rec.mon_cnt == mon
                && rec.pc_off == pc
                && method.map(|m| m == rec.method).unwrap_or(false)
        } else {
            rec.mon_cnt == mon
                && rec.pc_off == pc
                && method.map(|m| m == rec.method).unwrap_or(false)
        }
    }

    fn advance(&mut self, acct: &mut TimeAccount) {
        let rec = self.sched.pop_front().expect("advance() called with a front record");
        self.designated = Some(rec.next);
        self.replay.stats.sched_records += 1;
        acct.charge(Category::Resched, self.replay.cost.sched_record);
    }

    /// After consuming records (or at any progress point), recovery ends
    /// when no schedule records remain and the designated thread has
    /// reproduced all of its logged interactions with the environment.
    fn maybe_finish(&mut self) {
        if !self.sched.is_empty() {
            return;
        }
        if let Some(des) = &self.designated {
            if self.replay.drained_for(des) {
                self.designated = None;
            }
        }
    }
}

impl Coordinator for TsBackup {
    fn mode(&self) -> &'static str {
        "ts-backup"
    }

    fn stop(&mut self) -> Option<StopReason> {
        self.replay.take_stop()
    }

    fn allow_quantum_preempt(&mut self, _t: &ThreadObs<'_>) -> bool {
        // During recovery only recorded points may switch application
        // threads; afterwards, normal preemption resumes.
        self.designated.is_none()
    }

    fn check_preempt(&mut self, t: &ThreadObs<'_>, acct: &mut TimeAccount) -> bool {
        self.maybe_finish();
        let Some(des) = &self.designated else {
            self.replay.mark_recovery_complete(acct);
            return false;
        };
        // The backup tracks replay progress with the same per-instruction
        // PC updates and per-branch counter maintenance as the primary.
        {
            let mut cost = self.replay.cost.ts_pc_track;
            let last = self.last_br.entry(t.t.0).or_insert(0);
            if t.br_cnt > *last {
                let delta = t.br_cnt - *last;
                *last = t.br_cnt;
                cost += SimTime::from_nanos(self.replay.cost.ts_br_track.as_nanos() * delta);
            }
            acct.charge(Category::Misc, cost);
        }
        let vt = t.vt.expect("app threads only");
        if vt != des {
            // A non-designated application thread slipped in; park it.
            return true;
        }
        let Some(rec) = self.sched.front() else { return false };
        if &rec.t != vt {
            self.replay.fail(
                t.t,
                format!(
                    "designated thread {vt} running but front schedule record is for {}",
                    rec.t
                ),
            );
            return false;
        }
        if Self::matches_front(rec, t.br_cnt, t.mon_cnt, t.method.map(|m| m.0), t.pc, t.in_native) {
            self.advance(acct);
            return true;
        }
        false
    }

    fn on_yield(&mut self, snap: &ThreadSnap, reason: SwitchReason, acct: &mut TimeAccount) {
        // Blocking yields consume their schedule record here: the counters
        // in the record include bumps performed inside the blocking unit
        // (e.g. `wait` releases the monitor before parking).
        if self.designated.is_none() || snap.vt.is_none() {
            return;
        }
        let blocking = matches!(
            reason,
            SwitchReason::BlockedMonitor
                | SwitchReason::Waiting
                | SwitchReason::Sleep
                | SwitchReason::Internal
        );
        if !blocking {
            return;
        }
        let Some(des) = &self.designated else { return };
        if snap.vt.as_ref() != Some(des) {
            return;
        }
        let Some(rec) = self.sched.front() else { return };
        if Some(&rec.t) != snap.vt.as_ref() {
            return;
        }
        if Self::matches_front(
            rec,
            snap.br_cnt,
            snap.mon_cnt,
            snap.method.map(|m| m.0),
            snap.pc,
            snap.in_native,
        ) {
            // Wake-order consistency check (the record's l_asn field).
            if rec.l_asn != 0 && rec.l_asn != snap.blocked_lasn {
                self.replay.fail(
                    snap.t,
                    format!(
                        "blocked with lock at l_asn {} but the record expected {}",
                        snap.blocked_lasn, rec.l_asn
                    ),
                );
            }
            self.advance(acct);
        }
    }

    fn on_thread_exit(&mut self, t: &ThreadObs<'_>, acct: &mut TimeAccount) {
        let Some(des) = self.designated.clone() else { return };
        let vt = t.vt.expect("app threads only");
        if *vt != des {
            return;
        }
        match self.sched.front() {
            Some(rec) if &rec.t == vt => self.advance(acct),
            Some(_) => {
                // Terminated while a record for another thread is at the
                // front — impossible in a faithful replay.
                self.replay.fail(t.t, "designated thread exited out of recorded order".into());
            }
            None => {
                if self.replay.drained_for(vt) {
                    self.designated = None;
                    self.replay.mark_recovery_complete(acct);
                } else {
                    self.replay.fail(
                        t.t,
                        "designated thread exited with logged interactions left to reproduce"
                            .into(),
                    );
                }
            }
        }
    }

    fn pick_next(&mut self, candidates: &[ThreadSnap]) -> Pick {
        let Some(des) = &self.designated else { return Pick::Default };
        if let Some(i) = candidates.iter().position(|c| c.vt.as_ref() == Some(des)) {
            return Pick::Choose(i);
        }
        // The designated thread is not runnable: let system threads work
        // (they may hold the lock it needs); never run another app thread.
        if let Some(i) = candidates.iter().position(|c| c.vt.is_none()) {
            return Pick::Choose(i);
        }
        Pick::Idle
    }

    fn pre_native(
        &mut self,
        t: &ThreadObs<'_>,
        decl: &NativeDecl,
        _args: &[Value],
        acct: &mut TimeAccount,
    ) -> NativeDirective {
        self.replay.directive(t, decl, acct)
    }

    fn begin_output(
        &mut self,
        _t: &ThreadObs<'_>,
        _decl: &NativeDecl,
        _acct: &mut TimeAccount,
    ) -> u64 {
        self.replay.live_output_id()
    }

    fn on_stall(&mut self, _acct: &mut TimeAccount) -> bool {
        if self.designated.is_some() {
            self.replay.error.get_or_insert(VmError::ReplayDivergence {
                thread: ThreadIdx(0),
                detail: format!(
                    "thread-schedule recovery stalled with {} records left (designated {:?})",
                    self.sched.len(),
                    self.designated
                ),
            });
            return true;
        }
        false
    }

    fn on_exit(&mut self, _acct: &mut TimeAccount) {}
}

/// Backup coordinator for **interval-compressed lock synchronization**
/// recovery: enforces the total acquisition order recorded as
/// [`Record::LockInterval`]s — during interval *i* only its thread may
/// acquire monitors; everyone else defers.
#[derive(Debug)]
pub struct IntervalBackup {
    replay: NativeReplay,
    intervals: VecDeque<IntervalRec>,
    remaining_total: usize,
}

impl IntervalBackup {
    /// Builds the coordinator from a decoded log.
    pub fn new(mut log: BackupLog, world: SharedWorld, se: SeRegistry, cost: CostModel) -> Self {
        let intervals = std::mem::take(&mut log.intervals);
        let remaining_total = log.interval_total;
        IntervalBackup {
            replay: NativeReplay::new(&mut log, world, se, cost),
            intervals,
            remaining_total,
        }
    }

    /// Backup-side statistics.
    pub fn stats(&self) -> &ReplicationStats {
        &self.replay.stats
    }

    /// True once every interval has been consumed.
    pub fn recovery_complete(&self) -> bool {
        self.remaining_total == 0
    }

    /// Simulated instant at which the log replay finished.
    pub fn recovery_completed_at(&self) -> Option<ftjvm_netsim::SimTime> {
        self.replay.recovery_completed_at
    }
}

impl Coordinator for IntervalBackup {
    fn mode(&self) -> &'static str {
        "lock-interval-backup"
    }

    fn stop(&mut self) -> Option<StopReason> {
        self.replay.take_stop()
    }

    fn pre_monitor_acquire(
        &mut self,
        t: &ThreadObs<'_>,
        _obj: ObjRef,
        _l_id: Option<u64>,
        _l_asn: u64,
    ) -> MonitorDecision {
        let Some(front) = self.intervals.front() else {
            return MonitorDecision::Grant; // end of recovery
        };
        let vt = t.vt.expect("app threads only");
        if &front.t == vt {
            MonitorDecision::Grant
        } else {
            MonitorDecision::Defer
        }
    }

    fn post_monitor_acquire(
        &mut self,
        t: &ThreadObs<'_>,
        _obj: ObjRef,
        _l_id: Option<u64>,
        _l_asn: u64,
        acct: &mut TimeAccount,
    ) -> Option<u64> {
        let Some(front) = self.intervals.front_mut() else {
            return None; // live phase
        };
        let vt = t.vt.expect("app threads only");
        if &front.t != vt {
            self.replay.fail(t.t, "acquisition granted outside the current interval".into());
            return None;
        }
        // t_asn ordering inside the interval.
        let expected = front.t_asn_start + (front.count - front.remaining);
        if t.t_asn != expected {
            self.replay.fail(
                t.t,
                format!("interval expected acquisition t_asn {expected}, got {}", t.t_asn),
            );
        }
        acct.charge(ftjvm_netsim::Category::LockAcquire, self.replay.cost.interval_update);
        front.remaining -= 1;
        self.remaining_total -= 1;
        if front.remaining == 0 {
            self.intervals.pop_front();
        }
        self.replay.stats.locks_acquired += 1;
        if self.remaining_total == 0 {
            self.replay.mark_recovery_complete(acct);
        }
        None
    }

    fn pre_native(
        &mut self,
        t: &ThreadObs<'_>,
        decl: &NativeDecl,
        _args: &[Value],
        acct: &mut TimeAccount,
    ) -> NativeDirective {
        self.replay.directive(t, decl, acct)
    }

    fn begin_output(
        &mut self,
        _t: &ThreadObs<'_>,
        _decl: &NativeDecl,
        _acct: &mut TimeAccount,
    ) -> u64 {
        self.replay.live_output_id()
    }

    fn on_stall(&mut self, _acct: &mut TimeAccount) -> bool {
        if self.remaining_total > 0 {
            self.replay.error.get_or_insert(VmError::ReplayDivergence {
                thread: ThreadIdx(0),
                detail: format!(
                    "interval recovery stalled with {} acquisitions left to replay",
                    self.remaining_total
                ),
            });
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::sig_hash as hash_of;
    use ftjvm_vm::native::{NativeDecl, NativeKind};
    use ftjvm_vm::World;

    fn decl(name: &str, nd: bool, output: bool, volatile_state: bool, returns: bool) -> NativeDecl {
        NativeDecl {
            name: name.into(),
            argc: 0,
            returns,
            nondeterministic: nd,
            output,
            creates_volatile: volatile_state,
            kind: NativeKind::Simple(|_| Ok(None)),
        }
    }

    fn obs(vt: &VtPath) -> (ThreadIdx, &VtPath) {
        (ThreadIdx(0), vt)
    }

    /// Builds a replay over a hand-assembled log.
    fn replay_from(records: Vec<Record>, world: SharedWorld) -> NativeReplay {
        let frames: Vec<Bytes> = records.iter().map(|r| r.encode()).collect();
        let mut se = SeRegistry::with_builtins();
        let mut log = BackupLog::decode(frames, &mut se).expect("decodes");
        NativeReplay::new(&mut log, world, se, ftjvm_netsim::CostModel::default())
    }

    fn make_obs<'a>(t: ThreadIdx, vt: &'a VtPath) -> ThreadObs<'a> {
        ThreadObs {
            t,
            vt: Some(vt),
            br_cnt: 0,
            mon_cnt: 0,
            t_asn: 0,
            method: None,
            pc: 0,
            in_native: false,
        }
    }

    #[test]
    fn deterministic_non_output_natives_always_execute() {
        let vt = VtPath::root();
        let mut r = replay_from(vec![], World::shared());
        let d = decl("plain.native", false, false, false, true);
        let mut acct = TimeAccount::new();
        let (t, vt_ref) = obs(&vt);
        assert!(matches!(
            r.directive(&make_obs(t, vt_ref), &d, &mut acct),
            NativeDirective::Execute
        ));
    }

    #[test]
    fn nd_native_with_logged_result_is_imposed_without_execution() {
        let vt = VtPath::root();
        let mut r = replay_from(
            vec![Record::NativeResult {
                t: vt.clone(),
                seq: 1,
                sig_hash: hash_of("sys.clock"),
                result: LoggedResult::Ok(Some(crate::records::WireValue::Int(42))),
                out_args: vec![],
            }],
            World::shared(),
        );
        let d = decl("sys.clock", true, false, false, true);
        let mut acct = TimeAccount::new();
        let (t, vt_ref) = obs(&vt);
        match r.directive(&make_obs(t, vt_ref), &d, &mut acct) {
            NativeDirective::Replay(a) => {
                assert!(!a.execute, "pure ND input: skip the body");
                assert_eq!(a.result, Some(Ok(Some(ftjvm_vm::Value::Int(42)))));
            }
            NativeDirective::Execute => panic!("must impose the logged result"),
        }
        // Second call: past the log — live execution.
        assert!(matches!(
            r.directive(&make_obs(t, vt_ref), &d, &mut acct),
            NativeDirective::Execute
        ));
    }

    #[test]
    fn wrong_native_order_is_divergence() {
        let vt = VtPath::root();
        let mut r = replay_from(
            vec![Record::NativeResult {
                t: vt.clone(),
                seq: 1,
                sig_hash: hash_of("sys.clock"),
                result: LoggedResult::Ok(Some(crate::records::WireValue::Int(1))),
                out_args: vec![],
            }],
            World::shared(),
        );
        // The thread calls sys.rand where the log says sys.clock — a data
        // race reordered its execution.
        let d = decl("sys.rand", true, false, false, true);
        let mut acct = TimeAccount::new();
        let (t, vt_ref) = obs(&vt);
        let _ = r.directive(&make_obs(t, vt_ref), &d, &mut acct);
        assert!(matches!(r.take_stop(), Some(StopReason::Error(VmError::ReplayDivergence { .. }))));
    }

    #[test]
    fn performed_console_output_is_skipped_unperformed_is_reexecuted() {
        let vt = VtPath::root();
        let world = World::shared();
        // Two committed console outputs; a later same-thread commit proves
        // the first was performed; the second is uncertain and the world
        // says it never happened.
        let mut r = replay_from(
            vec![
                Record::OutputCommit { t: vt.clone(), seq: 1, output_id: 10 },
                Record::OutputCommit { t: vt.clone(), seq: 2, output_id: 11 },
            ],
            world.clone(),
        );
        let d = decl("sys.print", false, true, false, false);
        let mut acct = TimeAccount::new();
        let (t, vt_ref) = obs(&vt);
        // Output 10: proven performed (commit 11 is same-thread progress).
        match r.directive(&make_obs(t, vt_ref), &d, &mut acct) {
            NativeDirective::Replay(a) => {
                assert!(!a.execute, "performed console output must not repeat");
                assert_eq!(a.output_id, Some(10));
            }
            NativeDirective::Execute => panic!("output 10 was proven performed"),
        }
        // Output 11: uncertain, test() says not applied -> re-execute with
        // the committed id.
        match r.directive(&make_obs(t, vt_ref), &d, &mut acct) {
            NativeDirective::Replay(a) => {
                assert!(a.execute, "uncertain unperformed output must be performed");
                assert_eq!(a.output_id, Some(11));
                assert!(a.result.is_none(), "keep whatever the re-executed body returns");
            }
            NativeDirective::Execute => panic!("the commit id must be imposed"),
        }
    }

    #[test]
    fn uncertain_output_already_applied_is_skipped_via_test() {
        let vt = VtPath::root();
        let world = World::shared();
        world.borrow_mut().println(10, "primary", "already out");
        let mut r = replay_from(
            vec![Record::OutputCommit { t: vt.clone(), seq: 1, output_id: 10 }],
            world.clone(),
        );
        let d = decl("sys.print", false, true, false, false);
        let mut acct = TimeAccount::new();
        let (t, vt_ref) = obs(&vt);
        match r.directive(&make_obs(t, vt_ref), &d, &mut acct) {
            NativeDirective::Replay(a) => assert!(!a.execute, "test() said it already happened"),
            NativeDirective::Execute => panic!("must consult test()"),
        }
    }

    #[test]
    fn schedule_records_do_not_prove_output_performed() {
        let vt = VtPath::root();
        let other = VtPath::root().child(0);
        let world = World::shared();
        // A schedule record follows the commit — that can be the preemption
        // *between* commit and output, so it must NOT count as proof.
        let mut r = replay_from(
            vec![
                Record::OutputCommit { t: vt.clone(), seq: 1, output_id: 10 },
                Record::Sched {
                    t: vt.clone(),
                    br_cnt: 5,
                    method: 0,
                    pc_off: 3,
                    mon_cnt: 0,
                    l_asn: 0,
                    in_native: true,
                    next: other,
                },
            ],
            world.clone(),
        );
        let d = decl("sys.print", false, true, false, false);
        let mut acct = TimeAccount::new();
        let (t, vt_ref) = obs(&vt);
        match r.directive(&make_obs(t, vt_ref), &d, &mut acct) {
            NativeDirective::Replay(a) => {
                assert!(a.execute, "unproven output must be (re-)performed");
            }
            NativeDirective::Execute => panic!("the commit id must be imposed"),
        }
    }

    #[test]
    fn volatile_output_with_lost_result_record_is_reexecuted() {
        // file.write committed + performed, but its result record was
        // still buffered at the crash: re-execute (idempotent by id) and
        // keep the recomputed return value.
        let vt = VtPath::root();
        let world = World::shared();
        world.borrow_mut().write_file_at(10, "f", 0, b"x");
        let mut r = replay_from(
            vec![Record::OutputCommit { t: vt.clone(), seq: 1, output_id: 10 }],
            world.clone(),
        );
        let d = decl("file.write", true, true, true, true);
        let mut acct = TimeAccount::new();
        let (t, vt_ref) = obs(&vt);
        match r.directive(&make_obs(t, vt_ref), &d, &mut acct) {
            NativeDirective::Replay(a) => {
                assert!(a.execute, "must re-run to recompute the lost return value");
                assert!(a.result.is_none());
                assert_eq!(a.output_id, Some(10));
            }
            NativeDirective::Execute => panic!("the commit id must be imposed"),
        }
    }

    #[test]
    fn decode_indexes_records_by_kind() {
        let vt = VtPath::root();
        let records = [
            Record::IdMap { l_id: 0, t: vt.clone(), t_asn: 1 },
            Record::LockAcq { t: vt.clone(), t_asn: 1, l_id: 0, l_asn: 1 },
            Record::LockInterval { t: vt.clone(), t_asn_start: 2, count: 5 },
            Record::Heartbeat { now_ns: 1 },
            Record::OutputCommit { t: vt.clone(), seq: 1, output_id: 0 },
            Record::SeState { handler: 0, payload: Bytes::from_static(b"x") },
        ];
        let frames: Vec<Bytes> = records.iter().map(|r| r.encode()).collect();
        let mut se = SeRegistry::with_builtins();
        let log = BackupLog::decode(frames, &mut se).unwrap();
        assert_eq!(log.total_records(), 6);
        assert_eq!(log.lock_records(), 1);
        assert_eq!(log.interval_records(), 1);
        assert_eq!(log.sched_records(), 0);
    }
}
