//! The backup-side recovery runtime: the received log, the shared
//! non-deterministic-native replay, and the two recovery coordinators.
//!
//! The backup is *cold* (§1): during normal operation it only stores the
//! primary's records. On failure it re-executes the program from the
//! initial state, using the log to make every non-deterministic choice the
//! way the primary made it:
//!
//! * [`LockSyncBackup`] reproduces the primary's per-lock acquisition
//!   order from lock-acquisition records and id maps (§4.2), including the
//!   end-of-log rules for threads that run past their logged history;
//! * [`TsBackup`] reproduces the primary's thread schedule from schedule
//!   records, stopping each thread at exactly the recorded
//!   `(br_cnt, pc_off, mon_cnt)` point — including preemptions inside
//!   native methods, replayed via `mon_cnt` — and scheduling the recorded
//!   next thread (§4.2);
//! * [`NativeReplay`] (shared) imposes logged ND native results, suppresses
//!   already-performed outputs, `test`s the uncertain last output, and
//!   hands out fresh output ids once execution passes the end of the log
//!   (§3.4, §4.1).

use crate::codec::{
    decode_frames_pipelined, frame_is_epoch_mark, frame_is_heartbeat, frame_is_snapshot_chunk,
    open_frame, parse_epoch_frame, RecordDecoder, SnapshotAssembler,
};
use crate::records::{sig_hash, LoggedResult, Record};
use crate::se::SeRegistry;
use crate::stats::ReplicationStats;
use bytes::Bytes;
use ftjvm_netsim::{Category, CostModel, SimTime, TimeAccount};
use ftjvm_vm::coordinator::Pick;
use ftjvm_vm::native::NativeDecl;
use ftjvm_vm::ThreadIdx;
use ftjvm_vm::{
    AdoptedOutcome, Coordinator, MonitorDecision, NativeDirective, ObjRef, QuietBudget,
    SharedWorld, StopReason, SwitchReason, ThreadObs, ThreadSnap, Value, VmError, VtPath,
};
use std::collections::{HashMap, VecDeque};

#[derive(Debug, Clone)]
struct NdRec {
    seq: u64,
    sig_hash: u64,
    result: LoggedResult,
    out_args: Vec<(u8, Vec<crate::records::WireValue>)>,
}

#[derive(Debug, Clone)]
struct CommitRec {
    seq: u64,
    output_id: u64,
    /// Arrival index within the whole log: if any record follows, the
    /// output is known to have been performed (the primary performs the
    /// output immediately after the acknowledged commit, before producing
    /// any further record).
    global_idx: usize,
}

#[derive(Debug, Clone)]
struct IntervalRec {
    t: VtPath,
    t_asn_start: u64,
    count: u64,
    remaining: u64,
}

#[derive(Debug, Clone)]
struct LockAcqRec {
    t_asn: u64,
    l_id: u64,
    l_asn: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct SchedRec {
    t: VtPath,
    br_cnt: u64,
    method: u32,
    pc_off: u32,
    mon_cnt: u64,
    l_asn: u64,
    in_native: bool,
    next: VtPath,
}

/// Why a replay could not proceed from the log it was given.
///
/// Replay paths used to `expect(...)` on these conditions; with an
/// adversarial channel a truncated or internally inconsistent log is a
/// *reachable* state, so each condition now degrades to a reported
/// recovery failure ([`VmError::ReplayDivergence`]) instead of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// A replay hook fired for a thread with no virtual identity (a system
    /// thread) — the log steered execution somewhere it never went on the
    /// primary.
    MissingThreadIdentity {
        /// Which replay hook observed it.
        hook: &'static str,
    },
    /// A record queue that replay logic had just checked non-empty (or
    /// that must be non-empty for the log to be self-consistent) was
    /// empty — the log lost records mid-stream.
    EmptyRecordQueue {
        /// Which queue was unexpectedly empty.
        what: &'static str,
    },
    /// A standby was asked to promote to primary before its replay
    /// finished — records from the dead primary's verified prefix are
    /// still unconsumed, so taking over now would fork history.
    PromotionIncomplete {
        /// Replay records still unconsumed at the promotion attempt.
        pending: u64,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::MissingThreadIdentity { hook } => {
                write!(f, "replay hook `{hook}` reached a thread without a virtual identity")
            }
            ReplayError::EmptyRecordQueue { what } => {
                write!(f, "log is missing expected {what} records (truncated or corrupt log)")
            }
            ReplayError::PromotionIncomplete { pending } => {
                write!(f, "promotion attempted with {pending} replay records unconsumed")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

impl ReplayError {
    /// The [`VmError`] this failure surfaces as, attributed to thread `t`.
    pub fn at(self, t: ThreadIdx) -> VmError {
        VmError::ReplayDivergence { thread: t, detail: self.to_string() }
    }
}

/// The decoded, indexed log the backup recovered from the channel.
#[derive(Debug, Default)]
pub struct BackupLog {
    lock_acqs: HashMap<VtPath, VecDeque<LockAcqRec>>,
    lock_total: usize,
    id_maps: HashMap<(VtPath, u64), u64>,
    sched: VecDeque<SchedRec>,
    nd: HashMap<VtPath, VecDeque<NdRec>>,
    commits: HashMap<VtPath, VecDeque<CommitRec>>,
    intervals: VecDeque<IntervalRec>,
    interval_total: usize,
    /// Per thread, the largest arrival index of a record that proves the
    /// thread made *execution progress* (lock acquisition, id map, native
    /// result, or a later output commit). Schedule records are excluded:
    /// a preemption can land exactly between an output commit and the
    /// output itself, so a schedule record after a commit does NOT prove
    /// the output was performed.
    progress_max: HashMap<VtPath, usize>,
    total_records: usize,
    max_output_id: u64,
    has_outputs: bool,
}

impl BackupLog {
    /// Decodes the flushed frames (in FIFO arrival order), feeding
    /// side-effect state records to `se` (its `receive` compression hook).
    ///
    /// # Errors
    /// Returns an error for malformed frames — a truncated *suffix* cannot
    /// happen (the channel is reliable and frames are whole records), so
    /// corruption means a protocol bug.
    pub fn decode(frames: Vec<Bytes>, se: &mut SeRegistry) -> Result<BackupLog, VmError> {
        BackupLog::decode_parallel(frames, se, 1)
    }

    /// [`BackupLog::decode`] with worker-thread fan-out: seal checks and
    /// stateless record decode parallelize across `threads` workers while
    /// compact batches keep their sequential context chain (one decoder
    /// across all frames, mirroring the primary's encoder). The resulting
    /// log is byte-identical for every thread count.
    ///
    /// # Errors
    /// Returns an error for malformed frames — a truncated *suffix* cannot
    /// happen (the channel is reliable and frames are whole records), so
    /// corruption means a protocol bug.
    pub fn decode_parallel(
        frames: Vec<Bytes>,
        se: &mut SeRegistry,
        threads: usize,
    ) -> Result<BackupLog, VmError> {
        let mut log = BackupLog::default();
        let mut decoder = RecordDecoder::new();
        let decoded = decode_frames_pipelined(&mut decoder, &frames, threads)
            .map_err(|e| VmError::Internal(format!("malformed log record: {e}")))?;
        let mut idx = 0usize;
        for recs in decoded {
            for rec in recs {
                log.ingest(idx, rec, se);
                idx += 1;
            }
        }
        Ok(log)
    }

    /// Indexes one decoded record. `idx` is the record's position in the
    /// flat log (the global order replay replays in); under the compact
    /// codec a batch frame contributes one index per contained record.
    fn ingest(&mut self, idx: usize, rec: Record, se: &mut SeRegistry) {
        self.total_records += 1;
        match rec {
            Record::IdMap { l_id, t, t_asn } => {
                self.progress_max.insert(t.clone(), idx);
                self.id_maps.insert((t, t_asn), l_id);
            }
            Record::LockAcq { t, t_asn, l_id, l_asn } => {
                self.lock_total += 1;
                self.progress_max.insert(t.clone(), idx);
                self.lock_acqs.entry(t).or_default().push_back(LockAcqRec { t_asn, l_id, l_asn });
            }
            Record::Sched { t, br_cnt, method, pc_off, mon_cnt, l_asn, in_native, next } => {
                self.sched.push_back(SchedRec {
                    t,
                    br_cnt,
                    method,
                    pc_off,
                    mon_cnt,
                    l_asn,
                    in_native,
                    next,
                });
            }
            Record::NativeResult { t, seq, sig_hash, result, out_args } => {
                self.progress_max.insert(t.clone(), idx);
                self.nd.entry(t).or_default().push_back(NdRec { seq, sig_hash, result, out_args });
            }
            Record::OutputCommit { t, seq, output_id } => {
                self.max_output_id = self.max_output_id.max(output_id);
                self.has_outputs = true;
                self.progress_max.insert(t.clone(), idx);
                self.commits.entry(t).or_default().push_back(CommitRec {
                    seq,
                    output_id,
                    global_idx: idx,
                });
            }
            Record::LockInterval { t, t_asn_start, count } => {
                self.interval_total += count as usize;
                self.progress_max.insert(t.clone(), idx);
                self.intervals.push_back(IntervalRec { t, t_asn_start, count, remaining: count });
            }
            Record::Heartbeat { .. } => {
                // Liveness only; carries no replay information.
            }
            Record::SeState { handler, payload } => {
                se.receive(handler, payload);
            }
        }
    }

    /// Total records received.
    pub fn total_records(&self) -> usize {
        self.total_records
    }

    /// Lock-acquisition records received (lock-sync mode).
    pub fn lock_records(&self) -> usize {
        self.lock_total
    }

    /// Schedule records received (TS mode).
    pub fn sched_records(&self) -> usize {
        self.sched.len()
    }

    /// Interval records received (interval-compressed lock-sync).
    pub fn interval_records(&self) -> usize {
        self.intervals.len()
    }
}

/// Replication-layer state a replacement backup needs, on top of the VM
/// snapshot itself, to resume the stream mid-history. The runtime builds
/// it from the snapshot's extension sections
/// ([`crate::primary::EXT_CODEC_CTX`] and friends).
#[derive(Debug, Clone, Default)]
pub struct ResumeSeed {
    /// Compact-codec decoder context exported by the primary's encoder at
    /// the cut ([`crate::codec::RecordEncoder::export_ctx`]).
    pub decoder_ctx: Bytes,
    /// Per-thread ND results already consumed before the cut (sequence
    /// checks in the suffix continue from these).
    pub nd_consumed: HashMap<VtPath, u64>,
    /// Per-thread output commits already consumed before the cut.
    pub commit_consumed: HashMap<VtPath, u64>,
    /// The primary's `next_output_id` at the cut — the floor for live
    /// output ids after promotion.
    pub live_output_base: u64,
}

/// Shared backup-side native replay (ND results, outputs, exactly-once).
///
/// Owns the [`BackupLog`] the coordinators consume from. In *cold* replay
/// the log is complete at construction (`eof` is true from the start); in
/// *streaming* (hot-standby) replay the log grows via `feed_frame` while
/// the primary is still running and `eof` flips only at promotion (or once
/// the primary completes), via `finish`.
pub struct NativeReplay {
    cost: CostModel,
    log: BackupLog,
    /// Decoder state for streamed frames (the compact codec's delta
    /// context spans frame boundaries, so one decoder must see them all).
    decoder: RecordDecoder,
    /// Arrival index of the next streamed record.
    next_idx: usize,
    /// True once no further records can arrive: cold replay always, hot
    /// replay after promotion. Until then replay may not run ahead of the
    /// log — threads defer instead of going live.
    eof: bool,
    nd_consumed: HashMap<VtPath, u64>,
    commit_consumed: HashMap<VtPath, u64>,
    world: SharedWorld,
    se: SeRegistry,
    next_live_output: u64,
    /// Floor for live output ids: a replica resumed from an epoch snapshot
    /// knows the primary's `next_output_id` at the cut, and its (empty)
    /// suffix log may never mention an output. Zero on the from-genesis
    /// paths, where the log alone determines the floor.
    live_output_base: u64,
    /// Epoch marks absorbed from the stream — the backup's epoch
    /// acknowledgment counter, relayed to the primary by the driver.
    pub epochs_absorbed: u64,
    error: Option<VmError>,
    /// Simulated instant at which recovery (log replay) completed, if it
    /// has.
    pub recovery_completed_at: Option<ftjvm_netsim::SimTime>,
    /// Backup-side observability.
    pub stats: ReplicationStats,
}

impl std::fmt::Debug for NativeReplay {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeReplay")
            .field("records", &self.log.total_records)
            .field("eof", &self.eof)
            .field("next_live_output", &self.next_live_output)
            .finish()
    }
}

impl NativeReplay {
    /// Cold replay over a complete, already-decoded log.
    fn new(log: BackupLog, world: SharedWorld, se: SeRegistry, cost: CostModel) -> Self {
        let next_live_output = if log.has_outputs { log.max_output_id + 1 } else { 0 };
        NativeReplay {
            cost,
            next_idx: log.total_records,
            log,
            decoder: RecordDecoder::new(),
            eof: true,
            nd_consumed: HashMap::new(),
            commit_consumed: HashMap::new(),
            world,
            se,
            next_live_output,
            live_output_base: 0,
            epochs_absorbed: 0,
            error: None,
            recovery_completed_at: None,
            stats: ReplicationStats::default(),
        }
    }

    /// Streaming (hot-standby) replay: starts with an empty log that grows
    /// as flushed frames arrive.
    fn streaming(world: SharedWorld, se: SeRegistry, cost: CostModel) -> Self {
        NativeReplay {
            cost,
            log: BackupLog::default(),
            decoder: RecordDecoder::new(),
            next_idx: 0,
            eof: false,
            nd_consumed: HashMap::new(),
            commit_consumed: HashMap::new(),
            world,
            se,
            next_live_output: 0,
            live_output_base: 0,
            epochs_absorbed: 0,
            error: None,
            recovery_completed_at: None,
            stats: ReplicationStats::default(),
        }
    }

    /// Streaming replay *resumed from an epoch snapshot*: the VM state was
    /// transplanted from the primary's checkpoint, so the replay starts
    /// mid-history — the decoder context, per-thread consumed counters,
    /// and output-id floor all come from the snapshot's extension
    /// sections instead of zero.
    ///
    /// # Errors
    /// Returns an error if the seed's codec context is malformed.
    fn resumed(
        world: SharedWorld,
        se: SeRegistry,
        cost: CostModel,
        seed: ResumeSeed,
    ) -> Result<Self, VmError> {
        let mut decoder = RecordDecoder::new();
        decoder
            .import_ctx(&seed.decoder_ctx)
            .map_err(|e| VmError::Internal(format!("resume seed codec context: {e}")))?;
        Ok(NativeReplay {
            cost,
            log: BackupLog::default(),
            decoder,
            next_idx: 0,
            eof: false,
            nd_consumed: seed.nd_consumed,
            commit_consumed: seed.commit_consumed,
            world,
            se,
            next_live_output: 0,
            live_output_base: seed.live_output_base,
            epochs_absorbed: 0,
            error: None,
            recovery_completed_at: None,
            stats: ReplicationStats::default(),
        })
    }

    /// Decodes one arrived frame into the log. Returns the number of
    /// heartbeat records it carried (for the caller's failure detector).
    ///
    /// # Errors
    /// Returns an error for a malformed frame (a protocol bug: the channel
    /// is reliable and frames are whole records).
    fn feed_frame(&mut self, frame: Bytes) -> Result<u32, VmError> {
        if frame_is_epoch_mark(&frame) {
            parse_epoch_frame(&frame)
                .map_err(|e| VmError::Internal(format!("malformed epoch mark: {e}")))?;
            // A hot standby consumes records as it co-executes, so the mark
            // only needs counting: it is the backup's acknowledgment that
            // everything before it was absorbed.
            self.epochs_absorbed += 1;
            return Ok(0);
        }
        if frame_is_snapshot_chunk(&frame) {
            // State transfer is driver-routed; a chunk reaching the replay
            // path carries no records.
            return Ok(0);
        }
        let mut scratch = Vec::new();
        let at = self.next_idx;
        self.decoder.decode_frame(frame, &mut scratch).map_err(|e| {
            VmError::Internal(format!("malformed streamed log record at index {at}: {e}"))
        })?;
        let mut heartbeats = 0u32;
        for rec in scratch.drain(..) {
            if matches!(rec, Record::Heartbeat { .. }) {
                heartbeats += 1;
            }
            self.log.ingest(self.next_idx, rec, &mut self.se);
            self.next_idx += 1;
        }
        self.stats.peak_backup_pending = self.stats.peak_backup_pending.max(self.pending_records());
        Ok(heartbeats)
    }

    /// Bulk [`NativeReplay::feed_frame`]: decodes a whole buffered suffix at
    /// once, fanning seal verification and stateless record decode out
    /// across `threads` workers while compact batches keep their sequential
    /// context chain. Ingestion order, flat record indices, heartbeat
    /// counts, and the per-frame `peak_backup_pending` watermark all match
    /// feeding the frames one at a time, so the resulting backup state is
    /// byte-identical for every thread count — only wall-clock changes.
    ///
    /// # Errors
    /// Returns an error for a malformed frame (a protocol bug: the channel
    /// is reliable and frames are whole records). On error the decoder
    /// context is unspecified; callers abort the replica.
    fn feed_frames(&mut self, frames: Vec<Bytes>, threads: usize) -> Result<u32, VmError> {
        if threads <= 1 {
            let mut heartbeats = 0u32;
            for frame in frames {
                heartbeats += self.feed_frame(frame)?;
            }
            return Ok(heartbeats);
        }
        // Control frames are stateless, so splitting the stream around them
        // and bulk-decoding each record run preserves the decoder's context
        // chain exactly.
        let mut heartbeats = 0u32;
        let mut run: Vec<Bytes> = Vec::new();
        let ingest_run = |this: &mut Self, run: &mut Vec<Bytes>| -> Result<u32, VmError> {
            if run.is_empty() {
                return Ok(0);
            }
            let at = this.next_idx;
            let decoded =
                decode_frames_pipelined(&mut this.decoder, run, threads).map_err(|e| {
                    VmError::Internal(format!("malformed streamed log record at index {at}: {e}"))
                })?;
            run.clear();
            let mut hb = 0u32;
            for recs in decoded {
                for rec in recs {
                    if matches!(rec, Record::Heartbeat { .. }) {
                        hb += 1;
                    }
                    this.log.ingest(this.next_idx, rec, &mut this.se);
                    this.next_idx += 1;
                }
                // Pending counts only grow while feeding, so updating the
                // watermark at frame granularity matches the sequential path.
                this.stats.peak_backup_pending =
                    this.stats.peak_backup_pending.max(this.pending_records());
            }
            Ok(hb)
        };
        for frame in frames {
            if frame_is_epoch_mark(&frame) {
                heartbeats += ingest_run(self, &mut run)?;
                parse_epoch_frame(&frame)
                    .map_err(|e| VmError::Internal(format!("malformed epoch mark: {e}")))?;
                self.epochs_absorbed += 1;
            } else if frame_is_snapshot_chunk(&frame) {
                heartbeats += ingest_run(self, &mut run)?;
            } else {
                run.push(frame);
            }
        }
        heartbeats += ingest_run(self, &mut run)?;
        Ok(heartbeats)
    }

    /// Records received but not yet consumed by the co-executing replay —
    /// the backup's live log memory.
    fn pending_records(&self) -> u64 {
        let nd: usize = self.log.nd.values().map(|q| q.len()).sum();
        let commits: usize = self.log.commits.values().map(|q| q.len()).sum();
        (self.log.lock_total + self.log.interval_total + self.log.sched.len() + nd + commits) as u64
    }

    /// Ends the stream: no further records can arrive (the primary failed
    /// and was detected, or it completed). Restores volatile environment
    /// state from the received side-effect snapshots and unlocks the live
    /// phase (fresh output ids start after the largest logged one).
    fn finish(&mut self, env: &mut ftjvm_vm::SimEnv) {
        if self.eof {
            return;
        }
        self.eof = true;
        let from_log = if self.log.has_outputs { self.log.max_output_id + 1 } else { 0 };
        self.next_live_output = from_log.max(self.live_output_base);
        self.se.restore(env);
    }

    /// May this native invocation proceed right now? Always true at eof.
    /// Pre-eof (streaming), an ND native needs its logged result to have
    /// arrived, and an output native needs its commit record *and* proof
    /// that the primary performed the output (a later same-thread record):
    /// while the primary is alive, `test`-based uncertainty resolution is
    /// unsound — the primary may perform the output after we look — so the
    /// thread defers until the proof arrives or the stream ends.
    fn ready_for(&self, t: &ThreadObs<'_>, decl: &NativeDecl) -> bool {
        if self.eof || !(decl.nondeterministic || decl.output) {
            return true;
        }
        let Some(vt) = t.vt else { return true };
        if decl.nondeterministic && self.log.nd.get(vt).is_none_or(|q| q.is_empty()) {
            return false;
        }
        if decl.output {
            let Some(c) = self.log.commits.get(vt).and_then(|q| q.front()) else {
                return false;
            };
            let proven = self.log.progress_max.get(vt).is_some_and(|m| c.global_idx < *m);
            if !proven {
                return false;
            }
        }
        true
    }

    fn mark_recovery_complete(&mut self, acct: &TimeAccount) {
        if self.recovery_completed_at.is_none() {
            self.recovery_completed_at = Some(acct.now());
        }
    }

    fn fail(&mut self, t: ThreadIdx, detail: String) {
        if self.error.is_none() {
            self.error = Some(VmError::ReplayDivergence { thread: t, detail });
        }
    }

    /// Records a typed [`ReplayError`] as the run's failure (first error
    /// wins, like [`fail`](Self::fail)).
    fn fail_replay(&mut self, t: ThreadIdx, err: ReplayError) {
        if self.error.is_none() {
            self.error = Some(err.at(t));
        }
    }

    fn take_stop(&mut self) -> Option<StopReason> {
        self.error.take().map(StopReason::Error)
    }

    /// Consumes a *finished* replay, yielding what a promotion to primary
    /// seeds from it: the restored side-effect registry and the first
    /// output id the new reign may assign (exactly-once across the
    /// takeover).
    ///
    /// # Errors
    /// Typed [`ReplayError::PromotionIncomplete`] if replay records are
    /// still unconsumed — promoting now would fork the replicated history.
    fn into_promotion_parts(self) -> Result<(SeRegistry, u64), ReplayError> {
        let pending = self.pending_records();
        if !self.eof || pending > 0 {
            return Err(ReplayError::PromotionIncomplete { pending });
        }
        Ok((self.se, self.next_live_output))
    }

    /// True once thread `vt` has no logged natives or outputs left.
    fn drained_for(&self, vt: &VtPath) -> bool {
        self.log.nd.get(vt).map(|q| q.is_empty()).unwrap_or(true)
            && self.log.commits.get(vt).map(|q| q.is_empty()).unwrap_or(true)
    }

    /// The replay decision for one native invocation (§4.1, §3.4).
    fn directive(
        &mut self,
        t: &ThreadObs<'_>,
        decl: &NativeDecl,
        acct: &mut TimeAccount,
    ) -> NativeDirective {
        if !(decl.nondeterministic || decl.output) {
            return NativeDirective::Execute;
        }
        let Some(vt) = t.vt.cloned() else {
            self.fail_replay(t.t, ReplayError::MissingThreadIdentity { hook: "directive" });
            return NativeDirective::Execute;
        };
        let nd_rec = if decl.nondeterministic {
            self.log.nd.get_mut(&vt).and_then(|q| q.pop_front())
        } else {
            None
        };
        if let Some(rec) = &nd_rec {
            self.stats.nm_intercepted += 1;
            acct.charge(Category::Misc, self.cost.nd_result_record);
            let consumed = {
                let c = self.nd_consumed.entry(vt.clone()).or_insert(0);
                *c += 1;
                *c
            };
            if rec.seq != consumed {
                self.fail(
                    t.t,
                    format!("ND result sequence {} but thread consumed {}", rec.seq, consumed),
                );
            }
            if rec.sig_hash != sig_hash(&decl.name) {
                self.fail(
                    t.t,
                    format!(
                        "logged ND result is for a different native than `{}` — a data race (R4A violation) \
                         likely reordered this thread's execution",
                        decl.name
                    ),
                );
            }
        }
        let commit = if decl.output {
            self.log.commits.get_mut(&vt).and_then(|q| q.pop_front())
        } else {
            None
        };
        if let Some(c) = &commit {
            let consumed = {
                let x = self.commit_consumed.entry(vt.clone()).or_insert(0);
                *x += 1;
                *x
            };
            if c.seq != consumed {
                self.fail(
                    t.t,
                    format!("output commit sequence {} but thread performed {}", c.seq, consumed),
                );
            }
        }
        if nd_rec.is_none() && commit.is_none() {
            // Past the end of this thread's logged history: the backup is
            // now the authority for this call.
            return NativeDirective::Execute;
        }
        if decl.output && commit.is_none() {
            // A logged result implies its (earlier) commit record arrived.
            self.fail(
                t.t,
                format!("native `{}` has a logged result but no output commit", decl.name),
            );
            return NativeDirective::Execute;
        }
        let performed = match &commit {
            Some(c) => {
                let proven =
                    self.log.progress_max.get(&vt).map(|max| c.global_idx < *max).unwrap_or(false);
                if proven {
                    // A later record from the same thread proves it ran
                    // past this output (the body executes before the
                    // thread can produce another lock/native/commit
                    // record). Schedule records deliberately don't count.
                    true
                } else {
                    // Uncertain: ask the environment (side-effect handler
                    // `test`, restriction R5).
                    self.stats.output_commits += 1;
                    self.se.test(&decl.name, &self.world.borrow(), c.output_id)
                }
            }
            None => true,
        };
        // Whether to run the body:
        // * logged result present — only re-run if the output still needs
        //   performing (imposing the logged result either way);
        // * no logged result (it was still in the primary's buffer at the
        //   crash) — re-run unless this is a pure console-style output
        //   that already reached the environment: re-running a performed
        //   file write is harmless (writes are idempotent by output id)
        //   and recomputes the return value the log lost, but re-running a
        //   performed console print would visibly duplicate it.
        let execute = match &nd_rec {
            Some(_) => decl.output && !performed,
            None => !performed || decl.returns || decl.creates_volatile,
        };
        let result = match &nd_rec {
            Some(r) => Some(match &r.result {
                LoggedResult::Ok(v) => Ok(v.map(|w| w.to_value())),
                LoggedResult::Err { code, msg } => Err((*code, msg.clone())),
            }),
            None => {
                if execute {
                    None // keep whatever the re-executed body produces
                } else {
                    Some(Ok(None)) // performed console output: skip
                }
            }
        };
        let out_args = nd_rec
            .map(|r| {
                r.out_args
                    .into_iter()
                    .map(|(i, vs)| {
                        (i, vs.into_iter().map(|w| w.to_value()).collect::<Vec<Value>>())
                    })
                    .collect()
            })
            .unwrap_or_default();
        NativeDirective::Replay(AdoptedOutcome {
            result,
            out_args,
            execute,
            output_id: commit.map(|c| c.output_id),
        })
    }

    fn live_output_id(&mut self) -> u64 {
        let id = self.next_live_output;
        self.next_live_output += 1;
        id
    }

    /// Allocates a live output id and samples the commit instant. Live
    /// outputs (a promoted backup past the log's end) commit without an
    /// ack wait — there is no peer to wait for — so the sampled wait is
    /// zero.
    fn live_output(&mut self, acct: &ftjvm_netsim::TimeAccount) -> u64 {
        self.stats.commit_samples.push((acct.now().as_nanos(), 0));
        self.live_output_id()
    }
}

/// Backup coordinator for **replicated lock synchronization** recovery.
#[derive(Debug)]
pub struct LockSyncBackup {
    replay: NativeReplay,
}

impl LockSyncBackup {
    /// Builds a cold-replay coordinator from a complete decoded log.
    pub fn new(log: BackupLog, world: SharedWorld, se: SeRegistry, cost: CostModel) -> Self {
        LockSyncBackup { replay: NativeReplay::new(log, world, se, cost) }
    }

    /// Builds a hot-standby (streaming) coordinator whose log starts empty
    /// and grows via [`feed_frame`](LockSyncBackup::feed_frame).
    pub fn streaming(world: SharedWorld, se: SeRegistry, cost: CostModel) -> Self {
        LockSyncBackup { replay: NativeReplay::streaming(world, se, cost) }
    }

    /// Builds a streaming coordinator resumed from an epoch snapshot
    /// (re-integration of a replacement backup). The VM it coordinates was
    /// restored from the snapshot — monitors already carry their `l_id`
    /// and `l_asn` state, so only the replication-layer seed is needed.
    ///
    /// # Errors
    /// Returns an error if the seed is malformed.
    pub fn resumed(
        world: SharedWorld,
        se: SeRegistry,
        cost: CostModel,
        seed: ResumeSeed,
    ) -> Result<Self, VmError> {
        Ok(LockSyncBackup { replay: NativeReplay::resumed(world, se, cost, seed)? })
    }

    /// Epoch marks absorbed from the stream (the backup's epoch ack).
    pub fn epochs_absorbed(&self) -> u64 {
        self.replay.epochs_absorbed
    }

    /// Streams one arrived frame into the log; returns the number of
    /// heartbeat records it carried.
    ///
    /// # Errors
    /// Returns an error for a malformed frame (a protocol bug).
    pub fn feed_frame(&mut self, frame: Bytes) -> Result<u32, VmError> {
        self.replay.feed_frame(frame)
    }

    /// Bulk [`LockSyncBackup::feed_frame`] over a buffered suffix, with the
    /// seal-check/decode front end fanned out across `threads` workers.
    /// Byte-identical to feeding the frames one at a time.
    ///
    /// # Errors
    /// Returns an error for a malformed frame (a protocol bug).
    pub fn feed_frames(&mut self, frames: Vec<Bytes>, threads: usize) -> Result<u32, VmError> {
        self.replay.feed_frames(frames, threads)
    }

    /// Promotes a streaming backup: no further records can arrive.
    pub fn finish_stream(&mut self, env: &mut ftjvm_vm::SimEnv, acct: &TimeAccount) {
        self.replay.finish(env);
        if self.replay.log.lock_total == 0 {
            self.replay.mark_recovery_complete(acct);
        }
    }

    /// Backup-side statistics.
    pub fn stats(&self) -> &ReplicationStats {
        &self.replay.stats
    }

    /// True once the stream ended and every lock record was consumed.
    pub fn recovery_complete(&self) -> bool {
        self.replay.eof && self.replay.log.lock_total == 0
    }

    /// Replay records (of every class) still unconsumed — promotion must
    /// wait for zero.
    pub(crate) fn replay_pending(&self) -> u64 {
        self.replay.pending_records()
    }

    /// Simulated instant at which the log replay finished.
    pub fn recovery_completed_at(&self) -> Option<ftjvm_netsim::SimTime> {
        self.replay.recovery_completed_at
    }

    /// Consumes the coordinator for promotion to primary (see
    /// [`NativeReplay::into_promotion_parts`]).
    pub(crate) fn into_promotion_parts(self) -> Result<(SeRegistry, u64), ReplayError> {
        self.replay.into_promotion_parts()
    }
}

impl Coordinator for LockSyncBackup {
    fn mode(&self) -> &'static str {
        "lock-sync-backup"
    }

    fn stop(&mut self) -> Option<StopReason> {
        self.replay.take_stop()
    }

    fn pre_monitor_acquire(
        &mut self,
        t: &ThreadObs<'_>,
        _obj: ObjRef,
        l_id: Option<u64>,
        l_asn: u64,
    ) -> MonitorDecision {
        if self.replay.eof && self.replay.log.lock_total == 0 {
            // End of recovery: the log has no more lock-acquisition
            // records, so ordering constraints are over (§4.2).
            return MonitorDecision::Grant;
        }
        let Some(vt) = t.vt else {
            self.replay.fail_replay(
                t.t,
                ReplayError::MissingThreadIdentity { hook: "pre_monitor_acquire" },
            );
            return MonitorDecision::Grant;
        };
        let Some(rec) = self.replay.log.lock_acqs.get(vt).and_then(|q| q.front()) else {
            // This thread ran past its (arrived) logged history; it must
            // wait — for more frames while streaming, or for the whole log
            // to drain — before acquiring anything new.
            return MonitorDecision::Defer;
        };
        if rec.t_asn != t.t_asn + 1 {
            self.replay.fail(
                t.t,
                format!(
                    "lock record t_asn {} but thread is at acquisition {}",
                    rec.t_asn,
                    t.t_asn + 1
                ),
            );
            return MonitorDecision::Grant;
        }
        match l_id {
            Some(id) => {
                if rec.l_id != id {
                    self.replay.fail(
                        t.t,
                        format!(
                            "thread's next logged acquisition is lock {} but it is acquiring lock {id} — \
                             a data race (R4A violation) changed the acquisition sequence",
                            rec.l_id
                        ),
                    );
                    return MonitorDecision::Grant;
                }
                if rec.l_asn == l_asn + 1 {
                    MonitorDecision::Grant
                } else {
                    // Not this thread's turn for the lock yet.
                    MonitorDecision::Defer
                }
            }
            None => {
                // The lock has no id at the backup yet. If this thread
                // assigned the id at the primary, its id map names it.
                if self.replay.log.id_maps.contains_key(&(vt.clone(), t.t_asn + 1)) {
                    if rec.l_asn == l_asn + 1 {
                        MonitorDecision::Grant
                    } else {
                        MonitorDecision::Defer
                    }
                } else if rec.l_asn <= 1 {
                    // First acquisition of the lock but no id map: the map
                    // cannot have been lost without the (later) acquisition
                    // record also being lost.
                    self.replay.fail(t.t, "acquisition record without its id map".into());
                    MonitorDecision::Grant
                } else {
                    // Another thread assigns this lock's id; wait for it.
                    MonitorDecision::Defer
                }
            }
        }
    }

    fn post_monitor_acquire(
        &mut self,
        t: &ThreadObs<'_>,
        _obj: ObjRef,
        l_id: Option<u64>,
        l_asn: u64,
        _acct: &mut TimeAccount,
    ) -> Option<u64> {
        if self.replay.eof && self.replay.log.lock_total == 0 {
            return None; // live phase
        }
        let Some(vt) = t.vt else {
            self.replay.fail_replay(
                t.t,
                ReplayError::MissingThreadIdentity { hook: "post_monitor_acquire" },
            );
            return None;
        };
        let Some(rec) = self.replay.log.lock_acqs.get_mut(vt).and_then(|q| q.pop_front()) else {
            self.replay.fail(t.t, "granted an acquisition with no record to consume".into());
            return None;
        };
        self.replay.log.lock_total -= 1;
        if self.replay.log.lock_total == 0 && self.replay.eof {
            self.replay.mark_recovery_complete(_acct);
        }
        self.replay.stats.locks_acquired += 1;
        // Replay bookkeeping: locating and consuming the record costs
        // about what creating it did (no communication, though).
        _acct.charge(Category::LockAcquire, self.replay.cost.lock_record);
        if rec.l_asn != l_asn || rec.t_asn != t.t_asn {
            self.replay.fail(
                t.t,
                format!(
                    "acquisition replayed at (t_asn {}, l_asn {l_asn}) but record says ({}, {})",
                    t.t_asn, rec.t_asn, rec.l_asn
                ),
            );
        }
        match l_id {
            Some(id) => {
                debug_assert_eq!(id, rec.l_id, "pre_monitor_acquire verified the id");
                None
            }
            None => {
                // Claim this thread's id map (§4.2): it must exist, since
                // pre granted the first acquisition only on a map match.
                match self.replay.log.id_maps.remove(&(vt.clone(), t.t_asn)) {
                    Some(mapped) => {
                        if mapped != rec.l_id {
                            self.replay.fail(
                                t.t,
                                format!(
                                    "id map assigns lock {mapped} but record names lock {}",
                                    rec.l_id
                                ),
                            );
                        }
                        Some(rec.l_id)
                    }
                    None => {
                        self.replay.fail(t.t, "first acquisition granted without an id map".into());
                        Some(rec.l_id)
                    }
                }
            }
        }
    }

    fn pre_native(
        &mut self,
        t: &ThreadObs<'_>,
        decl: &NativeDecl,
        _args: &[Value],
        acct: &mut TimeAccount,
    ) -> NativeDirective {
        self.replay.directive(t, decl, acct)
    }

    fn begin_output(
        &mut self,
        _t: &ThreadObs<'_>,
        _decl: &NativeDecl,
        acct: &mut TimeAccount,
    ) -> u64 {
        self.replay.live_output(acct)
    }

    fn native_ready(&mut self, t: &ThreadObs<'_>, decl: &NativeDecl) -> bool {
        self.replay.ready_for(t, decl)
    }

    fn starved(&mut self) -> bool {
        // Pre-eof stalls are starvation, not divergence: the replay caught
        // up with the arrived log and must pause until the next frame.
        !self.replay.eof
    }

    fn on_stall(&mut self, _acct: &mut TimeAccount) -> bool {
        if self.replay.log.lock_total > 0 {
            // Locks records remain but nobody can consume them: the
            // replayed execution diverged (typically a data race, Fig. 1).
            self.replay.error.get_or_insert(VmError::ReplayDivergence {
                thread: ThreadIdx(0),
                detail: format!(
                    "recovery stalled with {} unconsumed lock-acquisition records — \
                     the replay diverged from the primary (R4A violation?)",
                    self.replay.log.lock_total
                ),
            });
            return true;
        }
        false
    }
}

/// A recorded switch the designated thread already reached whose schedule
/// record has not arrived yet (streaming replay only). The thread is held
/// at the switch point — it cannot make further progress — so the saved
/// counters stay valid until the record arrives and is matched.
#[derive(Debug)]
enum PendingSwitch {
    /// The designated thread yielded at a blocking point (monitor, wait,
    /// sleep, internal lock) with these counters.
    Block {
        /// Thread index, for divergence reports.
        t: ThreadIdx,
        /// Replication-stable id.
        vt: VtPath,
        /// `br_cnt` at the yield.
        br_cnt: u64,
        /// `mon_cnt` at the yield.
        mon_cnt: u64,
        /// Innermost method, if any.
        method: Option<u32>,
        /// PC at the yield.
        pc: u32,
        /// Whether the yield happened inside a native method.
        in_native: bool,
        /// `l_asn` of the lock blocked on (wake-order check).
        blocked_lasn: u64,
    },
    /// The designated thread terminated.
    Exit(VtPath),
}

/// Backup coordinator for **replicated thread scheduling** recovery.
#[derive(Debug)]
pub struct TsBackup {
    replay: NativeReplay,
    last_br: HashMap<u32, u64>,
    /// The thread the replay says must run now; `None` once recovery is
    /// over and free scheduling resumes.
    designated: Option<VtPath>,
    /// Streaming only: a switch waiting for its schedule record.
    pending: Option<PendingSwitch>,
}

impl TsBackup {
    /// Builds a cold-replay coordinator from a complete decoded log.
    pub fn new(log: BackupLog, world: SharedWorld, se: SeRegistry, cost: CostModel) -> Self {
        let replay = NativeReplay::new(log, world, se, cost);
        // Execution always begins with the root thread; even with no
        // schedule records (single-threaded programs) the root stays
        // designated until its logged natives/outputs drain (the paper's
        // final-record rule).
        TsBackup {
            replay,
            last_br: HashMap::new(),
            designated: Some(VtPath::root()),
            pending: None,
        }
    }

    /// Builds a hot-standby (streaming) coordinator whose log starts empty
    /// and grows via [`feed_frame`](TsBackup::feed_frame).
    pub fn streaming(world: SharedWorld, se: SeRegistry, cost: CostModel) -> Self {
        TsBackup {
            replay: NativeReplay::streaming(world, se, cost),
            last_br: HashMap::new(),
            designated: Some(VtPath::root()),
            pending: None,
        }
    }

    /// Builds a streaming coordinator resumed from an epoch snapshot.
    /// `designated` is the application thread that was current on the
    /// primary at the cut (it runs until its next schedule record);
    /// `last_br` seeds the per-thread branch counters from the restored
    /// VM so progress-cost accounting continues rather than restarting.
    ///
    /// # Errors
    /// Returns an error if the seed is malformed.
    pub fn resumed(
        world: SharedWorld,
        se: SeRegistry,
        cost: CostModel,
        seed: ResumeSeed,
        designated: Option<VtPath>,
        last_br: HashMap<u32, u64>,
    ) -> Result<Self, VmError> {
        Ok(TsBackup {
            replay: NativeReplay::resumed(world, se, cost, seed)?,
            last_br,
            designated,
            pending: None,
        })
    }

    /// Epoch marks absorbed from the stream (the backup's epoch ack).
    pub fn epochs_absorbed(&self) -> u64 {
        self.replay.epochs_absorbed
    }

    /// Streams one arrived frame into the log, then resolves any switch
    /// that was waiting for its schedule record. Returns the number of
    /// heartbeat records the frame carried.
    ///
    /// # Errors
    /// Returns an error for a malformed frame (a protocol bug).
    pub fn feed_frame(&mut self, frame: Bytes, acct: &mut TimeAccount) -> Result<u32, VmError> {
        let heartbeats = self.replay.feed_frame(frame)?;
        self.drain_pending(acct);
        Ok(heartbeats)
    }

    /// Bulk [`TsBackup::feed_frame`] over a buffered suffix, with the
    /// seal-check/decode front end fanned out across `threads` workers.
    /// The pending-switch drain runs once after the whole batch — during a
    /// cold-suffix promotion the VM has not executed yet, so no switch is
    /// pending mid-stream and the result is byte-identical to feeding the
    /// frames one at a time.
    ///
    /// # Errors
    /// Returns an error for a malformed frame (a protocol bug).
    pub fn feed_frames(
        &mut self,
        frames: Vec<Bytes>,
        threads: usize,
        acct: &mut TimeAccount,
    ) -> Result<u32, VmError> {
        let heartbeats = self.replay.feed_frames(frames, threads)?;
        self.drain_pending(acct);
        Ok(heartbeats)
    }

    /// Promotes a streaming backup: no further records can arrive.
    pub fn finish_stream(&mut self, env: &mut ftjvm_vm::SimEnv, acct: &mut TimeAccount) {
        self.replay.finish(env);
        self.drain_pending(acct);
        if self.replay.log.sched.is_empty() {
            match self.pending.take() {
                Some(PendingSwitch::Exit(vt)) => {
                    // The exit's schedule record was lost in the crash.
                    if self.replay.drained_for(&vt) {
                        self.designated = None;
                    } else {
                        self.replay.fail(
                            ThreadIdx(0),
                            "designated thread exited with logged interactions left to reproduce"
                                .into(),
                        );
                    }
                }
                // A lost blocking-switch record: the log simply ends at the
                // block; `maybe_finish` decides whether replay is over.
                Some(PendingSwitch::Block { .. }) | None => {}
            }
        }
        self.maybe_finish();
        if self.designated.is_none() {
            self.replay.mark_recovery_complete(acct);
        }
    }

    /// Matches a pending switch against a newly arrived schedule record.
    fn drain_pending(&mut self, acct: &mut TimeAccount) {
        let Some(p) = &self.pending else { return };
        let Some(rec) = self.replay.log.sched.front() else { return };
        match p {
            PendingSwitch::Block {
                t,
                vt,
                br_cnt,
                mon_cnt,
                method,
                pc,
                in_native,
                blocked_lasn,
            } => {
                if &rec.t != vt {
                    // The chain invariant says the next record is for the
                    // parked designated thread; leave the mismatch for the
                    // post-eof stall check to report.
                    return;
                }
                if Self::matches_front(rec, *br_cnt, *mon_cnt, *method, *pc, *in_native) {
                    if rec.l_asn != 0 && rec.l_asn != *blocked_lasn {
                        let (t, blocked_lasn, expect) = (*t, *blocked_lasn, rec.l_asn);
                        self.replay.fail(
                            t,
                            format!(
                                "blocked with lock at l_asn {blocked_lasn} but the record \
                                 expected {expect}"
                            ),
                        );
                    }
                    self.pending = None;
                    self.advance(acct);
                }
            }
            PendingSwitch::Exit(vt) => {
                if &rec.t == vt {
                    self.pending = None;
                    self.advance(acct);
                } else {
                    self.replay.fail(
                        ThreadIdx(0),
                        "designated thread exited out of recorded order".into(),
                    );
                    self.pending = None;
                }
            }
        }
    }

    /// Backup-side statistics.
    pub fn stats(&self) -> &ReplicationStats {
        &self.replay.stats
    }

    /// True once free scheduling has resumed.
    pub fn recovery_complete(&self) -> bool {
        self.designated.is_none()
    }

    /// Replay records (of every class) still unconsumed — promotion must
    /// wait for zero.
    pub(crate) fn replay_pending(&self) -> u64 {
        self.replay.pending_records()
    }

    /// Simulated instant at which the log replay finished.
    pub fn recovery_completed_at(&self) -> Option<ftjvm_netsim::SimTime> {
        self.replay.recovery_completed_at
    }

    /// Consumes the coordinator for promotion to primary (see
    /// [`NativeReplay::into_promotion_parts`]).
    pub(crate) fn into_promotion_parts(self) -> Result<(SeRegistry, u64), ReplayError> {
        self.replay.into_promotion_parts()
    }

    /// Does `snap`/`obs` match the front record's progress point?
    fn matches_front(
        rec: &SchedRec,
        br: u64,
        mon: u64,
        method: Option<u32>,
        pc: u32,
        in_native: bool,
    ) -> bool {
        if rec.br_cnt != br || rec.in_native != in_native {
            return false;
        }
        if in_native {
            // Inside a native method the JVM cannot see the PC; the replay
            // point is identified by the monitor-operation count (§4.2).
            rec.mon_cnt == mon
                && rec.pc_off == pc
                && method.map(|m| m == rec.method).unwrap_or(false)
        } else {
            rec.mon_cnt == mon
                && rec.pc_off == pc
                && method.map(|m| m == rec.method).unwrap_or(false)
        }
    }

    fn advance(&mut self, acct: &mut TimeAccount) {
        let Some(rec) = self.replay.log.sched.pop_front() else {
            self.replay
                .fail_replay(ThreadIdx(0), ReplayError::EmptyRecordQueue { what: "schedule" });
            return;
        };
        self.designated = Some(rec.next);
        self.replay.stats.sched_records += 1;
        acct.charge(Category::Resched, self.replay.cost.sched_record);
    }

    /// After consuming records (or at any progress point), recovery ends
    /// when no schedule records remain and the designated thread has
    /// reproduced all of its logged interactions with the environment.
    /// While streaming, an empty queue only means the replay caught up.
    fn maybe_finish(&mut self) {
        if !self.replay.eof || !self.replay.log.sched.is_empty() {
            return;
        }
        if let Some(des) = &self.designated {
            if self.replay.drained_for(des) {
                self.designated = None;
            }
        }
    }
}

impl Coordinator for TsBackup {
    fn mode(&self) -> &'static str {
        "ts-backup"
    }

    fn stop(&mut self) -> Option<StopReason> {
        self.replay.take_stop()
    }

    fn allow_quantum_preempt(&mut self, _t: &ThreadObs<'_>) -> bool {
        // During recovery only recorded points may switch application
        // threads; afterwards, normal preemption resumes.
        self.designated.is_none()
    }

    fn check_preempt(&mut self, t: &ThreadObs<'_>, acct: &mut TimeAccount) -> bool {
        self.maybe_finish();
        let Some(des) = &self.designated else {
            self.replay.mark_recovery_complete(acct);
            return false;
        };
        // The backup tracks replay progress with the same block-boundary
        // counter materialization as the primary: a PC update per consult,
        // plus one `br_cnt` store when control flow happened in the block.
        {
            let mut cost = self.replay.cost.ts_pc_track;
            let last = self.last_br.entry(t.t.0).or_insert(0);
            if t.br_cnt > *last {
                *last = t.br_cnt;
                cost += self.replay.cost.ts_br_track;
            }
            acct.charge(Category::Misc, cost);
        }
        let Some(vt) = t.vt else {
            self.replay
                .fail_replay(t.t, ReplayError::MissingThreadIdentity { hook: "check_preempt" });
            return false;
        };
        if vt != des {
            // A non-designated application thread slipped in; park it.
            return true;
        }
        if self.pending.is_some() {
            // The designated thread already reached a recorded switch whose
            // record has not arrived; it may not run past it.
            return true;
        }
        // Streaming: with no record in hand the designated thread must not
        // run — it could overshoot the primary's next preemption point.
        let Some(rec) = self.replay.log.sched.front() else { return !self.replay.eof };
        if &rec.t != vt {
            self.replay.fail(
                t.t,
                format!(
                    "designated thread {vt} running but front schedule record is for {}",
                    rec.t
                ),
            );
            return false;
        }
        if Self::matches_front(rec, t.br_cnt, t.mon_cnt, t.method.map(|m| m.0), t.pc, t.in_native) {
            self.advance(acct);
            return true;
        }
        false
    }

    fn quiet_budget(&mut self, t: &ThreadObs<'_>, max: u64) -> QuietBudget {
        // Exact replay at block granularity: bound each block so the
        // designated thread stops precisely at the recorded progress point
        // rather than overshooting it inside a fused run.
        let unlimited = QuietBudget { units: max, stop_br: None };
        if self.designated.is_none() {
            return unlimited;
        }
        let Some(rec) = self.replay.log.sched.front() else { return unlimited };
        let Some(vt) = t.vt else { return unlimited };
        if &rec.t != vt {
            return unlimited;
        }
        if rec.br_cnt > t.br_cnt {
            // Run freely up to the recorded branch count; the interpreter
            // halts the block the moment `br_cnt` reaches it.
            return QuietBudget { units: max, stop_br: Some(rec.br_cnt) };
        }
        if rec.br_cnt == t.br_cnt {
            if !t.in_native
                && !rec.in_native
                && rec.mon_cnt == t.mon_cnt
                && t.method.map(|m| m.0) == Some(rec.method)
                && rec.pc_off > t.pc
            {
                // Same straight-line run as the record: the remaining unit
                // count to the recorded PC is exact.
                return QuietBudget {
                    units: max.min(u64::from(rec.pc_off - t.pc)),
                    stop_br: Some(t.br_cnt + 1),
                };
            }
            // At the recorded branch count but not provably before the
            // recorded point; single-step until the next branch.
            return QuietBudget { units: max, stop_br: Some(t.br_cnt + 1) };
        }
        unlimited
    }

    fn on_yield(&mut self, snap: &ThreadSnap, reason: SwitchReason, acct: &mut TimeAccount) {
        // Blocking yields consume their schedule record here: the counters
        // in the record include bumps performed inside the blocking unit
        // (e.g. `wait` releases the monitor before parking).
        if self.designated.is_none() || snap.vt.is_none() {
            return;
        }
        let blocking = matches!(
            reason,
            SwitchReason::BlockedMonitor
                | SwitchReason::Waiting
                | SwitchReason::Sleep
                | SwitchReason::Internal
        );
        if !blocking {
            return;
        }
        let Some(des) = &self.designated else { return };
        if snap.vt.as_ref() != Some(des) {
            return;
        }
        let Some(rec) = self.replay.log.sched.front() else {
            if !self.replay.eof {
                // The record for this switch is still in flight (or still
                // in the primary's buffer); hold the switch until it lands.
                self.pending = Some(PendingSwitch::Block {
                    t: snap.t,
                    vt: des.clone(),
                    br_cnt: snap.br_cnt,
                    mon_cnt: snap.mon_cnt,
                    method: snap.method.map(|m| m.0),
                    pc: snap.pc,
                    in_native: snap.in_native,
                    blocked_lasn: snap.blocked_lasn,
                });
            }
            return;
        };
        if Some(&rec.t) != snap.vt.as_ref() {
            return;
        }
        if Self::matches_front(
            rec,
            snap.br_cnt,
            snap.mon_cnt,
            snap.method.map(|m| m.0),
            snap.pc,
            snap.in_native,
        ) {
            // Wake-order consistency check (the record's l_asn field).
            if rec.l_asn != 0 && rec.l_asn != snap.blocked_lasn {
                self.replay.fail(
                    snap.t,
                    format!(
                        "blocked with lock at l_asn {} but the record expected {}",
                        snap.blocked_lasn, rec.l_asn
                    ),
                );
            }
            self.advance(acct);
        }
    }

    fn on_thread_exit(&mut self, t: &ThreadObs<'_>, acct: &mut TimeAccount) {
        let Some(des) = self.designated.clone() else { return };
        let Some(vt) = t.vt else {
            self.replay
                .fail_replay(t.t, ReplayError::MissingThreadIdentity { hook: "on_thread_exit" });
            return;
        };
        if *vt != des {
            return;
        }
        match self.replay.log.sched.front() {
            Some(rec) if &rec.t == vt => self.advance(acct),
            Some(_) => {
                // Terminated while a record for another thread is at the
                // front — impossible in a faithful replay.
                self.replay.fail(t.t, "designated thread exited out of recorded order".into());
            }
            None if !self.replay.eof => {
                // The exit's schedule record has not arrived yet.
                self.pending = Some(PendingSwitch::Exit(vt.clone()));
            }
            None => {
                if self.replay.drained_for(vt) {
                    self.designated = None;
                    self.replay.mark_recovery_complete(acct);
                } else {
                    self.replay.fail(
                        t.t,
                        "designated thread exited with logged interactions left to reproduce"
                            .into(),
                    );
                }
            }
        }
    }

    fn pick_next(&mut self, candidates: &[ThreadSnap]) -> Pick {
        let Some(des) = &self.designated else { return Pick::Default };
        // Streaming: only dispatch the designated thread when a schedule
        // record bounds how far it may run.
        let replay_blocked =
            !self.replay.eof && (self.pending.is_some() || self.replay.log.sched.front().is_none());
        if !replay_blocked {
            if let Some(i) = candidates.iter().position(|c| c.vt.as_ref() == Some(des)) {
                return Pick::Choose(i);
            }
        }
        // The designated thread is not runnable (or must wait for its next
        // record): let system threads work (they may hold the lock it
        // needs); never run another app thread.
        if let Some(i) = candidates.iter().position(|c| c.vt.is_none()) {
            return Pick::Choose(i);
        }
        Pick::Idle
    }

    fn pre_native(
        &mut self,
        t: &ThreadObs<'_>,
        decl: &NativeDecl,
        _args: &[Value],
        acct: &mut TimeAccount,
    ) -> NativeDirective {
        self.replay.directive(t, decl, acct)
    }

    fn begin_output(
        &mut self,
        _t: &ThreadObs<'_>,
        _decl: &NativeDecl,
        acct: &mut TimeAccount,
    ) -> u64 {
        self.replay.live_output(acct)
    }

    fn native_ready(&mut self, t: &ThreadObs<'_>, decl: &NativeDecl) -> bool {
        self.replay.ready_for(t, decl)
    }

    fn starved(&mut self) -> bool {
        !self.replay.eof
    }

    fn on_stall(&mut self, _acct: &mut TimeAccount) -> bool {
        if self.designated.is_some() {
            self.replay.error.get_or_insert(VmError::ReplayDivergence {
                thread: ThreadIdx(0),
                detail: format!(
                    "thread-schedule recovery stalled with {} records left (designated {:?})",
                    self.replay.log.sched.len(),
                    self.designated
                ),
            });
            return true;
        }
        false
    }

    fn on_exit(&mut self, _acct: &mut TimeAccount) {}
}

/// Backup coordinator for **interval-compressed lock synchronization**
/// recovery: enforces the total acquisition order recorded as
/// [`Record::LockInterval`]s — during interval *i* only its thread may
/// acquire monitors; everyone else defers.
#[derive(Debug)]
pub struct IntervalBackup {
    replay: NativeReplay,
}

impl IntervalBackup {
    /// Builds a cold-replay coordinator from a complete decoded log.
    pub fn new(log: BackupLog, world: SharedWorld, se: SeRegistry, cost: CostModel) -> Self {
        IntervalBackup { replay: NativeReplay::new(log, world, se, cost) }
    }

    /// Builds a hot-standby (streaming) coordinator whose log starts empty
    /// and grows via [`feed_frame`](IntervalBackup::feed_frame).
    pub fn streaming(world: SharedWorld, se: SeRegistry, cost: CostModel) -> Self {
        IntervalBackup { replay: NativeReplay::streaming(world, se, cost) }
    }

    /// Builds a streaming coordinator resumed from an epoch snapshot
    /// (re-integration of a replacement backup).
    ///
    /// # Errors
    /// Returns an error if the seed is malformed.
    pub fn resumed(
        world: SharedWorld,
        se: SeRegistry,
        cost: CostModel,
        seed: ResumeSeed,
    ) -> Result<Self, VmError> {
        Ok(IntervalBackup { replay: NativeReplay::resumed(world, se, cost, seed)? })
    }

    /// Epoch marks absorbed from the stream (the backup's epoch ack).
    pub fn epochs_absorbed(&self) -> u64 {
        self.replay.epochs_absorbed
    }

    /// Streams one arrived frame into the log; returns the number of
    /// heartbeat records it carried.
    ///
    /// # Errors
    /// Returns an error for a malformed frame (a protocol bug).
    pub fn feed_frame(&mut self, frame: Bytes) -> Result<u32, VmError> {
        self.replay.feed_frame(frame)
    }

    /// Bulk [`IntervalBackup::feed_frame`] over a buffered suffix, with the
    /// seal-check/decode front end fanned out across `threads` workers.
    /// Byte-identical to feeding the frames one at a time.
    ///
    /// # Errors
    /// Returns an error for a malformed frame (a protocol bug).
    pub fn feed_frames(&mut self, frames: Vec<Bytes>, threads: usize) -> Result<u32, VmError> {
        self.replay.feed_frames(frames, threads)
    }

    /// Promotes a streaming backup: no further records can arrive.
    pub fn finish_stream(&mut self, env: &mut ftjvm_vm::SimEnv, acct: &TimeAccount) {
        self.replay.finish(env);
        if self.replay.log.interval_total == 0 {
            self.replay.mark_recovery_complete(acct);
        }
    }

    /// Backup-side statistics.
    pub fn stats(&self) -> &ReplicationStats {
        &self.replay.stats
    }

    /// True once the stream ended and every interval was consumed.
    pub fn recovery_complete(&self) -> bool {
        self.replay.eof && self.replay.log.interval_total == 0
    }

    /// Replay records (of every class) still unconsumed — promotion must
    /// wait for zero.
    pub(crate) fn replay_pending(&self) -> u64 {
        self.replay.pending_records()
    }

    /// Simulated instant at which the log replay finished.
    pub fn recovery_completed_at(&self) -> Option<ftjvm_netsim::SimTime> {
        self.replay.recovery_completed_at
    }

    /// Consumes the coordinator for promotion to primary (see
    /// [`NativeReplay::into_promotion_parts`]).
    pub(crate) fn into_promotion_parts(self) -> Result<(SeRegistry, u64), ReplayError> {
        self.replay.into_promotion_parts()
    }
}

impl Coordinator for IntervalBackup {
    fn mode(&self) -> &'static str {
        "lock-interval-backup"
    }

    fn stop(&mut self) -> Option<StopReason> {
        self.replay.take_stop()
    }

    fn pre_monitor_acquire(
        &mut self,
        t: &ThreadObs<'_>,
        _obj: ObjRef,
        _l_id: Option<u64>,
        _l_asn: u64,
    ) -> MonitorDecision {
        let Some(front) = self.replay.log.intervals.front() else {
            if self.replay.eof {
                return MonitorDecision::Grant; // end of recovery
            }
            // Streaming: the interval covering this acquisition has not
            // arrived (the primary's current interval is still open).
            return MonitorDecision::Defer;
        };
        let Some(vt) = t.vt else {
            self.replay.fail_replay(
                t.t,
                ReplayError::MissingThreadIdentity { hook: "pre_monitor_acquire" },
            );
            return MonitorDecision::Grant;
        };
        if &front.t == vt {
            MonitorDecision::Grant
        } else {
            MonitorDecision::Defer
        }
    }

    fn post_monitor_acquire(
        &mut self,
        t: &ThreadObs<'_>,
        _obj: ObjRef,
        _l_id: Option<u64>,
        _l_asn: u64,
        acct: &mut TimeAccount,
    ) -> Option<u64> {
        let Some(vt) = t.vt else {
            self.replay.fail_replay(
                t.t,
                ReplayError::MissingThreadIdentity { hook: "post_monitor_acquire" },
            );
            return None;
        };
        let expected = match self.replay.log.intervals.front() {
            None => return None, // live phase
            Some(front) if &front.t != vt => {
                self.replay.fail(t.t, "acquisition granted outside the current interval".into());
                return None;
            }
            // t_asn ordering inside the interval.
            Some(front) => front.t_asn_start + (front.count - front.remaining),
        };
        if t.t_asn != expected {
            self.replay.fail(
                t.t,
                format!("interval expected acquisition t_asn {expected}, got {}", t.t_asn),
            );
        }
        acct.charge(ftjvm_netsim::Category::LockAcquire, self.replay.cost.interval_update);
        self.replay.log.interval_total -= 1;
        let Some(front) = self.replay.log.intervals.front_mut() else {
            self.replay.fail_replay(t.t, ReplayError::EmptyRecordQueue { what: "lock interval" });
            return None;
        };
        front.remaining -= 1;
        if front.remaining == 0 {
            self.replay.log.intervals.pop_front();
        }
        self.replay.stats.locks_acquired += 1;
        if self.replay.log.interval_total == 0 && self.replay.eof {
            self.replay.mark_recovery_complete(acct);
        }
        None
    }

    fn pre_native(
        &mut self,
        t: &ThreadObs<'_>,
        decl: &NativeDecl,
        _args: &[Value],
        acct: &mut TimeAccount,
    ) -> NativeDirective {
        self.replay.directive(t, decl, acct)
    }

    fn begin_output(
        &mut self,
        _t: &ThreadObs<'_>,
        _decl: &NativeDecl,
        acct: &mut TimeAccount,
    ) -> u64 {
        self.replay.live_output(acct)
    }

    fn native_ready(&mut self, t: &ThreadObs<'_>, decl: &NativeDecl) -> bool {
        self.replay.ready_for(t, decl)
    }

    fn starved(&mut self) -> bool {
        !self.replay.eof
    }

    fn on_stall(&mut self, _acct: &mut TimeAccount) -> bool {
        if self.replay.log.interval_total > 0 {
            self.replay.error.get_or_insert(VmError::ReplayDivergence {
                thread: ThreadIdx(0),
                detail: format!(
                    "interval recovery stalled with {} acquisitions left to replay",
                    self.replay.log.interval_total
                ),
            });
            return true;
        }
        false
    }
}

/// The *cold* backup's durable epoch store. A cold standby never executes
/// during normal operation — it only stores the primary's frames — so with
/// checkpointing the primary ships each epoch's snapshot inline and the
/// store keeps just the latest snapshot plus the frames after its epoch
/// mark, instead of the whole log from genesis.
#[derive(Debug, Default)]
pub struct EpochStore {
    assembler: SnapshotAssembler,
    latest_snapshot: Option<(u64, Bytes)>,
    suffix: Vec<Bytes>,
    /// A mark whose snapshot has not finished assembling yet: the mark's
    /// epoch and the suffix length it promises to retire (the chunks
    /// travel *behind* the mark, so truncation must wait for them).
    pending_cut: Option<(u64, usize)>,
    /// Epoch marks absorbed (each one truncated the stored prefix).
    pub epochs_stored: u64,
    /// Deepest the suffix ever got — with checkpointing, bounded by one
    /// epoch's record-bearing frames.
    pub peak_frames: u64,
    /// Frames dropped by prefix truncation over the run.
    pub dropped_frames: u64,
}

impl EpochStore {
    /// Fresh, empty store.
    pub fn new() -> Self {
        EpochStore::default()
    }

    /// Absorbs one frame in arrival order: snapshot chunks assemble into
    /// the latest snapshot, an epoch mark truncates the stored prefix
    /// (only once the mark's snapshot is fully held — a mark whose
    /// snapshot never assembled leaves the prefix in place, since it is
    /// still the only recovery path), heartbeats are dropped, and every
    /// record-bearing frame joins the suffix.
    ///
    /// # Errors
    /// Returns an error for a malformed control frame.
    pub fn absorb(&mut self, frame: Bytes) -> Result<(), VmError> {
        if frame_is_snapshot_chunk(&frame) {
            if let Some((epoch, blob)) = self
                .assembler
                .offer(&frame)
                .map_err(|e| VmError::Internal(format!("stored snapshot chunk: {e}")))?
            {
                self.latest_snapshot = Some((epoch, blob));
                if let Some((mark_epoch, len)) = self.pending_cut {
                    if epoch >= mark_epoch {
                        self.suffix.drain(..len.min(self.suffix.len()));
                        self.dropped_frames += len as u64;
                        self.pending_cut = None;
                    }
                }
            }
            return Ok(());
        }
        if frame_is_epoch_mark(&frame) {
            let (epoch, _) = parse_epoch_frame(&frame)
                .map_err(|e| VmError::Internal(format!("stored epoch mark: {e}")))?;
            self.epochs_stored += 1;
            if self.latest_snapshot.as_ref().is_some_and(|(e, _)| *e >= epoch) {
                self.dropped_frames += self.suffix.len() as u64;
                self.suffix.clear();
                self.pending_cut = None;
            } else {
                // The chunks for this epoch are still in flight; retire
                // the prefix the moment its snapshot fully assembles. A
                // later mark supersedes an earlier unfulfilled one.
                self.pending_cut = Some((epoch, self.suffix.len()));
            }
            return Ok(());
        }
        if frame_is_heartbeat(&frame) {
            return Ok(()); // liveness only; nothing to recover from
        }
        self.suffix.push(frame);
        self.peak_frames = self.peak_frames.max(self.suffix.len() as u64);
        Ok(())
    }

    /// The latest fully assembled snapshot, with its epoch.
    pub fn latest_snapshot(&self) -> Option<&(u64, Bytes)> {
        self.latest_snapshot.as_ref()
    }

    /// Consumes the store for recovery: the latest snapshot (if any epoch
    /// completed) and the stored suffix to replay on top of it.
    pub fn into_recovery(self) -> (Option<(u64, Bytes)>, Vec<Bytes>) {
        (self.latest_snapshot, self.suffix)
    }
}

// ---------------------------------------------------------------------------
// Receiver side of the reliability sublayer: gap detection, duplicate
// suppression, and corruption rejection in front of the record decoder.
// ---------------------------------------------------------------------------

/// A control message on the (reliable, tiny) reverse path from the
/// receiver back to the sender's retransmission window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Cumulative acknowledgment: every frame with sequence number below
    /// `next` has been verified and released in order.
    Ack {
        /// The receiver's next expected sequence number.
        next: u64,
    },
    /// Gap report: frame `seq` is missing (an out-of-sequence or corrupt
    /// frame arrived); the sender should retransmit it promptly.
    Nack {
        /// The missing sequence number.
        seq: u64,
    },
}

/// The receiver's reassembly window over a lossy link.
///
/// Every arriving frame is *sealed* ([`crate::codec::seal_frame`]); the
/// window opens it, rejects corruption (CRC), suppresses duplicates
/// (sequence number below the cumulative frontier or already buffered),
/// buffers out-of-order frames, and releases payloads strictly in
/// sequence order — the contract the record decoder's delta context and
/// the log's prefix semantics both depend on.
#[derive(Debug, Default)]
pub struct RecvWindow {
    /// Next sequence number to release (the cumulative frontier).
    expected: u64,
    /// Verified frames that arrived ahead of a gap, by sequence number.
    buffered: std::collections::BTreeMap<u64, (SimTime, Bytes)>,
    /// Verified, in-order payloads not yet taken by the consumer.
    ready: Vec<(SimTime, Bytes)>,
    /// Release instants are monotone even when a late gap-filler unblocks
    /// frames that physically arrived earlier.
    last_release: SimTime,
    /// Last sequence number a NACK was sent for (suppresses NACK storms
    /// while many frames behind one gap arrive).
    last_nacked: Option<u64>,
    /// Duplicate frames suppressed.
    pub dup_deliveries: u64,
    /// Frames rejected by the open/CRC check.
    pub corrupted_frames: u64,
    /// Frames that arrived out of sequence and were buffered.
    pub reordered: u64,
    /// NACKs sent.
    pub nacks: u64,
}

impl RecvWindow {
    /// Creates an empty window expecting sequence number 0.
    pub fn new() -> Self {
        RecvWindow::default()
    }

    /// The next sequence number the window will release.
    pub fn expected(&self) -> u64 {
        self.expected
    }

    /// True if verified frames are buffered beyond a missing one.
    pub fn has_gap(&self) -> bool {
        !self.buffered.is_empty()
    }

    /// Offers one raw frame that arrived at `at`. Control messages for the
    /// sender (cumulative ACKs, gap NACKs) are appended to `ctrl`.
    pub fn offer(&mut self, at: SimTime, raw: Bytes, ctrl: &mut Vec<Control>) {
        match open_frame(&raw) {
            Err(_) => {
                self.corrupted_frames += 1;
                // The frame's identity is unknowable; report the frontier
                // so the sender can retransmit whatever is outstanding.
                self.push_nack(self.expected, ctrl);
            }
            Ok((seq, payload)) => {
                if seq < self.expected || self.buffered.contains_key(&seq) {
                    self.dup_deliveries += 1;
                    // Re-ack: the sender may be retransmitting because an
                    // earlier ACK was processed late.
                    ctrl.push(Control::Ack { next: self.expected });
                } else if seq == self.expected {
                    self.release(at, payload);
                    // The gap-filler may unblock a buffered run.
                    while let Some(entry) = self.buffered.remove(&self.expected) {
                        self.release(at.max(entry.0), entry.1);
                    }
                    if self.last_nacked.map(|n| n < self.expected).unwrap_or(true) {
                        self.last_nacked = None;
                    }
                    ctrl.push(Control::Ack { next: self.expected });
                } else {
                    self.reordered += 1;
                    self.buffered.insert(seq, (at, payload));
                    self.push_nack(self.expected, ctrl);
                }
            }
        }
    }

    fn release(&mut self, at: SimTime, payload: Bytes) {
        self.last_release = self.last_release.max(at);
        self.ready.push((self.last_release, payload));
        self.expected += 1;
    }

    fn push_nack(&mut self, seq: u64, ctrl: &mut Vec<Control>) {
        if self.last_nacked != Some(seq) {
            self.last_nacked = Some(seq);
            self.nacks += 1;
            ctrl.push(Control::Nack { seq });
        }
    }

    /// Takes the verified, in-order payloads released so far.
    pub fn take_ready(&mut self) -> Vec<(SimTime, Bytes)> {
        std::mem::take(&mut self.ready)
    }

    /// Takeover: returns the longest verified frame prefix and discards
    /// any frames buffered beyond an unresolved gap, reporting how many
    /// were thrown away. The discarded suffix is equivalent to records the
    /// crashed primary never flushed: the promoted backup re-executes that
    /// suffix live and resolves uncertain outputs via SE-handler `test`.
    pub fn take_prefix(&mut self) -> (Vec<(SimTime, Bytes)>, usize) {
        let discarded = self.buffered.len();
        self.buffered.clear();
        (std::mem::take(&mut self.ready), discarded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::sig_hash as hash_of;
    use ftjvm_vm::native::{NativeDecl, NativeKind};
    use ftjvm_vm::World;

    fn decl(name: &str, nd: bool, output: bool, volatile_state: bool, returns: bool) -> NativeDecl {
        NativeDecl {
            name: name.into(),
            argc: 0,
            returns,
            nondeterministic: nd,
            output,
            creates_volatile: volatile_state,
            kind: NativeKind::Simple(|_| Ok(None)),
        }
    }

    fn obs(vt: &VtPath) -> (ThreadIdx, &VtPath) {
        (ThreadIdx(0), vt)
    }

    /// Builds a replay over a hand-assembled log.
    fn replay_from(records: Vec<Record>, world: SharedWorld) -> NativeReplay {
        let frames: Vec<Bytes> = records.iter().map(|r| r.encode()).collect();
        let mut se = SeRegistry::with_builtins();
        let log = BackupLog::decode(frames, &mut se).expect("decodes");
        NativeReplay::new(log, world, se, ftjvm_netsim::CostModel::default())
    }

    fn make_obs<'a>(t: ThreadIdx, vt: &'a VtPath) -> ThreadObs<'a> {
        ThreadObs {
            t,
            vt: Some(vt),
            br_cnt: 0,
            mon_cnt: 0,
            t_asn: 0,
            method: None,
            pc: 0,
            in_native: false,
        }
    }

    #[test]
    fn deterministic_non_output_natives_always_execute() {
        let vt = VtPath::root();
        let mut r = replay_from(vec![], World::shared());
        let d = decl("plain.native", false, false, false, true);
        let mut acct = TimeAccount::new();
        let (t, vt_ref) = obs(&vt);
        assert!(matches!(
            r.directive(&make_obs(t, vt_ref), &d, &mut acct),
            NativeDirective::Execute
        ));
    }

    #[test]
    fn nd_native_with_logged_result_is_imposed_without_execution() {
        let vt = VtPath::root();
        let mut r = replay_from(
            vec![Record::NativeResult {
                t: vt.clone(),
                seq: 1,
                sig_hash: hash_of("sys.clock"),
                result: LoggedResult::Ok(Some(crate::records::WireValue::Int(42))),
                out_args: vec![],
            }],
            World::shared(),
        );
        let d = decl("sys.clock", true, false, false, true);
        let mut acct = TimeAccount::new();
        let (t, vt_ref) = obs(&vt);
        match r.directive(&make_obs(t, vt_ref), &d, &mut acct) {
            NativeDirective::Replay(a) => {
                assert!(!a.execute, "pure ND input: skip the body");
                assert_eq!(a.result, Some(Ok(Some(ftjvm_vm::Value::Int(42)))));
            }
            NativeDirective::Execute => panic!("must impose the logged result"),
        }
        // Second call: past the log — live execution.
        assert!(matches!(
            r.directive(&make_obs(t, vt_ref), &d, &mut acct),
            NativeDirective::Execute
        ));
    }

    #[test]
    fn wrong_native_order_is_divergence() {
        let vt = VtPath::root();
        let mut r = replay_from(
            vec![Record::NativeResult {
                t: vt.clone(),
                seq: 1,
                sig_hash: hash_of("sys.clock"),
                result: LoggedResult::Ok(Some(crate::records::WireValue::Int(1))),
                out_args: vec![],
            }],
            World::shared(),
        );
        // The thread calls sys.rand where the log says sys.clock — a data
        // race reordered its execution.
        let d = decl("sys.rand", true, false, false, true);
        let mut acct = TimeAccount::new();
        let (t, vt_ref) = obs(&vt);
        let _ = r.directive(&make_obs(t, vt_ref), &d, &mut acct);
        assert!(matches!(r.take_stop(), Some(StopReason::Error(VmError::ReplayDivergence { .. }))));
    }

    #[test]
    fn performed_console_output_is_skipped_unperformed_is_reexecuted() {
        let vt = VtPath::root();
        let world = World::shared();
        // Two committed console outputs; a later same-thread commit proves
        // the first was performed; the second is uncertain and the world
        // says it never happened.
        let mut r = replay_from(
            vec![
                Record::OutputCommit { t: vt.clone(), seq: 1, output_id: 10 },
                Record::OutputCommit { t: vt.clone(), seq: 2, output_id: 11 },
            ],
            world.clone(),
        );
        let d = decl("sys.print", false, true, false, false);
        let mut acct = TimeAccount::new();
        let (t, vt_ref) = obs(&vt);
        // Output 10: proven performed (commit 11 is same-thread progress).
        match r.directive(&make_obs(t, vt_ref), &d, &mut acct) {
            NativeDirective::Replay(a) => {
                assert!(!a.execute, "performed console output must not repeat");
                assert_eq!(a.output_id, Some(10));
            }
            NativeDirective::Execute => panic!("output 10 was proven performed"),
        }
        // Output 11: uncertain, test() says not applied -> re-execute with
        // the committed id.
        match r.directive(&make_obs(t, vt_ref), &d, &mut acct) {
            NativeDirective::Replay(a) => {
                assert!(a.execute, "uncertain unperformed output must be performed");
                assert_eq!(a.output_id, Some(11));
                assert!(a.result.is_none(), "keep whatever the re-executed body returns");
            }
            NativeDirective::Execute => panic!("the commit id must be imposed"),
        }
    }

    #[test]
    fn uncertain_output_already_applied_is_skipped_via_test() {
        let vt = VtPath::root();
        let world = World::shared();
        world.borrow_mut().println(10, "primary", "already out");
        let mut r = replay_from(
            vec![Record::OutputCommit { t: vt.clone(), seq: 1, output_id: 10 }],
            world.clone(),
        );
        let d = decl("sys.print", false, true, false, false);
        let mut acct = TimeAccount::new();
        let (t, vt_ref) = obs(&vt);
        match r.directive(&make_obs(t, vt_ref), &d, &mut acct) {
            NativeDirective::Replay(a) => assert!(!a.execute, "test() said it already happened"),
            NativeDirective::Execute => panic!("must consult test()"),
        }
    }

    #[test]
    fn schedule_records_do_not_prove_output_performed() {
        let vt = VtPath::root();
        let other = VtPath::root().child(0);
        let world = World::shared();
        // A schedule record follows the commit — that can be the preemption
        // *between* commit and output, so it must NOT count as proof.
        let mut r = replay_from(
            vec![
                Record::OutputCommit { t: vt.clone(), seq: 1, output_id: 10 },
                Record::Sched {
                    t: vt.clone(),
                    br_cnt: 5,
                    method: 0,
                    pc_off: 3,
                    mon_cnt: 0,
                    l_asn: 0,
                    in_native: true,
                    next: other,
                },
            ],
            world.clone(),
        );
        let d = decl("sys.print", false, true, false, false);
        let mut acct = TimeAccount::new();
        let (t, vt_ref) = obs(&vt);
        match r.directive(&make_obs(t, vt_ref), &d, &mut acct) {
            NativeDirective::Replay(a) => {
                assert!(a.execute, "unproven output must be (re-)performed");
            }
            NativeDirective::Execute => panic!("the commit id must be imposed"),
        }
    }

    #[test]
    fn volatile_output_with_lost_result_record_is_reexecuted() {
        // file.write committed + performed, but its result record was
        // still buffered at the crash: re-execute (idempotent by id) and
        // keep the recomputed return value.
        let vt = VtPath::root();
        let world = World::shared();
        world.borrow_mut().write_file_at(10, "f", 0, b"x");
        let mut r = replay_from(
            vec![Record::OutputCommit { t: vt.clone(), seq: 1, output_id: 10 }],
            world.clone(),
        );
        let d = decl("file.write", true, true, true, true);
        let mut acct = TimeAccount::new();
        let (t, vt_ref) = obs(&vt);
        match r.directive(&make_obs(t, vt_ref), &d, &mut acct) {
            NativeDirective::Replay(a) => {
                assert!(a.execute, "must re-run to recompute the lost return value");
                assert!(a.result.is_none());
                assert_eq!(a.output_id, Some(10));
            }
            NativeDirective::Execute => panic!("the commit id must be imposed"),
        }
    }

    #[test]
    fn decode_indexes_records_by_kind() {
        let vt = VtPath::root();
        let records = [
            Record::IdMap { l_id: 0, t: vt.clone(), t_asn: 1 },
            Record::LockAcq { t: vt.clone(), t_asn: 1, l_id: 0, l_asn: 1 },
            Record::LockInterval { t: vt.clone(), t_asn_start: 2, count: 5 },
            Record::Heartbeat { now_ns: 1 },
            Record::OutputCommit { t: vt.clone(), seq: 1, output_id: 0 },
            Record::SeState { handler: 0, payload: Bytes::from_static(b"x") },
        ];
        let frames: Vec<Bytes> = records.iter().map(|r| r.encode()).collect();
        let mut se = SeRegistry::with_builtins();
        let log = BackupLog::decode(frames, &mut se).unwrap();
        assert_eq!(log.total_records(), 6);
        assert_eq!(log.lock_records(), 1);
        assert_eq!(log.interval_records(), 1);
        assert_eq!(log.sched_records(), 0);
    }

    // -- RecvWindow: the receiver half of the reliability sublayer -------

    use crate::codec::seal_frame;
    use crate::primary::SendWindow;

    fn sealed(seq: u64, body: &[u8]) -> Bytes {
        seal_frame(seq, body)
    }

    #[test]
    fn recv_window_releases_in_order_and_acks() {
        let mut w = RecvWindow::new();
        let mut ctrl = Vec::new();
        w.offer(SimTime::from_nanos(10), sealed(0, b"a"), &mut ctrl);
        w.offer(SimTime::from_nanos(20), sealed(1, b"b"), &mut ctrl);
        let got = w.take_ready();
        let bodies: Vec<&[u8]> = got.iter().map(|(_, b)| b.as_ref()).collect();
        assert_eq!(bodies, vec![b"a".as_ref(), b"b".as_ref()]);
        assert_eq!(ctrl, vec![Control::Ack { next: 1 }, Control::Ack { next: 2 }]);
        assert!(!w.has_gap());
    }

    #[test]
    fn recv_window_buffers_gap_nacks_once_and_reassembles() {
        let mut w = RecvWindow::new();
        let mut ctrl = Vec::new();
        // 1 and 2 arrive before 0: one NACK for 0, not one per arrival.
        w.offer(SimTime::from_nanos(10), sealed(1, b"b"), &mut ctrl);
        w.offer(SimTime::from_nanos(20), sealed(2, b"c"), &mut ctrl);
        assert_eq!(ctrl, vec![Control::Nack { seq: 0 }]);
        assert!(w.has_gap() && w.take_ready().is_empty());
        // The late gap-filler unblocks the whole run, in sequence order,
        // with monotone release instants.
        w.offer(SimTime::from_nanos(100), sealed(0, b"a"), &mut ctrl);
        let got = w.take_ready();
        let bodies: Vec<&[u8]> = got.iter().map(|(_, b)| b.as_ref()).collect();
        assert_eq!(bodies, vec![b"a".as_ref(), b"b".as_ref(), b"c".as_ref()]);
        assert!(got.windows(2).all(|p| p[0].0 <= p[1].0), "monotone release times");
        assert_eq!(*ctrl.last().unwrap(), Control::Ack { next: 3 });
    }

    #[test]
    fn recv_window_suppresses_duplicates_and_rejects_corruption() {
        let mut w = RecvWindow::new();
        let mut ctrl = Vec::new();
        w.offer(SimTime::ZERO, sealed(0, b"a"), &mut ctrl);
        w.offer(SimTime::ZERO, sealed(0, b"a"), &mut ctrl); // retransmit twin
        assert_eq!(w.dup_deliveries, 1);
        assert_eq!(w.take_ready().len(), 1, "released exactly once");
        let mut bad = sealed(1, b"b").to_vec();
        bad[6] ^= 0x40;
        w.offer(SimTime::ZERO, bad.into(), &mut ctrl);
        assert_eq!(w.corrupted_frames, 1);
        assert_eq!(w.expected(), 1, "corrupt frame not released");
    }

    #[test]
    fn take_prefix_discards_beyond_unresolved_gap() {
        let mut w = RecvWindow::new();
        let mut ctrl = Vec::new();
        w.offer(SimTime::ZERO, sealed(0, b"a"), &mut ctrl);
        w.offer(SimTime::ZERO, sealed(2, b"c"), &mut ctrl); // 1 never arrives
        w.offer(SimTime::ZERO, sealed(3, b"d"), &mut ctrl);
        let (prefix, discarded) = w.take_prefix();
        assert_eq!(prefix.len(), 1, "only the verified prefix survives");
        assert_eq!(prefix[0].1.as_ref(), b"a");
        assert_eq!(discarded, 2);
        assert!(!w.has_gap());
    }

    #[test]
    fn recv_window_interops_with_send_window() {
        // Sender seals via its tracking window; receiver opens and acks;
        // the ack empties the sender's retransmission buffer.
        let mut tx = SendWindow::new(SimTime::from_micros(100));
        let mut rx = RecvWindow::new();
        let mut ctrl = Vec::new();
        for body in [b"x".as_ref(), b"y".as_ref()] {
            let frame = tx.track(SimTime::ZERO, body);
            rx.offer(SimTime::from_micros(1), frame, &mut ctrl);
        }
        assert_eq!(tx.outstanding(), 2);
        let mut resend = Vec::new();
        for c in ctrl.drain(..) {
            tx.on_control(SimTime::from_micros(2), c, &mut resend);
        }
        assert_eq!(tx.outstanding(), 0, "cumulative ack cleared the window");
        assert!(resend.is_empty());
    }
}
