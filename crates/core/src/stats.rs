//! Replication statistics — the raw material for the paper's Table 2.

use crate::records::Record;

/// Everything the primary counted while replicating one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplicationStats {
    /// Non-deterministic native methods intercepted ("NM").
    pub nm_intercepted: u64,
    /// Output commits performed ("NM Output Commits").
    pub output_commits: u64,
    /// Monitor acquisitions replicated ("Locks Acquired", lock-sync mode).
    pub locks_acquired: u64,
    /// Largest per-lock acquire sequence number seen ("Largest l_asn").
    pub largest_lasn: u64,
    /// Lock-acquisition records logged.
    pub lock_acq_records: u64,
    /// Lock-interval records logged (interval-compressed lock-sync).
    pub lock_interval_records: u64,
    /// Id-map records logged.
    pub id_map_records: u64,
    /// Thread-schedule records logged ("Reschedules", TS mode).
    pub sched_records: u64,
    /// Native-result records logged.
    pub native_result_records: u64,
    /// Side-effect-handler state records logged.
    pub se_state_records: u64,
    /// Output-commit records logged.
    pub output_commit_records: u64,
    /// Encoded bytes of lock-acquisition records.
    pub lock_acq_bytes: u64,
    /// Encoded bytes of lock-interval records.
    pub lock_interval_bytes: u64,
    /// Encoded bytes of id-map records.
    pub id_map_bytes: u64,
    /// Encoded bytes of thread-schedule records.
    pub sched_bytes: u64,
    /// Encoded bytes of native-result records.
    pub native_result_bytes: u64,
    /// Encoded bytes of side-effect-handler state records.
    pub se_state_bytes: u64,
    /// Encoded bytes of output-commit records.
    pub output_commit_bytes: u64,
    /// Encoded bytes of heartbeat frames.
    pub heartbeat_bytes: u64,
    /// Total payload bytes logged (record bodies plus, under the compact
    /// codec, batch-frame headers).
    pub bytes_logged: u64,
    /// Buffer flushes performed.
    pub flushes: u64,
    /// Failure-detector heartbeats sent (not counted as logged messages).
    pub heartbeats: u64,
    /// Epoch checkpoints cut (snapshot taken, log prefix truncated).
    pub epochs_cut: u64,
    /// Flush count at each epoch cut, in cut order — the exact epoch
    /// boundaries, so crashpoint sweeps can target them precisely.
    pub epoch_cut_flushes: Vec<u64>,
    /// Epochs the backup acknowledged as absorbed (driver-relayed).
    pub epochs_acked: u64,
    /// Peak send-side channel depth sampled at flush time (unacked frames
    /// on a reliable transport, in-flight frames on a perfect one).
    pub peak_send_window: u64,
    /// Peak retained-suffix size in frames — the re-integration replay
    /// buffer, truncated at every epoch cut, so with checkpointing enabled
    /// this is bounded by one epoch.
    pub peak_suffix_frames: u64,
    /// Peak retained-suffix size in bytes.
    pub peak_suffix_bytes: u64,
    /// Bytes of the latest snapshot blob taken at an epoch cut.
    pub snapshot_bytes: u64,
    /// Snapshot chunks shipped (re-integration and cold checkpointing).
    pub snapshot_chunks_sent: u64,
    /// Outputs committed while running degraded (backup dead, ack waits
    /// skipped) — the 1-fault-tolerance gap the run accumulated.
    pub degraded_outputs: u64,
    /// Backup-side: peak count of received-but-unconsumed records (the
    /// standby's live log memory).
    pub peak_backup_pending: u64,
    /// Digest vote frames sent (BFT-lite voting mode, per link).
    pub votes_sent: u64,
    /// Record-frame copies this replica's own send path byzantine-flipped
    /// (fault injection; zero on an honest replica).
    pub byzantine_flips: u64,
    /// Output commits refused because the digest-vote quorum was out of
    /// reach — the primary demoted itself instead of releasing the output.
    pub byzantine_demotions: u64,
    /// Per-output-commit samples, in commit order: `(release instant ns,
    /// pessimistic ack wait ns)`. The release instant is when the output
    /// became performable (after the ack wait, or immediately when
    /// degraded or on a promoted backup's live phase — those record a
    /// zero wait). Raw material for fleet-level output-commit latency
    /// percentiles.
    pub commit_samples: Vec<(u64, u64)>,
}

impl ReplicationStats {
    /// Total records logged ("Logged Messages").
    pub fn messages_logged(&self) -> u64 {
        self.lock_acq_records
            + self.lock_interval_records
            + self.id_map_records
            + self.sched_records
            + self.native_result_records
            + self.se_state_records
            + self.output_commit_records
    }

    /// Per-family record counts and encoded byte totals, for the Table 2
    /// bytes-per-record breakdown. Rows with zero records are included.
    pub fn family_bytes(&self) -> [(&'static str, u64, u64); 8] {
        [
            ("id-map", self.id_map_records, self.id_map_bytes),
            ("lock-acq", self.lock_acq_records, self.lock_acq_bytes),
            ("lock-interval", self.lock_interval_records, self.lock_interval_bytes),
            ("sched", self.sched_records, self.sched_bytes),
            ("nd-result", self.native_result_records, self.native_result_bytes),
            ("output-commit", self.output_commit_records, self.output_commit_bytes),
            ("se-state", self.se_state_records, self.se_state_bytes),
            ("heartbeat", self.heartbeats, self.heartbeat_bytes),
        ]
    }

    /// Counts one record about to be logged, with its encoded size.
    pub(crate) fn count_record(&mut self, rec: &Record, bytes: u64) {
        match rec {
            Record::IdMap { .. } => {
                self.id_map_records += 1;
                self.id_map_bytes += bytes;
            }
            Record::LockAcq { .. } => {
                self.lock_acq_records += 1;
                self.lock_acq_bytes += bytes;
            }
            Record::LockInterval { .. } => {
                self.lock_interval_records += 1;
                self.lock_interval_bytes += bytes;
            }
            Record::Sched { .. } => {
                self.sched_records += 1;
                self.sched_bytes += bytes;
            }
            Record::NativeResult { .. } => {
                self.native_result_records += 1;
                self.native_result_bytes += bytes;
            }
            Record::OutputCommit { .. } => {
                self.output_commit_records += 1;
                self.output_commit_bytes += bytes;
            }
            Record::SeState { .. } => {
                self.se_state_records += 1;
                self.se_state_bytes += bytes;
            }
            Record::Heartbeat { .. } => {
                self.heartbeats += 1;
                self.heartbeat_bytes += bytes;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftjvm_vm::VtPath;

    #[test]
    fn counting_by_kind() {
        let mut s = ReplicationStats::default();
        let t = VtPath::root();
        s.count_record(&Record::IdMap { l_id: 0, t: t.clone(), t_asn: 1 }, 21);
        s.count_record(&Record::LockAcq { t: t.clone(), t_asn: 1, l_id: 0, l_asn: 1 }, 37);
        s.count_record(&Record::LockAcq { t: t.clone(), t_asn: 2, l_id: 0, l_asn: 2 }, 37);
        s.count_record(&Record::OutputCommit { t, seq: 1, output_id: 0 }, 25);
        assert_eq!(s.id_map_records, 1);
        assert_eq!(s.lock_acq_records, 2);
        assert_eq!(s.output_commit_records, 1);
        assert_eq!(s.messages_logged(), 4);
        assert_eq!(s.lock_acq_bytes, 74);
        assert_eq!(s.id_map_bytes, 21);
        let by_family = s.family_bytes();
        let total: u64 = by_family.iter().map(|(_, _, b)| b).sum();
        assert_eq!(total, 21 + 74 + 25);
    }
}
