//! Deterministic windowed worker pool: real threads advancing simulation
//! slots in logical-time quanta, merged at barriers.
//!
//! The fleet scheduler multiplexes hundreds of independent slot tasks
//! (replica pairs or groups) on one global timeline. This module runs
//! them on N OS threads *without giving up determinism*: the global
//! timeline is cut into fixed quanta (windows), every worker advances
//! each of its slots to the window boundary against a **frozen snapshot**
//! of the only cross-slot coupling (the shared-trunk calendar), and a
//! two-phase barrier merges the window's trunk reservations and counter
//! deltas in canonical slot-id order before the next window opens.
//!
//! Determinism by construction: inside a window a slot sees the master
//! calendar exactly as it stood at the previous barrier plus its own
//! in-window placements — never another slot's concurrent traffic — so a
//! slot's trajectory is a pure function of its own state and the
//! published snapshot sequence. The merge itself is a commutative fold
//! (interval union, counter sums, a max), applied in slot-id order
//! regardless of which worker delivered which window. One thread or
//! sixteen therefore produce byte-identical timelines, reports, and
//! trunk statistics; `--threads 1` runs the *same* windowed protocol,
//! not a separate code path.
//!
//! The model follows Aviram et al.'s deterministic logical-time quanta
//! and DiSquawk's ownership-transfer rule: a slot (and its trunk port)
//! is owned by exactly one worker, and nothing mutable crosses threads
//! between barriers — only plain-data window logs and finished results.
//!
//! Worker panics are caught at the slot boundary and converted into the
//! slot's error result: a worker must never unwind across the barrier,
//! or every other worker would deadlock waiting for it.

use ftjvm_netsim::{SharedBandwidth, SharedLink, SharedStats, SimTime, TrunkWindow};
use ftjvm_vm::VmError;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Barrier, Mutex};

/// A simulation slot the windowed scheduler can advance: a local clock,
/// a completion test, and a bounded step.
pub trait WindowTask {
    /// The slot's local instant.
    fn now(&self) -> SimTime;
    /// True once the slot has finished and further steps are no-ops.
    fn is_done(&self) -> bool;
    /// Advances the slot until its local clock reaches `until`, it
    /// completes, or it fails.
    ///
    /// # Errors
    /// Propagates the slot's fatal error; the slot is finalized with it.
    fn step(&mut self, until: SimTime) -> Result<(), VmError>;
}

/// Pool parameters.
#[derive(Debug, Clone)]
pub struct PoolOptions {
    /// Worker threads; clamped to `1..=slots`.
    pub threads: usize,
    /// Global logical-time window length.
    pub quantum: SimTime,
    /// Shared-trunk serialization cost; `None` runs without a trunk (the
    /// slots are then fully independent and windows only pace progress).
    pub trunk_per_byte: Option<SimTime>,
}

/// What the pool did, for scheduler diagnostics.
#[derive(Debug, Clone, Default)]
pub struct PoolStats {
    /// Worker threads actually used.
    pub threads: usize,
    /// Logical-time windows merged.
    pub windows: u64,
    /// Barrier crossings per worker (two per window).
    pub barrier_waits: u64,
    /// Trunk busy intervals merged into the master calendar.
    pub merged_intervals: u64,
    /// Slots owned by each worker, in worker order.
    pub slots_per_worker: Vec<u32>,
}

/// Cross-window coordinator state, mutated only under the lock and only
/// read between the two barrier phases.
struct MergeState {
    /// The master trunk: merged calendar plus fleet-wide statistics.
    master: Option<SharedBandwidth>,
    /// Frozen calendar every port re-grounds on at the window start.
    snapshot: Arc<BTreeMap<u64, u64>>,
    /// Global end instant of the window being executed.
    window_end: SimTime,
    /// All slots finished; workers exit at the next phase boundary.
    done: bool,
    /// Slots still running, fleet-wide.
    active: usize,
    /// Window logs deposited this round, tagged by slot id.
    windows: Vec<(u32, TrunkWindow)>,
    /// Minimum global `offset + now` over still-active slots this round;
    /// the next window is the quantum containing it.
    min_next: Option<SimTime>,
    /// A finalizer panicked: the pool result is unusable.
    poisoned: Option<String>,
    stats: PoolStats,
}

/// One worker-owned slot: the task, its trunk port, and its global clock
/// offset. Lives and dies on its owning thread — tasks need not be
/// [`Send`].
struct SlotCell<T> {
    id: u32,
    offset: SimTime,
    port: Option<SharedLink>,
    task: Option<T>,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `offsets.len()` slots to completion on a deterministic windowed
/// worker pool. `build(id, port)` constructs slot `id` (attaching the
/// given trunk port, when a trunk is configured); `finish(id, result)`
/// finalizes it **on its owning worker** — taking either the completed
/// task or the error that stopped it — and returns the [`Send`] summary
/// that crosses back to the caller. Results come back indexed by slot
/// id, alongside pool diagnostics and the merged trunk statistics.
///
/// # Errors
/// Returns an error when a finalizer panicked (slot-level errors and
/// task panics are routed into `finish` instead, so a fleet keeps its
/// per-slot error accounting).
pub fn run_windowed<T, R, B, F>(
    opts: &PoolOptions,
    offsets: &[SimTime],
    build: B,
    finish: F,
) -> Result<(Vec<R>, PoolStats, Option<SharedStats>), VmError>
where
    T: WindowTask,
    R: Send,
    B: Fn(u32, Option<&SharedLink>) -> Result<T, VmError> + Sync,
    F: Fn(u32, Result<T, VmError>) -> R + Sync,
{
    let n = offsets.len();
    let threads = opts.threads.clamp(1, n.max(1));
    let quantum = opts.quantum.as_nanos().max(1);

    let mut slots_per_worker = vec![0u32; threads];
    for id in 0..n {
        slots_per_worker[id % threads] += 1;
    }
    let state = Mutex::new(MergeState {
        master: opts.trunk_per_byte.map(SharedBandwidth::new),
        snapshot: Arc::new(BTreeMap::new()),
        window_end: SimTime::ZERO,
        done: n == 0,
        active: n,
        windows: Vec::new(),
        min_next: None,
        poisoned: None,
        stats: PoolStats {
            threads,
            windows: 0,
            barrier_waits: 0,
            merged_intervals: 0,
            slots_per_worker,
        },
    });
    let barrier = Barrier::new(threads);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());

    let finalize = |id: u32, r: Result<T, VmError>| {
        // A panicking finalizer must not unwind into the barrier
        // protocol; poison the pool and keep the worker in lockstep.
        match catch_unwind(AssertUnwindSafe(|| finish(id, r))) {
            Ok(out) => {
                let mut res = results.lock().expect("results lock");
                res[id as usize] = Some(out);
            }
            Err(p) => {
                let mut st = state.lock().expect("pool state lock");
                st.poisoned
                    .get_or_insert_with(|| format!("slot {id} finalizer: {}", panic_message(&*p)));
            }
        }
    };

    let worker = |wid: usize| {
        // Build this worker's slots (round-robin ownership). Build
        // errors finalize immediately; the slot never becomes active.
        let mut cells: Vec<SlotCell<T>> = Vec::new();
        let mut finished = 0usize;
        let mut min: Option<SimTime> = None;
        for id in (wid..n).step_by(threads) {
            let id = id as u32;
            let port = opts.trunk_per_byte.map(SharedBandwidth::shared);
            let built =
                catch_unwind(AssertUnwindSafe(|| build(id, port.as_ref()))).unwrap_or_else(|p| {
                    Err(VmError::Internal(format!("build: {}", panic_message(&*p))))
                });
            match built {
                Ok(task) => {
                    let offset = offsets[id as usize];
                    min = Some(min.map_or(offset, |m: SimTime| m.min(offset)));
                    cells.push(SlotCell { id, offset, port, task: Some(task) });
                }
                Err(e) => {
                    finalize(id, Err(e));
                    finished += 1;
                }
            }
        }
        {
            let mut st = state.lock().expect("pool state lock");
            st.active -= finished;
            if let Some(m) = min {
                st.min_next = Some(st.min_next.map_or(m, |v| v.min(m)));
            }
        }

        loop {
            // Phase 1: everyone deposited; the leader merges the window
            // logs in slot-id order and opens the next window.
            if barrier.wait().is_leader() {
                let mut st = state.lock().expect("pool state lock");
                st.windows.sort_unstable_by_key(|&(id, _)| id);
                let logs = std::mem::take(&mut st.windows);
                if let Some(master) = &mut st.master {
                    for (_, w) in &logs {
                        master.merge_window(w);
                    }
                }
                st.stats.merged_intervals +=
                    logs.iter().map(|(_, w)| w.intervals.len() as u64).sum::<u64>();
                st.stats.windows += 1;
                st.stats.barrier_waits += 2;
                if st.active == 0 {
                    st.done = true;
                } else {
                    let base = st.min_next.take().unwrap_or(SimTime::ZERO);
                    let k = base.as_nanos() / quantum;
                    st.window_end = SimTime::from_nanos((k + 1) * quantum);
                    if let Some(master) = &mut st.master {
                        // Reservations wholly before the window can never
                        // move a future placement: every upcoming
                        // admission is at or past the window start.
                        master.prune_before(SimTime::from_nanos(k * quantum));
                        st.snapshot = Arc::new(master.calendar().clone());
                    }
                }
                st.min_next = None;
            }
            // Phase 2: the merge is published; workers read it and run
            // the window.
            barrier.wait();
            let (snapshot, window_end, done) = {
                let st = state.lock().expect("pool state lock");
                (st.snapshot.clone(), st.window_end, st.done)
            };
            if done {
                break;
            }

            let mut local_windows: Vec<(u32, TrunkWindow)> = Vec::new();
            let mut finished = 0usize;
            let mut min: Option<SimTime> = None;
            for cell in &mut cells {
                let Some(task) = cell.task.as_mut() else { continue };
                let global_now = cell.offset + task.now();
                if global_now >= window_end {
                    // Ahead of (or starting after) this window; idle.
                    min = Some(min.map_or(global_now, |m| m.min(global_now)));
                    continue;
                }
                if let Some(port) = &cell.port {
                    port.borrow_mut().sync_window(&snapshot);
                }
                let until = window_end - cell.offset;
                let stepped =
                    catch_unwind(AssertUnwindSafe(|| task.step(until))).unwrap_or_else(|p| {
                        Err(VmError::Internal(format!("slot panic: {}", panic_message(&*p))))
                    });
                match stepped {
                    Ok(()) => {
                        if let Some(port) = &cell.port {
                            let w = port.borrow_mut().take_window();
                            if !w.is_empty() {
                                local_windows.push((cell.id, w));
                            }
                        }
                        if task.is_done() {
                            let task = cell.task.take().expect("task present");
                            finalize(cell.id, Ok(task));
                            finished += 1;
                        } else {
                            let g = cell.offset + cell.task.as_ref().expect("task present").now();
                            min = Some(min.map_or(g, |m| m.min(g)));
                        }
                    }
                    Err(e) => {
                        // The slot failed (or panicked) mid-window; any
                        // traffic it placed before failing still merges —
                        // it was on the wire.
                        if let Some(port) = &cell.port {
                            let w = port.borrow_mut().take_window();
                            if !w.is_empty() {
                                local_windows.push((cell.id, w));
                            }
                        }
                        cell.task = None;
                        finalize(cell.id, Err(e));
                        finished += 1;
                    }
                }
            }
            let mut st = state.lock().expect("pool state lock");
            st.windows.append(&mut local_windows);
            st.active -= finished;
            if let Some(m) = min {
                st.min_next = Some(st.min_next.map_or(m, |v| v.min(m)));
            }
        }
    };

    std::thread::scope(|s| {
        let handles: Vec<_> = (1..threads).map(|wid| s.spawn(move || worker(wid))).collect();
        worker(0);
        for h in handles {
            // Workers catch every user-code panic themselves; a join
            // error here would be a pool bug and the panic re-raises.
            if let Err(p) = h.join() {
                std::panic::resume_unwind(p);
            }
        }
    });

    let state = state.into_inner().expect("pool state lock");
    if let Some(why) = state.poisoned {
        return Err(VmError::Internal(format!("parallel pool poisoned: {why}")));
    }
    let mut out = Vec::with_capacity(n);
    for (id, r) in results.into_inner().expect("results lock").into_iter().enumerate() {
        match r {
            Some(r) => out.push(r),
            None => {
                return Err(VmError::Internal(format!("parallel pool: slot {id} never finalized")))
            }
        }
    }
    let shared = state.master.as_ref().map(SharedBandwidth::stats);
    Ok((out, state.stats, shared))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A slot that advances a fixed tick per step call up to `until` and
    /// admits one frame per tick on its trunk port.
    struct Ticker {
        now: SimTime,
        end: SimTime,
        tick: SimTime,
        port: Option<SharedLink>,
        offset: SimTime,
        delays: Vec<u64>,
    }

    impl WindowTask for Ticker {
        fn now(&self) -> SimTime {
            self.now
        }
        fn is_done(&self) -> bool {
            self.now >= self.end
        }
        fn step(&mut self, until: SimTime) -> Result<(), VmError> {
            while self.now < until && self.now < self.end {
                self.now += self.tick;
                if let Some(port) = &self.port {
                    let at = self.offset + self.now;
                    let d = port.borrow_mut().admit(at, 100);
                    self.delays.push(d.as_nanos());
                }
            }
            Ok(())
        }
    }

    fn run(threads: usize, slots: usize) -> (Vec<Vec<u64>>, PoolStats, Option<SharedStats>) {
        let opts = PoolOptions {
            threads,
            quantum: SimTime::from_micros(5),
            trunk_per_byte: Some(SimTime::from_nanos(10)),
        };
        let offsets: Vec<SimTime> =
            (0..slots).map(|i| SimTime::from_nanos(137 * i as u64)).collect();
        let offs = offsets.clone();
        let (results, stats, shared) = run_windowed(
            &opts,
            &offsets,
            |id, port| {
                Ok(Ticker {
                    now: SimTime::ZERO,
                    end: SimTime::from_micros(40),
                    tick: SimTime::from_nanos(900 + 17 * u64::from(id)),
                    port: port.cloned(),
                    offset: offs[id as usize],
                    delays: Vec::new(),
                })
            },
            |_, r| r.map(|t| t.delays).unwrap_or_default(),
        )
        .expect("pool runs");
        (results, stats, shared)
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let (r1, s1, t1) = run(1, 9);
        for threads in [2, 4, 8] {
            let (rn, sn, tn) = run(threads, 9);
            assert_eq!(r1, rn, "per-slot admission delays identical at {threads} threads");
            assert_eq!(t1, tn, "trunk stats identical at {threads} threads");
            assert_eq!(s1.windows, sn.windows, "window count identical at {threads} threads");
        }
    }

    #[test]
    fn slot_errors_and_panics_become_results() {
        let opts =
            PoolOptions { threads: 2, quantum: SimTime::from_micros(5), trunk_per_byte: None };
        let offsets = vec![SimTime::ZERO; 3];
        struct Flaky {
            id: u32,
            now: SimTime,
        }
        impl WindowTask for Flaky {
            fn now(&self) -> SimTime {
                self.now
            }
            fn is_done(&self) -> bool {
                self.now >= SimTime::from_micros(10)
            }
            fn step(&mut self, until: SimTime) -> Result<(), VmError> {
                match self.id {
                    1 => Err(VmError::Internal("boom".into())),
                    2 => panic!("slot 2 exploded"),
                    _ => {
                        self.now = until;
                        Ok(())
                    }
                }
            }
        }
        let (results, stats, _) = run_windowed(
            &opts,
            &offsets,
            |id, _| Ok(Flaky { id, now: SimTime::ZERO }),
            |id, r| match r {
                Ok(_) => format!("{id}: ok"),
                Err(e) => format!("{id}: {e}"),
            },
        )
        .expect("pool survives slot failures");
        assert_eq!(results[0], "0: ok");
        assert!(results[1].contains("boom"));
        assert!(results[2].contains("slot 2 exploded"));
        assert_eq!(stats.threads, 2);
    }

    #[test]
    fn empty_pool_returns_immediately() {
        let opts =
            PoolOptions { threads: 4, quantum: SimTime::from_micros(5), trunk_per_byte: None };
        let (results, _, _) = run_windowed::<Ticker, (), _, _>(
            &opts,
            &[],
            |_, _| unreachable!("no slots to build"),
            |_, _| (),
        )
        .expect("empty pool runs");
        assert!(results.is_empty());
    }
}
