//! The replica runtime: primary and backup as [`Replica`] values on one
//! simulated timeline.
//!
//! This module owns the orchestration that used to be buried in the
//! `FtJvm::run_*` drivers. A [`Replica`] is a VM plus its replication
//! coordinator, tagged with a [`Role`]; a [`ReplicaRuntime`] builds a
//! primary/backup pair over a shared world and drives it:
//!
//! * **Cold backup** ([`LagBudget::Cold`]) — the paper's baseline (§1): the
//!   backup only stores the log during normal operation; on failure it
//!   replays from the initial state. The primary runs to completion (or
//!   crash) first, then the drained log is replayed — bit-for-bit the
//!   pre-runtime behavior.
//! * **Hot standby** ([`LagBudget::Hot`]) — the paper's "keeping the backup
//!   updated would require only minor modifications": primary and backup
//!   are *co-simulated*. The primary executes in bounded instruction
//!   slices; frames flushed to the [`ftjvm_netsim::SimChannel`] are
//!   delivered at their simulated arrival instants and streamed into the
//!   backup, which replays each record as it arrives (bounded-lag
//!   streaming replay). Failure detection is driven by the heartbeat
//!   records actually received (a [`ftjvm_netsim::HeartbeatMonitor`]), so
//!   the backup *measures* detection and suffix-replay latency in-timeline
//!   instead of computing them from a formula.
//!
//! Exactly-once outputs survive the hot path because a streaming backup
//! only replays an output once a later record from the same thread proves
//! the primary performed it; everything still uncertain at promotion is
//! resolved with the side-effect handlers' `test` — which is sound then,
//! because the detection instant is after the primary's last action.

use crate::backup::{BackupLog, IntervalBackup, LockSyncBackup, TsBackup};
use crate::ftjvm::{FtConfig, LockVariant, PairReport, ReplicationMode};
use crate::primary::{
    IntervalPrimary, LockSyncPrimary, LogChannel, PrimaryCore, ReliableLink, TsPrimary,
};
use crate::stats::ReplicationStats;
use bytes::Bytes;
use ftjvm_netsim::{
    Category, ChannelStats, FaultPlan, HeartbeatMonitor, LossyChannel, SimChannel, SimTime,
};
use ftjvm_vm::{
    Coordinator, NativeRegistry, Program, RunOutcome, RunReport, SharedWorld, SimEnv, SliceOutcome,
    Vm, VmConfig, VmError, World,
};
use std::sync::Arc;

/// Instruction units the primary executes per co-simulation slice. Small
/// enough that flushed frames reach the hot standby with fine granularity,
/// large enough that slicing overhead stays negligible.
pub const SLICE_UNITS: u64 = 256;

/// How far a backup is allowed to lag the primary's log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LagBudget {
    /// Store-only during normal operation; replay the whole log at
    /// failover (the paper's cold backup, §1).
    #[default]
    Cold,
    /// Streaming replay: consume each flushed frame as it arrives, so only
    /// the unconsumed log suffix remains at failover.
    Hot,
}

impl std::fmt::Display for LagBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LagBudget::Cold => "cold",
            LagBudget::Hot => "hot",
        })
    }
}

/// What a [`Replica`] is doing in the pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The authority: executes the program and logs every
    /// non-deterministic choice to its peer.
    Primary,
    /// The standby: consumes the log, ready to take over.
    Backup {
        /// Cold (store-only) or hot (streaming replay).
        lag_budget: LagBudget,
    },
}

/// The coordinator driving one replica's VM (private: which concrete
/// coordinator a role maps to is the runtime's business).
enum ReplicaCoord {
    LockPrimary(LockSyncPrimary),
    IntervalPrimary(IntervalPrimary),
    TsPrimary(TsPrimary),
    LockBackup(LockSyncBackup),
    IntervalBackup(IntervalBackup),
    TsBackup(TsBackup),
}

impl ReplicaCoord {
    fn as_dyn(&mut self) -> &mut dyn Coordinator {
        match self {
            ReplicaCoord::LockPrimary(c) => c,
            ReplicaCoord::IntervalPrimary(c) => c,
            ReplicaCoord::TsPrimary(c) => c,
            ReplicaCoord::LockBackup(c) => c,
            ReplicaCoord::IntervalBackup(c) => c,
            ReplicaCoord::TsBackup(c) => c,
        }
    }

    fn primary_core_mut(&mut self) -> Option<&mut PrimaryCore> {
        match self {
            ReplicaCoord::LockPrimary(c) => Some(&mut c.common),
            ReplicaCoord::IntervalPrimary(c) => Some(&mut c.common),
            ReplicaCoord::TsPrimary(c) => Some(&mut c.common),
            _ => None,
        }
    }
}

/// One replica: a VM plus its replication coordinator, tagged with its
/// [`Role`]. Created by [`ReplicaRuntime`]; stepped in bounded instruction
/// slices so a co-simulation driver can interleave a pair.
pub struct Replica {
    role: Role,
    vm: Vm,
    coord: ReplicaCoord,
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica").field("role", &self.role).field("now", &self.now()).finish()
    }
}

impl Replica {
    /// This replica's role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// The replica's current simulated instant.
    pub fn now(&self) -> SimTime {
        self.vm.core().acct.now()
    }

    /// Executes up to `max_units` instruction units.
    ///
    /// # Errors
    /// Propagates fatal VM errors (including replay divergence).
    pub fn step(&mut self, max_units: u64) -> Result<SliceOutcome, VmError> {
        self.vm.run_slice(self.coord.as_dyn(), max_units)
    }

    /// Runs to completion (or crash).
    ///
    /// # Errors
    /// Propagates fatal VM errors.
    pub fn run_to_end(&mut self) -> Result<RunReport, VmError> {
        self.vm.run(self.coord.as_dyn())
    }

    /// Streams one arrived log frame into a hot backup, advancing its
    /// clock to the frame's arrival instant. Returns the number of
    /// heartbeat records the frame carried.
    ///
    /// # Errors
    /// Returns an error for a malformed frame, or if called on a replica
    /// that is not a backup.
    pub fn feed_frame(&mut self, arrival: SimTime, frame: Bytes) -> Result<u32, VmError> {
        let Replica { vm, coord, .. } = self;
        let core = vm.core_mut();
        core.acct.wait_until(Category::Communication, arrival);
        match coord {
            ReplicaCoord::LockBackup(c) => c.feed_frame(frame),
            ReplicaCoord::IntervalBackup(c) => c.feed_frame(frame),
            ReplicaCoord::TsBackup(c) => c.feed_frame(frame, &mut core.acct),
            _ => Err(VmError::Internal("feed_frame on a non-backup replica".into())),
        }
    }

    /// Promotes a streaming backup: the stream ended (the primary failed
    /// and detection fired, or it completed), volatile environment state
    /// is restored from the received side-effect snapshots, and replay may
    /// run past the log into the live phase.
    pub fn finish_stream(&mut self) {
        {
            let Replica { vm, coord, .. } = &mut *self;
            let core = vm.core_mut();
            match coord {
                ReplicaCoord::LockBackup(c) => c.finish_stream(&mut core.env, &core.acct),
                ReplicaCoord::IntervalBackup(c) => c.finish_stream(&mut core.env, &core.acct),
                ReplicaCoord::TsBackup(c) => c.finish_stream(&mut core.env, &mut core.acct),
                _ => {}
            }
        }
        self.vm.poll_suspended(self.coord.as_dyn());
    }

    /// Wakes threads a streaming backup deferred while waiting for log
    /// records (call after feeding frames).
    pub fn poll_suspended(&mut self) {
        self.vm.poll_suspended(self.coord.as_dyn());
    }

    /// Advances this replica's clock to `instant` (no-op if already past).
    pub fn wait_until(&mut self, instant: SimTime) {
        self.vm.core_mut().acct.wait_until(Category::Misc, instant);
    }

    /// Marks the replica's environment failed (fail-stop: volatile state
    /// is lost with the process).
    pub fn fail_env(&mut self) {
        self.vm.core_mut().env.fail();
    }

    /// The primary's replication channel (None for backups).
    fn channel_mut(&mut self) -> Option<&mut LogChannel> {
        self.coord.primary_core_mut().map(|c| c.channel_mut())
    }

    /// Consumes a primary replica, returning its channel and final
    /// replication statistics.
    fn into_primary_parts(self) -> (LogChannel, ReplicationStats) {
        match self.coord {
            ReplicaCoord::LockPrimary(c) => c.common.into_parts(),
            ReplicaCoord::IntervalPrimary(c) => c.common.into_parts(),
            ReplicaCoord::TsPrimary(c) => c.common.into_parts(),
            _ => unreachable!("into_primary_parts on a backup"),
        }
    }

    /// Backup-side replication statistics (empty for primaries).
    fn backup_stats(&self) -> ReplicationStats {
        match &self.coord {
            ReplicaCoord::LockBackup(c) => c.stats().clone(),
            ReplicaCoord::IntervalBackup(c) => c.stats().clone(),
            ReplicaCoord::TsBackup(c) => c.stats().clone(),
            _ => ReplicationStats::default(),
        }
    }

    /// Simulated instant at which the backup's log replay completed.
    fn recovery_completed_at(&self) -> Option<SimTime> {
        match &self.coord {
            ReplicaCoord::LockBackup(c) => c.recovery_completed_at(),
            ReplicaCoord::IntervalBackup(c) => c.recovery_completed_at(),
            ReplicaCoord::TsBackup(c) => c.recovery_completed_at(),
            _ => None,
        }
    }
}

/// Builds and drives a replica pair over one simulated timeline.
///
/// Owns the program, natives, and configuration; each run builds fresh
/// replicas over a fresh [`World`]. [`FtJvm`](crate::FtJvm)'s `run_*`
/// drivers are thin wrappers around this type.
pub struct ReplicaRuntime {
    program: Arc<Program>,
    natives: NativeRegistry,
    cfg: FtConfig,
}

impl std::fmt::Debug for ReplicaRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaRuntime").field("cfg", &self.cfg).finish()
    }
}

impl ReplicaRuntime {
    /// Creates a runtime for `program` under `cfg`.
    pub fn new(program: Arc<Program>, natives: NativeRegistry, cfg: FtConfig) -> Self {
        ReplicaRuntime { program, natives, cfg }
    }

    fn vm_config(&self, seed: u64) -> VmConfig {
        VmConfig { sched_seed: seed, ..self.cfg.vm.clone() }
    }

    fn primary_env(&self, world: &SharedWorld) -> SimEnv {
        SimEnv::new("primary", world.clone(), self.cfg.primary_skew, self.cfg.primary_env_seed)
    }

    fn backup_env(&self, world: &SharedWorld) -> SimEnv {
        SimEnv::new("backup", world.clone(), self.cfg.backup_skew, self.cfg.backup_env_seed)
    }

    /// Builds the primary replica: a VM with the mode's logging
    /// coordinator over a fresh channel.
    ///
    /// # Errors
    /// Propagates program-loading errors.
    pub fn build_primary(&self, world: &SharedWorld, fault: FaultPlan) -> Result<Replica, VmError> {
        // An armed net-fault plan swaps the paper's perfect FIFO channel
        // for the lossy link plus the reliability sublayer; unarmed runs
        // keep the perfect channel (and its exact seed-run timing).
        let channel = if self.cfg.net_fault.is_armed() {
            let link = LossyChannel::new(self.cfg.vm.cost.net.clone(), self.cfg.net_fault.clone());
            LogChannel::Reliable(Box::new(ReliableLink::new(link)))
        } else {
            LogChannel::Perfect(SimChannel::new(self.cfg.vm.cost.net.clone()))
        };
        let mut core = PrimaryCore::with_transport(
            channel,
            self.cfg.vm.cost.clone(),
            fault,
            (self.cfg.se_factory)(),
        );
        core.flush_threshold = self.cfg.flush_threshold;
        core.set_codec(self.cfg.codec);
        core.set_heartbeat_interval(self.cfg.detector.interval());
        let vm = Vm::new(
            self.program.clone(),
            self.natives.clone(),
            self.primary_env(world),
            self.vm_config(self.cfg.primary_seed),
        )?;
        let coord = match (self.cfg.mode, self.cfg.lock_variant) {
            (ReplicationMode::LockSync, LockVariant::PerAcquisition) => {
                ReplicaCoord::LockPrimary(LockSyncPrimary::new(core))
            }
            (ReplicationMode::LockSync, LockVariant::Intervals) => {
                ReplicaCoord::IntervalPrimary(IntervalPrimary::new(core))
            }
            (ReplicationMode::ThreadSched, _) => ReplicaCoord::TsPrimary(TsPrimary::new(core)),
        };
        Ok(Replica { role: Role::Primary, vm, coord })
    }

    /// Builds a hot (streaming) backup replica whose log starts empty.
    ///
    /// # Errors
    /// Propagates program-loading errors.
    pub fn build_hot_backup(&self, world: &SharedWorld) -> Result<Replica, VmError> {
        let se = (self.cfg.se_factory)();
        let vm = Vm::new(
            self.program.clone(),
            self.natives.clone(),
            self.backup_env(world),
            self.vm_config(self.cfg.backup_seed),
        )?;
        let cost = self.cfg.vm.cost.clone();
        let coord = match (self.cfg.mode, self.cfg.lock_variant) {
            (ReplicationMode::LockSync, LockVariant::PerAcquisition) => {
                ReplicaCoord::LockBackup(LockSyncBackup::streaming(world.clone(), se, cost))
            }
            (ReplicationMode::LockSync, LockVariant::Intervals) => {
                ReplicaCoord::IntervalBackup(IntervalBackup::streaming(world.clone(), se, cost))
            }
            (ReplicationMode::ThreadSched, _) => {
                ReplicaCoord::TsBackup(TsBackup::streaming(world.clone(), se, cost))
            }
        };
        Ok(Replica { role: Role::Backup { lag_budget: LagBudget::Hot }, vm, coord })
    }

    /// Builds a cold backup replica over a fully decoded log (the one
    /// shared drain-and-replay path — used after a crash *and* by the
    /// failure-free replay harness).
    ///
    /// # Errors
    /// Propagates program-loading and log-decoding errors.
    pub fn build_cold_backup(
        &self,
        world: &SharedWorld,
        frames: Vec<Bytes>,
    ) -> Result<Replica, VmError> {
        let mut se = (self.cfg.se_factory)();
        let log = BackupLog::decode(frames, &mut se)?;
        let mut benv = self.backup_env(world);
        // SE-handler `restore`: re-create the primary's volatile
        // environment state (open files at their recovered offsets).
        se.restore(&mut benv);
        let vm = Vm::new(
            self.program.clone(),
            self.natives.clone(),
            benv,
            self.vm_config(self.cfg.backup_seed),
        )?;
        let cost = self.cfg.vm.cost.clone();
        let coord = match (self.cfg.mode, self.cfg.lock_variant) {
            (ReplicationMode::LockSync, LockVariant::PerAcquisition) => {
                ReplicaCoord::LockBackup(LockSyncBackup::new(log, world.clone(), se, cost))
            }
            (ReplicationMode::LockSync, LockVariant::Intervals) => {
                ReplicaCoord::IntervalBackup(IntervalBackup::new(log, world.clone(), se, cost))
            }
            (ReplicationMode::ThreadSched, _) => {
                ReplicaCoord::TsBackup(TsBackup::new(log, world.clone(), se, cost))
            }
        };
        Ok(Replica { role: Role::Backup { lag_budget: LagBudget::Cold }, vm, coord })
    }

    /// Runs the primary to completion (or crash) and returns its report,
    /// the drained log frames, and the replication and channel statistics
    /// — the log-producing half shared by the replay harness and the
    /// log-inspection entry points.
    ///
    /// # Errors
    /// Propagates fatal VM errors.
    pub fn run_primary_to_log(
        &self,
        world: &SharedWorld,
        fault: FaultPlan,
    ) -> Result<(RunReport, Vec<Bytes>, ReplicationStats, ChannelStats), VmError> {
        let mut primary = self.build_primary(world, fault)?;
        let report = primary.run_to_end()?;
        let (mut channel, stats) = primary.into_primary_parts();
        let frames = channel.drain().into_iter().map(|(_, frame)| frame).collect();
        // Stats after the drain: on a lossy link the takeover delivery
        // itself detects duplicates/corruption worth counting.
        let channel_stats = channel.stats();
        Ok((report, frames, stats, channel_stats))
    }

    /// Replays a drained log on a cold backup over `world` — the single
    /// drain-and-replay helper shared by the failover and benchmark paths.
    ///
    /// # Errors
    /// Propagates fatal VM errors, including replay divergence.
    pub fn replay_log(
        &self,
        world: &SharedWorld,
        frames: Vec<Bytes>,
    ) -> Result<(RunReport, ReplicationStats, Option<SimTime>), VmError> {
        let mut backup = self.build_cold_backup(world, frames)?;
        let report = backup.run_to_end()?;
        Ok((report, backup.backup_stats(), backup.recovery_completed_at()))
    }

    /// Runs the pair with a **cold** backup. The primary runs to
    /// completion or crash; on a crash the drained log is replayed from
    /// the initial state. Bit-for-bit the pre-runtime semantics: record
    /// counts, byte stats, and console output are unchanged.
    ///
    /// # Errors
    /// Propagates fatal VM errors from either replica.
    pub fn run_cold(&self, fault: FaultPlan) -> Result<PairReport, VmError> {
        let world = World::shared();
        let mut primary = self.build_primary(&world, fault)?;
        let primary_report = primary.run_to_end()?;
        let crashed = primary_report.outcome == RunOutcome::Stopped;
        if crashed {
            // Fail-stop: the primary's volatile environment state is lost
            // with its process; the external world survives.
            primary.fail_env();
        }
        let (mut channel, primary_stats) = primary.into_primary_parts();
        if !crashed {
            let channel_stats = channel.stats();
            return Ok(PairReport {
                primary: primary_report,
                primary_stats,
                crashed: false,
                backup: None,
                backup_stats: None,
                detection_latency: SimTime::ZERO,
                recovery_replay_time: SimTime::ZERO,
                failover_latency: SimTime::ZERO,
                channel: channel_stats,
                world,
            });
        }
        let crash_at = primary_report.acct.now();
        let drained = channel.drain();
        let channel_stats = channel.stats();
        // Failure detection from the heartbeats the backup actually
        // received: the detector's deadline re-arms at each heartbeat
        // arrival and fires when the next one never comes.
        let mut monitor = self.cfg.detector.monitor(SimTime::ZERO);
        let detection_at = observe_heartbeats(&mut monitor, &drained).max(crash_at);
        let detection_latency = detection_at - crash_at;
        let frames: Vec<Bytes> = drained.into_iter().map(|(_, b)| b).collect();
        let (backup_report, backup_stats, recovered_at) = self.replay_log(&world, frames)?;
        let recovery_replay_time = recovered_at.unwrap_or_else(|| backup_report.acct.now());
        // Cold backups pay the replay at failover; the legacy warm flag
        // models a backup that already replayed everything flushed, so
        // only detection remains.
        let failover_latency = if self.cfg.warm_backup {
            detection_latency
        } else {
            detection_latency + recovery_replay_time
        };
        Ok(PairReport {
            primary: primary_report,
            primary_stats,
            crashed: true,
            backup: Some(backup_report),
            backup_stats: Some(backup_stats),
            detection_latency,
            recovery_replay_time,
            failover_latency,
            channel: channel_stats,
            world,
        })
    }

    /// Runs the pair with a **hot** standby: primary and backup
    /// co-simulated on one timeline. On a crash, detection fires from
    /// missed heartbeats, the backup is promoted mid-run, and only the
    /// unconsumed log suffix is replayed — so
    /// [`PairReport::failover_latency`] is measured, not derived.
    ///
    /// # Errors
    /// Propagates fatal VM errors from either replica.
    pub fn run_hot(&self, fault: FaultPlan) -> Result<PairReport, VmError> {
        let world = World::shared();
        let mut primary = self.build_primary(&world, fault)?;
        let mut backup = self.build_hot_backup(&world)?;
        let mut monitor = self.cfg.detector.monitor(SimTime::ZERO);
        let mut backup_report: Option<RunReport> = None;

        // Co-simulation: slice the primary, deliver what arrived, let the
        // backup consume it until it starves, repeat.
        let (primary_report, crashed) = loop {
            let outcome = primary.step(SLICE_UNITS)?;
            let now_p = primary.now();
            let ready =
                primary.channel_mut().expect("primary replica has a channel").recv_ready(now_p);
            pump_backup(&mut backup, &mut monitor, ready, &mut backup_report)?;
            match outcome {
                SliceOutcome::Budget => {}
                SliceOutcome::Paused => {
                    return Err(VmError::Internal("primary paused without a feeder".into()));
                }
                SliceOutcome::Completed(r) => break (r, false),
                SliceOutcome::Stopped(r) => break (r, true),
            }
        };

        let crash_at = primary_report.acct.now();
        if crashed {
            // Fail-stop: the primary's volatile environment state is lost
            // with its process; the external world survives.
            primary.fail_env();
        }
        let (mut channel, primary_stats) = primary.into_primary_parts();
        // Everything flushed *and verified in order* is delivered; records
        // still in the primary's buffer — and, on a lossy link, frames
        // beyond an unresolved gap — are lost with it (longest verified
        // frame prefix).
        pump_backup(&mut backup, &mut monitor, channel.drain(), &mut backup_report)?;
        let channel_stats = channel.stats();

        if !crashed {
            // Failure-free: the primary finished; the stream is over. The
            // standby replays the remainder quietly (every output was
            // performed by the primary, so replay suppresses them all).
            backup.finish_stream();
            let backup_report = match backup_report {
                Some(r) => r,
                None => backup.run_to_end()?,
            };
            return Ok(PairReport {
                primary: primary_report,
                primary_stats,
                crashed: false,
                backup: Some(backup_report),
                backup_stats: Some(backup.backup_stats()),
                detection_latency: SimTime::ZERO,
                recovery_replay_time: SimTime::ZERO,
                failover_latency: SimTime::ZERO,
                channel: channel_stats,
                world,
            });
        }

        // Crash: detection fires when the heartbeat deadline lapses —
        // measured on the arrival timeline, not computed from the crash
        // instant (which no one observes).
        let detection_at = monitor.deadline().max(crash_at);
        let detection_latency = detection_at - crash_at;
        // Promotion: the backup learns of the failure at the detection
        // instant and becomes the authority.
        backup.wait_until(detection_at);
        let promoted_at = backup.now();
        backup.finish_stream();
        let backup_report = match backup_report {
            Some(r) => r,
            None => backup.run_to_end()?,
        };
        let recovered_at =
            backup.recovery_completed_at().unwrap_or_else(|| backup_report.acct.now());
        // Only the unconsumed suffix of the log remains to replay.
        let suffix_replay =
            if recovered_at > promoted_at { recovered_at - promoted_at } else { SimTime::ZERO };
        Ok(PairReport {
            primary: primary_report,
            primary_stats,
            crashed: true,
            backup: Some(backup_report),
            backup_stats: Some(backup.backup_stats()),
            detection_latency,
            recovery_replay_time: suffix_replay,
            failover_latency: detection_latency + suffix_replay,
            channel: channel_stats,
            world,
        })
    }

    /// Runs the pair per the configured [`LagBudget`].
    ///
    /// # Errors
    /// Propagates fatal VM errors from either replica.
    pub fn run_pair(&self, fault: FaultPlan) -> Result<PairReport, VmError> {
        match self.cfg.lag_budget {
            LagBudget::Cold => self.run_cold(fault),
            LagBudget::Hot => self.run_hot(fault),
        }
    }
}

/// Feeds delivered `(arrival, frame)` pairs into a hot backup, re-arming
/// the failure detector at each heartbeat arrival, then lets the backup
/// replay until it catches up with the log (starves) or finishes.
fn pump_backup(
    backup: &mut Replica,
    monitor: &mut HeartbeatMonitor,
    delivered: Vec<(SimTime, Bytes)>,
    done: &mut Option<RunReport>,
) -> Result<(), VmError> {
    if delivered.is_empty() {
        return Ok(());
    }
    for (arrival, frame) in delivered {
        if backup.feed_frame(arrival, frame)? > 0 {
            monitor.observe(arrival);
        }
    }
    if done.is_some() {
        return Ok(());
    }
    backup.poll_suspended();
    match backup.step(u64::MAX)? {
        SliceOutcome::Paused => {}
        SliceOutcome::Completed(r) | SliceOutcome::Stopped(r) => *done = Some(r),
        SliceOutcome::Budget => unreachable!("unbounded slice cannot exhaust its budget"),
    }
    Ok(())
}

/// Replays heartbeat arrivals from a drained channel into `monitor` and
/// returns the resulting detection deadline. Heartbeat frames are
/// self-contained fixed-codec frames, so they decode independently of the
/// replay stream's codec state.
fn observe_heartbeats(monitor: &mut HeartbeatMonitor, drained: &[(SimTime, Bytes)]) -> SimTime {
    for (arrival, frame) in drained {
        if crate::codec::frame_is_heartbeat(frame) {
            monitor.observe(*arrival);
        }
    }
    monitor.deadline()
}
