//! The replica runtime: primary and backup as [`Replica`] values on one
//! simulated timeline.
//!
//! This module owns the orchestration that used to be buried in the
//! `FtJvm::run_*` drivers. A [`Replica`] is a VM plus its replication
//! coordinator, tagged with a [`Role`]; a [`ReplicaRuntime`] builds a
//! primary/backup pair over a shared world and drives it:
//!
//! * **Cold backup** ([`LagBudget::Cold`]) — the paper's baseline (§1): the
//!   backup only stores the log during normal operation; on failure it
//!   replays from the initial state. The primary runs to completion (or
//!   crash) first, then the drained log is replayed — bit-for-bit the
//!   pre-runtime behavior.
//! * **Hot standby** ([`LagBudget::Hot`]) — the paper's "keeping the backup
//!   updated would require only minor modifications": primary and backup
//!   are *co-simulated*. The primary executes in bounded instruction
//!   slices; frames flushed to the [`ftjvm_netsim::SimChannel`] are
//!   delivered at their simulated arrival instants and streamed into the
//!   backup, which replays each record as it arrives (bounded-lag
//!   streaming replay). Failure detection is driven by the heartbeat
//!   records actually received (a [`ftjvm_netsim::HeartbeatMonitor`]), so
//!   the backup *measures* detection and suffix-replay latency in-timeline
//!   instead of computing them from a formula.
//!
//! Exactly-once outputs survive the hot path because a streaming backup
//! only replays an output once a later record from the same thread proves
//! the primary performed it; everything still uncertain at promotion is
//! resolved with the side-effect handlers' `test` — which is sound then,
//! because the detection instant is after the primary's last action.

use crate::backup::{BackupLog, IntervalBackup, LockSyncBackup, ResumeSeed, TsBackup};
use crate::codec::build_snapshot_chunk;
use crate::ftjvm::{FtConfig, LockVariant, PairReport, ReplicationMode};
use crate::pair::PairTask;
use crate::primary::{
    decode_vt_map, IntervalPrimary, LockSyncPrimary, LogChannel, PrimaryCore, ReliableLink,
    TsPrimary, EXT_CODEC_CTX, EXT_COUNTERS, EXT_ND_SEQ, EXT_OUT_SEQ, EXT_SE_LATEST,
};
use crate::stats::ReplicationStats;
use bytes::Bytes;
use ftjvm_netsim::{
    Category, ChannelStats, FaultPlan, HeartbeatMonitor, LossyChannel, SharedLink, SimChannel,
    SimTime, WireReader,
};
use ftjvm_vm::ThreadIdx;
use ftjvm_vm::{
    Coordinator, NativeRegistry, Program, RunReport, SharedWorld, SimEnv, SliceOutcome, Vm,
    VmConfig, VmError, VtPath,
};
use std::collections::HashMap;
use std::sync::Arc;

/// Instruction units the primary executes per co-simulation slice. Small
/// enough that flushed frames reach the hot standby with fine granularity,
/// large enough that slicing overhead stays negligible.
pub const SLICE_UNITS: u64 = 256;

/// How far a backup is allowed to lag the primary's log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LagBudget {
    /// Store-only during normal operation; replay the whole log at
    /// failover (the paper's cold backup, §1).
    #[default]
    Cold,
    /// Streaming replay: consume each flushed frame as it arrives, so only
    /// the unconsumed log suffix remains at failover.
    Hot,
}

impl std::fmt::Display for LagBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LagBudget::Cold => "cold",
            LagBudget::Hot => "hot",
        })
    }
}

/// What a [`Replica`] is doing in the pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The authority: executes the program and logs every
    /// non-deterministic choice to its peer.
    Primary,
    /// The standby: consumes the log, ready to take over.
    Backup {
        /// Cold (store-only) or hot (streaming replay).
        lag_budget: LagBudget,
    },
}

/// The coordinator driving one replica's VM (private: which concrete
/// coordinator a role maps to is the runtime's business).
enum ReplicaCoord {
    LockPrimary(LockSyncPrimary),
    IntervalPrimary(IntervalPrimary),
    TsPrimary(TsPrimary),
    LockBackup(LockSyncBackup),
    IntervalBackup(IntervalBackup),
    TsBackup(TsBackup),
}

impl ReplicaCoord {
    fn as_dyn(&mut self) -> &mut dyn Coordinator {
        match self {
            ReplicaCoord::LockPrimary(c) => c,
            ReplicaCoord::IntervalPrimary(c) => c,
            ReplicaCoord::TsPrimary(c) => c,
            ReplicaCoord::LockBackup(c) => c,
            ReplicaCoord::IntervalBackup(c) => c,
            ReplicaCoord::TsBackup(c) => c,
        }
    }

    fn primary_core_mut(&mut self) -> Option<&mut PrimaryCore> {
        match self {
            ReplicaCoord::LockPrimary(c) => Some(&mut c.common),
            ReplicaCoord::IntervalPrimary(c) => Some(&mut c.common),
            ReplicaCoord::TsPrimary(c) => Some(&mut c.common),
            _ => None,
        }
    }
}

/// One replica: a VM plus its replication coordinator, tagged with its
/// [`Role`]. Created by [`ReplicaRuntime`]; stepped in bounded instruction
/// slices so a co-simulation driver can interleave a pair.
pub struct Replica {
    role: Role,
    vm: Vm,
    coord: ReplicaCoord,
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica").field("role", &self.role).field("now", &self.now()).finish()
    }
}

impl Replica {
    /// This replica's role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// The replica's current simulated instant.
    pub fn now(&self) -> SimTime {
        self.vm.core().acct.now()
    }

    /// Executes up to `max_units` instruction units.
    ///
    /// # Errors
    /// Propagates fatal VM errors (including replay divergence).
    pub fn step(&mut self, max_units: u64) -> Result<SliceOutcome, VmError> {
        self.vm.run_slice(self.coord.as_dyn(), max_units)
    }

    /// Runs to completion (or crash).
    ///
    /// # Errors
    /// Propagates fatal VM errors.
    pub fn run_to_end(&mut self) -> Result<RunReport, VmError> {
        self.vm.run(self.coord.as_dyn())
    }

    /// Streams one arrived log frame into a hot backup, advancing its
    /// clock to the frame's arrival instant. Returns the number of
    /// heartbeat records the frame carried.
    ///
    /// # Errors
    /// Returns an error for a malformed frame, or if called on a replica
    /// that is not a backup.
    pub fn feed_frame(&mut self, arrival: SimTime, frame: Bytes) -> Result<u32, VmError> {
        let Replica { vm, coord, .. } = self;
        let core = vm.core_mut();
        core.acct.wait_until(Category::Communication, arrival);
        match coord {
            ReplicaCoord::LockBackup(c) => c.feed_frame(frame),
            ReplicaCoord::IntervalBackup(c) => c.feed_frame(frame),
            ReplicaCoord::TsBackup(c) => c.feed_frame(frame, &mut core.acct),
            _ => Err(VmError::Internal("feed_frame on a non-backup replica".into())),
        }
    }

    /// Bulk [`Replica::feed_frame`]: streams a whole buffered suffix at one
    /// arrival instant, fanning seal verification and stateless record
    /// decode out across `threads` workers. The backup's resulting state is
    /// byte-identical to feeding the frames one at a time — only the host
    /// wall-clock spent decoding changes. Returns the total heartbeat count.
    ///
    /// # Errors
    /// Returns an error for a malformed frame, or if called on a replica
    /// that is not a backup.
    pub fn feed_frames_bulk(
        &mut self,
        arrival: SimTime,
        frames: Vec<Bytes>,
        threads: usize,
    ) -> Result<u32, VmError> {
        let Replica { vm, coord, .. } = self;
        let core = vm.core_mut();
        core.acct.wait_until(Category::Communication, arrival);
        match coord {
            ReplicaCoord::LockBackup(c) => c.feed_frames(frames, threads),
            ReplicaCoord::IntervalBackup(c) => c.feed_frames(frames, threads),
            ReplicaCoord::TsBackup(c) => c.feed_frames(frames, threads, &mut core.acct),
            _ => Err(VmError::Internal("feed_frames_bulk on a non-backup replica".into())),
        }
    }

    /// Promotes a streaming backup: the stream ended (the primary failed
    /// and detection fired, or it completed), volatile environment state
    /// is restored from the received side-effect snapshots, and replay may
    /// run past the log into the live phase.
    pub fn finish_stream(&mut self) {
        {
            let Replica { vm, coord, .. } = &mut *self;
            let core = vm.core_mut();
            match coord {
                ReplicaCoord::LockBackup(c) => c.finish_stream(&mut core.env, &core.acct),
                ReplicaCoord::IntervalBackup(c) => c.finish_stream(&mut core.env, &core.acct),
                ReplicaCoord::TsBackup(c) => c.finish_stream(&mut core.env, &mut core.acct),
                _ => {}
            }
        }
        self.vm.poll_suspended(self.coord.as_dyn());
    }

    /// Wakes threads a streaming backup deferred while waiting for log
    /// records (call after feeding frames).
    pub fn poll_suspended(&mut self) {
        self.vm.poll_suspended(self.coord.as_dyn());
    }

    /// Advances this replica's clock to `instant` (no-op if already past).
    pub fn wait_until(&mut self, instant: SimTime) {
        self.vm.core_mut().acct.wait_until(Category::Misc, instant);
    }

    /// Marks the replica's environment failed (fail-stop: volatile state
    /// is lost with the process).
    pub fn fail_env(&mut self) {
        self.vm.core_mut().env.fail();
    }

    /// The primary's replication channel (None for backups).
    fn channel_mut(&mut self) -> Option<&mut LogChannel> {
        self.coord.primary_core_mut().map(|c| c.channel_mut())
    }

    /// Verified in-order frames delivered on this primary's channel by
    /// `now` — the co-simulation drivers' receive step.
    ///
    /// # Errors
    /// Returns a typed error (instead of panicking) when called on a
    /// replica without a channel — a misconfigured pair.
    pub(crate) fn recv_ready(&mut self, now: SimTime) -> Result<Vec<(SimTime, Bytes)>, VmError> {
        match self.channel_mut() {
            Some(ch) => Ok(ch.recv_ready(now)),
            None => Err(VmError::Internal(
                "co-simulated primary replica has no replication channel".into(),
            )),
        }
    }

    /// Epoch marks a streaming backup has absorbed — its epoch
    /// acknowledgment (0 for primaries).
    pub(crate) fn epochs_absorbed(&self) -> u64 {
        match &self.coord {
            ReplicaCoord::LockBackup(c) => c.epochs_absorbed(),
            ReplicaCoord::IntervalBackup(c) => c.epochs_absorbed(),
            ReplicaCoord::TsBackup(c) => c.epochs_absorbed(),
            _ => 0,
        }
    }

    /// Relays the backup's epoch acknowledgment into the primary's stats.
    pub(crate) fn relay_epoch_ack(&mut self, acked: u64) {
        if let Some(core) = self.coord.primary_core_mut() {
            core.record_epoch_ack(acked);
        }
    }

    /// Enters degraded mode (no live backup: output commits stop waiting
    /// for acknowledgments). No-op on backups.
    pub(crate) fn enter_degraded(&mut self) {
        if let Some(core) = self.coord.primary_core_mut() {
            core.enter_degraded();
        }
    }

    /// Exits degraded mode once a replacement standby is live.
    pub(crate) fn exit_degraded(&mut self) {
        if let Some(core) = self.coord.primary_core_mut() {
            core.exit_degraded();
        }
    }

    /// Cuts an epoch checkpoint if the interval has elapsed and the VM is
    /// at a quiescent, coordinator-ready boundary. Returns whether a cut
    /// happened.
    ///
    /// # Errors
    /// Propagates snapshot failures (a protocol bug: the quiescence gate
    /// should make them impossible).
    pub fn try_cut_epoch(&mut self) -> Result<bool, VmError> {
        self.cut_epoch(false)
    }

    /// Epoch-cut worker. `force` cuts even before the interval elapses
    /// (re-integration state transfer needs a fresh snapshot now), but
    /// the quiescence and coordinator-readiness gates still apply.
    fn cut_epoch(&mut self, force: bool) -> Result<bool, VmError> {
        let wants = match self.coord.primary_core_mut() {
            Some(core) => force || core.wants_epoch_cut(),
            None => false,
        };
        if !wants || !self.vm.quiescent() {
            return Ok(false);
        }
        let Replica { vm, coord, .. } = self;
        let ext = {
            let core = vm.core_mut();
            match coord {
                ReplicaCoord::LockPrimary(c) => c.common.prepare_epoch_cut(&mut core.acct),
                ReplicaCoord::IntervalPrimary(c) => {
                    // Close the open acquisition interval so the flushed
                    // prefix is self-contained.
                    c.close_open(&mut core.acct);
                    c.common.prepare_epoch_cut(&mut core.acct)
                }
                ReplicaCoord::TsPrimary(c) => {
                    if !c.cut_ready() {
                        return Ok(false);
                    }
                    c.common.prepare_epoch_cut(&mut core.acct)
                }
                _ => return Ok(false),
            }
        };
        let blob =
            vm.snapshot(&ext).map_err(|e| VmError::Internal(format!("epoch snapshot: {e}")))?;
        let core = vm.core_mut();
        match coord {
            ReplicaCoord::LockPrimary(c) => c.common.commit_epoch(blob, &mut core.acct),
            ReplicaCoord::IntervalPrimary(c) => c.common.commit_epoch(blob, &mut core.acct),
            ReplicaCoord::TsPrimary(c) => c.common.commit_epoch(blob, &mut core.acct),
            // The primary gate above makes this unreachable in practice;
            // fail typed rather than aborting the whole process.
            _ => return Err(VmError::Internal("epoch commit on a non-primary replica".into())),
        };
        Ok(true)
    }

    /// Ships the latest epoch snapshot as chunk frames over the current
    /// channel (re-integration state transfer and the cold durable
    /// store). Returns the number of chunks sent.
    ///
    /// # Errors
    /// Returns an error when there is no snapshot to ship or the replica
    /// is not a primary.
    pub(crate) fn ship_latest_snapshot(&mut self) -> Result<u64, VmError> {
        self.ship_latest_snapshot_on(0)
    }

    /// [`ship_latest_snapshot`](Replica::ship_latest_snapshot) targeted at
    /// one fan-out link (group re-integration recruits a single standby;
    /// its peers must not see the chunks).
    ///
    /// # Errors
    /// Returns an error when there is no snapshot to ship or the replica
    /// is not a primary.
    pub(crate) fn ship_latest_snapshot_on(&mut self, idx: usize) -> Result<u64, VmError> {
        /// Chunk payload size: small enough that loss retransmits stay
        /// cheap, large enough that a snapshot is a handful of frames.
        const CHUNK: usize = 4096;
        let Replica { vm, coord, .. } = self;
        let core = coord
            .primary_core_mut()
            .ok_or_else(|| VmError::Internal("snapshot transfer from a non-primary".into()))?;
        let (epoch, blob) = core
            .latest_snapshot()
            .cloned()
            .ok_or_else(|| VmError::Internal("no epoch snapshot to transfer".into()))?;
        let total = blob.len().div_ceil(CHUNK) as u64;
        let acct = &mut vm.core_mut().acct;
        for (i, piece) in blob.chunks(CHUNK).enumerate() {
            core.send_raw_on(idx, build_snapshot_chunk(epoch, i as u64, total, piece), acct);
        }
        core.stats.snapshot_chunks_sent += total;
        Ok(total)
    }

    /// The primary half of re-integration: force-cut an epoch at the
    /// current boundary, point the log at `fresh` (the link toward the
    /// replacement), and ship the snapshot as chunk frames. Returns false
    /// — leaving the channel untouched — when the VM is not at a cuttable
    /// boundary yet (the driver retries next slice).
    pub(crate) fn begin_state_transfer(&mut self, fresh: LogChannel) -> Result<bool, VmError> {
        self.begin_state_transfer_on(0, fresh)
    }

    /// [`begin_state_transfer`](Replica::begin_state_transfer) targeted at
    /// one fan-out link: re-recruits the standby at rank slot `idx` while
    /// the other links keep streaming undisturbed.
    pub(crate) fn begin_state_transfer_on(
        &mut self,
        idx: usize,
        fresh: LogChannel,
    ) -> Result<bool, VmError> {
        if !self.cut_epoch(true)? {
            return Ok(false);
        }
        if let Some(core) = self.coord.primary_core_mut() {
            // The old link pointed at the dead (or stale) standby; frames
            // still in flight on it are lost with that host.
            drop(core.swap_link(idx, fresh));
        }
        self.ship_latest_snapshot_on(idx)?;
        Ok(true)
    }

    /// The epoch the latest snapshot covers (0 before the first cut).
    pub(crate) fn snapshot_epoch(&mut self) -> u64 {
        self.coord
            .primary_core_mut()
            .and_then(|c| c.latest_snapshot().map(|(e, _)| *e))
            .unwrap_or(0)
    }

    /// Consumes a primary replica, returning its channel and final
    /// replication statistics.
    ///
    /// # Errors
    /// Returns a typed error (instead of panicking) when called on a
    /// backup replica — a driver bug.
    pub(crate) fn into_primary_parts(self) -> Result<(LogChannel, ReplicationStats), VmError> {
        match self.coord {
            ReplicaCoord::LockPrimary(c) => Ok(c.common.into_parts()),
            ReplicaCoord::IntervalPrimary(c) => Ok(c.common.into_parts()),
            ReplicaCoord::TsPrimary(c) => Ok(c.common.into_parts()),
            _ => Err(VmError::Internal("into_primary_parts on a backup replica".into())),
        }
    }

    /// Backup-side replication statistics (empty for primaries).
    pub(crate) fn backup_stats(&self) -> ReplicationStats {
        match &self.coord {
            ReplicaCoord::LockBackup(c) => c.stats().clone(),
            ReplicaCoord::IntervalBackup(c) => c.stats().clone(),
            ReplicaCoord::TsBackup(c) => c.stats().clone(),
            _ => ReplicationStats::default(),
        }
    }

    /// Simulated instant at which the backup's log replay completed.
    pub(crate) fn recovery_completed_at(&self) -> Option<SimTime> {
        match &self.coord {
            ReplicaCoord::LockBackup(c) => c.recovery_completed_at(),
            ReplicaCoord::IntervalBackup(c) => c.recovery_completed_at(),
            ReplicaCoord::TsBackup(c) => c.recovery_completed_at(),
            _ => None,
        }
    }

    /// True once a backup's replay fully consumed its log (trivially true
    /// for primaries).
    pub(crate) fn recovery_complete(&self) -> bool {
        match &self.coord {
            ReplicaCoord::LockBackup(c) => c.recovery_complete(),
            ReplicaCoord::IntervalBackup(c) => c.recovery_complete(),
            ReplicaCoord::TsBackup(c) => c.recovery_complete(),
            _ => true,
        }
    }

    /// Replay records still unconsumed on a backup — a promotion must run
    /// the VM until this reaches zero (0 for primaries).
    pub(crate) fn replay_pending(&self) -> u64 {
        match &self.coord {
            ReplicaCoord::LockBackup(c) => c.replay_pending(),
            ReplicaCoord::IntervalBackup(c) => c.replay_pending(),
            ReplicaCoord::TsBackup(c) => c.replay_pending(),
            _ => 0,
        }
    }

    /// The primary core, for group drivers configuring fan-out, ack
    /// policy, voting, and link liveness (None for backups).
    pub(crate) fn primary_core(&mut self) -> Option<&mut PrimaryCore> {
        self.coord.primary_core_mut()
    }

    /// Verified in-order frames delivered on fan-out link `idx` by `now`.
    ///
    /// # Errors
    /// Returns a typed error when called on a replica without a channel.
    pub(crate) fn recv_ready_link(
        &mut self,
        idx: usize,
        now: SimTime,
    ) -> Result<Vec<(SimTime, Bytes)>, VmError> {
        match self.coord.primary_core_mut() {
            Some(core) => Ok(core.link_mut(idx).recv_ready(now)),
            None => Err(VmError::Internal(
                "co-simulated primary replica has no replication channel".into(),
            )),
        }
    }

    /// Consumes a primary replica, returning every fan-out link in rank
    /// order plus the final replication statistics.
    ///
    /// # Errors
    /// Returns a typed error when called on a backup replica.
    pub(crate) fn into_group_parts(self) -> Result<(Vec<LogChannel>, ReplicationStats), VmError> {
        match self.coord {
            ReplicaCoord::LockPrimary(c) => Ok(c.common.into_group_parts()),
            ReplicaCoord::IntervalPrimary(c) => Ok(c.common.into_group_parts()),
            ReplicaCoord::TsPrimary(c) => Ok(c.common.into_group_parts()),
            _ => Err(VmError::Internal("into_group_parts on a backup replica".into())),
        }
    }

    /// Promotes a *finished* streaming backup to primary **in place**: the
    /// replayed VM keeps running, only the coordinator changes sides. The
    /// new reign starts with `extra_links + 1` fan-out links (all fresh
    /// transports, all marked dead — survivors re-home via per-link state
    /// transfer), the output-id allocator continues the dead reign's
    /// exactly-once numbering, the side-effect registry moves over from
    /// the replay, and the lock-id / branch-counter allocators seed from
    /// the replayed VM so fresh assignments never collide with history.
    ///
    /// # Errors
    /// Typed [`crate::backup::ReplayError::PromotionIncomplete`] when
    /// replay records are still unconsumed, and a driver-bug error when
    /// called on a primary.
    pub(crate) fn promote(
        self,
        rt: &ReplicaRuntime,
        fault: FaultPlan,
        extra_links: usize,
    ) -> Result<Replica, VmError> {
        enum Kind {
            Lock,
            Interval,
            Ts,
        }
        let Replica { vm, coord, .. } = self;
        let (se, next_output, kind) = match coord {
            ReplicaCoord::LockBackup(c) => {
                let (se, next) = c.into_promotion_parts().map_err(|e| e.at(ThreadIdx(0)))?;
                (se, next, Kind::Lock)
            }
            ReplicaCoord::IntervalBackup(c) => {
                let (se, next) = c.into_promotion_parts().map_err(|e| e.at(ThreadIdx(0)))?;
                (se, next, Kind::Interval)
            }
            ReplicaCoord::TsBackup(c) => {
                let (se, next) = c.into_promotion_parts().map_err(|e| e.at(ThreadIdx(0)))?;
                (se, next, Kind::Ts)
            }
            _ => return Err(VmError::Internal("promote on a primary replica".into())),
        };
        let mut core =
            PrimaryCore::with_transport(rt.make_channel(), rt.cfg.vm.cost.clone(), fault, se);
        core.flush_threshold = rt.cfg.flush_threshold;
        core.set_codec(rt.cfg.codec);
        core.set_heartbeat_interval(rt.cfg.detector.interval());
        core.set_checkpoint_interval(rt.cfg.checkpoint_interval);
        core.seed_output_ids(next_output);
        core.enable_fanout((0..extra_links).map(|_| rt.make_channel()).collect());
        // No standby is live until the driver re-recruits it: mark every
        // link dead and start degraded (uncovered outputs are counted).
        for idx in 0..core.link_count() {
            core.mark_link_dead(idx);
        }
        core.enter_degraded();
        let coord = match kind {
            Kind::Lock => {
                let next_l_id = vm.core().monitors.max_lock_id().map_or(0, |m| m + 1);
                ReplicaCoord::LockPrimary(LockSyncPrimary::resumed(core, next_l_id))
            }
            Kind::Interval => ReplicaCoord::IntervalPrimary(IntervalPrimary::new(core)),
            Kind::Ts => {
                let last_br: HashMap<u32, u64> =
                    vm.core().threads.iter().map(|t| (t.idx.0, t.br_cnt)).collect();
                ReplicaCoord::TsPrimary(TsPrimary::resumed(core, last_br))
            }
        };
        Ok(Replica { role: Role::Primary, vm, coord })
    }
}

/// Builds and drives a replica pair over one simulated timeline.
///
/// Owns the program, natives, and configuration; each run builds fresh
/// replicas over a fresh [`ftjvm_vm::World`]. [`FtJvm`](crate::FtJvm)'s
/// `run_*` drivers are thin wrappers around this type, which is itself a
/// thin wrapper around [`PairTask`] — the pair as a resumable value that
/// a fleet scheduler can multiplex. Cloning is cheap (the program is
/// behind an [`Arc`]); a clone that shares a [`SharedLink`] contends for
/// the same trunk bandwidth.
#[derive(Clone)]
pub struct ReplicaRuntime {
    program: Arc<Program>,
    natives: NativeRegistry,
    cfg: FtConfig,
    shared: Option<(SharedLink, SimTime)>,
}

impl std::fmt::Debug for ReplicaRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaRuntime").field("cfg", &self.cfg).finish()
    }
}

impl ReplicaRuntime {
    /// Creates a runtime for `program` under `cfg`.
    pub fn new(program: Arc<Program>, natives: NativeRegistry, cfg: FtConfig) -> Self {
        ReplicaRuntime { program, natives, cfg, shared: None }
    }

    /// The runtime's configuration.
    pub(crate) fn cfg(&self) -> &FtConfig {
        &self.cfg
    }

    /// Routes this pair's replication traffic through a shared trunk:
    /// every frame sent on a perfect channel queues behind the trunk's
    /// other traffic (fleet-level contention). `offset` maps this pair's
    /// local clock onto the trunk's global timeline. Detached (the
    /// default), channel timing is byte-identical to the single-pair
    /// runs; lossy (net-fault-armed) transports ignore the trunk.
    pub fn set_shared_bandwidth(&mut self, link: SharedLink, offset: SimTime) {
        self.shared = Some((link, offset));
    }

    fn vm_config(&self, seed: u64) -> VmConfig {
        VmConfig { sched_seed: seed, ..self.cfg.vm.clone() }
    }

    fn primary_env(&self, world: &SharedWorld) -> SimEnv {
        SimEnv::new("primary", world.clone(), self.cfg.primary_skew, self.cfg.primary_env_seed)
    }

    fn backup_env(&self, world: &SharedWorld) -> SimEnv {
        SimEnv::new("backup", world.clone(), self.cfg.backup_skew, self.cfg.backup_env_seed)
    }

    /// Environment for the standby at `rank` in a replica group. Rank 0
    /// keeps the pair's exact environment (name, skew, seed) so a group of
    /// size 2 is byte-identical to the pair; higher ranks get their own
    /// name and ND seed.
    fn ranked_backup_env(&self, world: &SharedWorld, rank: u32) -> SimEnv {
        if rank == 0 {
            return self.backup_env(world);
        }
        SimEnv::new(
            &format!("backup-r{rank}"),
            world.clone(),
            self.cfg.backup_skew,
            self.cfg.backup_env_seed + rank as u64,
        )
    }

    fn ranked_backup_seed(&self, rank: u32) -> u64 {
        self.cfg.backup_seed + rank as u64
    }

    /// Builds a log transport per the configured net-fault plan: an armed
    /// plan swaps the paper's perfect FIFO channel for the lossy link plus
    /// the reliability sublayer; unarmed runs keep the perfect channel
    /// (and its exact seed-run timing). Re-integration builds a second one
    /// toward the replacement backup.
    pub(crate) fn make_channel(&self) -> LogChannel {
        if self.cfg.net_fault.is_armed() {
            let link = LossyChannel::new(self.cfg.vm.cost.net.clone(), self.cfg.net_fault.clone());
            LogChannel::Reliable(Box::new(ReliableLink::new(link)))
        } else {
            let mut ch = SimChannel::new(self.cfg.vm.cost.net.clone());
            if let Some((link, offset)) = &self.shared {
                ch.attach_shared(link.clone(), *offset);
            }
            LogChannel::Perfect(ch)
        }
    }

    /// Builds the primary replica: a VM with the mode's logging
    /// coordinator over a fresh channel.
    ///
    /// # Errors
    /// Propagates program-loading errors.
    pub fn build_primary(&self, world: &SharedWorld, fault: FaultPlan) -> Result<Replica, VmError> {
        let mut core = PrimaryCore::with_transport(
            self.make_channel(),
            self.cfg.vm.cost.clone(),
            fault,
            (self.cfg.se_factory)(),
        );
        core.flush_threshold = self.cfg.flush_threshold;
        core.set_codec(self.cfg.codec);
        core.set_heartbeat_interval(self.cfg.detector.interval());
        core.set_checkpoint_interval(self.cfg.checkpoint_interval);
        let vm = Vm::new(
            self.program.clone(),
            self.natives.clone(),
            self.primary_env(world),
            self.vm_config(self.cfg.primary_seed),
        )?;
        let coord = match (self.cfg.mode, self.cfg.lock_variant) {
            (ReplicationMode::LockSync, LockVariant::PerAcquisition) => {
                ReplicaCoord::LockPrimary(LockSyncPrimary::new(core))
            }
            (ReplicationMode::LockSync, LockVariant::Intervals) => {
                ReplicaCoord::IntervalPrimary(IntervalPrimary::new(core))
            }
            (ReplicationMode::ThreadSched, _) => ReplicaCoord::TsPrimary(TsPrimary::new(core)),
        };
        Ok(Replica { role: Role::Primary, vm, coord })
    }

    /// Builds a hot (streaming) backup replica whose log starts empty.
    ///
    /// # Errors
    /// Propagates program-loading errors.
    pub fn build_hot_backup(&self, world: &SharedWorld) -> Result<Replica, VmError> {
        self.build_hot_backup_ranked(world, 0)
    }

    /// [`build_hot_backup`](ReplicaRuntime::build_hot_backup) for the
    /// standby at `rank` of a replica group (rank 0 is the pair's backup,
    /// bit-for-bit).
    ///
    /// # Errors
    /// Propagates program-loading errors.
    pub fn build_hot_backup_ranked(
        &self,
        world: &SharedWorld,
        rank: u32,
    ) -> Result<Replica, VmError> {
        let se = (self.cfg.se_factory)();
        let vm = Vm::new(
            self.program.clone(),
            self.natives.clone(),
            self.ranked_backup_env(world, rank),
            self.vm_config(self.ranked_backup_seed(rank)),
        )?;
        let cost = self.cfg.vm.cost.clone();
        let coord = match (self.cfg.mode, self.cfg.lock_variant) {
            (ReplicationMode::LockSync, LockVariant::PerAcquisition) => {
                ReplicaCoord::LockBackup(LockSyncBackup::streaming(world.clone(), se, cost))
            }
            (ReplicationMode::LockSync, LockVariant::Intervals) => {
                ReplicaCoord::IntervalBackup(IntervalBackup::streaming(world.clone(), se, cost))
            }
            (ReplicationMode::ThreadSched, _) => {
                ReplicaCoord::TsBackup(TsBackup::streaming(world.clone(), se, cost))
            }
        };
        Ok(Replica { role: Role::Backup { lag_budget: LagBudget::Hot }, vm, coord })
    }

    /// Builds a cold backup replica over a fully decoded log (the one
    /// shared drain-and-replay path — used after a crash *and* by the
    /// failure-free replay harness).
    ///
    /// # Errors
    /// Propagates program-loading and log-decoding errors.
    pub fn build_cold_backup(
        &self,
        world: &SharedWorld,
        frames: Vec<Bytes>,
    ) -> Result<Replica, VmError> {
        let mut se = (self.cfg.se_factory)();
        let log = BackupLog::decode_parallel(frames, &mut se, self.cfg.replay_threads)?;
        let mut benv = self.backup_env(world);
        // SE-handler `restore`: re-create the primary's volatile
        // environment state (open files at their recovered offsets).
        se.restore(&mut benv);
        let vm = Vm::new(
            self.program.clone(),
            self.natives.clone(),
            benv,
            self.vm_config(self.cfg.backup_seed),
        )?;
        let cost = self.cfg.vm.cost.clone();
        let coord = match (self.cfg.mode, self.cfg.lock_variant) {
            (ReplicationMode::LockSync, LockVariant::PerAcquisition) => {
                ReplicaCoord::LockBackup(LockSyncBackup::new(log, world.clone(), se, cost))
            }
            (ReplicationMode::LockSync, LockVariant::Intervals) => {
                ReplicaCoord::IntervalBackup(IntervalBackup::new(log, world.clone(), se, cost))
            }
            (ReplicationMode::ThreadSched, _) => {
                ReplicaCoord::TsBackup(TsBackup::new(log, world.clone(), se, cost))
            }
        };
        Ok(Replica { role: Role::Backup { lag_budget: LagBudget::Cold }, vm, coord })
    }

    /// Builds a replacement hot standby from an epoch snapshot blob: the
    /// VM restores from the blob, the replication-layer extension
    /// sections seed a *resumed* streaming coordinator (decoder context,
    /// consumed-sequence maps, output-id floor, latest side-effect
    /// payloads), and the replica continues from the cut as if it had
    /// consumed the whole truncated prefix.
    ///
    /// # Errors
    /// Returns an error for a corrupt blob or malformed extension
    /// sections.
    pub fn build_resumed_backup(
        &self,
        world: &SharedWorld,
        blob: &[u8],
    ) -> Result<Replica, VmError> {
        self.build_resumed_backup_ranked(world, blob, 0)
    }

    /// [`build_resumed_backup`](ReplicaRuntime::build_resumed_backup) for
    /// the standby at `rank` of a replica group.
    ///
    /// # Errors
    /// Returns an error for a corrupt blob or malformed extension
    /// sections.
    pub fn build_resumed_backup_ranked(
        &self,
        world: &SharedWorld,
        blob: &[u8],
        rank: u32,
    ) -> Result<Replica, VmError> {
        let (vm, ext) = Vm::restore(
            self.program.clone(),
            self.natives.clone(),
            world.clone(),
            &self.vm_config(self.ranked_backup_seed(rank)),
            blob,
        )
        .map_err(|e| VmError::Internal(format!("restore epoch snapshot: {e}")))?;
        let mut seed = ResumeSeed::default();
        let mut se = (self.cfg.se_factory)();
        for (tag, payload) in &ext {
            let malformed = |what: &str| VmError::Internal(format!("snapshot ext {what}"));
            match *tag {
                EXT_CODEC_CTX => seed.decoder_ctx = payload.clone(),
                EXT_ND_SEQ => {
                    seed.nd_consumed =
                        decode_vt_map(payload).map_err(|e| malformed(&format!("nd map: {e}")))?;
                }
                EXT_OUT_SEQ => {
                    seed.commit_consumed = decode_vt_map(payload)
                        .map_err(|e| malformed(&format!("commit map: {e}")))?;
                }
                EXT_COUNTERS => {
                    let mut r = WireReader::new(payload.clone());
                    seed.live_output_base =
                        r.get_uvarint().map_err(|e| malformed(&format!("counters: {e}")))?;
                }
                EXT_SE_LATEST => {
                    // Replay the latest pre-cut SE-state payload into each
                    // handler, as if it had arrived on the stream.
                    let mut r = WireReader::new(payload.clone());
                    let n = r.get_uvarint().map_err(|e| malformed(&format!("se count: {e}")))?;
                    for _ in 0..n {
                        let h = r.get_u8().map_err(|e| malformed(&format!("se handler: {e}")))?;
                        let p =
                            r.get_vbytes().map_err(|e| malformed(&format!("se payload: {e}")))?;
                        se.receive(h, p);
                    }
                }
                _ => {}
            }
        }
        let cost = self.cfg.vm.cost.clone();
        let coord = match (self.cfg.mode, self.cfg.lock_variant) {
            (ReplicationMode::LockSync, LockVariant::PerAcquisition) => {
                ReplicaCoord::LockBackup(LockSyncBackup::resumed(world.clone(), se, cost, seed)?)
            }
            (ReplicationMode::LockSync, LockVariant::Intervals) => ReplicaCoord::IntervalBackup(
                IntervalBackup::resumed(world.clone(), se, cost, seed)?,
            ),
            (ReplicationMode::ThreadSched, _) => {
                // The cut happened with no schedule record half-captured,
                // so the thread current on the primary is the designated
                // thread; the restored VM preserves it. Branch counters
                // seed from the restored threads so progress-cost
                // accounting continues rather than restarting.
                let core = vm.core();
                let designated = core
                    .current
                    .and_then(|idx| core.threads.get(idx.0 as usize))
                    .and_then(|t| t.vt.clone())
                    .or_else(|| Some(VtPath::root()));
                let last_br: HashMap<u32, u64> =
                    core.threads.iter().map(|t| (t.idx.0, t.br_cnt)).collect();
                ReplicaCoord::TsBackup(TsBackup::resumed(
                    world.clone(),
                    se,
                    cost,
                    seed,
                    designated,
                    last_br,
                )?)
            }
        };
        Ok(Replica { role: Role::Backup { lag_budget: LagBudget::Hot }, vm, coord })
    }

    /// Runs the primary to completion (or crash) and returns its report,
    /// the drained log frames, and the replication and channel statistics
    /// — the log-producing half shared by the replay harness and the
    /// log-inspection entry points.
    ///
    /// # Errors
    /// Propagates fatal VM errors.
    pub fn run_primary_to_log(
        &self,
        world: &SharedWorld,
        fault: FaultPlan,
    ) -> Result<(RunReport, Vec<Bytes>, ReplicationStats, ChannelStats), VmError> {
        let mut primary = self.build_primary(world, fault)?;
        let report = primary.run_to_end()?;
        let (mut channel, stats) = primary.into_primary_parts()?;
        let frames = channel.drain().into_iter().map(|(_, frame)| frame).collect();
        // Stats after the drain: on a lossy link the takeover delivery
        // itself detects duplicates/corruption worth counting.
        let channel_stats = channel.stats();
        Ok((report, frames, stats, channel_stats))
    }

    /// Replays a drained log on a cold backup over `world` — the single
    /// drain-and-replay helper shared by the failover and benchmark paths.
    ///
    /// # Errors
    /// Propagates fatal VM errors, including replay divergence.
    pub fn replay_log(
        &self,
        world: &SharedWorld,
        frames: Vec<Bytes>,
    ) -> Result<(RunReport, ReplicationStats, Option<SimTime>), VmError> {
        let mut backup = self.build_cold_backup(world, frames)?;
        let report = backup.run_to_end()?;
        Ok((report, backup.backup_stats(), backup.recovery_completed_at()))
    }

    /// Runs the pair with a **cold** backup. The primary runs to
    /// completion or crash; on a crash the drained log is replayed from
    /// the initial state. Bit-for-bit the pre-runtime semantics: record
    /// counts, byte stats, and console output are unchanged.
    ///
    /// # Errors
    /// Propagates fatal VM errors from either replica.
    pub fn run_cold(&self, fault: FaultPlan) -> Result<PairReport, VmError> {
        PairTask::cold(self.clone(), fault)?.run_to_completion()?.into_pair_report()
    }

    /// Runs the pair with a **hot** standby: primary and backup
    /// co-simulated on one timeline. On a crash, detection fires from
    /// missed heartbeats, the backup is promoted mid-run, and only the
    /// unconsumed log suffix is replayed — so
    /// [`PairReport::failover_latency`] is measured, not derived.
    ///
    /// # Errors
    /// Propagates fatal VM errors from either replica.
    pub fn run_hot(&self, fault: FaultPlan) -> Result<PairReport, VmError> {
        PairTask::hot(self.clone(), fault)?.run_to_completion()?.into_pair_report()
    }

    /// Runs a hot pair under epoch checkpointing, with optional
    /// backup-kill and re-integration per `plan`.
    ///
    /// The co-simulation loop is [`run_hot`](ReplicaRuntime::run_hot)'s,
    /// plus the epoch protocol: the primary cuts a checkpoint every
    /// `checkpoint_interval` flushes at a quiescent boundary, the driver
    /// relays the backup's absorbed-epoch count back as the ack, and the
    /// retained replay suffix truncates at each cut. When the plan kills
    /// the backup, the primary's reverse-heartbeat detector fires after
    /// the configured deadline and the primary enters *degraded mode*
    /// (output commits stop waiting for acknowledgments, the gap is
    /// counted in [`ReplicationStats::degraded_outputs`]). With
    /// `reintegrate`, the primary then recruits a replacement standby by
    /// force-cutting a fresh epoch and shipping the snapshot as chunk
    /// frames over a fresh channel (lossy + reliability sublayer when the
    /// net-fault plan is armed), after which the pair is 1-fault tolerant
    /// again — a subsequent primary crash fails over to the replacement.
    ///
    /// Modeling note: between the kill and the detector firing, output
    /// commits still wait on the (phantom) transport acknowledgments of
    /// the dead backup's channel — a timing artifact only; exactly-once
    /// output is unaffected.
    ///
    /// # Errors
    /// Returns an error when `checkpoint_interval` is unset, and
    /// propagates fatal VM errors from any replica.
    pub fn run_checkpointed(&self, plan: CheckpointPlan) -> Result<CheckpointReport, VmError> {
        PairTask::checkpointed(self.clone(), plan)?.run_to_completion()?.into_checkpoint_report()
    }

    /// Runs the pair with a **cold** backup under epoch checkpointing:
    /// the backup durably stores the stream in an
    /// [`EpochStore`](crate::backup::EpochStore) (the
    /// primary ships snapshot chunks at every cut, since the durable
    /// store needs the snapshot itself before it may truncate) and drops
    /// the stored prefix at each epoch mark, bounding stored memory to
    /// one epoch. On a primary crash, recovery restores the latest
    /// snapshot and replays only the stored suffix instead of the whole
    /// log.
    ///
    /// # Errors
    /// Returns an error when `checkpoint_interval` is unset, and
    /// propagates fatal VM errors.
    pub fn run_cold_checkpointed(&self, fault: FaultPlan) -> Result<PairReport, VmError> {
        PairTask::cold_checkpointed(self.clone(), fault)?.run_to_completion()?.into_pair_report()
    }

    /// Runs the pair per the configured [`LagBudget`] and
    /// [`FtConfig::checkpoint_interval`] (unset: the seed-identical
    /// non-checkpointed paths).
    ///
    /// # Errors
    /// Propagates fatal VM errors from either replica.
    pub fn run_pair(&self, fault: FaultPlan) -> Result<PairReport, VmError> {
        match (self.cfg.lag_budget, self.cfg.checkpoint_interval) {
            (LagBudget::Cold, None) => self.run_cold(fault),
            (LagBudget::Cold, Some(_)) => self.run_cold_checkpointed(fault),
            (LagBudget::Hot, None) => self.run_hot(fault),
            (LagBudget::Hot, Some(_)) => self
                .run_checkpointed(CheckpointPlan { fault, ..CheckpointPlan::default() })
                .map(|r| r.pair),
        }
    }
}

/// What to do to a checkpointed pair while it runs
/// ([`ReplicaRuntime::run_checkpointed`]).
#[derive(Debug, Clone, Default)]
pub struct CheckpointPlan {
    /// Primary-side fault injection, as in the other run drivers.
    pub fault: FaultPlan,
    /// Kill the backup once the primary has executed at least this many
    /// instruction units (rounded up to a whole co-simulation slice).
    pub kill_backup_after_units: Option<u64>,
    /// After the primary detects the dead backup, recruit a replacement
    /// standby from the latest snapshot plus the live suffix.
    pub reintegrate: bool,
}

/// Outcome of [`ReplicaRuntime::run_checkpointed`].
#[derive(Debug)]
pub struct CheckpointReport {
    /// The underlying pair report (primary plus the final survivor).
    pub pair: PairReport,
    /// Instant the backup was killed, when the plan killed one.
    pub backup_killed_at: Option<SimTime>,
    /// Instant the primary declared the backup dead and went degraded.
    pub degraded_entered_at: Option<SimTime>,
    /// Instant the replacement standby finished state transfer and went
    /// live.
    pub reintegrated_at: Option<SimTime>,
    /// True once a replacement standby was live before the run ended.
    pub reintegrated: bool,
}

impl CheckpointReport {
    /// Kill-to-live re-integration latency, when both endpoints exist.
    pub fn reintegration_latency(&self) -> Option<SimTime> {
        match (self.backup_killed_at, self.reintegrated_at) {
            (Some(k), Some(r)) if r > k => Some(r - k),
            (Some(_), Some(_)) => Some(SimTime::ZERO),
            _ => None,
        }
    }

    /// Length of the degraded window (detector fired → replacement live),
    /// when the run went degraded. Open-ended windows (never re-armed)
    /// return `None`.
    pub fn degraded_window(&self) -> Option<SimTime> {
        match (self.degraded_entered_at, self.reintegrated_at) {
            (Some(d), Some(r)) if r > d => Some(r - d),
            (Some(_), Some(_)) => Some(SimTime::ZERO),
            _ => None,
        }
    }
}

/// Replays heartbeat arrivals from a drained channel into `monitor` and
/// returns the resulting detection deadline. Heartbeat frames are
/// self-contained fixed-codec frames, so they decode independently of the
/// replay stream's codec state.
pub(crate) fn observe_heartbeats(
    monitor: &mut HeartbeatMonitor,
    drained: &[(SimTime, Bytes)],
) -> SimTime {
    for (arrival, frame) in drained {
        if crate::codec::frame_is_heartbeat(frame) {
            monitor.observe(*arrival);
        }
    }
    monitor.deadline()
}
