//! The native-method interface (the VM's "JNI") and the standard-library
//! natives.
//!
//! Native methods are the only non-deterministic *commands* in the VM
//! (paper §3.2): they may read the environment (clock, RNG, file contents)
//! and produce output to it. Each [`NativeDecl`] carries the annotations
//! the paper adds to native methods so the state machine can handle them:
//! whether the method is non-deterministic (its results must be logged and
//! adopted by the backup), whether it performs output (requiring output
//! commit and exactly-once handling), and whether it creates volatile
//! environment state (requiring a side-effect handler).
//!
//! Natives come in three kinds:
//! * **simple** — one atomic Rust function;
//! * **phased** — a sequence of functions with preemption points between
//!   phases, which may acquire and release monitors *inside* the native;
//!   this exercises the paper's hard case of a thread rescheduled while
//!   executing a native method (§4.2);
//! * **intrinsic** — thread and VM operations (spawn, wait/notify, sleep,
//!   yield, gc) implemented by the executor itself.

use crate::env::SimEnv;
use crate::heap::{Heap, HeapEntry};
use crate::thread::AdoptedOutcome;
use crate::value::{ObjRef, Value};
use ftjvm_netsim::SimTime;
use std::collections::HashMap;

/// An abnormal native-method completion, converted by the interpreter into
/// a catchable throwable whose code is `excode::NATIVE_BASE + code`.
#[derive(Debug, Clone, PartialEq)]
pub struct NativeAbort {
    /// Application-visible error code.
    pub code: i64,
    /// Diagnostic message (logged, not visible to bytecode).
    pub msg: String,
}

impl NativeAbort {
    /// Creates an abort with a code and message.
    pub fn new(code: i64, msg: impl Into<String>) -> Self {
        NativeAbort { code, msg: msg.into() }
    }
}

/// The completed result of a native call, as observed by the replication
/// layer: the return value (or abort) plus snapshots of any array arguments
/// the native mutated.
#[derive(Debug, Clone, PartialEq)]
pub struct NativeOutcome {
    /// Return value or abort.
    pub result: Result<Option<Value>, NativeAbort>,
    /// Mutated array arguments: (argument index, full contents after).
    pub out_args: Vec<(u8, Vec<Value>)>,
}

/// What one phase of a phased native asks the executor to do next.
#[derive(Debug, Clone, PartialEq)]
pub enum PhaseOutcome {
    /// The native is finished with this return value.
    Done(Option<Value>),
    /// Proceed to the next phase (a preemption point).
    Continue,
    /// Acquire the monitor of the given object through the full
    /// (coordinated, possibly blocking) monitor protocol, then proceed to
    /// the next phase.
    AcquireMonitor(ObjRef),
    /// Release the monitor of the given object, then proceed to the next
    /// phase.
    ReleaseMonitor(ObjRef),
}

/// Execution context handed to native implementations.
#[derive(Debug)]
pub struct NativeCtx<'a> {
    /// The heap (for reading/writing array and object arguments).
    pub heap: &'a mut Heap,
    /// This replica's environment.
    pub env: &'a mut SimEnv,
    /// Current simulated instant.
    pub now: SimTime,
    /// Argument values, receiver (if any) first.
    pub args: &'a [Value],
    /// Scratch slots persisting across the phases of a phased native.
    pub scratch: &'a mut Vec<Value>,
    /// Output id assigned at output commit, for output-performing natives.
    pub output_id: Option<u64>,
    /// The primary-logged outcome being imposed during backup replay, if
    /// any. Natives that allocate environment handles (e.g. `file.open`)
    /// must bind their volatile state to the adopted value.
    pub adopted: Option<&'a AdoptedOutcome>,
    /// Out-argument snapshots the native reports for logging.
    pub out_args: &'a mut Vec<(u8, Vec<Value>)>,
}

impl<'a> NativeCtx<'a> {
    /// Integer argument `i`.
    ///
    /// # Errors
    /// Aborts with code 90 if the argument is missing or not an int.
    pub fn int_arg(&self, i: usize) -> Result<i64, NativeAbort> {
        self.args
            .get(i)
            .copied()
            .and_then(|v| v.as_int().ok())
            .ok_or_else(|| NativeAbort::new(90, format!("argument {i} must be an int")))
    }

    /// Reference argument `i`.
    ///
    /// # Errors
    /// Aborts with code 91 if the argument is missing, null, or not a ref.
    pub fn ref_arg(&self, i: usize) -> Result<ObjRef, NativeAbort> {
        self.args.get(i).copied().and_then(|v| v.as_ref().ok()).ok_or_else(|| {
            NativeAbort::new(91, format!("argument {i} must be a non-null reference"))
        })
    }

    /// Reads array argument `i` as bytes.
    ///
    /// # Errors
    /// Aborts with code 92 if the argument is not a live array.
    pub fn bytes_arg(&self, i: usize) -> Result<Vec<u8>, NativeAbort> {
        let r = self.ref_arg(i)?;
        self.heap
            .array_as_bytes(r)
            .ok_or_else(|| NativeAbort::new(92, format!("argument {i} must be an array")))
    }

    /// Overwrites the prefix of array argument `i` with `data` (as ints)
    /// and records the full array in `out_args` for logging.
    ///
    /// # Errors
    /// Aborts with code 92 if the argument is not a live array.
    pub fn fill_array_arg(&mut self, i: usize, data: &[u8]) -> Result<(), NativeAbort> {
        let r = self.ref_arg(i)?;
        let elems = match self.heap.get_mut(r) {
            Some(HeapEntry::Arr { elems }) => elems,
            _ => return Err(NativeAbort::new(92, format!("argument {i} must be an array"))),
        };
        for (slot, b) in elems.iter_mut().zip(data.iter()) {
            *slot = Value::Int(*b as i64);
        }
        let snapshot = elems.clone();
        self.out_args.push((i as u8, snapshot));
        Ok(())
    }

    /// The virtual file descriptor the primary logged for this call, when
    /// replaying an environment-handle-returning native.
    pub fn adopted_handle(&self) -> Option<u64> {
        match self.adopted?.result {
            Some(Ok(Some(Value::Int(v)))) => Some(v as u64),
            _ => None,
        }
    }
}

/// A simple (atomic) native implementation.
pub type SimpleFn = fn(&mut NativeCtx<'_>) -> Result<Option<Value>, NativeAbort>;
/// One phase of a phased native.
pub type PhaseFn = fn(&mut NativeCtx<'_>) -> Result<PhaseOutcome, NativeAbort>;

/// Thread/VM operations implemented by the executor itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intrinsic {
    /// `sys.spawn(method_id, arg)` — start a new application thread.
    Spawn,
    /// `obj.wait(receiver)` — wait on the receiver's monitor.
    Wait,
    /// `obj.notify(receiver)` — wake one waiter.
    Notify,
    /// `obj.notify_all(receiver)` — wake all waiters.
    NotifyAll,
    /// `sys.sleep(ms)` — sleep in simulated time.
    Sleep,
    /// `sys.yield()` — voluntary reschedule.
    Yield,
    /// `sys.gc()` — synchronous garbage collection.
    Gc,
}

/// Implementation body of a native method.
#[derive(Debug, Clone)]
pub enum NativeKind {
    /// One atomic function.
    Simple(SimpleFn),
    /// Preemptible phases.
    Phased(Vec<PhaseFn>),
    /// Executor-implemented.
    Intrinsic(Intrinsic),
}

/// A registered native method with its replication annotations.
#[derive(Debug, Clone)]
pub struct NativeDecl {
    /// Signature name (`"file.open"`); programs import by this name.
    pub name: String,
    /// Argument count.
    pub argc: u8,
    /// Whether it pushes a return value.
    pub returns: bool,
    /// Results are not determined by the read set: log at the primary,
    /// adopt at the backup (§4.1).
    pub nondeterministic: bool,
    /// Performs output to the environment: requires output commit before
    /// execution and exactly-once treatment on recovery (§3.4).
    pub output: bool,
    /// Creates volatile environment state that a side-effect handler must
    /// recover (§4.4, restriction R6).
    pub creates_volatile: bool,
    /// The body.
    pub kind: NativeKind,
}

/// The registry of native methods known to a VM instance.
#[derive(Debug, Clone, Default)]
pub struct NativeRegistry {
    decls: Vec<NativeDecl>,
    by_name: HashMap<String, usize>,
}

impl NativeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        NativeRegistry::default()
    }

    /// Creates a registry with the standard-library natives (clock, RNG,
    /// console, file I/O, bulk helpers) and the thread intrinsics.
    pub fn with_builtins() -> Self {
        let mut r = NativeRegistry::new();
        r.install_builtins();
        r
    }

    /// Registers a native. Re-registering a name replaces the previous
    /// declaration (tests use this to interpose).
    pub fn register(&mut self, decl: NativeDecl) {
        match self.by_name.get(&decl.name) {
            Some(&i) => self.decls[i] = decl,
            None => {
                self.by_name.insert(decl.name.clone(), self.decls.len());
                self.decls.push(decl);
            }
        }
    }

    /// Looks up a native by signature name.
    pub fn lookup(&self, name: &str) -> Option<&NativeDecl> {
        self.by_name.get(name).map(|&i| &self.decls[i])
    }

    /// All registered declarations.
    pub fn decls(&self) -> &[NativeDecl] {
        &self.decls
    }

    fn install_builtins(&mut self) {
        // --- non-deterministic inputs ---
        self.register(NativeDecl {
            name: "sys.clock".into(),
            argc: 0,
            returns: true,
            nondeterministic: true,
            output: false,
            creates_volatile: false,
            kind: NativeKind::Simple(|ctx| Ok(Some(Value::Int(ctx.env.wall_clock_ms(ctx.now))))),
        });
        self.register(NativeDecl {
            name: "sys.rand".into(),
            argc: 1,
            returns: true,
            nondeterministic: true,
            output: false,
            creates_volatile: false,
            kind: NativeKind::Simple(|ctx| {
                let bound = ctx.int_arg(0)?;
                Ok(Some(Value::Int(ctx.env.rand(bound))))
            }),
        });

        // --- console output (testable) ---
        self.register(NativeDecl {
            name: "sys.print".into(),
            argc: 1,
            returns: false,
            nondeterministic: false,
            output: true,
            creates_volatile: false,
            kind: NativeKind::Simple(|ctx| {
                let text = String::from_utf8_lossy(&ctx.bytes_arg(0)?).into_owned();
                let id = ctx.output_id.unwrap_or(u64::MAX);
                ctx.env.println(id, &text);
                Ok(None)
            }),
        });
        self.register(NativeDecl {
            name: "sys.print_int".into(),
            argc: 1,
            returns: false,
            nondeterministic: false,
            output: true,
            creates_volatile: false,
            kind: NativeKind::Simple(|ctx| {
                let v = ctx.int_arg(0)?;
                let id = ctx.output_id.unwrap_or(u64::MAX);
                ctx.env.println(id, &v.to_string());
                Ok(None)
            }),
        });

        // --- file I/O (volatile state; SE-handled) ---
        self.register(NativeDecl {
            name: "file.open".into(),
            argc: 1,
            returns: true,
            nondeterministic: true,
            output: false,
            creates_volatile: true,
            kind: NativeKind::Simple(|ctx| {
                let name = String::from_utf8_lossy(&ctx.bytes_arg(0)?).into_owned();
                let forced = ctx.adopted_handle();
                let vfd = ctx.env.open(&name, forced);
                Ok(Some(Value::Int(vfd as i64)))
            }),
        });
        self.register(NativeDecl {
            name: "file.close".into(),
            argc: 1,
            returns: false,
            // Effect depends on volatile environment state (the fd table),
            // so it is intercepted like an ND method: the backup adopts the
            // logged (empty) result and recovers the fd table through the
            // file SE handler instead of re-executing.
            nondeterministic: true,
            output: false,
            creates_volatile: true,
            kind: NativeKind::Simple(|ctx| {
                let vfd = ctx.int_arg(0)? as u64;
                ctx.env
                    .close(vfd)
                    .map_err(|_| NativeAbort::new(10, "close of unknown descriptor"))?;
                Ok(None)
            }),
        });
        self.register(NativeDecl {
            name: "file.read".into(),
            argc: 3,
            returns: true,
            nondeterministic: true,
            output: false,
            creates_volatile: true,
            kind: NativeKind::Simple(|ctx| {
                let vfd = ctx.int_arg(0)? as u64;
                let len = ctx.int_arg(2)?.max(0) as usize;
                let data = ctx
                    .env
                    .read(vfd, len)
                    .map_err(|_| NativeAbort::new(11, "read of unknown descriptor"))?;
                let n = data.len();
                ctx.fill_array_arg(1, &data)?;
                Ok(Some(Value::Int(n as i64)))
            }),
        });
        self.register(NativeDecl {
            name: "file.write".into(),
            argc: 3,
            returns: true,
            nondeterministic: true,
            output: true,
            creates_volatile: true,
            kind: NativeKind::Simple(|ctx| {
                let vfd = ctx.int_arg(0)? as u64;
                let len = ctx.int_arg(2)?.max(0) as usize;
                let bytes = ctx.bytes_arg(1)?;
                let bytes = &bytes[..len.min(bytes.len())];
                let id = ctx.output_id.unwrap_or(u64::MAX);
                let n = ctx
                    .env
                    .write(vfd, bytes, id)
                    .map_err(|_| NativeAbort::new(12, "write to unknown descriptor"))?;
                Ok(Some(Value::Int(n as i64)))
            }),
        });
        self.register(NativeDecl {
            name: "file.seek".into(),
            argc: 2,
            returns: false,
            // Same reasoning as `file.close`: volatile-state-dependent.
            nondeterministic: true,
            output: false,
            creates_volatile: true,
            kind: NativeKind::Simple(|ctx| {
                let vfd = ctx.int_arg(0)? as u64;
                let off = ctx.int_arg(1)?.max(0) as usize;
                ctx.env
                    .seek(vfd, off)
                    .map_err(|_| NativeAbort::new(13, "seek on unknown descriptor"))?;
                Ok(None)
            }),
        });
        self.register(NativeDecl {
            name: "file.size".into(),
            argc: 1,
            returns: true,
            nondeterministic: true,
            output: false,
            creates_volatile: false,
            kind: NativeKind::Simple(|ctx| {
                let vfd = ctx.int_arg(0)? as u64;
                let n = ctx
                    .env
                    .size(vfd)
                    .map_err(|_| NativeAbort::new(14, "size of unknown descriptor"))?;
                Ok(Some(Value::Int(n as i64)))
            }),
        });

        // --- sockets: the paper's canonical non-idempotent output
        // ("replaying messages on a socket would not recover the state at
        // the backup") — handled through the socket SE handler. ---
        self.register(NativeDecl {
            name: "sock.connect".into(),
            argc: 1,
            returns: true,
            nondeterministic: true,
            output: false,
            creates_volatile: true,
            kind: NativeKind::Simple(|ctx| {
                let peer = String::from_utf8_lossy(&ctx.bytes_arg(0)?).into_owned();
                let forced = ctx.adopted_handle();
                let sd = ctx.env.sock_connect(&peer, forced);
                Ok(Some(Value::Int(sd as i64)))
            }),
        });
        self.register(NativeDecl {
            name: "sock.send".into(),
            argc: 3,
            returns: true,
            nondeterministic: true,
            output: true,
            creates_volatile: true,
            kind: NativeKind::Simple(|ctx| {
                let sd = ctx.int_arg(0)? as u64;
                let len = ctx.int_arg(2)?.max(0) as usize;
                let bytes = ctx.bytes_arg(1)?;
                let bytes = &bytes[..len.min(bytes.len())];
                let id = ctx.output_id.unwrap_or(u64::MAX);
                let n = ctx
                    .env
                    .sock_send(sd, bytes, id)
                    .map_err(|_| NativeAbort::new(20, "send on unknown socket"))?;
                Ok(Some(Value::Int(n as i64)))
            }),
        });
        self.register(NativeDecl {
            name: "sock.close".into(),
            argc: 1,
            returns: false,
            // Volatile-state dependent, like file.close: intercepted so the
            // backup skips it during replay and recovers the socket table
            // through the SE handler instead.
            nondeterministic: true,
            output: false,
            creates_volatile: true,
            kind: NativeKind::Simple(|ctx| {
                let sd = ctx.int_arg(0)? as u64;
                ctx.env
                    .sock_close(sd)
                    .map_err(|_| NativeAbort::new(21, "close of unknown socket"))?;
                Ok(None)
            }),
        });

        // --- a deliberately long, lock-acquiring phased native: sums an
        // int array while holding the monitor of its first argument, with a
        // preemption point mid-scan. Deterministic given its read set. ---
        self.register(NativeDecl {
            name: "bulk.locked_sum".into(),
            argc: 2,
            returns: true,
            nondeterministic: false,
            output: false,
            creates_volatile: false,
            kind: NativeKind::Phased(vec![
                // Phase 0: ask for the lock.
                |ctx| Ok(PhaseOutcome::AcquireMonitor(ctx.ref_arg(0)?)),
                // Phase 1: sum the first half.
                |ctx| {
                    let arr = ctx.ref_arg(1)?;
                    let sum = match ctx.heap.get(arr) {
                        Some(HeapEntry::Arr { elems }) => elems[..elems.len() / 2]
                            .iter()
                            .map(|v| v.as_int().unwrap_or(0))
                            .sum::<i64>(),
                        _ => return Err(NativeAbort::new(92, "argument 1 must be an array")),
                    };
                    ctx.scratch.push(Value::Int(sum));
                    Ok(PhaseOutcome::Continue)
                },
                // Phase 2: sum the rest and release.
                |ctx| {
                    let arr = ctx.ref_arg(1)?;
                    let sum = match ctx.heap.get(arr) {
                        Some(HeapEntry::Arr { elems }) => elems[elems.len() / 2..]
                            .iter()
                            .map(|v| v.as_int().unwrap_or(0))
                            .sum::<i64>(),
                        _ => return Err(NativeAbort::new(92, "argument 1 must be an array")),
                    };
                    let half = ctx.scratch[0].as_int().unwrap_or(0);
                    ctx.scratch[0] = Value::Int(half + sum);
                    Ok(PhaseOutcome::ReleaseMonitor(ctx.ref_arg(0)?))
                },
                // Phase 3: done.
                |ctx| Ok(PhaseOutcome::Done(Some(ctx.scratch[0]))),
            ]),
        });

        // --- intrinsics ---
        let intrinsics: [(&str, u8, bool, Intrinsic); 7] = [
            ("sys.spawn", 2, false, Intrinsic::Spawn),
            ("obj.wait", 1, false, Intrinsic::Wait),
            ("obj.notify", 1, false, Intrinsic::Notify),
            ("obj.notify_all", 1, false, Intrinsic::NotifyAll),
            ("sys.sleep", 1, false, Intrinsic::Sleep),
            ("sys.yield", 0, false, Intrinsic::Yield),
            ("sys.gc", 0, false, Intrinsic::Gc),
        ];
        for (name, argc, returns, which) in intrinsics {
            self.register(NativeDecl {
                name: name.into(),
                argc,
                returns,
                nondeterministic: false,
                output: false,
                creates_volatile: false,
                kind: NativeKind::Intrinsic(which),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::World;

    fn ctx_fixture() -> (Heap, SimEnv) {
        let heap = Heap::new(100, 50);
        let env = SimEnv::new("p", World::shared(), SimTime::ZERO, 7);
        (heap, env)
    }

    #[test]
    fn builtins_are_registered_with_annotations() {
        let r = NativeRegistry::with_builtins();
        let clock = r.lookup("sys.clock").unwrap();
        assert!(clock.nondeterministic && !clock.output);
        let print = r.lookup("sys.print").unwrap();
        assert!(print.output && !print.nondeterministic);
        let open = r.lookup("file.open").unwrap();
        assert!(open.nondeterministic && open.creates_volatile);
        let write = r.lookup("file.write").unwrap();
        assert!(write.output && write.creates_volatile && write.nondeterministic);
        assert!(matches!(
            r.lookup("sys.spawn").unwrap().kind,
            NativeKind::Intrinsic(Intrinsic::Spawn)
        ));
        assert!(r.lookup("no.such").is_none());
    }

    #[test]
    fn reregistering_replaces() {
        let mut r = NativeRegistry::with_builtins();
        let n = r.decls().len();
        r.register(NativeDecl {
            name: "sys.clock".into(),
            argc: 0,
            returns: true,
            nondeterministic: false,
            output: false,
            creates_volatile: false,
            kind: NativeKind::Simple(|_| Ok(Some(Value::Int(42)))),
        });
        assert_eq!(r.decls().len(), n);
        assert!(!r.lookup("sys.clock").unwrap().nondeterministic);
    }

    #[test]
    fn clock_native_reads_env() {
        let (mut heap, mut env) = ctx_fixture();
        env.clock_skew = SimTime::from_millis(5);
        let mut scratch = Vec::new();
        let mut out_args = Vec::new();
        let mut ctx = NativeCtx {
            heap: &mut heap,
            env: &mut env,
            now: SimTime::from_millis(100),
            args: &[],
            scratch: &mut scratch,
            output_id: None,
            adopted: None,
            out_args: &mut out_args,
        };
        let r = NativeRegistry::with_builtins();
        let NativeKind::Simple(f) = r.lookup("sys.clock").unwrap().kind else { panic!() };
        assert_eq!(f(&mut ctx).unwrap(), Some(Value::Int(105)));
    }

    #[test]
    fn fill_array_arg_records_out_args() {
        let (mut heap, mut env) = ctx_fixture();
        let arr = heap.alloc_array(4).unwrap();
        let args = [Value::Ref(arr)];
        let mut scratch = Vec::new();
        let mut out_args = Vec::new();
        let mut ctx = NativeCtx {
            heap: &mut heap,
            env: &mut env,
            now: SimTime::ZERO,
            args: &args,
            scratch: &mut scratch,
            output_id: None,
            adopted: None,
            out_args: &mut out_args,
        };
        ctx.fill_array_arg(0, b"ab").unwrap();
        assert_eq!(out_args.len(), 1);
        assert_eq!(out_args[0].0, 0);
        assert_eq!(out_args[0].1[0], Value::Int(97));
        assert_eq!(out_args[0].1[3], Value::Null, "unwritten tail preserved");
    }

    #[test]
    fn arg_accessor_errors() {
        let (mut heap, mut env) = ctx_fixture();
        let args = [Value::Null];
        let mut scratch = Vec::new();
        let mut out_args = Vec::new();
        let ctx = NativeCtx {
            heap: &mut heap,
            env: &mut env,
            now: SimTime::ZERO,
            args: &args,
            scratch: &mut scratch,
            output_id: None,
            adopted: None,
            out_args: &mut out_args,
        };
        assert_eq!(ctx.int_arg(0).unwrap_err().code, 90);
        assert_eq!(ctx.ref_arg(0).unwrap_err().code, 91);
        assert_eq!(ctx.int_arg(5).unwrap_err().code, 90);
    }
}
