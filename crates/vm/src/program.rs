//! The program assembler and verifier.
//!
//! Programs are built in Rust against a small assembler API — the
//! substitute for `javac` + classfile parsing (see `DESIGN.md` §2). The
//! [`ProgramBuilder`] owns classes, interned strings, virtual-slot
//! declarations and native imports; each [`MethodBuilder`] emits bytecode
//! with forward-referencing labels. [`ProgramBuilder::build`] runs a
//! verifier (label resolution, stack-discipline simulation, signature
//! checks) so that workloads cannot crash the interpreter with malformed
//! code.
//!
//! # Example
//!
//! ```
//! use ftjvm_vm::program::ProgramBuilder;
//!
//! let mut b = ProgramBuilder::new();
//! let mut m = b.method("main", 1);
//! let done = m.new_label();
//! m.push_i(10).store(1);          // i = 10
//! let top = m.bind_new_label();
//! m.load(1).if_not(done);         // while (i != 0)
//! m.inc(1, -1).goto(top);         //   i -= 1
//! m.bind(done);
//! m.ret_void();
//! let entry = m.build(&mut b);
//! let program = b.build(entry)?;
//! assert_eq!(program.methods.len(), 1);
//! # Ok::<(), ftjvm_vm::program::BuildError>(())
//! ```

use crate::bytecode::{ClassId, Cmp, Insn, MethodId, NativeId, StrId, VSlot};
use crate::class::{builtin, Class, Handler, Method, NativeImport, Program};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Error produced when a program fails verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A label was never bound.
    UnboundLabel {
        /// The offending method.
        method: String,
    },
    /// A branch target or handler range is outside the code array.
    BadTarget {
        /// The offending method.
        method: String,
        /// The bad instruction index.
        target: u32,
    },
    /// The operand stack would underflow, or depths disagree at a join.
    StackMismatch {
        /// The offending method.
        method: String,
        /// Instruction index where the mismatch was detected.
        pc: u32,
        /// Explanation.
        detail: String,
    },
    /// A local-variable index exceeds the method's local count.
    BadLocal {
        /// The offending method.
        method: String,
        /// Offending local index.
        index: u16,
    },
    /// Control can fall off the end of the method.
    FallsOffEnd {
        /// The offending method.
        method: String,
    },
    /// An invocation disagrees with the callee's declared signature.
    SignatureMismatch {
        /// The offending method.
        method: String,
        /// Explanation.
        detail: String,
    },
    /// A vtable entry's method does not match its slot declaration.
    VtableMismatch {
        /// Class name.
        class: String,
        /// Explanation.
        detail: String,
    },
    /// The entry point is not a one-argument static method.
    BadEntry,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnboundLabel { method } => {
                write!(f, "method `{method}` has an unbound label")
            }
            BuildError::BadTarget { method, target } => {
                write!(f, "method `{method}` branches to invalid pc {target}")
            }
            BuildError::StackMismatch { method, pc, detail } => {
                write!(f, "method `{method}` pc {pc}: stack discipline violated: {detail}")
            }
            BuildError::BadLocal { method, index } => {
                write!(f, "method `{method}` uses out-of-range local {index}")
            }
            BuildError::FallsOffEnd { method } => {
                write!(f, "method `{method}` can fall off the end of its code")
            }
            BuildError::SignatureMismatch { method, detail } => {
                write!(f, "method `{method}`: {detail}")
            }
            BuildError::VtableMismatch { class, detail } => {
                write!(f, "class `{class}`: {detail}")
            }
            BuildError::BadEntry => {
                f.write_str("entry point must be a static method of one argument")
            }
        }
    }
}

impl Error for BuildError {}

/// An unbound or bound jump target inside a [`MethodBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

#[derive(Debug, Clone)]
struct VSlotDecl {
    name: String,
    argc: u8,
    returns: bool,
}

/// Builds a [`Program`]: registry of classes, methods, strings, virtual
/// slots and native imports.
#[derive(Debug)]
pub struct ProgramBuilder {
    classes: Vec<Class>,
    methods: Vec<Option<Method>>,
    method_names: Vec<String>,
    strings: Vec<String>,
    vslots: Vec<VSlotDecl>,
    native_imports: Vec<NativeImport>,
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgramBuilder {
    /// Creates a builder with the builtin classes (`Object`, `Throwable`,
    /// `RuntimeException`, `SoftRef`) pre-registered.
    pub fn new() -> Self {
        let mut b = ProgramBuilder {
            classes: Vec::new(),
            methods: Vec::new(),
            method_names: Vec::new(),
            strings: Vec::new(),
            vslots: Vec::new(),
            native_imports: Vec::new(),
        };
        let object = b.add_root_class("java/lang/Object");
        debug_assert_eq!(object, builtin::OBJECT);
        let throwable = b.add_class("java/lang/Throwable", object, 1, 0);
        debug_assert_eq!(throwable, builtin::THROWABLE);
        let rte = b.add_class("java/lang/RuntimeException", throwable, 0, 0);
        debug_assert_eq!(rte, builtin::RUNTIME_EXCEPTION);
        let soft = b.add_class("java/lang/SoftReference", object, 1, 0);
        debug_assert_eq!(soft, builtin::SOFT_REF);
        b
    }

    fn add_root_class(&mut self, name: &str) -> ClassId {
        let id = ClassId(self.classes.len() as u16);
        self.classes.push(Class {
            name: name.to_string(),
            id,
            super_class: None,
            n_fields: 0,
            n_statics: 0,
            vtable: Vec::new(),
            finalizer: None,
        });
        id
    }

    /// Registers a class extending `super_class` with `own_fields` new
    /// instance fields (slots continue after the inherited ones) and
    /// `n_statics` static slots.
    pub fn add_class(
        &mut self,
        name: &str,
        super_class: ClassId,
        own_fields: u16,
        n_statics: u16,
    ) -> ClassId {
        let id = ClassId(self.classes.len() as u16);
        let sup = &self.classes[super_class.0 as usize];
        let n_fields = sup.n_fields + own_fields;
        let vtable = sup.vtable.clone();
        self.classes.push(Class {
            name: name.to_string(),
            id,
            super_class: Some(super_class),
            n_fields,
            n_statics,
            vtable,
            finalizer: None,
        });
        id
    }

    /// First instance-field slot owned by `class` itself (after inherited
    /// slots).
    pub fn first_own_field(&self, class: ClassId) -> u16 {
        match self.classes[class.0 as usize].super_class {
            Some(s) => self.classes[s.0 as usize].n_fields,
            None => 0,
        }
    }

    /// Declares a virtual-method slot with a fixed signature shared by all
    /// overrides. `argc` includes the receiver.
    pub fn declare_vslot(&mut self, name: &str, argc: u8, returns: bool) -> VSlot {
        assert!(argc >= 1, "virtual methods take at least the receiver");
        let slot = VSlot(self.vslots.len() as u16);
        self.vslots.push(VSlotDecl { name: name.to_string(), argc, returns });
        slot
    }

    /// Installs `method` as `class`'s implementation of `slot`.
    /// Subclasses registered *after* this call inherit the entry.
    pub fn set_vtable(&mut self, class: ClassId, slot: VSlot, method: MethodId) {
        let table = &mut self.classes[class.0 as usize].vtable;
        if table.len() <= slot.0 as usize {
            table.resize(slot.0 as usize + 1, None);
        }
        table[slot.0 as usize] = Some(method);
    }

    /// Sets `class`'s finalizer (a one-argument method receiving the dying
    /// object; run on the finalizer system thread).
    pub fn set_finalizer(&mut self, class: ClassId, method: MethodId) {
        self.classes[class.0 as usize].finalizer = Some(method);
    }

    /// Interns a string constant for use with `const_str`.
    pub fn intern(&mut self, s: &str) -> StrId {
        if let Some(i) = self.strings.iter().position(|x| x == s) {
            return StrId(i as u32);
        }
        let id = StrId(self.strings.len() as u32);
        self.strings.push(s.to_string());
        id
    }

    /// Declares a native import with the given signature; the id is used
    /// with `invoke_native` and resolved against the registry at VM start.
    pub fn import_native(&mut self, name: &str, argc: u8, returns: bool) -> NativeId {
        if let Some(i) = self.native_imports.iter().position(|n| n.name == name) {
            let existing = &self.native_imports[i];
            assert!(
                existing.argc == argc && existing.returns == returns,
                "conflicting import signatures for native `{name}`"
            );
            return NativeId(i as u32);
        }
        let id = NativeId(self.native_imports.len() as u32);
        self.native_imports.push(NativeImport { name: name.to_string(), argc, returns });
        id
    }

    /// Starts a new method, reserving its [`MethodId`] immediately so that
    /// mutually recursive methods can reference each other before their
    /// bodies are built.
    pub fn method(&mut self, name: &str, n_args: u8) -> MethodBuilder {
        let id = MethodId(self.methods.len() as u32);
        self.methods.push(None);
        self.method_names.push(name.to_string());
        MethodBuilder::new(id, name, n_args)
    }

    fn define(&mut self, m: Method) {
        let idx = m.id.0 as usize;
        self.methods[idx] = Some(m);
    }

    /// Verifies everything and produces the immutable [`Program`].
    ///
    /// # Errors
    /// Returns a [`BuildError`] describing the first verification failure.
    pub fn build(self, entry: MethodId) -> Result<Program, BuildError> {
        let methods: Vec<Method> = self
            .methods
            .into_iter()
            .enumerate()
            .map(|(i, m)| {
                m.unwrap_or_else(|| {
                    panic!("method `{}` declared but never built", self.method_names[i])
                })
            })
            .collect();
        let program = Program {
            classes: self.classes,
            methods,
            strings: self.strings,
            native_imports: self.native_imports,
            entry,
        };
        verify(&program, &self.vslots)?;
        Ok(program)
    }
}

enum Emit {
    Insn(Insn),
    /// Placeholder branch: opcode kind + label to resolve.
    Branch(BranchKind, Label),
}

#[derive(Clone, Copy)]
enum BranchKind {
    Goto,
    If,
    IfNot,
    IfNull,
}

struct PendingHandler {
    start: Label,
    end: Label,
    class: Option<ClassId>,
    target: Label,
}

/// Emits the bytecode of one method. Obtain via [`ProgramBuilder::method`];
/// finish with [`MethodBuilder::build`].
pub struct MethodBuilder {
    id: MethodId,
    name: String,
    n_args: u8,
    max_local: u16,
    synchronized: bool,
    is_static: bool,
    class: Option<ClassId>,
    code: Vec<Emit>,
    labels: Vec<Option<u32>>,
    handlers: Vec<PendingHandler>,
}

impl MethodBuilder {
    fn new(id: MethodId, name: &str, n_args: u8) -> Self {
        MethodBuilder {
            id,
            name: name.to_string(),
            n_args,
            max_local: n_args.max(1) as u16,
            synchronized: false,
            is_static: true,
            class: None,
            code: Vec::new(),
            labels: Vec::new(),
            handlers: Vec::new(),
        }
    }

    /// The id reserved for this method.
    pub fn id(&self) -> MethodId {
        self.id
    }

    /// Marks the method `synchronized` (locks the receiver, which must be
    /// argument 0 of an instance method).
    pub fn synchronized(&mut self) -> &mut Self {
        self.synchronized = true;
        self
    }

    /// Marks the method as an instance method of `class` (argument 0 is the
    /// receiver).
    pub fn instance_of(&mut self, class: ClassId) -> &mut Self {
        self.is_static = false;
        self.class = Some(class);
        self
    }

    /// Associates a static method with a class (used by synchronized
    /// statics, which lock the class object).
    pub fn static_of(&mut self, class: ClassId) -> &mut Self {
        self.is_static = true;
        self.class = Some(class);
        self
    }

    /// Creates an unbound label for forward references.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the next emitted instruction.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        self.labels[label.0] = Some(self.code.len() as u32);
        self
    }

    /// Creates a label bound to the next emitted instruction.
    pub fn bind_new_label(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    /// Registers an exception handler covering `[start, end)` that jumps to
    /// `target` with the thrown object on the stack. `class: None` catches
    /// all throwables.
    pub fn handler(
        &mut self,
        start: Label,
        end: Label,
        class: Option<ClassId>,
        target: Label,
    ) -> &mut Self {
        self.handlers.push(PendingHandler { start, end, class, target });
        self
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, i: Insn) -> &mut Self {
        if let Insn::Load(n) | Insn::Store(n) | Insn::Inc(n, _) = i {
            self.max_local = self.max_local.max(n + 1);
        }
        self.code.push(Emit::Insn(i));
        self
    }

    // --- convenience emitters ---

    /// Push an integer constant.
    pub fn push_i(&mut self, v: i64) -> &mut Self {
        self.emit(Insn::Const(v))
    }
    /// Push a double constant.
    pub fn push_d(&mut self, v: f64) -> &mut Self {
        self.emit(Insn::DConst(v))
    }
    /// Push `null`.
    pub fn push_null(&mut self) -> &mut Self {
        self.emit(Insn::ConstNull)
    }
    /// Push a fresh byte array holding the interned string.
    pub fn const_str(&mut self, s: StrId) -> &mut Self {
        self.emit(Insn::ConstStr(s))
    }
    /// Duplicate the top of stack.
    pub fn dup(&mut self) -> &mut Self {
        self.emit(Insn::Dup)
    }
    /// Duplicate under the top (`a b -> a b a`).
    pub fn dup_x1(&mut self) -> &mut Self {
        self.emit(Insn::DupX1)
    }
    /// Discard the top of stack.
    pub fn pop(&mut self) -> &mut Self {
        self.emit(Insn::Pop)
    }
    /// Swap the top two slots.
    pub fn swap(&mut self) -> &mut Self {
        self.emit(Insn::Swap)
    }
    /// Push local `n`.
    pub fn load(&mut self, n: u16) -> &mut Self {
        self.emit(Insn::Load(n))
    }
    /// Pop into local `n`.
    pub fn store(&mut self, n: u16) -> &mut Self {
        self.emit(Insn::Store(n))
    }
    /// Add `delta` to integer local `n`.
    pub fn inc(&mut self, n: u16, delta: i32) -> &mut Self {
        self.emit(Insn::Inc(n, delta))
    }
    /// Integer add.
    pub fn add(&mut self) -> &mut Self {
        self.emit(Insn::Add)
    }
    /// Integer subtract.
    pub fn sub(&mut self) -> &mut Self {
        self.emit(Insn::Sub)
    }
    /// Integer multiply.
    pub fn mul(&mut self) -> &mut Self {
        self.emit(Insn::Mul)
    }
    /// Integer divide.
    pub fn div(&mut self) -> &mut Self {
        self.emit(Insn::Div)
    }
    /// Integer remainder.
    pub fn rem(&mut self) -> &mut Self {
        self.emit(Insn::Rem)
    }
    /// Bitwise and.
    pub fn band(&mut self) -> &mut Self {
        self.emit(Insn::And)
    }
    /// Bitwise or.
    pub fn bor(&mut self) -> &mut Self {
        self.emit(Insn::Or)
    }
    /// Bitwise xor.
    pub fn bxor(&mut self) -> &mut Self {
        self.emit(Insn::Xor)
    }
    /// Shift left.
    pub fn shl(&mut self) -> &mut Self {
        self.emit(Insn::Shl)
    }
    /// Arithmetic shift right.
    pub fn shr(&mut self) -> &mut Self {
        self.emit(Insn::Shr)
    }
    /// Compare two ints, pushing 0/1.
    pub fn icmp(&mut self, c: Cmp) -> &mut Self {
        self.emit(Insn::ICmp(c))
    }
    /// Compare two doubles, pushing 0/1.
    pub fn dcmp(&mut self, c: Cmp) -> &mut Self {
        self.emit(Insn::DCmp(c))
    }
    /// Unconditional jump.
    pub fn goto(&mut self, l: Label) -> &mut Self {
        self.code.push(Emit::Branch(BranchKind::Goto, l));
        self
    }
    /// Pop; jump if truthy.
    pub fn if_true(&mut self, l: Label) -> &mut Self {
        self.code.push(Emit::Branch(BranchKind::If, l));
        self
    }
    /// Pop; jump if falsy.
    pub fn if_not(&mut self, l: Label) -> &mut Self {
        self.code.push(Emit::Branch(BranchKind::IfNot, l));
        self
    }
    /// Pop; jump if `null`.
    pub fn if_null(&mut self, l: Label) -> &mut Self {
        self.code.push(Emit::Branch(BranchKind::IfNull, l));
        self
    }
    /// Call a static method.
    pub fn invoke(&mut self, m: MethodId) -> &mut Self {
        self.emit(Insn::InvokeStatic(m))
    }
    /// Call through a vtable slot; `argc` includes the receiver.
    pub fn invoke_virtual(&mut self, slot: VSlot, argc: u8) -> &mut Self {
        self.emit(Insn::InvokeVirtual(slot, argc))
    }
    /// Call a native import.
    pub fn invoke_native(&mut self, n: NativeId, argc: u8) -> &mut Self {
        self.emit(Insn::InvokeNative(n, argc))
    }
    /// Return void.
    pub fn ret_void(&mut self) -> &mut Self {
        self.emit(Insn::Ret)
    }
    /// Return the top of stack.
    pub fn ret_val(&mut self) -> &mut Self {
        self.emit(Insn::RetVal)
    }
    /// Allocate an instance.
    pub fn new_obj(&mut self, c: ClassId) -> &mut Self {
        self.emit(Insn::New(c))
    }
    /// Pop object; push its field `slot`.
    pub fn get_field(&mut self, slot: u16) -> &mut Self {
        self.emit(Insn::GetField(slot))
    }
    /// Pop value then object; store field `slot`.
    pub fn put_field(&mut self, slot: u16) -> &mut Self {
        self.emit(Insn::PutField(slot))
    }
    /// Push a static field.
    pub fn get_static(&mut self, c: ClassId, slot: u16) -> &mut Self {
        self.emit(Insn::GetStatic(c, slot))
    }
    /// Pop into a static field.
    pub fn put_static(&mut self, c: ClassId, slot: u16) -> &mut Self {
        self.emit(Insn::PutStatic(c, slot))
    }
    /// Push the per-class lock object of `c`.
    pub fn class_obj(&mut self, c: ClassId) -> &mut Self {
        self.emit(Insn::ClassObj(c))
    }
    /// Push a method id as an integer (for `sys.spawn`).
    pub fn push_method(&mut self, m: MethodId) -> &mut Self {
        self.emit(Insn::Const(m.0 as i64))
    }
    /// Pop length; allocate and push an array.
    pub fn new_array(&mut self) -> &mut Self {
        self.emit(Insn::NewArray)
    }
    /// Pop index, array; push element.
    pub fn aload(&mut self) -> &mut Self {
        self.emit(Insn::ALoad)
    }
    /// Pop value, index, array; store element.
    pub fn astore(&mut self) -> &mut Self {
        self.emit(Insn::AStore)
    }
    /// Pop array; push length.
    pub fn alen(&mut self) -> &mut Self {
        self.emit(Insn::ALen)
    }
    /// Pop object; acquire its monitor.
    pub fn monitor_enter(&mut self) -> &mut Self {
        self.emit(Insn::MonitorEnter)
    }
    /// Pop object; release its monitor.
    pub fn monitor_exit(&mut self) -> &mut Self {
        self.emit(Insn::MonitorExit)
    }
    /// Pop a throwable and raise it.
    pub fn throw(&mut self) -> &mut Self {
        self.emit(Insn::Throw)
    }
    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Insn::Nop)
    }

    /// Resolves labels and registers the method with the builder.
    ///
    /// # Panics
    /// Panics if a label referenced by a branch or handler was never bound
    /// (a builder bug in the caller); semantic errors are reported later by
    /// [`ProgramBuilder::build`].
    pub fn build(self, b: &mut ProgramBuilder) -> MethodId {
        let resolve = |l: Label| -> u32 {
            self.labels[l.0]
                .unwrap_or_else(|| panic!("method `{}`: unbound label {:?}", self.name, l))
        };
        let code: Vec<Insn> = self
            .code
            .iter()
            .map(|e| match e {
                Emit::Insn(i) => *i,
                Emit::Branch(kind, l) => {
                    let t = resolve(*l);
                    match kind {
                        BranchKind::Goto => Insn::Goto(t),
                        BranchKind::If => Insn::If(t),
                        BranchKind::IfNot => Insn::IfNot(t),
                        BranchKind::IfNull => Insn::IfNull(t),
                    }
                }
            })
            .collect();
        let handlers: Vec<Handler> = self
            .handlers
            .iter()
            .map(|h| Handler {
                start: resolve(h.start),
                end: resolve(h.end),
                class: h.class,
                target: resolve(h.target),
            })
            .collect();
        let returns = code.iter().any(|i| matches!(i, Insn::RetVal));
        let m = Method {
            id: self.id,
            name: self.name,
            class: self.class,
            n_args: self.n_args,
            n_locals: self.max_local.max(self.n_args as u16),
            returns,
            synchronized: self.synchronized,
            is_static: self.is_static,
            code,
            handlers,
        };
        let id = m.id;
        b.define(m);
        id
    }
}

/// Signature (argc, returns) of any invocable thing, used by the verifier's
/// stack simulation.
fn invoke_sig(program: &Program, vslots: &[VSlotDecl], i: &Insn) -> Option<(u8, bool)> {
    match i {
        Insn::InvokeStatic(m) => {
            let m = program.method(*m);
            Some((m.n_args, m.returns))
        }
        Insn::InvokeVirtual(slot, argc) => {
            let d = &vslots[slot.0 as usize];
            debug_assert_eq!(d.argc, *argc);
            Some((*argc, d.returns))
        }
        Insn::InvokeNative(n, argc) => {
            let d = &program.native_imports[n.0 as usize];
            debug_assert_eq!(d.argc, *argc);
            Some((*argc, d.returns))
        }
        _ => None,
    }
}

fn verify(program: &Program, vslots: &[VSlotDecl]) -> Result<(), BuildError> {
    // Entry point shape.
    let entry = program.method(program.entry);
    if !entry.is_static || entry.n_args != 1 {
        return Err(BuildError::BadEntry);
    }
    // Vtable entries match slot declarations.
    for c in &program.classes {
        for (slot, m) in c.vtable.iter().enumerate() {
            let Some(mid) = m else { continue };
            let m = program.method(*mid);
            let d = &vslots[slot];
            if m.n_args != d.argc || m.returns != d.returns || m.is_static {
                return Err(BuildError::VtableMismatch {
                    class: c.name.clone(),
                    detail: format!(
                        "slot {} (`{}`) expects ({} args, returns={}), method `{}` has ({}, {})",
                        slot, d.name, d.argc, d.returns, m.name, m.n_args, m.returns
                    ),
                });
            }
        }
    }
    for m in &program.methods {
        verify_method(program, vslots, m)?;
    }
    Ok(())
}

fn verify_method(program: &Program, vslots: &[VSlotDecl], m: &Method) -> Result<(), BuildError> {
    let name = m.name.clone();
    let len = m.code.len() as u32;
    if m.synchronized && m.is_static && m.class.is_none() {
        return Err(BuildError::SignatureMismatch {
            method: name,
            detail: "synchronized static method needs a declaring class".into(),
        });
    }
    if m.synchronized && !m.is_static && m.n_args == 0 {
        return Err(BuildError::SignatureMismatch {
            method: name,
            detail: "synchronized instance method needs a receiver argument".into(),
        });
    }
    // Branch targets, local indices, invoke argument checks.
    for (pc, i) in m.code.iter().enumerate() {
        if let Some(t) = i.branch_target() {
            if t >= len {
                return Err(BuildError::BadTarget { method: name.clone(), target: t });
            }
        }
        match i {
            Insn::Load(n) | Insn::Store(n) | Insn::Inc(n, _) if *n >= m.n_locals => {
                return Err(BuildError::BadLocal { method: name.clone(), index: *n });
            }
            Insn::InvokeVirtual(slot, argc)
                if slot.0 as usize >= vslots.len() || vslots[slot.0 as usize].argc != *argc =>
            {
                return Err(BuildError::SignatureMismatch {
                    method: name.clone(),
                    detail: format!("pc {pc}: virtual call arg count mismatch"),
                });
            }
            Insn::InvokeNative(n, argc) => {
                let d = program.native_imports.get(n.0 as usize).ok_or_else(|| {
                    BuildError::SignatureMismatch {
                        method: name.clone(),
                        detail: format!("pc {pc}: unknown native import"),
                    }
                })?;
                if d.argc != *argc {
                    return Err(BuildError::SignatureMismatch {
                        method: name.clone(),
                        detail: format!(
                            "pc {pc}: native `{}` takes {} args, call passes {argc}",
                            d.name, d.argc
                        ),
                    });
                }
            }
            _ => {}
        }
    }
    for h in &m.handlers {
        if h.start > h.end || h.end > len || h.target >= len {
            return Err(BuildError::BadTarget { method: name.clone(), target: h.target });
        }
    }
    // Abstract stack-depth simulation.
    let mut depth_at: Vec<Option<i32>> = vec![None; m.code.len()];
    let mut work: VecDeque<(u32, i32)> = VecDeque::new();
    if !m.code.is_empty() {
        work.push_back((0, 0));
    } else {
        return Err(BuildError::FallsOffEnd { method: name });
    }
    for h in &m.handlers {
        work.push_back((h.target, 1));
    }
    while let Some((pc, depth)) = work.pop_front() {
        match depth_at[pc as usize] {
            Some(d) if d == depth => continue,
            Some(d) => {
                return Err(BuildError::StackMismatch {
                    method: name,
                    pc,
                    detail: format!("join with depth {d} vs {depth}"),
                });
            }
            None => depth_at[pc as usize] = Some(depth),
        }
        let i = &m.code[pc as usize];
        let (pops, pushes) = match invoke_sig(program, vslots, i) {
            Some((argc, returns)) => (argc as i32, returns as i32),
            None => match i {
                Insn::Ret => {
                    if depth != 0 {
                        return Err(BuildError::StackMismatch {
                            method: name,
                            pc,
                            detail: format!("void return with {depth} values on stack"),
                        });
                    }
                    continue;
                }
                Insn::RetVal => {
                    if depth != 1 {
                        return Err(BuildError::StackMismatch {
                            method: name,
                            pc,
                            detail: format!("value return with stack depth {depth} (expected 1)"),
                        });
                    }
                    continue;
                }
                Insn::Throw => {
                    if depth < 1 {
                        return Err(BuildError::StackMismatch {
                            method: name,
                            pc,
                            detail: "throw with empty stack".into(),
                        });
                    }
                    continue;
                }
                _ => {
                    let delta = i.stack_delta().expect("non-invoke insns have static deltas");
                    // Split delta into pops/pushes pessimistically for
                    // underflow detection.
                    let pops = match i {
                        Insn::Dup => 1,
                        Insn::DupX1 => 2,
                        Insn::Swap => 2,
                        Insn::GetField(_)
                        | Insn::Neg
                        | Insn::I2D
                        | Insn::D2I
                        | Insn::NewArray
                        | Insn::ALen => 1,
                        Insn::ALoad => 2,
                        _ if delta < 0 => -delta,
                        _ => 0,
                    };
                    (pops, delta + pops)
                }
            },
        };
        if depth < pops {
            return Err(BuildError::StackMismatch {
                method: name,
                pc,
                detail: format!("needs {pops} operands, stack has {depth}"),
            });
        }
        let next_depth = depth - pops + pushes;
        // Successors.
        let push_succ =
            |target: u32, d: i32, work: &mut VecDeque<(u32, i32)>| -> Result<(), BuildError> {
                if target >= len {
                    return Err(BuildError::FallsOffEnd { method: name.clone() });
                }
                work.push_back((target, d));
                Ok(())
            };
        match i {
            Insn::Goto(t) => push_succ(*t, next_depth, &mut work)?,
            Insn::If(t) | Insn::IfNot(t) | Insn::IfNull(t) => {
                push_succ(*t, next_depth, &mut work)?;
                push_succ(pc + 1, next_depth, &mut work)?;
            }
            _ => push_succ(pc + 1, next_depth, &mut work)?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_entry(b: &mut ProgramBuilder) -> MethodId {
        let mut m = b.method("main", 1);
        m.ret_void();
        m.build(b)
    }

    #[test]
    fn builds_trivial_program() {
        let mut b = ProgramBuilder::new();
        let entry = trivial_entry(&mut b);
        let p = b.build(entry).unwrap();
        assert_eq!(p.entry, entry);
        assert_eq!(p.classes.len(), builtin::COUNT as usize);
    }

    #[test]
    fn rejects_non_static_entry() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", builtin::OBJECT, 0, 0);
        let mut m = b.method("main", 1);
        m.instance_of(cls).ret_void();
        let entry = m.build(&mut b);
        assert_eq!(b.build(entry).unwrap_err(), BuildError::BadEntry);
    }

    #[test]
    fn rejects_stack_underflow() {
        let mut b = ProgramBuilder::new();
        let mut m = b.method("main", 1);
        m.add().ret_void(); // add with empty stack
        let entry = m.build(&mut b);
        assert!(matches!(b.build(entry).unwrap_err(), BuildError::StackMismatch { .. }));
    }

    #[test]
    fn rejects_unbalanced_return() {
        let mut b = ProgramBuilder::new();
        let mut m = b.method("main", 1);
        m.push_i(1).ret_void(); // leftover value
        let entry = m.build(&mut b);
        assert!(matches!(b.build(entry).unwrap_err(), BuildError::StackMismatch { .. }));
    }

    #[test]
    fn rejects_fall_off_end() {
        let mut b = ProgramBuilder::new();
        let mut m = b.method("main", 1);
        m.push_i(1).pop();
        let entry = m.build(&mut b);
        assert!(matches!(b.build(entry).unwrap_err(), BuildError::FallsOffEnd { .. }));
    }

    #[test]
    fn rejects_inconsistent_join_depths() {
        let mut b = ProgramBuilder::new();
        let mut m = b.method("main", 1);
        let join = m.new_label();
        let alt = m.new_label();
        m.load(0).if_true(alt);
        m.push_i(1); // depth 1 at join
        m.goto(join);
        m.bind(alt); // depth 0 at join
        m.bind(join);
        m.pop().ret_void();
        let entry = m.build(&mut b);
        assert!(matches!(b.build(entry).unwrap_err(), BuildError::StackMismatch { .. }));
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn panics_on_unbound_label() {
        let mut b = ProgramBuilder::new();
        let mut m = b.method("main", 1);
        let l = m.new_label();
        m.goto(l).ret_void();
        let _ = m.build(&mut b);
    }

    #[test]
    fn loop_with_labels_verifies() {
        let mut b = ProgramBuilder::new();
        let mut m = b.method("main", 1);
        let done = m.new_label();
        m.push_i(10).store(1);
        let top = m.bind_new_label();
        m.load(1).if_not(done);
        m.inc(1, -1).goto(top);
        m.bind(done).ret_void();
        let entry = m.build(&mut b);
        let p = b.build(entry).unwrap();
        assert!(p.method(entry).n_locals >= 2);
    }

    #[test]
    fn string_interning_dedups() {
        let mut b = ProgramBuilder::new();
        let a = b.intern("x");
        let c = b.intern("y");
        let a2 = b.intern("x");
        assert_eq!(a, a2);
        assert_ne!(a, c);
    }

    #[test]
    fn native_import_dedups_and_checks() {
        let mut b = ProgramBuilder::new();
        let n1 = b.import_native("sys.clock", 0, true);
        let n2 = b.import_native("sys.clock", 0, true);
        assert_eq!(n1, n2);
    }

    #[test]
    fn vtable_mismatch_detected() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("C", builtin::OBJECT, 0, 0);
        let slot = b.declare_vslot("run", 1, false);
        let mut m = b.method("run_bad", 2); // wrong arg count for slot
        m.instance_of(c).ret_void();
        let bad = m.build(&mut b);
        b.set_vtable(c, slot, bad);
        let entry = trivial_entry(&mut b);
        assert!(matches!(b.build(entry).unwrap_err(), BuildError::VtableMismatch { .. }));
    }

    #[test]
    fn handler_entry_has_depth_one() {
        let mut b = ProgramBuilder::new();
        let mut m = b.method("main", 1);
        let try_start = m.new_label();
        let try_end = m.new_label();
        let catch = m.new_label();
        let done = m.new_label();
        m.bind(try_start);
        m.push_i(1).push_i(0).div().pop();
        m.bind(try_end);
        m.goto(done);
        m.bind(catch);
        m.pop(); // discard exception
        m.bind(done);
        m.ret_void();
        m.handler(try_start, try_end, None, catch);
        let entry = m.build(&mut b);
        assert!(b.build(entry).is_ok());
    }
}
