//! The bytecode execution engine (BEE): instruction semantics, native
//! driving, and exception unwinding.
//!
//! One call to [`exec_unit`] executes exactly one *unit* — a bytecode
//! instruction, one phase of a native method, or one step of a system
//! thread. Units are the granularity of preemption, which is what lets the
//! backup's thread-scheduling replay stop a thread at exactly the recorded
//! `(br_cnt, pc_off, mon_cnt)` point (paper §4.2).

use crate::bytecode::{ClassId, Cmp, Insn, MethodId, VSlot};
use crate::class::{builtin, excode, Program};
use crate::coordinator::{Coordinator, NativeDirective};
use crate::decoded::{cmp_of, decode_one, fused_arith, DOp, DecodedProgram, OpCode, F_FUSE_SHIFT};
use crate::error::VmError;
use crate::exec::{obs_of, AcquireOutcome, DispatchEngine, VmCore};
use crate::heap::{Heap, HeapEntry};
use crate::native::{
    Intrinsic, NativeAbort, NativeCtx, NativeKind, NativeOutcome, NativeRegistry, PhaseOutcome,
};
use crate::thread::{
    AdoptedOutcome, NativeActivation, ThreadIdx, ThreadKind, ThreadState, WaitResume,
};
use crate::value::{ObjRef, Value};
use ftjvm_netsim::SimTime;

/// Executes one unit of the current thread.
///
/// # Errors
/// Returns fatal [`VmError`]s; application-level exceptions are raised
/// in-VM and do not surface here.
pub(crate) fn exec_unit(
    core: &mut VmCore,
    natives: &NativeRegistry,
    coord: &mut dyn Coordinator,
) -> Result<(), VmError> {
    let Some(t) = core.current else {
        return Err(VmError::Internal("exec_unit requires a dispatched thread".into()));
    };
    match core.thread(t).kind {
        ThreadKind::GcWorker => step_gc_worker(core, t),
        ThreadKind::Finalizer => step_finalizer(core, natives, coord, t),
        ThreadKind::App => {
            if core.thread(t).native.is_some() {
                drive_native(core, natives, coord, t)
            } else {
                exec_insn(core, natives, coord, t)
            }
        }
    }
}

fn step_gc_worker(core: &mut VmCore, t: ThreadIdx) -> Result<(), VmError> {
    match core.gc_phase {
        0 => {
            let heap_lock = core.heap_lock;
            if core.internal_try_lock(heap_lock, t) {
                core.gc_phase = 1;
            }
        }
        1 => {
            core.run_gc();
            core.gc_phase = 2;
        }
        _ => {
            let heap_lock = core.heap_lock;
            core.internal_unlock(heap_lock);
            core.gc_phase = 0;
            core.thread_mut(t).state = ThreadState::Parked;
        }
    }
    Ok(())
}

fn step_finalizer(
    core: &mut VmCore,
    natives: &NativeRegistry,
    coord: &mut dyn Coordinator,
    t: ThreadIdx,
) -> Result<(), VmError> {
    if core.thread(t).native.is_some() {
        return drive_native(core, natives, coord, t);
    }
    if core.thread(t).frames.is_empty() {
        match core.finalizer_queue.pop_front() {
            Some(obj) => {
                let Some(class) = core.heap.class_of(obj) else {
                    // Object vanished (should not happen; be defensive).
                    return Ok(());
                };
                let Some(fin) = core.program.classes[class.0 as usize].finalizer else {
                    return Ok(());
                };
                let n_locals = core.program.method(fin).n_locals;
                core.thread_mut(t).frames.push(crate::thread::Frame::new(
                    fin,
                    n_locals,
                    vec![Value::Ref(obj)],
                ));
            }
            None => core.thread_mut(t).state = ThreadState::Parked,
        }
        return Ok(());
    }
    exec_insn(core, natives, coord, t)
}

// ----- value-stack helpers -----

fn type_err(detail: impl Into<String>) -> VmError {
    VmError::TypeError { detail: detail.into() }
}

fn pop(stack: &mut Vec<Value>) -> Result<Value, VmError> {
    stack.pop().ok_or_else(|| type_err("operand stack underflow"))
}

fn pop_int(stack: &mut Vec<Value>) -> Result<i64, VmError> {
    pop(stack)?.as_int().map_err(|v| type_err(format!("expected int, found {v}")))
}

fn pop_double(stack: &mut Vec<Value>) -> Result<f64, VmError> {
    match pop(stack)? {
        Value::Double(d) => Ok(d),
        Value::Int(i) => Ok(i as f64),
        v => Err(type_err(format!("expected double, found {v}"))),
    }
}

// ----- exceptions -----

/// Allocates a runtime exception with the given code and raises it.
pub(crate) fn raise_runtime(
    core: &mut VmCore,
    coord: &mut dyn Coordinator,
    t: ThreadIdx,
    code: i64,
) -> Result<(), VmError> {
    let ex =
        core.heap.alloc_obj(builtin::RUNTIME_EXCEPTION, 1).map_err(|_| VmError::OutOfMemory)?;
    if let Some(HeapEntry::Obj { fields, .. }) = core.heap.get_mut(ex) {
        fields[builtin::THROWABLE_CODE_SLOT as usize] = Value::Int(code);
    }
    raise_obj(core, coord, t, ex)
}

/// Unwinds thread `t` with throwable `ex` until a handler catches it.
pub(crate) fn raise_obj(
    core: &mut VmCore,
    coord: &mut dyn Coordinator,
    t: ThreadIdx,
    ex: ObjRef,
) -> Result<(), VmError> {
    let ex_class = core.heap.class_of(ex).unwrap_or(builtin::THROWABLE);
    core.thread_mut(t).unwinding = Some(ex);
    loop {
        let Some(frame) = core.thread(t).frames.last() else {
            // Uncaught: the thread dies (Java semantics).
            let code = match core.heap.get(ex) {
                Some(HeapEntry::Obj { fields, .. }) => fields
                    .get(builtin::THROWABLE_CODE_SLOT as usize)
                    .and_then(|v| v.as_int().ok())
                    .unwrap_or(-1),
                _ => -1,
            };
            core.thread_mut(t).unwinding = None;
            core.finish_thread(coord, t, Some(code));
            return Ok(());
        };
        let pc = frame.pc;
        let method = frame.method;
        let handler = core.program.methods[method.0 as usize]
            .handlers
            .iter()
            .find(|h| {
                h.start <= pc
                    && pc < h.end
                    && h.class.map(|c| core.program.is_subclass(ex_class, c)).unwrap_or(true)
            })
            .copied();
        if let Some(h) = handler {
            let frame = core.thread_mut(t).frame_mut();
            frame.stack.clear();
            frame.stack.push(Value::Ref(ex));
            frame.pc = h.target;
            core.thread_mut(t).unwinding = None;
            return Ok(());
        }
        // No handler here: release a synchronized method's monitor and pop.
        let sync_obj = core.thread(t).frame().sync_obj;
        if let Some(obj) = sync_obj {
            core.release_monitor(coord, t, obj).map_err(|_| {
                VmError::Internal("sync frame did not own its monitor during unwind".into())
            })?;
        }
        core.thread_mut(t).frames.pop();
    }
}

// ----- invocation and return -----

/// Begins invoking `mid`. Returns `true` if the frame was pushed (or the
/// invocation completed); `false` if the thread blocked acquiring a
/// synchronized method's monitor (the instruction will re-execute).
fn do_invoke(
    core: &mut VmCore,
    coord: &mut dyn Coordinator,
    t: ThreadIdx,
    mid: crate::bytecode::MethodId,
    explicit_receiver: Option<ObjRef>,
) -> Result<bool, VmError> {
    let (n_args, n_locals, synchronized, is_static, class) = {
        let m = &core.program.methods[mid.0 as usize];
        (m.n_args, m.n_locals, m.synchronized, m.is_static, m.class)
    };
    if synchronized {
        let lock_obj = if is_static {
            let c = class
                .ok_or_else(|| VmError::Internal("synchronized static without class".into()))?;
            core.class_objects[c.0 as usize]
        } else {
            match explicit_receiver {
                Some(r) => r,
                None => {
                    // Receiver is the deepest of the arguments still on the
                    // stack (not popped until acquisition succeeds).
                    let stack = &core.thread(t).frame().stack;
                    let idx = stack
                        .len()
                        .checked_sub(n_args as usize)
                        .ok_or_else(|| type_err("missing receiver for synchronized call"))?;
                    match stack[idx] {
                        Value::Ref(r) => r,
                        Value::Null => {
                            raise_runtime(core, coord, t, excode::NULL_POINTER)?;
                            return Ok(true);
                        }
                        ref v => {
                            return Err(type_err(format!(
                                "receiver must be a reference, found {v}"
                            )))
                        }
                    }
                }
            }
        };
        match core.acquire_monitor(coord, t, lock_obj, None) {
            AcquireOutcome::Acquired => {
                self_push_frame(core, t, mid, n_args, n_locals, Some(lock_obj));
                Ok(true)
            }
            AcquireOutcome::Blocked | AcquireOutcome::Deferred => Ok(false),
        }
    } else {
        self_push_frame(core, t, mid, n_args, n_locals, None);
        Ok(true)
    }
}

fn self_push_frame(
    core: &mut VmCore,
    t: ThreadIdx,
    mid: crate::bytecode::MethodId,
    n_args: u8,
    n_locals: u16,
    sync_obj: Option<ObjRef>,
) {
    let th = core.thread_mut(t);
    let stack = &mut th.frame_mut().stack;
    let split = stack.len() - n_args as usize;
    let args: Vec<Value> = stack.split_off(split);
    th.br_cnt += 1;
    let mut frame = crate::thread::Frame::new(mid, n_locals, args);
    frame.sync_obj = sync_obj;
    th.frames.push(frame);
    if th.is_app() {
        core.counters.branches += 1;
    }
}

fn do_return(
    core: &mut VmCore,
    coord: &mut dyn Coordinator,
    t: ThreadIdx,
    val: Option<Value>,
) -> Result<(), VmError> {
    let frame = core
        .thread_mut(t)
        .frames
        .pop()
        .ok_or_else(|| VmError::Internal("return with no frame".into()))?;
    core.thread_mut(t).br_cnt += 1;
    if core.thread(t).is_app() {
        core.counters.branches += 1;
    }
    if let Some(obj) = frame.sync_obj {
        core.release_monitor(coord, t, obj).map_err(|_| {
            VmError::Internal("sync frame did not own its monitor at return".into())
        })?;
    }
    let returns = core.program.methods[frame.method.0 as usize].returns;
    if core.thread(t).frames.is_empty() {
        if core.thread(t).is_app() {
            core.finish_thread(coord, t, None);
        }
        // Finalizer thread: frames empty -> next unit pops the queue.
        return Ok(());
    }
    let caller = core.thread_mut(t).frame_mut();
    if returns {
        caller.stack.push(
            val.ok_or_else(|| VmError::Internal("value-returning method produced none".into()))?,
        );
    }
    caller.pc += 1; // past the invoke instruction
    Ok(())
}

// ----- race-detector hook -----

/// Records a shared-memory access with the lockset detector, when enabled.
fn race_access(core: &mut VmCore, t: ThreadIdx, loc: crate::race::Loc, is_write: bool) {
    if core.race.is_none() || core.thread(t).kind != ThreadKind::App {
        return;
    }
    let (threads, race) = (&core.threads, &mut core.race);
    let held = &threads[t.0 as usize].held_for_race;
    if let Some(d) = race {
        d.on_access(loc, t, held, is_write);
    }
}

// ----- allocation helpers -----

fn heap_locked_by_other(core: &VmCore, t: ThreadIdx) -> bool {
    let holder = core.internal_locks[core.heap_lock.0].holder;
    holder.is_some() && holder != Some(t)
}

/// Blocks `t` on the heap lock (GC in progress); the instruction will
/// re-execute once the collector releases it.
fn block_on_heap_lock(core: &mut VmCore, t: ThreadIdx) {
    let heap_lock = core.heap_lock;
    let took = core.internal_try_lock(heap_lock, t);
    debug_assert!(!took, "caller checked the lock was held by another thread");
}

fn alloc_counted(
    core: &mut VmCore,
    entry_is_array: bool,
    class: crate::bytecode::ClassId,
    size: usize,
) -> Result<ObjRef, VmError> {
    let r = if entry_is_array {
        core.heap.alloc_array(size)
    } else {
        core.heap.alloc_obj(class, size as u16)
    }
    .map_err(|_| VmError::OutOfMemory)?;
    core.counters.allocations += 1;
    let cost = core.cfg.cost.alloc;
    core.charge_base(cost);
    core.maybe_request_gc();
    Ok(r)
}

// ----- the instruction interpreter -----

#[allow(clippy::too_many_lines)]
fn exec_insn(
    core: &mut VmCore,
    natives: &NativeRegistry,
    coord: &mut dyn Coordinator,
    t: ThreadIdx,
) -> Result<(), VmError> {
    let (method, pc) = {
        let f = core.thread(t).frame();
        (f.method, f.pc)
    };
    let insn = core.program.methods[method.0 as usize].code[pc as usize];
    if core.profile.is_some() {
        // Legacy per-unit path (Match engine, or a 1-unit budget): counted
        // as a chain break — these units are never fusion candidates.
        let c = decode_one(insn, &core.program).code;
        if let Some(p) = core.profile.as_mut() {
            p.note_break(c);
        }
    }
    let is_app = core.thread(t).kind == ThreadKind::App;
    // Base interpretation cost.
    let mut cost = core.cfg.cost.insn_base;
    if insn.is_control_flow() {
        cost += core.cfg.cost.branch_extra;
    }
    core.charge_base(cost);
    if is_app {
        core.counters.instructions += 1;
    }

    macro_rules! stack {
        () => {
            &mut core.thread_mut(t).frame_mut().stack
        };
    }
    macro_rules! advance {
        () => {{
            core.thread_mut(t).frame_mut().pc += 1;
        }};
    }
    macro_rules! branch_to {
        ($target:expr) => {{
            core.thread_mut(t).frame_mut().pc = $target;
            core.thread_mut(t).br_cnt += 1;
            if is_app {
                core.counters.branches += 1;
            }
        }};
    }

    match insn {
        Insn::Nop => advance!(),
        Insn::Const(v) => {
            stack!().push(Value::Int(v));
            advance!();
        }
        Insn::DConst(v) => {
            stack!().push(Value::Double(v));
            advance!();
        }
        Insn::ConstNull => {
            stack!().push(Value::Null);
            advance!();
        }
        Insn::ConstStr(sid) => {
            if heap_locked_by_other(core, t) {
                block_on_heap_lock(core, t);
                return Ok(());
            }
            let bytes: Vec<u8> = core.program.strings[sid.0 as usize].bytes().collect();
            let arr = alloc_counted(core, true, builtin::OBJECT, bytes.len())?;
            if let Some(HeapEntry::Arr { elems }) = core.heap.get_mut(arr) {
                for (slot, b) in elems.iter_mut().zip(bytes.iter()) {
                    *slot = Value::Int(*b as i64);
                }
            }
            stack!().push(Value::Ref(arr));
            advance!();
        }
        Insn::Dup => {
            let s = stack!();
            let top = *s.last().ok_or_else(|| type_err("dup on empty stack"))?;
            s.push(top);
            advance!();
        }
        Insn::DupX1 => {
            let s = stack!();
            let v1 = pop(s)?;
            let v2 = pop(s)?;
            s.push(v1);
            s.push(v2);
            s.push(v1);
            advance!();
        }
        Insn::Pop => {
            pop(stack!())?;
            advance!();
        }
        Insn::Swap => {
            let s = stack!();
            let a = pop(s)?;
            let b = pop(s)?;
            s.push(a);
            s.push(b);
            advance!();
        }
        Insn::Load(n) => {
            let v = core.thread(t).frame().locals[n as usize];
            stack!().push(v);
            advance!();
        }
        Insn::Store(n) => {
            let v = pop(stack!())?;
            core.thread_mut(t).frame_mut().locals[n as usize] = v;
            advance!();
        }
        Insn::Inc(n, delta) => {
            let f = core.thread_mut(t).frame_mut();
            let cur = f.locals[n as usize]
                .as_int()
                .map_err(|v| type_err(format!("inc of non-int local: {v}")))?;
            f.locals[n as usize] = Value::Int(cur.wrapping_add(delta as i64));
            advance!();
        }
        Insn::Add
        | Insn::Sub
        | Insn::Mul
        | Insn::And
        | Insn::Or
        | Insn::Xor
        | Insn::Shl
        | Insn::Shr => {
            let s = stack!();
            let b = pop_int(s)?;
            let a = pop_int(s)?;
            let r = match insn {
                Insn::Add => a.wrapping_add(b),
                Insn::Sub => a.wrapping_sub(b),
                Insn::Mul => a.wrapping_mul(b),
                Insn::And => a & b,
                Insn::Or => a | b,
                Insn::Xor => a ^ b,
                Insn::Shl => a.wrapping_shl(b as u32 & 63),
                Insn::Shr => a.wrapping_shr(b as u32 & 63),
                _ => unreachable!(),
            };
            s.push(Value::Int(r));
            advance!();
        }
        Insn::Div | Insn::Rem => {
            let s = stack!();
            let b = pop_int(s)?;
            let a = pop_int(s)?;
            if b == 0 {
                return raise_runtime(core, coord, t, excode::ARITHMETIC);
            }
            let r = if matches!(insn, Insn::Div) { a.wrapping_div(b) } else { a.wrapping_rem(b) };
            s.push(Value::Int(r));
            advance!();
        }
        Insn::Neg => {
            let s = stack!();
            let a = pop_int(s)?;
            s.push(Value::Int(a.wrapping_neg()));
            advance!();
        }
        Insn::DAdd | Insn::DSub | Insn::DMul | Insn::DDiv => {
            let s = stack!();
            let b = pop_double(s)?;
            let a = pop_double(s)?;
            let r = match insn {
                Insn::DAdd => a + b,
                Insn::DSub => a - b,
                Insn::DMul => a * b,
                Insn::DDiv => a / b,
                _ => unreachable!(),
            };
            s.push(Value::Double(r));
            advance!();
        }
        Insn::I2D => {
            let s = stack!();
            let a = pop_int(s)?;
            s.push(Value::Double(a as f64));
            advance!();
        }
        Insn::D2I => {
            let s = stack!();
            let a = pop_double(s)?;
            let r = if a.is_nan() { 0 } else { a as i64 };
            s.push(Value::Int(r));
            advance!();
        }
        Insn::ICmp(c) => {
            let s = stack!();
            let b = pop_int(s)?;
            let a = pop_int(s)?;
            let ord = match a.cmp(&b) {
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => 0,
                std::cmp::Ordering::Greater => 1,
            };
            s.push(Value::from(c.eval_ord(ord)));
            advance!();
        }
        Insn::DCmp(c) => {
            let s = stack!();
            let b = pop_double(s)?;
            let a = pop_double(s)?;
            let result = match a.partial_cmp(&b) {
                Some(std::cmp::Ordering::Less) => c.eval_ord(-1),
                Some(std::cmp::Ordering::Equal) => c.eval_ord(0),
                Some(std::cmp::Ordering::Greater) => c.eval_ord(1),
                None => matches!(c, Cmp::Ne), // NaN
            };
            s.push(Value::from(result));
            advance!();
        }
        Insn::RefEq => {
            let s = stack!();
            let b = pop(s)?;
            let a = pop(s)?;
            let eq = match (a, b) {
                (Value::Null, Value::Null) => true,
                (Value::Ref(x), Value::Ref(y)) => x == y,
                _ => false,
            };
            s.push(Value::from(eq));
            advance!();
        }
        Insn::Goto(target) => branch_to!(target),
        Insn::If(target) => {
            let v = pop(stack!())?;
            if v.is_truthy() {
                branch_to!(target);
            } else {
                core.thread_mut(t).br_cnt += 1;
                if is_app {
                    core.counters.branches += 1;
                }
                advance!();
            }
        }
        Insn::IfNot(target) => {
            let v = pop(stack!())?;
            if !v.is_truthy() {
                branch_to!(target);
            } else {
                core.thread_mut(t).br_cnt += 1;
                if is_app {
                    core.counters.branches += 1;
                }
                advance!();
            }
        }
        Insn::IfNull(target) => {
            let v = pop(stack!())?;
            if v.is_null() {
                branch_to!(target);
            } else {
                core.thread_mut(t).br_cnt += 1;
                if is_app {
                    core.counters.branches += 1;
                }
                advance!();
            }
        }
        Insn::InvokeStatic(mid) => {
            // May block on a synchronized method's monitor; pc advances at
            // return, not here.
            let _ = do_invoke(core, coord, t, mid, None)?;
        }
        Insn::InvokeVirtual(slot, argc) => {
            let receiver = {
                let stack = &core.thread(t).frame().stack;
                let idx = stack
                    .len()
                    .checked_sub(argc as usize)
                    .ok_or_else(|| type_err("missing receiver for virtual call"))?;
                stack[idx]
            };
            let r = match receiver {
                Value::Ref(r) => r,
                Value::Null => return raise_runtime(core, coord, t, excode::NULL_POINTER),
                v => {
                    return Err(type_err(format!(
                        "virtual call receiver must be a reference, found {v}"
                    )))
                }
            };
            let Some(class) = core.heap.class_of(r) else {
                return raise_runtime(core, coord, t, excode::BAD_DISPATCH);
            };
            let Some(mid) = core.program.classes[class.0 as usize].resolve(slot) else {
                return raise_runtime(core, coord, t, excode::BAD_DISPATCH);
            };
            let _ = do_invoke(core, coord, t, mid, Some(r))?;
        }
        Insn::InvokeNative(nid, argc) => {
            begin_native(core, natives, coord, t, nid, argc)?;
        }
        Insn::Ret => do_return(core, coord, t, None)?,
        Insn::RetVal => {
            let v = pop(stack!())?;
            do_return(core, coord, t, Some(v))?;
        }
        Insn::New(cid) => {
            if heap_locked_by_other(core, t) {
                block_on_heap_lock(core, t);
                return Ok(());
            }
            let n_fields = core.program.classes[cid.0 as usize].n_fields;
            let obj = alloc_counted(core, false, cid, n_fields as usize)?;
            stack!().push(Value::Ref(obj));
            advance!();
        }
        Insn::GetField(slot) => {
            let s = stack!();
            let obj = pop(s)?;
            let r = match obj {
                Value::Ref(r) => r,
                Value::Null => return raise_runtime(core, coord, t, excode::NULL_POINTER),
                v => return Err(type_err(format!("getfield on non-reference {v}"))),
            };
            let v = match core.heap.get(r) {
                Some(HeapEntry::Obj { fields, .. }) => *fields
                    .get(slot as usize)
                    .ok_or_else(|| type_err(format!("field slot {slot} out of range")))?,
                Some(HeapEntry::Arr { .. }) => return Err(type_err("getfield on array")),
                None => return Err(VmError::DanglingRef { detail: format!("getfield on {r}") }),
            };
            race_access(core, t, crate::race::Loc::Field(r, slot), false);
            stack!().push(v);
            advance!();
        }
        Insn::PutField(slot) => {
            let s = stack!();
            let v = pop(s)?;
            let obj = pop(s)?;
            let r = match obj {
                Value::Ref(r) => r,
                Value::Null => return raise_runtime(core, coord, t, excode::NULL_POINTER),
                v => return Err(type_err(format!("putfield on non-reference {v}"))),
            };
            match core.heap.get_mut(r) {
                Some(HeapEntry::Obj { fields, .. }) => {
                    let f = fields
                        .get_mut(slot as usize)
                        .ok_or_else(|| type_err(format!("field slot {slot} out of range")))?;
                    *f = v;
                }
                Some(HeapEntry::Arr { .. }) => return Err(type_err("putfield on array")),
                None => return Err(VmError::DanglingRef { detail: format!("putfield on {r}") }),
            }
            race_access(core, t, crate::race::Loc::Field(r, slot), true);
            advance!();
        }
        Insn::GetStatic(cid, slot) => {
            let v = *core.statics[cid.0 as usize]
                .get(slot as usize)
                .ok_or_else(|| type_err(format!("static slot {slot} out of range")))?;
            race_access(core, t, crate::race::Loc::Static(cid, slot), false);
            stack!().push(v);
            advance!();
        }
        Insn::PutStatic(cid, slot) => {
            let v = pop(stack!())?;
            let f = core.statics[cid.0 as usize]
                .get_mut(slot as usize)
                .ok_or_else(|| type_err(format!("static slot {slot} out of range")))?;
            *f = v;
            race_access(core, t, crate::race::Loc::Static(cid, slot), true);
            advance!();
        }
        Insn::ClassObj(cid) => {
            let obj = core.class_objects[cid.0 as usize];
            stack!().push(Value::Ref(obj));
            advance!();
        }
        Insn::NewArray => {
            if heap_locked_by_other(core, t) {
                block_on_heap_lock(core, t);
                return Ok(());
            }
            // Peek (not pop) the length so the instruction can re-execute
            // if it blocks on the heap lock.
            let len = {
                let s = &core.thread(t).frame().stack;
                (*s.last().ok_or_else(|| type_err("newarray on empty stack"))?)
                    .as_int()
                    .map_err(|v| type_err(format!("array length must be int, found {v}")))?
            };
            if len < 0 {
                return raise_runtime(core, coord, t, excode::NEGATIVE_ARRAY_SIZE);
            }
            let arr = alloc_counted(core, true, builtin::OBJECT, len as usize)?;
            let s = stack!();
            s.pop();
            s.push(Value::Ref(arr));
            advance!();
        }
        Insn::ALoad => {
            let s = stack!();
            let idx = pop_int(s)?;
            let arr = pop(s)?;
            let r = match arr {
                Value::Ref(r) => r,
                Value::Null => return raise_runtime(core, coord, t, excode::NULL_POINTER),
                v => return Err(type_err(format!("aload on non-reference {v}"))),
            };
            let v = match core.heap.get(r) {
                Some(HeapEntry::Arr { elems }) => {
                    if idx < 0 || idx as usize >= elems.len() {
                        return raise_runtime(core, coord, t, excode::ARRAY_BOUNDS);
                    }
                    elems[idx as usize]
                }
                Some(HeapEntry::Obj { .. }) => return Err(type_err("aload on object")),
                None => return Err(VmError::DanglingRef { detail: format!("aload on {r}") }),
            };
            race_access(core, t, crate::race::Loc::Array(r), false);
            stack!().push(v);
            advance!();
        }
        Insn::AStore => {
            let s = stack!();
            let v = pop(s)?;
            let idx = pop_int(s)?;
            let arr = pop(s)?;
            let r = match arr {
                Value::Ref(r) => r,
                Value::Null => return raise_runtime(core, coord, t, excode::NULL_POINTER),
                v => return Err(type_err(format!("astore on non-reference {v}"))),
            };
            match core.heap.get_mut(r) {
                Some(HeapEntry::Arr { elems }) => {
                    if idx < 0 || idx as usize >= elems.len() {
                        return raise_runtime(core, coord, t, excode::ARRAY_BOUNDS);
                    }
                    elems[idx as usize] = v;
                }
                Some(HeapEntry::Obj { .. }) => return Err(type_err("astore on object")),
                None => return Err(VmError::DanglingRef { detail: format!("astore on {r}") }),
            }
            race_access(core, t, crate::race::Loc::Array(r), true);
            advance!();
        }
        Insn::ALen => {
            let s = stack!();
            let arr = pop(s)?;
            let r = match arr {
                Value::Ref(r) => r,
                Value::Null => return raise_runtime(core, coord, t, excode::NULL_POINTER),
                v => return Err(type_err(format!("arraylength on non-reference {v}"))),
            };
            let len = match core.heap.get(r) {
                Some(HeapEntry::Arr { elems }) => elems.len() as i64,
                Some(HeapEntry::Obj { .. }) => return Err(type_err("arraylength on object")),
                None => return Err(VmError::DanglingRef { detail: format!("arraylength on {r}") }),
            };
            stack!().push(Value::Int(len));
            advance!();
        }
        Insn::MonitorEnter => {
            // Peek until acquired (the instruction re-executes if blocked).
            let top = {
                let s = &core.thread(t).frame().stack;
                *s.last().ok_or_else(|| type_err("monitorenter on empty stack"))?
            };
            let obj = match top {
                Value::Ref(r) => r,
                Value::Null => {
                    pop(stack!())?;
                    return raise_runtime(core, coord, t, excode::NULL_POINTER);
                }
                v => return Err(type_err(format!("monitorenter on non-reference {v}"))),
            };
            match core.acquire_monitor(coord, t, obj, None) {
                AcquireOutcome::Acquired => {
                    pop(stack!())?;
                    advance!();
                }
                AcquireOutcome::Blocked | AcquireOutcome::Deferred => {}
            }
        }
        Insn::MonitorExit => {
            let v = pop(stack!())?;
            let obj = match v {
                Value::Ref(r) => r,
                Value::Null => return raise_runtime(core, coord, t, excode::NULL_POINTER),
                v => return Err(type_err(format!("monitorexit on non-reference {v}"))),
            };
            match core.release_monitor(coord, t, obj) {
                Ok(()) => advance!(),
                Err(_) => return raise_runtime(core, coord, t, excode::ILLEGAL_MONITOR),
            }
        }
        Insn::Throw => {
            let v = pop(stack!())?;
            core.thread_mut(t).br_cnt += 1;
            if is_app {
                core.counters.branches += 1;
            }
            let obj = match v {
                Value::Ref(r) => r,
                Value::Null => return raise_runtime(core, coord, t, excode::NULL_POINTER),
                v => return Err(type_err(format!("throw of non-reference {v}"))),
            };
            return raise_obj(core, coord, t, obj);
        }
    }
    Ok(())
}

// ----- the segment executor -----

/// Why a straight-line fast run stopped.
enum FastExit {
    /// Budget or `stop_br` reached (or no frame): return to the caller.
    Out,
    /// A raise condition was detected at the current pc; the outer loop
    /// charges the unit and unwinds.
    Raise(i64),
    /// The (unexecuted) op at pc needs the outer loop: a breaker, an
    /// invocation, a return, or an allocation.
    Cold(DOp),
}

/// The innermost frame of `t`, as a typed error instead of a panic.
fn frame_of(core: &VmCore, t: ThreadIdx) -> Result<&crate::thread::Frame, VmError> {
    core.thread(t).frames.last().ok_or_else(|| VmError::Internal("thread has no frames".into()))
}

fn frame_mut_of(core: &mut VmCore, t: ThreadIdx) -> Result<&mut crate::thread::Frame, VmError> {
    core.thread_mut(t)
        .frames
        .last_mut()
        .ok_or_else(|| VmError::Internal("thread has no frames".into()))
}

/// Executes a block of the current (application) thread under one
/// already-performed `check_preempt` consult: at most `budget` units,
/// ending early when `stop_br` is reached (the backup's exact-replay
/// bound), a breaker op is hit, a raise unwinds, or the thread leaves the
/// Runnable state. Straight-line runs of quiet instructions execute in
/// [`fast_run`] with hoisted borrows and batched accounting; branches,
/// plain invocations, returns, and allocations are handled here between
/// runs, with per-unit charges identical to [`exec_unit`]'s.
///
/// Returns the number of units executed. `0` means the instruction at pc
/// coordinates (breaker, synchronized call/return, heap-locked
/// allocation) and must run through the legacy [`exec_unit`] path under
/// the same consult.
pub(crate) fn exec_segment(
    core: &mut VmCore,
    coord: &mut dyn Coordinator,
    budget: u64,
    stop_br: Option<u64>,
) -> Result<u64, VmError> {
    let Some(t) = core.current else {
        return Err(VmError::Internal("exec_segment requires a dispatched thread".into()));
    };
    let program = core.program.clone();
    let engine = core.cfg.engine;
    let decoded = match engine {
        DispatchEngine::Fused | DispatchEngine::Decoded => Some(core.decoded.clone()),
        DispatchEngine::Match => None,
    };
    let fused = engine == DispatchEngine::Fused;
    let insn_base = core.cfg.cost.insn_base;
    let branch_extra = core.cfg.cost.branch_extra;
    let mut executed = 0u64;
    loop {
        if executed >= budget || core.current != Some(t) {
            return Ok(executed);
        }
        {
            let th = core.thread(t);
            if th.state != ThreadState::Runnable || th.native.is_some() || th.frames.is_empty() {
                return Ok(executed);
            }
            if let Some(sb) = stop_br {
                if th.br_cnt >= sb {
                    return Ok(executed);
                }
            }
        }
        let (n, cf, exit) = {
            let VmCore { threads, heap, statics, race, profile, class_objects, .. } = core;
            fast_run(
                t,
                &mut threads[t.0 as usize],
                heap,
                statics,
                race,
                profile,
                class_objects,
                &program,
                decoded.as_deref(),
                fused,
                budget - executed,
                stop_br,
            )?
        };
        if n > 0 {
            // The batched equivalent of n per-unit base charges.
            core.charge_base(SimTime::from_nanos(
                insn_base.as_nanos() * n + branch_extra.as_nanos() * cf,
            ));
            core.counters.instructions += n;
            core.counters.branches += cf;
            executed += n;
        }
        let op = match exit {
            FastExit::Out => return Ok(executed),
            FastExit::Raise(code) => {
                core.charge_base(insn_base);
                core.counters.instructions += 1;
                executed += 1;
                raise_runtime(core, coord, t, code)?;
                // Unwinding moved the pc (or killed the thread): the
                // straight-line invariant is gone, so the block ends and
                // the next consult recomputes the budget at the handler.
                return Ok(executed);
            }
            FastExit::Cold(op) => op,
        };
        if op.is_breaker() {
            // Monitor ops, natives, throws, synchronized static calls:
            // legacy path (executed == 0) or end of block.
            return Ok(executed);
        }
        match op.code {
            OpCode::InvokeStatic => {
                // Non-synchronized (synchronized callees carry
                // `F_BREAKER`), so the invocation never blocks.
                core.charge_base(insn_base + branch_extra);
                core.counters.instructions += 1;
                executed += 1;
                if let Some(p) = core.profile.as_mut() {
                    p.note_break(op.code);
                }
                if fused {
                    // Quickened: the callee's frame shape was folded into
                    // the op at decode time, so the invoke prologue skips
                    // the method-table read entirely.
                    self_push_frame(core, t, MethodId(op.a), op.b as u8, op.imm as u16, None);
                } else {
                    let _ = do_invoke(core, coord, t, MethodId(op.a), None)?;
                }
            }
            OpCode::InvokeVirtual => {
                let receiver = {
                    let stack = &frame_of(core, t)?.stack;
                    let idx = stack
                        .len()
                        .checked_sub(op.b as usize)
                        .ok_or_else(|| type_err("missing receiver for virtual call"))?;
                    stack[idx]
                };
                let r = match receiver {
                    Value::Ref(r) => Some(r),
                    Value::Null => None,
                    v => {
                        return Err(type_err(format!(
                            "virtual call receiver must be a reference, found {v}"
                        )))
                    }
                };
                let class = r.and_then(|r| core.heap.class_of(r));
                // Monomorphic inline cache (fused stream only: `op.imm`
                // is the decode-time site id, `NO_IC` elsewhere). A hit
                // skips the vtable walk and the method-table reads; the
                // cached facts are those the resolve below would produce,
                // so the hit and miss paths are observably identical.
                if op.imm >= 0 && class.is_some() {
                    let e = core.ics[op.imm as usize];
                    if e.class == class {
                        if e.sync {
                            // Acquires the receiver's monitor: legacy
                            // path (executed == 0) or end of block.
                            return Ok(executed);
                        }
                        core.charge_base(insn_base + branch_extra);
                        core.counters.instructions += 1;
                        executed += 1;
                        if let Some(p) = core.profile.as_mut() {
                            p.note_break(op.code);
                        }
                        self_push_frame(core, t, e.target, e.n_args, e.n_locals, None);
                        continue;
                    }
                }
                let target = class.and_then(|class| {
                    core.program.classes[class.0 as usize].resolve(VSlot(op.a as u16))
                });
                match (r, target) {
                    (None, _) => {
                        core.charge_base(insn_base + branch_extra);
                        core.counters.instructions += 1;
                        executed += 1;
                        raise_runtime(core, coord, t, excode::NULL_POINTER)?;
                        return Ok(executed);
                    }
                    (Some(_), None) => {
                        core.charge_base(insn_base + branch_extra);
                        core.counters.instructions += 1;
                        executed += 1;
                        raise_runtime(core, coord, t, excode::BAD_DISPATCH)?;
                        return Ok(executed);
                    }
                    (Some(r), Some(mid)) => {
                        let m = &core.program.methods[mid.0 as usize];
                        let (sync, n_args, n_locals) = (m.synchronized, m.n_args, m.n_locals);
                        if op.imm >= 0 {
                            // Fill (or monomorphically rewrite) the site.
                            // Never stale: vtables are immutable, so a
                            // class always resolves to the same target.
                            core.ics[op.imm as usize] = crate::decoded::IcEntry {
                                class,
                                target: mid,
                                sync,
                                n_args,
                                n_locals,
                            };
                        }
                        if sync {
                            // Acquires the receiver's monitor: legacy path
                            // (executed == 0) or end of block.
                            return Ok(executed);
                        }
                        core.charge_base(insn_base + branch_extra);
                        core.counters.instructions += 1;
                        executed += 1;
                        if let Some(p) = core.profile.as_mut() {
                            p.note_break(op.code);
                        }
                        let _ = do_invoke(core, coord, t, mid, Some(r))?;
                    }
                }
            }
            OpCode::Ret | OpCode::RetVal => {
                if frame_of(core, t)?.sync_obj.is_some() {
                    // Releases the method's monitor: legacy path or end.
                    return Ok(executed);
                }
                core.charge_base(insn_base + branch_extra);
                core.counters.instructions += 1;
                executed += 1;
                if let Some(p) = core.profile.as_mut() {
                    p.note_break(op.code);
                }
                let val = if matches!(op.code, OpCode::RetVal) {
                    Some(pop(&mut frame_mut_of(core, t)?.stack)?)
                } else {
                    None
                };
                do_return(core, coord, t, val)?;
            }
            OpCode::ConstStr => {
                if heap_locked_by_other(core, t) {
                    return Ok(executed);
                }
                core.charge_base(insn_base);
                core.counters.instructions += 1;
                executed += 1;
                if let Some(p) = core.profile.as_mut() {
                    p.note_break(op.code);
                }
                let arr = if let (true, Some(d)) = (fused, decoded.as_deref()) {
                    // Quickened: copy the pre-materialized value template
                    // built at decode time instead of re-walking UTF-8.
                    let tpl = &d.strings[op.a as usize];
                    let arr = alloc_counted(core, true, builtin::OBJECT, tpl.len())?;
                    if let Some(HeapEntry::Arr { elems }) = core.heap.get_mut(arr) {
                        elems.copy_from_slice(tpl);
                    }
                    arr
                } else {
                    let bytes: Vec<u8> = core.program.strings[op.a as usize].bytes().collect();
                    let arr = alloc_counted(core, true, builtin::OBJECT, bytes.len())?;
                    if let Some(HeapEntry::Arr { elems }) = core.heap.get_mut(arr) {
                        for (slot, b) in elems.iter_mut().zip(bytes.iter()) {
                            *slot = Value::Int(*b as i64);
                        }
                    }
                    arr
                };
                let f = frame_mut_of(core, t)?;
                f.stack.push(Value::Ref(arr));
                f.pc += 1;
            }
            OpCode::New => {
                if heap_locked_by_other(core, t) {
                    return Ok(executed);
                }
                core.charge_base(insn_base);
                core.counters.instructions += 1;
                executed += 1;
                if let Some(p) = core.profile.as_mut() {
                    p.note_break(op.code);
                }
                let n_fields = core.program.classes[op.a as usize].n_fields;
                let obj = alloc_counted(core, false, ClassId(op.a as u16), n_fields as usize)?;
                let f = frame_mut_of(core, t)?;
                f.stack.push(Value::Ref(obj));
                f.pc += 1;
            }
            OpCode::NewArray => {
                if heap_locked_by_other(core, t) {
                    return Ok(executed);
                }
                core.charge_base(insn_base);
                core.counters.instructions += 1;
                executed += 1;
                if let Some(p) = core.profile.as_mut() {
                    p.note_break(op.code);
                }
                let len = {
                    let s = &frame_of(core, t)?.stack;
                    (*s.last().ok_or_else(|| type_err("newarray on empty stack"))?)
                        .as_int()
                        .map_err(|v| type_err(format!("array length must be int, found {v}")))?
                };
                if len < 0 {
                    raise_runtime(core, coord, t, excode::NEGATIVE_ARRAY_SIZE)?;
                    return Ok(executed);
                }
                let arr = alloc_counted(core, true, builtin::OBJECT, len as usize)?;
                let f = frame_mut_of(core, t)?;
                f.stack.pop();
                f.stack.push(Value::Ref(arr));
                f.pc += 1;
            }
            other => {
                return Err(VmError::Internal(format!("op {other:?} escaped the fast loop")));
            }
        }
    }
}

/// The straight-line hot loop: executes quiet decoded ops with the frame
/// borrow hoisted across the whole run and accounting batched into
/// `(units, control_flow)` counts for the caller to flush. Ops that need
/// `&mut VmCore` (invocations, returns, allocations, breakers) and raise
/// conditions break out unexecuted.
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn fast_run(
    t: ThreadIdx,
    th: &mut crate::thread::VmThread,
    heap: &mut Heap,
    statics: &mut [Vec<Value>],
    race: &mut Option<crate::race::RaceDetector>,
    profile: &mut Option<crate::profile::OpProfiler>,
    class_objects: &[ObjRef],
    program: &Program,
    decoded: Option<&DecodedProgram>,
    fused: bool,
    remaining: u64,
    stop_br: Option<u64>,
) -> Result<(u64, u64, FastExit), VmError> {
    use crate::race::Loc;
    let crate::thread::VmThread { frames, br_cnt, held_for_race, .. } = th;
    let Some(frame) = frames.last_mut() else {
        return Ok((0, 0, FastExit::Out));
    };
    let crate::thread::Frame { method, pc, locals, stack, .. } = frame;
    let method = *method;
    // Dispatch stream and (fused engine only) the quickened-singles
    // fallback stream for superinstructions that don't fit the budget.
    let (dops, qops): (Option<&[DOp]>, &[DOp]) = match decoded {
        Some(d) => {
            let m = &d.methods[method.0 as usize];
            if fused {
                (Some(m.fused.as_slice()), m.quick.as_slice())
            } else {
                (Some(m.base.as_slice()), &[])
            }
        }
        None => (None, &[]),
    };
    let code = program.methods[method.0 as usize].code.as_slice();
    let mut n = 0u64;
    let mut cf = 0u64;
    let mut prof_last = usize::MAX;

    macro_rules! raise {
        ($code:expr) => {
            break FastExit::Raise($code)
        };
    }
    // A branch op: one unit, one control-flow bump, then the `stop_br`
    // check that implements the backup's exact-replay bound.
    macro_rules! take_branch {
        ($target:expr) => {{
            *pc = $target;
            *br_cnt += 1;
            cf += 1;
            n += 1;
            if stop_br == Some(*br_cnt) {
                break FastExit::Out;
            }
            continue;
        }};
    }
    macro_rules! skip_branch {
        () => {{
            *pc += 1;
            *br_cnt += 1;
            cf += 1;
            n += 1;
            if stop_br == Some(*br_cnt) {
                break FastExit::Out;
            }
            continue;
        }};
    }
    macro_rules! track {
        ($loc:expr, $w:expr) => {
            if let Some(d) = race.as_mut() {
                d.on_access($loc, t, held_for_race, $w);
            }
        };
    }

    let exit = 'run: loop {
        if n >= remaining {
            break FastExit::Out;
        }
        let i = *pc as usize;
        let mut op = match dops {
            Some(s) => s[i],
            None => decode_one(code[i], program),
        };
        if op.flags != 0 {
            let flen = op.flags >> F_FUSE_SHIFT;
            if flen == 0 {
                break FastExit::Cold(op);
            }
            // Budget-fit rule: a superinstruction of `flen` constituents
            // executes only when all of them fit in the remaining budget;
            // otherwise fall back to the quickened single at the same pc so
            // every intermediate (br_cnt, pc) the backup may replay to stays
            // reachable.
            if n + u64::from(flen) > remaining {
                op = qops[i];
            }
        }
        if let Some(p) = profile.as_mut() {
            p.note(op.code, i == prof_last.wrapping_add(1));
            prof_last = i;
        }
        match op.code {
            OpCode::Nop => *pc += 1,
            OpCode::ConstI => {
                stack.push(Value::Int(op.imm));
                *pc += 1;
            }
            OpCode::ConstD => {
                stack.push(Value::Double(f64::from_bits(op.imm as u64)));
                *pc += 1;
            }
            OpCode::ConstNull => {
                stack.push(Value::Null);
                *pc += 1;
            }
            OpCode::Dup => {
                let top = *stack.last().ok_or_else(|| type_err("dup on empty stack"))?;
                stack.push(top);
                *pc += 1;
            }
            OpCode::DupX1 => {
                let v1 = pop(stack)?;
                let v2 = pop(stack)?;
                stack.push(v1);
                stack.push(v2);
                stack.push(v1);
                *pc += 1;
            }
            OpCode::Pop => {
                pop(stack)?;
                *pc += 1;
            }
            OpCode::Swap => {
                let a = pop(stack)?;
                let b = pop(stack)?;
                stack.push(a);
                stack.push(b);
                *pc += 1;
            }
            OpCode::Load => {
                stack.push(locals[op.a as usize]);
                *pc += 1;
            }
            OpCode::Store => {
                locals[op.a as usize] = pop(stack)?;
                *pc += 1;
            }
            OpCode::Inc => {
                let slot = &mut locals[op.a as usize];
                let cur =
                    slot.as_int().map_err(|v| type_err(format!("inc of non-int local: {v}")))?;
                *slot = Value::Int(cur.wrapping_add(op.imm));
                *pc += 1;
            }
            OpCode::Add
            | OpCode::Sub
            | OpCode::Mul
            | OpCode::And
            | OpCode::Or
            | OpCode::Xor
            | OpCode::Shl
            | OpCode::Shr => {
                let b = pop_int(stack)?;
                let a = pop_int(stack)?;
                let r = match op.code {
                    OpCode::Add => a.wrapping_add(b),
                    OpCode::Sub => a.wrapping_sub(b),
                    OpCode::Mul => a.wrapping_mul(b),
                    OpCode::And => a & b,
                    OpCode::Or => a | b,
                    OpCode::Xor => a ^ b,
                    OpCode::Shl => a.wrapping_shl(b as u32 & 63),
                    _ => a.wrapping_shr(b as u32 & 63),
                };
                stack.push(Value::Int(r));
                *pc += 1;
            }
            OpCode::Div | OpCode::Rem => {
                let b = pop_int(stack)?;
                let a = pop_int(stack)?;
                if b == 0 {
                    raise!(excode::ARITHMETIC);
                }
                let r = if matches!(op.code, OpCode::Div) {
                    a.wrapping_div(b)
                } else {
                    a.wrapping_rem(b)
                };
                stack.push(Value::Int(r));
                *pc += 1;
            }
            OpCode::Neg => {
                let a = pop_int(stack)?;
                stack.push(Value::Int(a.wrapping_neg()));
                *pc += 1;
            }
            OpCode::DAdd | OpCode::DSub | OpCode::DMul | OpCode::DDiv => {
                let b = pop_double(stack)?;
                let a = pop_double(stack)?;
                let r = match op.code {
                    OpCode::DAdd => a + b,
                    OpCode::DSub => a - b,
                    OpCode::DMul => a * b,
                    _ => a / b,
                };
                stack.push(Value::Double(r));
                *pc += 1;
            }
            OpCode::I2D => {
                let a = pop_int(stack)?;
                stack.push(Value::Double(a as f64));
                *pc += 1;
            }
            OpCode::D2I => {
                let a = pop_double(stack)?;
                stack.push(Value::Int(if a.is_nan() { 0 } else { a as i64 }));
                *pc += 1;
            }
            OpCode::ICmp => {
                let b = pop_int(stack)?;
                let a = pop_int(stack)?;
                let ord = match a.cmp(&b) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                };
                stack.push(Value::from(cmp_of(op.a).eval_ord(ord)));
                *pc += 1;
            }
            OpCode::DCmp => {
                let b = pop_double(stack)?;
                let a = pop_double(stack)?;
                let c = cmp_of(op.a);
                let result = match a.partial_cmp(&b) {
                    Some(std::cmp::Ordering::Less) => c.eval_ord(-1),
                    Some(std::cmp::Ordering::Equal) => c.eval_ord(0),
                    Some(std::cmp::Ordering::Greater) => c.eval_ord(1),
                    None => matches!(c, Cmp::Ne), // NaN
                };
                stack.push(Value::from(result));
                *pc += 1;
            }
            OpCode::RefEq => {
                let b = pop(stack)?;
                let a = pop(stack)?;
                let eq = match (a, b) {
                    (Value::Null, Value::Null) => true,
                    (Value::Ref(x), Value::Ref(y)) => x == y,
                    _ => false,
                };
                stack.push(Value::from(eq));
                *pc += 1;
            }
            OpCode::Goto => take_branch!(op.a),
            OpCode::If => {
                let v = pop(stack)?;
                if v.is_truthy() {
                    take_branch!(op.a);
                } else {
                    skip_branch!();
                }
            }
            OpCode::IfNot => {
                let v = pop(stack)?;
                if !v.is_truthy() {
                    take_branch!(op.a);
                } else {
                    skip_branch!();
                }
            }
            OpCode::IfNull => {
                let v = pop(stack)?;
                if v.is_null() {
                    take_branch!(op.a);
                } else {
                    skip_branch!();
                }
            }
            OpCode::GetField => {
                let obj = pop(stack)?;
                let r = match obj {
                    Value::Ref(r) => r,
                    Value::Null => raise!(excode::NULL_POINTER),
                    v => return Err(type_err(format!("getfield on non-reference {v}"))),
                };
                let slot = op.a as u16;
                let v = match heap.get(r) {
                    Some(HeapEntry::Obj { fields, .. }) => *fields
                        .get(slot as usize)
                        .ok_or_else(|| type_err(format!("field slot {slot} out of range")))?,
                    Some(HeapEntry::Arr { .. }) => return Err(type_err("getfield on array")),
                    None => {
                        return Err(VmError::DanglingRef { detail: format!("getfield on {r}") })
                    }
                };
                track!(Loc::Field(r, slot), false);
                stack.push(v);
                *pc += 1;
            }
            OpCode::PutField => {
                let v = pop(stack)?;
                let obj = pop(stack)?;
                let r = match obj {
                    Value::Ref(r) => r,
                    Value::Null => raise!(excode::NULL_POINTER),
                    v => return Err(type_err(format!("putfield on non-reference {v}"))),
                };
                let slot = op.a as u16;
                match heap.get_mut(r) {
                    Some(HeapEntry::Obj { fields, .. }) => {
                        let f = fields
                            .get_mut(slot as usize)
                            .ok_or_else(|| type_err(format!("field slot {slot} out of range")))?;
                        *f = v;
                    }
                    Some(HeapEntry::Arr { .. }) => return Err(type_err("putfield on array")),
                    None => {
                        return Err(VmError::DanglingRef { detail: format!("putfield on {r}") })
                    }
                }
                track!(Loc::Field(r, slot), true);
                *pc += 1;
            }
            OpCode::GetStatic => {
                let slot = op.b as u16;
                let v = *statics[op.a as usize]
                    .get(slot as usize)
                    .ok_or_else(|| type_err(format!("static slot {slot} out of range")))?;
                track!(Loc::Static(ClassId(op.a as u16), slot), false);
                stack.push(v);
                *pc += 1;
            }
            OpCode::PutStatic => {
                let v = pop(stack)?;
                let slot = op.b as u16;
                let f = statics[op.a as usize]
                    .get_mut(slot as usize)
                    .ok_or_else(|| type_err(format!("static slot {slot} out of range")))?;
                *f = v;
                track!(Loc::Static(ClassId(op.a as u16), slot), true);
                *pc += 1;
            }
            OpCode::ClassObj => {
                stack.push(Value::Ref(class_objects[op.a as usize]));
                *pc += 1;
            }
            OpCode::ALoad => {
                let idx = pop_int(stack)?;
                let arr = pop(stack)?;
                let r = match arr {
                    Value::Ref(r) => r,
                    Value::Null => raise!(excode::NULL_POINTER),
                    v => return Err(type_err(format!("aload on non-reference {v}"))),
                };
                let v = match heap.get(r) {
                    Some(HeapEntry::Arr { elems }) => {
                        if idx < 0 || idx as usize >= elems.len() {
                            raise!(excode::ARRAY_BOUNDS);
                        }
                        elems[idx as usize]
                    }
                    Some(HeapEntry::Obj { .. }) => return Err(type_err("aload on object")),
                    None => return Err(VmError::DanglingRef { detail: format!("aload on {r}") }),
                };
                track!(Loc::Array(r), false);
                stack.push(v);
                *pc += 1;
            }
            OpCode::AStore => {
                let v = pop(stack)?;
                let idx = pop_int(stack)?;
                let arr = pop(stack)?;
                let r = match arr {
                    Value::Ref(r) => r,
                    Value::Null => raise!(excode::NULL_POINTER),
                    v => return Err(type_err(format!("astore on non-reference {v}"))),
                };
                match heap.get_mut(r) {
                    Some(HeapEntry::Arr { elems }) => {
                        if idx < 0 || idx as usize >= elems.len() {
                            raise!(excode::ARRAY_BOUNDS);
                        }
                        elems[idx as usize] = v;
                    }
                    Some(HeapEntry::Obj { .. }) => return Err(type_err("astore on object")),
                    None => return Err(VmError::DanglingRef { detail: format!("astore on {r}") }),
                }
                track!(Loc::Array(r), true);
                *pc += 1;
            }
            OpCode::ALen => {
                let arr = pop(stack)?;
                let r = match arr {
                    Value::Ref(r) => r,
                    Value::Null => raise!(excode::NULL_POINTER),
                    v => return Err(type_err(format!("arraylength on non-reference {v}"))),
                };
                let len = match heap.get(r) {
                    Some(HeapEntry::Arr { elems }) => elems.len() as i64,
                    Some(HeapEntry::Obj { .. }) => return Err(type_err("arraylength on object")),
                    None => {
                        return Err(VmError::DanglingRef { detail: format!("arraylength on {r}") })
                    }
                };
                stack.push(Value::Int(len));
                *pc += 1;
            }
            // ----- superinstructions (fused stream only) -----
            //
            // Each fused arm does ALL of its own accounting — `n` by
            // constituent count, `cf`/`br_cnt` only at a final branch
            // constituent, `pc` by fused length — and ends with `continue`
            // so the loop-bottom `n += 1` never double-charges. A raise
            // mid-fusion first commits the completed constituents
            // (`pc`/`n` advance to the raising constituent) so the outer
            // raise path charges and unwinds at the exact same pc as the
            // equivalent run of singles.
            OpCode::FLoadIfNot => {
                // Load a; IfNot ->b  (the `spin` loop test)
                let v = locals[op.a as usize];
                if !v.is_truthy() {
                    *pc = op.b;
                } else {
                    *pc += 2;
                }
                *br_cnt += 1;
                cf += 1;
                n += 2;
                if stop_br == Some(*br_cnt) {
                    break FastExit::Out;
                }
                continue;
            }
            OpCode::FIncGoto => {
                // Inc a,imm; Goto ->b  (the loop-latch digram)
                let slot = &mut locals[op.a as usize];
                let cur =
                    slot.as_int().map_err(|v| type_err(format!("inc of non-int local: {v}")))?;
                *slot = Value::Int(cur.wrapping_add(op.imm));
                *pc = op.b;
                *br_cnt += 1;
                cf += 1;
                n += 2;
                if stop_br == Some(*br_cnt) {
                    break FastExit::Out;
                }
                continue;
            }
            OpCode::FICmpIf => {
                // ICmp a; If ->b
                let bv = pop_int(stack)?;
                let av = pop_int(stack)?;
                let ord = match av.cmp(&bv) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                };
                if cmp_of(op.a).eval_ord(ord) {
                    *pc = op.b;
                } else {
                    *pc += 2;
                }
                *br_cnt += 1;
                cf += 1;
                n += 2;
                if stop_br == Some(*br_cnt) {
                    break FastExit::Out;
                }
                continue;
            }
            OpCode::FConstArith => {
                // ConstI imm; <arith a>  — Div/Rem only fused when imm != 0,
                // so no arithmetic raise is possible here.
                let av = pop_int(stack)?;
                stack.push(Value::Int(fused_arith(op.a, av, op.imm)));
                *pc += 2;
                n += 2;
                continue;
            }
            OpCode::FLoadLoad => {
                stack.push(locals[op.a as usize]);
                stack.push(locals[op.b as usize]);
                *pc += 2;
                n += 2;
                continue;
            }
            OpCode::FLoadStore => {
                // Load a; Store b  — a local-to-local move, no stack traffic.
                locals[op.b as usize] = locals[op.a as usize];
                *pc += 2;
                n += 2;
                continue;
            }
            OpCode::FLoadALoad => {
                // Load a (index); ALoad  — array ref is the current stack top.
                let idx = locals[op.a as usize]
                    .as_int()
                    .map_err(|v| type_err(format!("expected int, found {v}")))?;
                let arr = pop(stack)?;
                let r = match arr {
                    Value::Ref(r) => r,
                    Value::Null => {
                        *pc += 1;
                        n += 1;
                        raise!(excode::NULL_POINTER)
                    }
                    v => return Err(type_err(format!("aload on non-reference {v}"))),
                };
                let v = match heap.get(r) {
                    Some(HeapEntry::Arr { elems }) => {
                        if idx < 0 || idx as usize >= elems.len() {
                            *pc += 1;
                            n += 1;
                            raise!(excode::ARRAY_BOUNDS);
                        }
                        elems[idx as usize]
                    }
                    Some(HeapEntry::Obj { .. }) => return Err(type_err("aload on object")),
                    None => return Err(VmError::DanglingRef { detail: format!("aload on {r}") }),
                };
                track!(Loc::Array(r), false);
                stack.push(v);
                *pc += 2;
                n += 2;
                continue;
            }
            OpCode::FLoadGetField => {
                // Load a (object); GetField b
                let r = match locals[op.a as usize] {
                    Value::Ref(r) => r,
                    Value::Null => {
                        *pc += 1;
                        n += 1;
                        raise!(excode::NULL_POINTER)
                    }
                    v => return Err(type_err(format!("getfield on non-reference {v}"))),
                };
                let slot = op.b as u16;
                let v = match heap.get(r) {
                    Some(HeapEntry::Obj { fields, .. }) => *fields
                        .get(slot as usize)
                        .ok_or_else(|| type_err(format!("field slot {slot} out of range")))?,
                    Some(HeapEntry::Arr { .. }) => return Err(type_err("getfield on array")),
                    None => {
                        return Err(VmError::DanglingRef { detail: format!("getfield on {r}") })
                    }
                };
                track!(Loc::Field(r, slot), false);
                stack.push(v);
                *pc += 2;
                n += 2;
                continue;
            }
            OpCode::FGetStaticLoad => {
                // GetStatic a.b; Load imm
                let slot = op.b as u16;
                let v = *statics[op.a as usize]
                    .get(slot as usize)
                    .ok_or_else(|| type_err(format!("static slot {slot} out of range")))?;
                track!(Loc::Static(ClassId(op.a as u16), slot), false);
                stack.push(v);
                stack.push(locals[op.imm as usize]);
                *pc += 2;
                n += 2;
                continue;
            }
            OpCode::FLoadConstICmp => {
                // Load a; ConstI imm; ICmp b  — pushes the comparison result.
                let av = locals[op.a as usize]
                    .as_int()
                    .map_err(|v| type_err(format!("expected int, found {v}")))?;
                let ord = match av.cmp(&op.imm) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                };
                stack.push(Value::from(cmp_of(op.b).eval_ord(ord)));
                *pc += 3;
                n += 3;
                continue;
            }
            OpCode::FConstICmpIf => {
                // ConstI imm; ICmp a; If ->b  (the `count_loop` head tail)
                let av = pop_int(stack)?;
                let ord = match av.cmp(&op.imm) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                };
                if cmp_of(op.a).eval_ord(ord) {
                    *pc = op.b;
                } else {
                    *pc += 3;
                }
                *br_cnt += 1;
                cf += 1;
                n += 3;
                if stop_br == Some(*br_cnt) {
                    break FastExit::Out;
                }
                continue;
            }
            OpCode::FLoadLoadALoad => {
                // Load a (array); Load b (index); ALoad  (the scanner fetch)
                let idx = locals[op.b as usize]
                    .as_int()
                    .map_err(|v| type_err(format!("expected int, found {v}")))?;
                let r = match locals[op.a as usize] {
                    Value::Ref(r) => r,
                    Value::Null => {
                        *pc += 2;
                        n += 2;
                        raise!(excode::NULL_POINTER)
                    }
                    v => return Err(type_err(format!("aload on non-reference {v}"))),
                };
                let v = match heap.get(r) {
                    Some(HeapEntry::Arr { elems }) => {
                        if idx < 0 || idx as usize >= elems.len() {
                            *pc += 2;
                            n += 2;
                            raise!(excode::ARRAY_BOUNDS);
                        }
                        elems[idx as usize]
                    }
                    Some(HeapEntry::Obj { .. }) => return Err(type_err("aload on object")),
                    None => return Err(VmError::DanglingRef { detail: format!("aload on {r}") }),
                };
                track!(Loc::Array(r), false);
                stack.push(v);
                *pc += 3;
                n += 3;
                continue;
            }
            OpCode::FLoadLoadArith => {
                // Load a; Load b; <arith imm>  — Div/Rem are never fused
                // here. `b` is converted first to mirror the single ops'
                // pop order on a type error.
                let bv = locals[op.b as usize]
                    .as_int()
                    .map_err(|v| type_err(format!("expected int, found {v}")))?;
                let av = locals[op.a as usize]
                    .as_int()
                    .map_err(|v| type_err(format!("expected int, found {v}")))?;
                stack.push(Value::Int(fused_arith(op.imm as u32, av, bv)));
                *pc += 3;
                n += 3;
                continue;
            }
            OpCode::FSpin => {
                // Load a.lo; IfNot ->b; Inc a.hi,imm.lo; Goto ->imm.hi —
                // one whole spin-wait iteration per pass. Both branches
                // get their own stop check; a halt after the IfNot
                // fall-through leaves pc on the interior Inc single, a
                // replayable state. When the Goto targets this very op (a
                // self-loop, the common shape) the loop iterates in place:
                // per-iteration accounting, br_cnt bumps, and stop/budget
                // checks are identical to re-dispatching, so replay
                // alignment is unchanged — the op is simply fetched once
                // instead of once per iteration.
                let target = (op.imm >> 32) as u32;
                let delta = i64::from(op.imm as i32);
                let test = (op.a & 0xFFFF) as usize;
                let ctr = (op.a >> 16) as usize;
                let self_loop = target as usize == i;
                loop {
                    *br_cnt += 1;
                    cf += 1;
                    if !locals[test].is_truthy() {
                        *pc = op.b;
                        n += 2;
                        if stop_br == Some(*br_cnt) {
                            break 'run FastExit::Out;
                        }
                        break;
                    }
                    *pc += 2;
                    n += 2;
                    if stop_br == Some(*br_cnt) {
                        break 'run FastExit::Out;
                    }
                    let slot = &mut locals[ctr];
                    let cur = slot
                        .as_int()
                        .map_err(|v| type_err(format!("inc of non-int local: {v}")))?;
                    *slot = Value::Int(cur.wrapping_add(delta));
                    *pc = target;
                    *br_cnt += 1;
                    cf += 1;
                    n += 2;
                    if stop_br == Some(*br_cnt) {
                        break 'run FastExit::Out;
                    }
                    if !self_loop || n + 4 > remaining {
                        break;
                    }
                }
                continue;
            }
            OpCode::FLoadConstICmpIf => {
                // Load a.lo; ConstI imm; ICmp a.hi; If ->b — counted-loop
                // head.
                let av = locals[(op.a & 0xFFFF) as usize]
                    .as_int()
                    .map_err(|v| type_err(format!("expected int, found {v}")))?;
                let ord = match av.cmp(&op.imm) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                };
                if cmp_of(op.a >> 16).eval_ord(ord) {
                    *pc = op.b;
                } else {
                    *pc += 4;
                }
                *br_cnt += 1;
                cf += 1;
                n += 4;
                if stop_br == Some(*br_cnt) {
                    break FastExit::Out;
                }
                continue;
            }
            OpCode::FStoreLoad => {
                locals[op.a as usize] = pop(stack)?;
                stack.push(locals[op.b as usize]);
                *pc += 2;
                n += 2;
                continue;
            }
            OpCode::FConstStore => {
                locals[op.a as usize] = Value::Int(op.imm);
                *pc += 2;
                n += 2;
                continue;
            }
            OpCode::FLoadConstArith => {
                // Load a.lo; ConstI imm; <arith a.hi> — Div/Rem fuse only
                // with a nonzero constant, so no raise path.
                let av = locals[(op.a & 0xFFFF) as usize]
                    .as_int()
                    .map_err(|v| type_err(format!("expected int, found {v}")))?;
                stack.push(Value::Int(fused_arith(op.a >> 16, av, op.imm)));
                *pc += 3;
                n += 3;
                continue;
            }
            OpCode::FICmpIfNot => {
                // ICmp a; IfNot ->b
                let bv = pop_int(stack)?;
                let av = pop_int(stack)?;
                let ord = match av.cmp(&bv) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                };
                if !cmp_of(op.a).eval_ord(ord) {
                    *pc = op.b;
                } else {
                    *pc += 2;
                }
                *br_cnt += 1;
                cf += 1;
                n += 2;
                if stop_br == Some(*br_cnt) {
                    break FastExit::Out;
                }
                continue;
            }
            OpCode::FALoadArith => {
                // ALoad; <arith a> — a raise here happens at the first
                // constituent, so pc and n stay untouched (the outer raise
                // path charges the one unit, exactly like the single).
                let idx = pop_int(stack)?;
                let arr = pop(stack)?;
                let r = match arr {
                    Value::Ref(r) => r,
                    Value::Null => raise!(excode::NULL_POINTER),
                    v => return Err(type_err(format!("aload on non-reference {v}"))),
                };
                let v = match heap.get(r) {
                    Some(HeapEntry::Arr { elems }) => {
                        if idx < 0 || idx as usize >= elems.len() {
                            raise!(excode::ARRAY_BOUNDS);
                        }
                        elems[idx as usize]
                    }
                    Some(HeapEntry::Obj { .. }) => return Err(type_err("aload on object")),
                    None => return Err(VmError::DanglingRef { detail: format!("aload on {r}") }),
                };
                track!(Loc::Array(r), false);
                let ev = v.as_int().map_err(|v| type_err(format!("expected int, found {v}")))?;
                let av = pop_int(stack)?;
                stack.push(Value::Int(fused_arith(op.a, av, ev)));
                *pc += 2;
                n += 2;
                continue;
            }
            OpCode::FArithStore => {
                // <arith b>; Store a
                let bv = pop_int(stack)?;
                let av = pop_int(stack)?;
                locals[op.a as usize] = Value::Int(fused_arith(op.b, av, bv));
                *pc += 2;
                n += 2;
                continue;
            }
            OpCode::FLoadLoadICmpIf => {
                // Load a.lo; Load a.hi; ICmp imm; If ->b — the second
                // load is the comparison's right-hand side.
                let bv = locals[(op.a >> 16) as usize]
                    .as_int()
                    .map_err(|v| type_err(format!("expected int, found {v}")))?;
                let av = locals[(op.a & 0xFFFF) as usize]
                    .as_int()
                    .map_err(|v| type_err(format!("expected int, found {v}")))?;
                let ord = match av.cmp(&bv) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                };
                if cmp_of(op.imm as u32).eval_ord(ord) {
                    *pc = op.b;
                } else {
                    *pc += 4;
                }
                *br_cnt += 1;
                cf += 1;
                n += 4;
                if stop_br == Some(*br_cnt) {
                    break FastExit::Out;
                }
                continue;
            }
            OpCode::FLoadICmpIfNot => {
                // Load a.lo; ICmp a.hi; IfNot ->b — left-hand side from
                // the stack, right-hand side from the local.
                let bv = locals[(op.a & 0xFFFF) as usize]
                    .as_int()
                    .map_err(|v| type_err(format!("expected int, found {v}")))?;
                let av = pop_int(stack)?;
                let ord = match av.cmp(&bv) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                };
                if !cmp_of(op.a >> 16).eval_ord(ord) {
                    *pc = op.b;
                } else {
                    *pc += 3;
                }
                *br_cnt += 1;
                cf += 1;
                n += 3;
                if stop_br == Some(*br_cnt) {
                    break FastExit::Out;
                }
                continue;
            }
            OpCode::ConstStr
            | OpCode::New
            | OpCode::NewArray
            | OpCode::InvokeStatic
            | OpCode::InvokeVirtual
            | OpCode::InvokeNative
            | OpCode::Ret
            | OpCode::RetVal
            | OpCode::MonitorEnter
            | OpCode::MonitorExit
            | OpCode::Throw => break FastExit::Cold(op),
        }
        n += 1;
    };
    Ok((n, cf, exit))
}

// ----- native methods -----

fn begin_native(
    core: &mut VmCore,
    natives: &NativeRegistry,
    coord: &mut dyn Coordinator,
    t: ThreadIdx,
    nid: crate::bytecode::NativeId,
    argc: u8,
) -> Result<(), VmError> {
    let reg_idx = core.linked[nid.0 as usize] as usize;
    let decl = &natives.decls()[reg_idx];
    let is_app = core.thread(t).kind == ThreadKind::App;
    // Streaming-replay gate. Must precede every counter bump and the
    // argument pop: a deferred thread re-executes this InvokeNative (the pc
    // only advances in `complete_native`), so the invocation must be
    // side-effect free up to this point.
    if is_app {
        let ready = {
            let obs = obs_of(&core.threads, t);
            coord.native_ready(&obs, decl)
        };
        if !ready {
            core.thread_mut(t).state = ThreadState::DeferredNative;
            return Ok(());
        }
    }
    // The invocation is a control-flow change; counted when the activation
    // is created.
    core.thread_mut(t).br_cnt += 1;
    if is_app {
        core.counters.branches += 1;
        core.counters.native_calls += 1;
    }
    let native_cost = core.cfg.cost.native_call;
    core.charge_base(native_cost);
    // Pop arguments (receiver-first order).
    let args: Vec<Value> = {
        let stack = &mut core.thread_mut(t).frame_mut().stack;
        let split = stack
            .len()
            .checked_sub(argc as usize)
            .ok_or_else(|| type_err("native call with too few operands"))?;
        stack.split_off(split)
    };
    let directive = if is_app {
        let (threads, acct) = (&core.threads, &mut core.acct);
        let obs = obs_of(threads, t);
        coord.pre_native(&obs, decl, &args, acct)
    } else {
        NativeDirective::Execute
    };
    let adopted: Option<AdoptedOutcome> = match directive {
        NativeDirective::Execute => None,
        NativeDirective::Replay(a) => Some(a),
    };
    let output_id = if decl.output {
        match &adopted {
            Some(a) => a.output_id,
            None => {
                if is_app {
                    core.counters.outputs += 1;
                    let (threads, acct) = (&core.threads, &mut core.acct);
                    let obs = obs_of(threads, t);
                    Some(coord.begin_output(&obs, decl, acct))
                } else {
                    Some(u64::MAX)
                }
            }
        }
    } else {
        None
    };
    core.thread_mut(t).native = Some(NativeActivation {
        native: nid,
        phase: 0,
        args,
        scratch: Vec::new(),
        held: Vec::new(),
        pending_acquire: None,
        adopted,
        output_id,
        out_args: Vec::new(),
    });
    Ok(())
}

/// What an intrinsic step produced.
enum IntrinsicStep {
    Done(Option<Value>),
    /// The thread yielded (blocked/sleeping/waiting); retry later.
    Pending,
    /// Raise a runtime exception with this code.
    Raise(i64),
}

fn drive_native(
    core: &mut VmCore,
    natives: &NativeRegistry,
    coord: &mut dyn Coordinator,
    t: ThreadIdx,
) -> Result<(), VmError> {
    let mut act = core
        .thread_mut(t)
        .native
        .take()
        .ok_or_else(|| VmError::Internal("drive_native requires an activation".into()))?;
    let reg_idx = core.linked[act.native.0 as usize] as usize;
    // Replay-with-skip: impose the logged outcome without running the body.
    if let Some(a) = &act.adopted {
        if !a.execute {
            let Some(imposed) = imposed_result(a) else {
                return Err(VmError::ReplayDivergence {
                    thread: t,
                    detail: "replay skipped a native without a logged result to impose".into(),
                });
            };
            return complete_native(core, natives, coord, t, act, imposed);
        }
    }
    // A pending in-native monitor acquisition must finish first.
    if let Some(obj) = act.pending_acquire {
        match core.acquire_monitor(coord, t, obj, None) {
            AcquireOutcome::Acquired => {
                act.held.push(obj);
                act.pending_acquire = None;
                core.thread_mut(t).native = Some(act);
            }
            AcquireOutcome::Blocked | AcquireOutcome::Deferred => {
                core.thread_mut(t).native = Some(act);
            }
        }
        return Ok(());
    }
    // Extract only the (Copy) body for this step — cloning a phased
    // native's whole phase vector per unit would be wasteful.
    enum Body {
        Intr(Intrinsic),
        Simple(crate::native::SimpleFn),
        Phase(crate::native::PhaseFn),
    }
    let body = match &natives.decls()[reg_idx].kind {
        NativeKind::Intrinsic(w) => Body::Intr(*w),
        NativeKind::Simple(f) => Body::Simple(*f),
        NativeKind::Phased(ps) => match ps.get(act.phase) {
            Some(f) => Body::Phase(*f),
            None => return Err(VmError::Internal("phased native ran past its last phase".into())),
        },
    };
    match body {
        Body::Intr(which) => {
            let step = drive_intrinsic(core, coord, t, &mut act, which)?;
            match step {
                IntrinsicStep::Done(v) => complete_native(core, natives, coord, t, act, Ok(v)),
                IntrinsicStep::Pending => {
                    core.thread_mut(t).native = Some(act);
                    Ok(())
                }
                IntrinsicStep::Raise(code) => {
                    release_held(core, coord, t, &mut act)?;
                    core.thread_mut(t).native = None;
                    raise_runtime(core, coord, t, code)
                }
            }
        }
        Body::Simple(f) => {
            let result = run_native_fn(core, &mut act, |ctx| f(ctx).map(PhaseOutcome::Done));
            match result {
                Ok(PhaseOutcome::Done(v)) => complete_native(core, natives, coord, t, act, Ok(v)),
                Ok(_) => Err(VmError::Internal("simple native returned a phase outcome".into())),
                Err(abort) => complete_native(core, natives, coord, t, act, Err(abort)),
            }
        }
        Body::Phase(f) => {
            let result = run_native_fn(core, &mut act, f);
            match result {
                Ok(PhaseOutcome::Done(v)) => complete_native(core, natives, coord, t, act, Ok(v)),
                Ok(PhaseOutcome::Continue) => {
                    act.phase += 1;
                    core.thread_mut(t).native = Some(act);
                    Ok(())
                }
                Ok(PhaseOutcome::AcquireMonitor(obj)) => {
                    act.phase += 1;
                    act.pending_acquire = Some(obj);
                    core.thread_mut(t).native = Some(act);
                    Ok(())
                }
                Ok(PhaseOutcome::ReleaseMonitor(obj)) => {
                    act.phase += 1;
                    act.held.retain(|o| *o != obj);
                    match core.release_monitor(coord, t, obj) {
                        Ok(()) => {
                            core.thread_mut(t).native = Some(act);
                            Ok(())
                        }
                        Err(_) => {
                            release_held(core, coord, t, &mut act)?;
                            core.thread_mut(t).native = None;
                            raise_runtime(core, coord, t, excode::ILLEGAL_MONITOR)
                        }
                    }
                }
                Err(abort) => complete_native(core, natives, coord, t, act, Err(abort)),
            }
        }
    }
}

fn run_native_fn<F>(
    core: &mut VmCore,
    act: &mut NativeActivation,
    f: F,
) -> Result<PhaseOutcome, NativeAbort>
where
    F: FnOnce(&mut NativeCtx<'_>) -> Result<PhaseOutcome, NativeAbort>,
{
    let now = core.acct.now();
    let mut ctx = NativeCtx {
        heap: &mut core.heap,
        env: &mut core.env,
        now,
        args: &act.args,
        scratch: &mut act.scratch,
        output_id: act.output_id,
        adopted: act.adopted.as_ref(),
        out_args: &mut act.out_args,
    };
    f(&mut ctx)
}

fn imposed_result(a: &AdoptedOutcome) -> Option<Result<Option<Value>, NativeAbort>> {
    match &a.result {
        Some(Ok(v)) => Some(Ok(*v)),
        Some(Err((code, msg))) => Some(Err(NativeAbort::new(*code, msg.clone()))),
        None => None,
    }
}

fn release_held(
    core: &mut VmCore,
    coord: &mut dyn Coordinator,
    t: ThreadIdx,
    act: &mut NativeActivation,
) -> Result<(), VmError> {
    for obj in std::mem::take(&mut act.held) {
        // Best-effort: a native that aborted mid-critical-section must not
        // leave the monitor locked forever.
        let _ = core.release_monitor(coord, t, obj);
    }
    Ok(())
}

fn complete_native(
    core: &mut VmCore,
    natives: &NativeRegistry,
    coord: &mut dyn Coordinator,
    t: ThreadIdx,
    mut act: NativeActivation,
    real_result: Result<Option<Value>, NativeAbort>,
) -> Result<(), VmError> {
    let reg_idx = core.linked[act.native.0 as usize] as usize;
    let is_app = core.thread(t).kind == ThreadKind::App;
    // Adopted outcomes override whatever the body produced (§4.1: "the
    // backup discards the generated return values and exceptions"). An
    // adopted outcome without a logged result (an uncertain output being
    // re-performed) keeps the body's own result.
    let (result, out_args) = match act.adopted.take() {
        Some(a) => {
            // Impose logged out-argument contents.
            for (idx, contents) in &a.out_args {
                let Some(Value::Ref(r)) = act.args.get(*idx as usize) else {
                    return Err(VmError::ReplayDivergence {
                        thread: t,
                        detail: format!("logged out-arg {idx} is not an array argument"),
                    });
                };
                match core.heap.get_mut(*r) {
                    Some(HeapEntry::Arr { elems }) => {
                        for (slot, v) in elems.iter_mut().zip(contents.iter()) {
                            *slot = *v;
                        }
                    }
                    _ => {
                        return Err(VmError::ReplayDivergence {
                            thread: t,
                            detail: format!("logged out-arg {idx} does not reference a live array"),
                        })
                    }
                }
            }
            let result = imposed_result(&a).unwrap_or(real_result);
            let out_args = if a.out_args.is_empty() {
                std::mem::take(&mut act.out_args)
            } else {
                a.out_args.clone()
            };
            (result, out_args)
        }
        None => (real_result, std::mem::take(&mut act.out_args)),
    };
    if result.is_err() {
        release_held(core, coord, t, &mut act)?;
    } else {
        debug_assert!(act.held.is_empty(), "native completed while holding monitors");
    }
    let outcome = NativeOutcome { result: result.clone(), out_args };
    if is_app {
        let decl = &natives.decls()[reg_idx];
        let (threads, env, acct) = (&core.threads, &core.env, &mut core.acct);
        let obs = obs_of(threads, t);
        coord.post_native(&obs, decl, &outcome, act.output_id, env, acct);
    }
    core.thread_mut(t).native = None;
    match result {
        Ok(v) => {
            let returns = natives.decls()[reg_idx].returns;
            let frame = core.thread_mut(t).frame_mut();
            if returns {
                frame.stack.push(v.ok_or_else(|| {
                    VmError::Internal("value-returning native produced no value".into())
                })?);
            }
            frame.pc += 1;
            Ok(())
        }
        Err(abort) => raise_runtime(core, coord, t, excode::NATIVE_BASE + abort.code),
    }
}

fn drive_intrinsic(
    core: &mut VmCore,
    coord: &mut dyn Coordinator,
    t: ThreadIdx,
    act: &mut NativeActivation,
    which: Intrinsic,
) -> Result<IntrinsicStep, VmError> {
    match which {
        Intrinsic::Spawn => {
            let Some(Value::Int(mid)) = act.args.first().copied() else {
                return Ok(IntrinsicStep::Raise(excode::NATIVE_BASE + 90));
            };
            if mid < 0 || mid as usize >= core.program.methods.len() {
                return Ok(IntrinsicStep::Raise(excode::NATIVE_BASE + 93));
            }
            let arg = act.args.get(1).copied().unwrap_or(Value::Null);
            if !core.thread(t).is_app() {
                return Ok(IntrinsicStep::Raise(excode::NATIVE_BASE + 94));
            }
            core.spawn_app_thread(coord, t, crate::bytecode::MethodId(mid as u32), arg)?;
            Ok(IntrinsicStep::Done(None))
        }
        Intrinsic::Wait => {
            let Some(Value::Ref(obj)) = act.args.first().copied() else {
                return Ok(IntrinsicStep::Raise(excode::NULL_POINTER));
            };
            match core.thread(t).wait_resume {
                None => {
                    let saved = match core.monitors.monitor_mut(obj).release_all(t) {
                        Ok(depth) => depth,
                        Err(_) => return Ok(IntrinsicStep::Raise(excode::ILLEGAL_MONITOR)),
                    };
                    core.thread_mut(t).mon_cnt += 1;
                    if core.thread(t).is_app() {
                        core.counters.monitor_ops += 1;
                        if core.race.is_some() {
                            core.thread_mut(t).held_for_race.retain(|o| *o != obj);
                        }
                    }
                    let cost = core.cfg.cost.monitor_op;
                    core.charge_base(cost);
                    core.monitors
                        .monitor_mut(obj)
                        .wait_set
                        .push_back(crate::monitor::Waiter { thread: t, saved_recursion: saved });
                    core.thread_mut(t).wait_resume = Some(WaitResume { saved_recursion: saved });
                    core.thread_mut(t).state = ThreadState::WaitingMonitor { obj };
                    core.wake_blocked_on(obj);
                    core.poll_deferred(coord);
                    Ok(IntrinsicStep::Pending)
                }
                Some(resume) => {
                    match core.acquire_monitor(coord, t, obj, Some(resume.saved_recursion)) {
                        AcquireOutcome::Acquired => {
                            core.thread_mut(t).wait_resume = None;
                            Ok(IntrinsicStep::Done(None))
                        }
                        AcquireOutcome::Blocked | AcquireOutcome::Deferred => {
                            Ok(IntrinsicStep::Pending)
                        }
                    }
                }
            }
        }
        Intrinsic::Notify | Intrinsic::NotifyAll => {
            let Some(Value::Ref(obj)) = act.args.first().copied() else {
                return Ok(IntrinsicStep::Raise(excode::NULL_POINTER));
            };
            if !core.monitors.monitor_mut(obj).owned_by(t) {
                return Ok(IntrinsicStep::Raise(excode::ILLEGAL_MONITOR));
            }
            let woken: Vec<ThreadIdx> = {
                let ws = &mut core.monitors.monitor_mut(obj).wait_set;
                if which == Intrinsic::Notify {
                    ws.pop_front().map(|w| w.thread).into_iter().collect()
                } else {
                    ws.drain(..).map(|w| w.thread).collect()
                }
            };
            for w in woken {
                core.make_runnable(w);
            }
            Ok(IntrinsicStep::Done(None))
        }
        Intrinsic::Sleep => {
            if act.scratch.is_empty() {
                let Some(Value::Int(ms)) = act.args.first().copied() else {
                    return Ok(IntrinsicStep::Raise(excode::NATIVE_BASE + 90));
                };
                let until = core.acct.now() + SimTime::from_millis(ms.max(0) as u64);
                act.scratch.push(Value::Int(until.as_nanos() as i64));
                core.thread_mut(t).state = ThreadState::Sleeping { until };
                Ok(IntrinsicStep::Pending)
            } else {
                Ok(IntrinsicStep::Done(None))
            }
        }
        Intrinsic::Yield => {
            core.yield_requested = true;
            Ok(IntrinsicStep::Done(None))
        }
        Intrinsic::Gc => {
            let heap_lock = core.heap_lock;
            if core.internal_try_lock(heap_lock, t) {
                core.run_gc();
                core.internal_unlock(heap_lock);
                Ok(IntrinsicStep::Done(None))
            } else {
                // Blocked on the heap lock; retried when the GC releases.
                Ok(IntrinsicStep::Pending)
            }
        }
    }
}
