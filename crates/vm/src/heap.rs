//! The object heap and its mark-sweep garbage collector.
//!
//! The heap is non-moving: an [`ObjRef`] stays valid for the object's
//! lifetime, so replica-local references can live in thread stacks without
//! fix-ups. Collection supports the two GC features the paper identifies as
//! non-determinism hazards (§4.3): *soft references* (treated as strong by
//! default, exactly the paper's shortcut) and *finalizers* (dead objects
//! with finalizers are resurrected onto a queue consumed by the finalizer
//! system thread).

use crate::bytecode::ClassId;
use crate::class::{builtin, Class};
use crate::value::{ObjRef, Value};
use std::collections::VecDeque;

/// One heap cell: an object instance or an array.
#[derive(Debug, Clone)]
pub enum HeapEntry {
    /// An instance with field slots.
    Obj {
        /// The instance's class.
        class: ClassId,
        /// Field slots (inherited slots first).
        fields: Vec<Value>,
    },
    /// An array of value slots.
    Arr {
        /// The elements.
        elems: Vec<Value>,
    },
}

/// Outcome of one collection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcResult {
    /// Objects reclaimed.
    pub freed: usize,
    /// Objects still live after the sweep.
    pub live: usize,
    /// Newly-discovered dead objects with finalizers; they have been
    /// resurrected and must be passed to the finalizer thread, then become
    /// ordinary garbage at the next cycle.
    pub finalizable: Vec<ObjRef>,
    /// Soft references whose referent was cleared (only when soft-reference
    /// collection is enabled).
    pub softs_cleared: usize,
}

/// Error raised when the heap's hard object capacity is exhausted.
///
/// Per restriction R0 this is a *fatal environment error*: it is raised at
/// one replica only and must not be replicated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory;

/// The heap.
#[derive(Debug)]
pub struct Heap {
    pub(crate) slots: Vec<Option<HeapEntry>>,
    /// Reusable slot indices (freed by GC), popped LIFO.
    pub(crate) free: Vec<u32>,
    /// Objects whose finalizer has already been scheduled.
    pub(crate) finalizer_done: Vec<bool>,
    pub(crate) live: usize,
    pub(crate) allocs_since_gc: usize,
    /// Hard cap on simultaneously live objects.
    pub(crate) capacity: usize,
    /// Allocations between collection requests ("memory pressure").
    pub gc_threshold: usize,
    /// Cumulative allocation counter.
    pub total_allocs: u64,
}

impl Heap {
    /// Creates a heap with the given hard capacity and GC pressure
    /// threshold.
    pub fn new(capacity: usize, gc_threshold: usize) -> Self {
        Heap {
            slots: Vec::new(),
            free: Vec::new(),
            finalizer_done: Vec::new(),
            live: 0,
            allocs_since_gc: 0,
            capacity,
            gc_threshold,
            total_allocs: 0,
        }
    }

    /// Number of live objects.
    pub fn live(&self) -> usize {
        self.live
    }

    /// True when enough allocations have happened since the last collection
    /// that the asynchronous collector should run.
    pub fn pressure(&self) -> bool {
        self.allocs_since_gc >= self.gc_threshold
    }

    fn place(&mut self, entry: HeapEntry) -> Result<ObjRef, OutOfMemory> {
        if self.live >= self.capacity {
            return Err(OutOfMemory);
        }
        self.live += 1;
        self.allocs_since_gc += 1;
        self.total_allocs += 1;
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(entry);
                self.finalizer_done[i as usize] = false;
                i
            }
            None => {
                self.slots.push(Some(entry));
                self.finalizer_done.push(false);
                (self.slots.len() - 1) as u32
            }
        };
        Ok(ObjRef::from_index(idx as usize))
    }

    /// Allocates an instance of `class` with `n_fields` null slots.
    ///
    /// # Errors
    /// Returns [`OutOfMemory`] at the hard capacity.
    pub fn alloc_obj(&mut self, class: ClassId, n_fields: u16) -> Result<ObjRef, OutOfMemory> {
        self.place(HeapEntry::Obj { class, fields: vec![Value::Null; n_fields as usize] })
    }

    /// Allocates an array of `len` null slots.
    ///
    /// # Errors
    /// Returns [`OutOfMemory`] at the hard capacity.
    pub fn alloc_array(&mut self, len: usize) -> Result<ObjRef, OutOfMemory> {
        self.place(HeapEntry::Arr { elems: vec![Value::Null; len] })
    }

    /// Immutable access to a heap cell; `None` if the reference dangles.
    pub fn get(&self, r: ObjRef) -> Option<&HeapEntry> {
        self.slots.get(r.index()).and_then(|s| s.as_ref())
    }

    /// Mutable access to a heap cell; `None` if the reference dangles.
    pub fn get_mut(&mut self, r: ObjRef) -> Option<&mut HeapEntry> {
        self.slots.get_mut(r.index()).and_then(|s| s.as_mut())
    }

    /// The class of the object at `r`, if it is a live instance.
    pub fn class_of(&self, r: ObjRef) -> Option<ClassId> {
        match self.get(r)? {
            HeapEntry::Obj { class, .. } => Some(*class),
            HeapEntry::Arr { .. } => None,
        }
    }

    /// Reads an array as bytes (each element's low 8 bits); `None` if not a
    /// live array.
    pub fn array_as_bytes(&self, r: ObjRef) -> Option<Vec<u8>> {
        match self.get(r)? {
            HeapEntry::Arr { elems } => Some(
                elems
                    .iter()
                    .map(|v| match v {
                        Value::Int(i) => *i as u8,
                        _ => 0,
                    })
                    .collect(),
            ),
            _ => None,
        }
    }

    /// True once the finalizer for `r` has been scheduled.
    pub fn finalizer_scheduled(&self, r: ObjRef) -> bool {
        self.finalizer_done.get(r.index()).copied().unwrap_or(false)
    }

    /// Runs a full mark-sweep collection.
    ///
    /// `roots` must enumerate every reference reachable by the mutator
    /// (thread stacks, statics, class objects, native scratch, finalizer
    /// queue, monitor-owning references). `collect_soft` enables clearing of
    /// soft-reference referents (off by default, matching the paper).
    pub fn collect(
        &mut self,
        roots: impl IntoIterator<Item = ObjRef>,
        classes: &[Class],
        collect_soft: bool,
    ) -> GcResult {
        self.allocs_since_gc = 0;
        let n = self.slots.len();
        let mut marked = vec![false; n];
        let mut soft_refs: Vec<usize> = Vec::new();
        let mut work: VecDeque<usize> = VecDeque::new();
        for r in roots {
            let i = r.index();
            if i < n && self.slots[i].is_some() && !marked[i] {
                marked[i] = true;
                work.push_back(i);
            }
        }
        // Mark phase.
        while let Some(i) = work.pop_front() {
            // Only live slots are enqueued, so a vacant one here would be a
            // marker bug — skip it rather than abort the whole mutator.
            let Some(entry) = self.slots[i].as_ref() else { continue };
            let is_soft =
                matches!(entry, HeapEntry::Obj { class, .. } if *class == builtin::SOFT_REF);
            if is_soft {
                soft_refs.push(i);
            }
            let trace = |v: &Value, work: &mut VecDeque<usize>, marked: &mut Vec<bool>| {
                if let Value::Ref(r) = v {
                    let j = r.index();
                    if j < n && !marked[j] {
                        marked[j] = true;
                        work.push_back(j);
                    }
                }
            };
            match entry {
                HeapEntry::Obj { fields, .. } => {
                    for (slot, v) in fields.iter().enumerate() {
                        // When collecting soft refs, the referent (slot 0)
                        // is *not* traced through the reference object.
                        if is_soft
                            && collect_soft
                            && slot == builtin::SOFT_REF_REFERENT_SLOT as usize
                        {
                            continue;
                        }
                        trace(v, &mut work, &mut marked);
                    }
                }
                HeapEntry::Arr { elems } => {
                    for v in elems {
                        trace(v, &mut work, &mut marked);
                    }
                }
            }
        }
        // Resurrect unreachable objects that still need finalization, plus
        // everything reachable from them.
        let mut finalizable = Vec::new();
        #[allow(clippy::needless_range_loop)] // index drives three parallel arrays
        for i in 0..n {
            if marked[i] || self.finalizer_done[i] {
                continue;
            }
            let Some(HeapEntry::Obj { class, .. }) = self.slots[i].as_ref() else {
                continue;
            };
            if classes.get(class.0 as usize).is_some_and(|c| c.finalizer.is_some()) {
                self.finalizer_done[i] = true;
                finalizable.push(ObjRef::from_index(i));
                marked[i] = true;
                work.push_back(i);
            }
        }
        while let Some(i) = work.pop_front() {
            let Some(entry) = self.slots[i].as_ref() else { continue };
            let mut trace = |v: &Value| {
                if let Value::Ref(r) = v {
                    let j = r.index();
                    if j < n && !marked[j] {
                        marked[j] = true;
                        work.push_back(j);
                    }
                }
            };
            match entry {
                HeapEntry::Obj { fields, .. } => fields.iter().for_each(&mut trace),
                HeapEntry::Arr { elems } => elems.iter().for_each(&mut trace),
            }
        }
        // Clear dead soft referents.
        let mut softs_cleared = 0;
        if collect_soft {
            for i in soft_refs {
                if !marked[i] {
                    continue;
                }
                let Some(HeapEntry::Obj { fields, .. }) = self.slots[i].as_mut() else {
                    continue;
                };
                // A referent pointing outside the tracked heap was never
                // traced, so it counts as dead — same rule the mark phase's
                // `j < n` bound applies.
                let slot = builtin::SOFT_REF_REFERENT_SLOT as usize;
                let dead = matches!(
                    fields.get(slot),
                    Some(Value::Ref(r)) if !marked.get(r.index()).copied().unwrap_or(false)
                );
                if dead {
                    if let Some(f) = fields.get_mut(slot) {
                        *f = Value::Null;
                        softs_cleared += 1;
                    }
                }
            }
        }
        // Sweep.
        let mut freed = 0;
        #[allow(clippy::needless_range_loop)] // index drives two parallel arrays
        for i in 0..n {
            if !marked[i] && self.slots[i].is_some() {
                self.slots[i] = None;
                self.free.push(i as u32);
                self.live -= 1;
                freed += 1;
            }
        }
        GcResult { freed, live: self.live, finalizable, softs_cleared }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::MethodId;
    use crate::program::ProgramBuilder;

    fn classes_with_finalizer() -> Vec<Class> {
        let mut b = ProgramBuilder::new();
        let fin_class = b.add_class("HasFin", builtin::OBJECT, 1, 0);
        let mut fin = b.method("finalize", 1);
        fin.ret_void();
        let fin_id = fin.build(&mut b);
        b.set_finalizer(fin_class, fin_id);
        let mut m = b.method("main", 1);
        m.ret_void();
        let entry = m.build(&mut b);
        b.build(entry).unwrap().classes
    }

    fn plain_classes() -> Vec<Class> {
        let mut b = ProgramBuilder::new();
        let mut m = b.method("main", 1);
        m.ret_void();
        let entry = m.build(&mut b);
        b.build(entry).unwrap().classes
    }

    #[test]
    fn alloc_and_access() {
        let mut h = Heap::new(100, 50);
        let o = h.alloc_obj(builtin::OBJECT, 2).unwrap();
        let a = h.alloc_array(3).unwrap();
        match h.get_mut(o).unwrap() {
            HeapEntry::Obj { fields, .. } => fields[1] = Value::Int(9),
            _ => panic!("expected object"),
        }
        match h.get(a).unwrap() {
            HeapEntry::Arr { elems } => assert_eq!(elems.len(), 3),
            _ => panic!("expected array"),
        }
        assert_eq!(h.live(), 2);
        assert_eq!(h.class_of(o), Some(builtin::OBJECT));
        assert_eq!(h.class_of(a), None);
    }

    #[test]
    fn capacity_enforced() {
        let mut h = Heap::new(2, 50);
        h.alloc_array(1).unwrap();
        h.alloc_array(1).unwrap();
        assert_eq!(h.alloc_array(1), Err(OutOfMemory));
    }

    #[test]
    fn collect_frees_unreachable_and_reuses_slots() {
        let classes = plain_classes();
        let mut h = Heap::new(100, 50);
        let keep = h.alloc_obj(builtin::OBJECT, 1).unwrap();
        let lost = h.alloc_array(5).unwrap();
        let nested = h.alloc_array(1).unwrap();
        // keep.fields[0] -> nested (reachable); `lost` has no root.
        match h.get_mut(keep).unwrap() {
            HeapEntry::Obj { fields, .. } => fields[0] = Value::Ref(nested),
            _ => unreachable!(),
        }
        let res = h.collect([keep], &classes, false);
        assert_eq!(res.freed, 1);
        assert_eq!(h.live(), 2);
        assert!(h.get(lost).is_none());
        assert!(h.get(nested).is_some());
        // Freed slot is reused.
        let again = h.alloc_array(2).unwrap();
        assert_eq!(again.index(), lost.index());
    }

    #[test]
    fn soft_refs_strong_by_default() {
        let classes = plain_classes();
        let mut h = Heap::new(100, 50);
        let soft = h.alloc_obj(builtin::SOFT_REF, 1).unwrap();
        let target = h.alloc_array(1).unwrap();
        match h.get_mut(soft).unwrap() {
            HeapEntry::Obj { fields, .. } => fields[0] = Value::Ref(target),
            _ => unreachable!(),
        }
        let res = h.collect([soft], &classes, false);
        assert_eq!(res.freed, 0);
        assert!(h.get(target).is_some());
    }

    #[test]
    fn soft_refs_cleared_under_pressure_mode() {
        let classes = plain_classes();
        let mut h = Heap::new(100, 50);
        let soft = h.alloc_obj(builtin::SOFT_REF, 1).unwrap();
        let target = h.alloc_array(1).unwrap();
        match h.get_mut(soft).unwrap() {
            HeapEntry::Obj { fields, .. } => fields[0] = Value::Ref(target),
            _ => unreachable!(),
        }
        let res = h.collect([soft], &classes, true);
        assert_eq!(res.freed, 1);
        assert_eq!(res.softs_cleared, 1);
        assert!(h.get(target).is_none());
        match h.get(soft).unwrap() {
            HeapEntry::Obj { fields, .. } => assert_eq!(fields[0], Value::Null),
            _ => unreachable!(),
        }
    }

    #[test]
    fn finalizable_objects_resurrected_once() {
        let classes = classes_with_finalizer();
        let has_fin = ClassId(builtin::COUNT); // first user class
        assert!(classes[has_fin.0 as usize].finalizer == Some(MethodId(0)));
        let mut h = Heap::new(100, 50);
        let obj = h.alloc_obj(has_fin, 1).unwrap();
        let held = h.alloc_array(1).unwrap();
        match h.get_mut(obj).unwrap() {
            HeapEntry::Obj { fields, .. } => fields[0] = Value::Ref(held),
            _ => unreachable!(),
        }
        // No roots: object is dead but resurrected for finalization, and
        // drags `held` along.
        let res = h.collect([], &classes, false);
        assert_eq!(res.finalizable, vec![obj]);
        assert_eq!(res.freed, 0);
        assert!(h.get(held).is_some());
        // Second collection with no roots: finalizer already scheduled, so
        // both die for real.
        let res = h.collect([], &classes, false);
        assert!(res.finalizable.is_empty());
        assert_eq!(res.freed, 2);
        assert_eq!(h.live(), 0);
    }

    #[test]
    fn pressure_resets_after_collect() {
        let classes = plain_classes();
        let mut h = Heap::new(100, 3);
        for _ in 0..3 {
            h.alloc_array(0).unwrap();
        }
        assert!(h.pressure());
        h.collect([], &classes, false);
        assert!(!h.pressure());
    }

    #[test]
    fn array_as_bytes() {
        let mut h = Heap::new(10, 10);
        let a = h.alloc_array(3).unwrap();
        if let Some(HeapEntry::Arr { elems }) = h.get_mut(a) {
            elems[0] = Value::Int(104);
            elems[1] = Value::Int(105);
            elems[2] = Value::Int(33);
        }
        assert_eq!(h.array_as_bytes(a).unwrap(), b"hi!".to_vec());
    }
}
