//! The bytecode instruction set of the virtual machine.
//!
//! A deliberately JVM-shaped, stack-based ISA: operand stack, local
//! variables, fields, arrays, monitors, virtual dispatch, exceptions, and a
//! native-method boundary. The replication layer treats each instruction as
//! one state-machine *command* (paper §3); control-flow instructions are the
//! ones counted by the thread-scheduling progress counter `br_cnt`
//! (paper §4.2).

use std::fmt;

/// Identifies a class within a [`crate::class::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub u16);

/// Identifies a method globally within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MethodId(pub u32);

/// Identifies a registered native method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NativeId(pub u32);

/// Identifies an interned string constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StrId(pub u32);

/// A virtual-method slot: the index into a class vtable used by
/// [`Insn::InvokeVirtual`] dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VSlot(pub u16);

/// Integer comparison operators for [`Insn::ICmp`] and [`Insn::DCmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cmp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Cmp {
    /// Evaluates the comparison on a three-way ordering encoded as -1/0/1.
    pub fn eval_ord(self, ord: i32) -> bool {
        match self {
            Cmp::Eq => ord == 0,
            Cmp::Ne => ord != 0,
            Cmp::Lt => ord < 0,
            Cmp::Le => ord <= 0,
            Cmp::Gt => ord > 0,
            Cmp::Ge => ord >= 0,
        }
    }
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cmp::Eq => "==",
            Cmp::Ne => "!=",
            Cmp::Lt => "<",
            Cmp::Le => "<=",
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// One bytecode instruction.
///
/// Branch targets are absolute instruction indices within the owning
/// method's code array (the assembler in [`crate::program`] resolves labels
/// to these).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Insn {
    // --- constants and stack manipulation ---
    /// Push an integer constant.
    Const(i64),
    /// Push a double constant.
    DConst(f64),
    /// Push `null`.
    ConstNull,
    /// Allocate a fresh byte array initialized from the interned string and
    /// push a reference to it.
    ConstStr(StrId),
    /// Duplicate the top of stack.
    Dup,
    /// Duplicate the value below the top (`..., a, b -> ..., a, b, a`).
    DupX1,
    /// Discard the top of stack.
    Pop,
    /// Swap the two top stack slots.
    Swap,

    // --- locals ---
    /// Push local variable `n`.
    Load(u16),
    /// Pop into local variable `n`.
    Store(u16),
    /// Add a constant to integer local `n` in place.
    Inc(u16, i32),

    // --- integer arithmetic (operate on Int, push Int) ---
    /// Integer addition (wrapping).
    Add,
    /// Integer subtraction (wrapping).
    Sub,
    /// Integer multiplication (wrapping).
    Mul,
    /// Integer division. Throws `ArithmeticException` on division by zero.
    Div,
    /// Integer remainder. Throws `ArithmeticException` on division by zero.
    Rem,
    /// Integer negation.
    Neg,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left (modulo 64).
    Shl,
    /// Arithmetic shift right (modulo 64).
    Shr,

    // --- double arithmetic ---
    /// Double addition.
    DAdd,
    /// Double subtraction.
    DSub,
    /// Double multiplication.
    DMul,
    /// Double division.
    DDiv,
    /// Convert Int to Double.
    I2D,
    /// Truncate Double to Int.
    D2I,

    // --- comparisons (push Int 0/1) ---
    /// Compare two ints with the operator.
    ICmp(Cmp),
    /// Compare two doubles with the operator (NaN compares false except `!=`).
    DCmp(Cmp),
    /// Reference equality (also matches two nulls).
    RefEq,

    // --- control flow (all of these advance `br_cnt`) ---
    /// Unconditional jump.
    Goto(u32),
    /// Pop; jump if truthy.
    If(u32),
    /// Pop; jump if falsy.
    IfNot(u32),
    /// Pop; jump if `null`.
    IfNull(u32),

    // --- invocation (advances `br_cnt`) ---
    /// Call a static (or private) method directly.
    InvokeStatic(MethodId),
    /// Call through the receiver's vtable; `argc` includes the receiver,
    /// which is the deepest of the popped values.
    InvokeVirtual(VSlot, u8),
    /// Call a registered native method with `argc` arguments.
    InvokeNative(NativeId, u8),
    /// Return void (advances `br_cnt`).
    Ret,
    /// Return the top of stack (advances `br_cnt`).
    RetVal,

    // --- objects ---
    /// Allocate an instance of the class; push the reference.
    New(ClassId),
    /// Pop object ref; push field `slot`.
    GetField(u16),
    /// Pop value then object ref; store into field `slot`.
    PutField(u16),
    /// Push static field `slot` of the class.
    GetStatic(ClassId, u16),
    /// Pop into static field `slot` of the class.
    PutStatic(ClassId, u16),

    // --- arrays ---
    /// Pop length; allocate an array of `Null`-initialized slots.
    NewArray,
    /// Pop index then array ref; push element.
    ALoad,
    /// Pop value, index, array ref; store element.
    AStore,
    /// Pop array ref; push its length.
    ALen,

    /// Push the per-class lock object of the class (what a synchronized
    /// static method locks; also handy as a well-known monitor for
    /// wait/notify).
    ClassObj(ClassId),

    // --- monitors ---
    /// Pop object ref; acquire its monitor (may block the thread).
    MonitorEnter,
    /// Pop object ref; release its monitor. Throws
    /// `IllegalMonitorStateException` if not owned.
    MonitorExit,

    // --- exceptions (advances `br_cnt`) ---
    /// Pop a throwable object reference and raise it.
    Throw,

    /// No operation.
    Nop,
}

impl Insn {
    /// True if executing this instruction increments the thread-scheduling
    /// progress counter `br_cnt` (branches, jumps, invocations, returns and
    /// throws — the events the paper instrumented the interpreter loop to
    /// count).
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Insn::Goto(_)
                | Insn::If(_)
                | Insn::IfNot(_)
                | Insn::IfNull(_)
                | Insn::InvokeStatic(_)
                | Insn::InvokeVirtual(..)
                | Insn::InvokeNative(..)
                | Insn::Ret
                | Insn::RetVal
                | Insn::Throw
        )
    }

    /// Net change in operand-stack depth, when statically known.
    /// Invocations return `None` (depends on the callee signature).
    pub fn stack_delta(&self) -> Option<i32> {
        Some(match self {
            Insn::Const(_) | Insn::DConst(_) | Insn::ConstNull | Insn::ConstStr(_) => 1,
            Insn::Dup | Insn::DupX1 => 1,
            Insn::Pop => -1,
            Insn::Swap => 0,
            Insn::Load(_) => 1,
            Insn::Store(_) => -1,
            Insn::Inc(..) => 0,
            Insn::Add
            | Insn::Sub
            | Insn::Mul
            | Insn::Div
            | Insn::Rem
            | Insn::And
            | Insn::Or
            | Insn::Xor
            | Insn::Shl
            | Insn::Shr
            | Insn::DAdd
            | Insn::DSub
            | Insn::DMul
            | Insn::DDiv => -1,
            Insn::Neg | Insn::I2D | Insn::D2I => 0,
            Insn::ICmp(_) | Insn::DCmp(_) | Insn::RefEq => -1,
            Insn::Goto(_) => 0,
            Insn::If(_) | Insn::IfNot(_) | Insn::IfNull(_) => -1,
            Insn::InvokeStatic(_) | Insn::InvokeVirtual(..) | Insn::InvokeNative(..) => {
                return None
            }
            Insn::Ret | Insn::RetVal => return None,
            Insn::New(_) => 1,
            Insn::GetField(_) => 0,
            Insn::PutField(_) => -2,
            Insn::GetStatic(..) => 1,
            Insn::PutStatic(..) => -1,
            Insn::ClassObj(_) => 1,
            Insn::NewArray => 0,
            Insn::ALoad => -1,
            Insn::AStore => -3,
            Insn::ALen => 0,
            Insn::MonitorEnter | Insn::MonitorExit => -1,
            Insn::Throw => return None,
            Insn::Nop => 0,
        })
    }

    /// The branch target, if this is a branching instruction.
    pub fn branch_target(&self) -> Option<u32> {
        match self {
            Insn::Goto(t) | Insn::If(t) | Insn::IfNot(t) | Insn::IfNull(t) => Some(*t),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_flow_classification() {
        assert!(Insn::Goto(0).is_control_flow());
        assert!(Insn::InvokeStatic(MethodId(0)).is_control_flow());
        assert!(Insn::Ret.is_control_flow());
        assert!(Insn::Throw.is_control_flow());
        assert!(!Insn::Add.is_control_flow());
        assert!(!Insn::MonitorEnter.is_control_flow());
    }

    #[test]
    fn cmp_eval() {
        assert!(Cmp::Eq.eval_ord(0));
        assert!(Cmp::Ne.eval_ord(1));
        assert!(Cmp::Lt.eval_ord(-1));
        assert!(Cmp::Le.eval_ord(0));
        assert!(Cmp::Gt.eval_ord(1));
        assert!(!Cmp::Ge.eval_ord(-1));
    }

    #[test]
    fn stack_deltas() {
        assert_eq!(Insn::Const(1).stack_delta(), Some(1));
        assert_eq!(Insn::AStore.stack_delta(), Some(-3));
        assert_eq!(Insn::InvokeStatic(MethodId(0)).stack_delta(), None);
    }

    #[test]
    fn branch_targets() {
        assert_eq!(Insn::Goto(7).branch_target(), Some(7));
        assert_eq!(Insn::If(3).branch_target(), Some(3));
        assert_eq!(Insn::Add.branch_target(), None);
    }
}
