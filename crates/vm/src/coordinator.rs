//! The replica-coordination hook interface.
//!
//! The paper instruments Sun's JVM at a handful of points: the interpreter
//! loop (progress counters), monitor acquisition/release, the scheduler's
//! context-switch path, the native-method boundary, and output commit.
//! [`Coordinator`] is exactly that seam, expressed as a trait: the
//! unreplicated VM runs with [`NoopCoordinator`]; the replication crate
//! provides primary- and backup-side implementations for both of the
//! paper's techniques (replicated lock synchronization and replicated
//! thread scheduling).
//!
//! All hooks receive plain-data observations — never `&mut` VM internals —
//! so a coordinator can only influence execution through its sanctioned
//! decisions: defer a lock grant, veto or force a preemption, choose the
//! next thread, impose a logged native outcome, assign ids.

use crate::bytecode::MethodId;
use crate::error::VmError;
use crate::native::{NativeDecl, NativeOutcome};
use crate::thread::{AdoptedOutcome, ThreadIdx};
use crate::value::{ObjRef, Value};
use crate::vtid::VtPath;
use ftjvm_netsim::TimeAccount;

/// A cheap, borrowed observation of the currently executing thread, built
/// fresh at every hook site.
#[derive(Debug, Clone, Copy)]
pub struct ThreadObs<'a> {
    /// Replica-local thread index.
    pub t: ThreadIdx,
    /// Replication-stable id; `None` for system threads.
    pub vt: Option<&'a VtPath>,
    /// Control-flow changes executed so far.
    pub br_cnt: u64,
    /// Monitor acquisitions + releases so far.
    pub mon_cnt: u64,
    /// Monitor acquisitions so far (thread acquire sequence number).
    pub t_asn: u64,
    /// Currently executing method, if any frame exists.
    pub method: Option<MethodId>,
    /// Bytecode offset within that method.
    pub pc: u32,
    /// True while a native activation is in progress.
    pub in_native: bool,
}

/// An owned snapshot of a thread at a scheduling event (switches are rare,
/// so cloning the id path is fine here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadSnap {
    /// Replica-local thread index.
    pub t: ThreadIdx,
    /// Replication-stable id; `None` for system threads.
    pub vt: Option<VtPath>,
    /// Control-flow changes executed.
    pub br_cnt: u64,
    /// Monitor acquisitions + releases.
    pub mon_cnt: u64,
    /// Monitor acquisitions.
    pub t_asn: u64,
    /// Current method.
    pub method: Option<MethodId>,
    /// Bytecode offset within the method.
    pub pc: u32,
    /// True if preempted inside a native method.
    pub in_native: bool,
    /// If the thread yielded because of a monitor operation, that
    /// monitor's current acquire sequence number (the `l_asn` field of the
    /// paper's thread-schedule record); 0 otherwise.
    pub blocked_lasn: u64,
}

/// Why the scheduler is switching away from a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchReason {
    /// Quantum expiry (involuntary preemption).
    Quantum,
    /// Forced by the coordinator (backup replay reached a recorded point).
    ReplayPoint,
    /// Blocked entering a monitor.
    BlockedMonitor,
    /// Parked in a wait set.
    Waiting,
    /// Deferred by the lock-sync replay (waiting for its logged turn).
    Deferred,
    /// Deferred at a native invocation (streaming replay waiting for the
    /// corresponding log record to arrive).
    DeferredNative,
    /// Blocked on a VM-internal lock (e.g. the heap lock).
    Internal,
    /// Sleeping.
    Sleep,
    /// Voluntary yield.
    Yield,
    /// The thread terminated.
    Exit,
}

/// Scheduler-choice decision returned by [`Coordinator::pick_next`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pick {
    /// Accept the scheduler's default (round-robin head).
    Default,
    /// Dispatch the candidate at this index.
    Choose(usize),
    /// Dispatch nobody this round: the thread the replay needs is not
    /// runnable yet (sleeping or blocked), and running any other
    /// application thread would violate the recorded schedule. The
    /// scheduler falls through to its sleeper/stall handling and asks
    /// again.
    Idle,
}

/// Decision for a (non-recursive) monitor acquisition attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorDecision {
    /// Let the thread race for the lock now.
    Grant,
    /// Hold the thread until a later monitor event (its logged turn has not
    /// come yet).
    Defer,
}

/// Decision for a native-method invocation.
#[derive(Debug, Clone)]
pub enum NativeDirective {
    /// Run the native for real.
    Execute,
    /// Impose a logged outcome; `AdoptedOutcome::execute` says whether to
    /// also run the body to reproduce volatile environment state (§4.1:
    /// "the backup discards the generated return values").
    Replay(AdoptedOutcome),
}

/// Why the coordinator wants the run loop to stop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// Fail-stop fault injection fired: the replica crashes here.
    Crash,
    /// The coordinator detected an unrecoverable protocol error.
    Error(VmError),
}

/// How far a straight-line segment may run before the coordinator must be
/// consulted again (returned by [`Coordinator::quiet_budget`]).
///
/// The backup's thread-scheduling replay uses this to preempt at *exactly*
/// the recorded `(br_cnt, pc_off)` point without a per-instruction consult:
/// while the recorded `br_cnt` is ahead it caps the segment at the recorded
/// counter value via `stop_br`; once the counters line up it converts the
/// record's `pc_off` into an exact remaining-unit budget (straight-line
/// decoded code advances the pc by exactly one per unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuietBudget {
    /// Maximum units the segment may execute (the VM additionally caps by
    /// quantum, slice, and configured block size).
    pub units: u64,
    /// Stop the segment as soon as the thread's `br_cnt` reaches this
    /// value, even with budget left.
    pub stop_br: Option<u64>,
}

/// Replica-coordination hooks. Every method has a no-op default, so the
/// unit type of a coordinator only overrides the seams it cares about.
pub trait Coordinator {
    /// Short mode name for reports (`"noop"`, `"lock-sync"`, `"ts"`).
    fn mode(&self) -> &'static str {
        "noop"
    }

    /// Polled once per executed unit; `Some` stops the run loop.
    fn stop(&mut self) -> Option<StopReason> {
        None
    }

    /// Called once per *block* — before a straight-line segment of an
    /// application thread, or before a single coordinated unit (monitor
    /// op, native phase, throw). Return `true` to preempt the thread *now*
    /// (backup thread-scheduling replay fires exactly at recorded points).
    /// Also the progress-tracking bookkeeping charge site: one charge per
    /// consult, not per instruction.
    fn check_preempt(&mut self, t: &ThreadObs<'_>, acct: &mut TimeAccount) -> bool {
        let _ = (t, acct);
        false
    }

    /// Asked after a negative [`Coordinator::check_preempt`], immediately
    /// before a straight-line segment runs: how many units may execute
    /// before the next consult. `max` is the VM's own cap (quantum, slice,
    /// and configured block size); the default imposes no further limit.
    /// The backup overrides this to stop the segment exactly at the next
    /// recorded preemption point.
    fn quiet_budget(&mut self, t: &ThreadObs<'_>, max: u64) -> QuietBudget {
        let _ = t;
        QuietBudget { units: max, stop_br: None }
    }

    /// `n` application-thread units were just executed (one segment or one
    /// coordinated unit). The primary's time-driven machinery (heartbeats,
    /// instruction-count fault plans, transport maintenance) hangs off this
    /// hook; the default does nothing.
    fn note_units(&mut self, n: u64, acct: &mut TimeAccount) {
        let _ = (n, acct);
    }

    /// Quantum expired for `t`: return `true` to allow the involuntary
    /// preemption (backup replay returns `false`; only recorded points may
    /// switch app threads).
    fn allow_quantum_preempt(&mut self, t: &ThreadObs<'_>) -> bool {
        let _ = t;
        true
    }

    /// Choose the next thread among `candidates` (all runnable).
    fn pick_next(&mut self, candidates: &[ThreadSnap]) -> Pick {
        let _ = candidates;
        Pick::Default
    }

    /// The current thread yielded the virtual CPU for `reason` — called at
    /// the yield instant, before the next dispatch. Thread-scheduling
    /// replay matches *blocking* yield points (monitor blocks, waits,
    /// sleeps) against schedule records here, because the counters in those
    /// records reflect bumps that happen inside the blocking unit and are
    /// therefore invisible to the pre-unit [`Coordinator::check_preempt`].
    fn on_yield(&mut self, snap: &ThreadSnap, reason: SwitchReason, acct: &mut TimeAccount) {
        let _ = (snap, reason, acct);
    }

    /// A context switch was committed: `from` yielded for `reason` (absent
    /// at the first dispatch) and `to` is about to run.
    fn on_switch(
        &mut self,
        from: Option<&ThreadSnap>,
        reason: SwitchReason,
        to: &ThreadSnap,
        acct: &mut TimeAccount,
    ) {
        let _ = (from, reason, to, acct);
    }

    /// An application thread wants to acquire a monitor it does not already
    /// hold. `l_id`/`l_asn` describe the lock's current replication state.
    /// Pure query: may be asked repeatedly; must not consume log state.
    fn pre_monitor_acquire(
        &mut self,
        t: &ThreadObs<'_>,
        obj: ObjRef,
        l_id: Option<u64>,
        l_asn: u64,
    ) -> MonitorDecision {
        let _ = (t, obj, l_id, l_asn);
        MonitorDecision::Grant
    }

    /// An application thread completed a non-recursive acquisition; `l_asn`
    /// is the post-bump sequence number. Returns `Some(id)` to assign the
    /// lock's virtual id (primary: fresh id + logged id map; backup:
    /// claimed from a logged id map). This is where lock-acquisition
    /// records are created and consumed.
    fn post_monitor_acquire(
        &mut self,
        t: &ThreadObs<'_>,
        obj: ObjRef,
        l_id: Option<u64>,
        l_asn: u64,
        acct: &mut TimeAccount,
    ) -> Option<u64> {
        let _ = (t, obj, l_id, l_asn, acct);
        None
    }

    /// Asked at the very top of a native invocation by an application
    /// thread, before any counter is bumped or argument popped. Return
    /// `false` to hold the thread (streaming replay whose corresponding
    /// log record has not arrived yet); the invocation is retried
    /// untouched once the thread is woken. Pure query, like
    /// [`Coordinator::pre_monitor_acquire`].
    fn native_ready(&mut self, t: &ThreadObs<'_>, decl: &NativeDecl) -> bool {
        let _ = (t, decl);
        true
    }

    /// A native method is being invoked by an application thread.
    fn pre_native(
        &mut self,
        t: &ThreadObs<'_>,
        decl: &NativeDecl,
        args: &[Value],
        acct: &mut TimeAccount,
    ) -> NativeDirective {
        let _ = (t, decl, args, acct);
        NativeDirective::Execute
    }

    /// A native method completed (for real or by imposition). `output_id`
    /// is the committed output id if this was an output-performing native;
    /// `env` allows side-effect handlers to snapshot volatile state
    /// (paper §4.4: the system provides `log` with "extra information about
    /// the internal state of the JVM").
    fn post_native(
        &mut self,
        t: &ThreadObs<'_>,
        decl: &NativeDecl,
        outcome: &NativeOutcome,
        output_id: Option<u64>,
        env: &crate::env::SimEnv,
        acct: &mut TimeAccount,
    ) {
        let _ = (t, decl, outcome, output_id, env, acct);
    }

    /// Output commit: an output-performing native is about to execute.
    /// Returns the output id under which the environment action is
    /// performed. The primary flushes its log buffer and waits for the
    /// backup's acknowledgment here (the pessimistic wait).
    fn begin_output(&mut self, t: &ThreadObs<'_>, decl: &NativeDecl, acct: &mut TimeAccount)
        -> u64;

    /// `parent` spawned a new application thread with the given stable id.
    fn on_spawn(&mut self, parent: &ThreadObs<'_>, child: &VtPath) {
        let _ = (parent, child);
    }

    /// An application thread terminated.
    fn on_thread_exit(&mut self, t: &ThreadObs<'_>, acct: &mut TimeAccount) {
        let _ = (t, acct);
    }

    /// The scheduler found no runnable thread but some threads are deferred
    /// or blocked. Return `true` if the coordinator changed state (e.g.
    /// declared end of recovery) and deferred threads should be re-polled;
    /// returning `false` lets the VM raise a deadlock error.
    fn on_stall(&mut self, acct: &mut TimeAccount) -> bool {
        let _ = acct;
        false
    }

    /// The scheduler found nothing to dispatch and the coordinator is
    /// waiting for input that can only arrive from outside the VM (a hot
    /// backup streaming the primary's log). Returning `true` suspends the
    /// run loop ([`crate::exec::SliceOutcome::Paused`]) instead of
    /// escalating the stall; the driver feeds more input and resumes.
    /// Consulted before [`Coordinator::on_stall`] would declare the stall
    /// unrecoverable.
    fn starved(&mut self) -> bool {
        false
    }

    /// The program completed: flush any buffered log state.
    fn on_exit(&mut self, acct: &mut TimeAccount) {
        let _ = acct;
    }
}

/// The unreplicated baseline: grants everything, executes natives for real,
/// and assigns output ids from a local counter.
#[derive(Debug, Default)]
pub struct NoopCoordinator {
    next_output: u64,
}

impl NoopCoordinator {
    /// Creates a baseline coordinator.
    pub fn new() -> Self {
        NoopCoordinator::default()
    }
}

impl Coordinator for NoopCoordinator {
    fn begin_output(
        &mut self,
        _t: &ThreadObs<'_>,
        _decl: &NativeDecl,
        _acct: &mut TimeAccount,
    ) -> u64 {
        let id = self.next_output;
        self.next_output += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_defaults_grant_and_execute() {
        let mut c = NoopCoordinator::new();
        let obs = ThreadObs {
            t: ThreadIdx(0),
            vt: None,
            br_cnt: 0,
            mon_cnt: 0,
            t_asn: 0,
            method: None,
            pc: 0,
            in_native: false,
        };
        let mut acct = TimeAccount::new();
        assert!(!c.check_preempt(&obs, &mut acct));
        assert!(c.allow_quantum_preempt(&obs));
        assert!(matches!(
            c.pre_monitor_acquire(&obs, crate::value::ObjRef::from_index(0), None, 0),
            MonitorDecision::Grant
        ));
        assert!(c.stop().is_none());
        assert_eq!(c.mode(), "noop");
    }

    #[test]
    fn noop_output_ids_are_sequential() {
        let mut c = NoopCoordinator::new();
        let obs = ThreadObs {
            t: ThreadIdx(0),
            vt: None,
            br_cnt: 0,
            mon_cnt: 0,
            t_asn: 0,
            method: None,
            pc: 0,
            in_native: false,
        };
        let mut acct = TimeAccount::new();
        let decl = crate::native::NativeDecl {
            name: "x".into(),
            argc: 0,
            returns: false,
            nondeterministic: false,
            output: true,
            creates_volatile: false,
            kind: crate::native::NativeKind::Simple(|_| Ok(None)),
        };
        assert_eq!(c.begin_output(&obs, &decl, &mut acct), 0);
        assert_eq!(c.begin_output(&obs, &decl, &mut acct), 1);
    }
}
