//! Virtual-machine threads: frames, states, and the per-thread progress
//! counters used by replica coordination.
//!
//! Each application thread is one *bytecode execution engine* (BEE) in the
//! paper's model (§3): an independently replicated state machine. The
//! thread carries the three counters the replication layer logs:
//!
//! * `br_cnt` — control-flow changes executed (schedule records);
//! * `mon_cnt` — monitor acquisitions *and* releases (native-method replay);
//! * `t_asn` — acquisitions only (lock-acquisition records).

use crate::bytecode::{MethodId, NativeId};
use crate::value::{ObjRef, Value};
use crate::vtid::VtPath;
use ftjvm_netsim::SimTime;
use std::fmt;

/// Index of a thread within one VM instance. Replica-local; never appears
/// on the wire (see [`crate::vtid::VtPath`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadIdx(pub u32);

impl fmt::Display for ThreadIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// What kind of thread this is. System threads execute no application
/// bytecode on behalf of a BEE and are excluded from replica coordination
/// (paper §4.2: "we cannot reproduce scheduling events that involve system
/// threads").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadKind {
    /// An application thread (a replicated BEE).
    App,
    /// The asynchronous garbage-collection worker.
    GcWorker,
    /// The finalizer thread (runs finalize methods on dead objects).
    Finalizer,
}

/// Scheduler state of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Eligible to run.
    Runnable,
    /// Blocked in a monitor's entry queue.
    BlockedMonitor {
        /// The contended object.
        obj: ObjRef,
    },
    /// Parked in a monitor's wait set (inside `wait`).
    WaitingMonitor {
        /// The object waited on.
        obj: ObjRef,
    },
    /// Backup-only: the replicated-lock-synchronization replay is holding
    /// this thread until its recorded turn to acquire the lock arrives.
    DeferredMonitor {
        /// The object whose lock the thread wants.
        obj: ObjRef,
    },
    /// Backup-only: a streaming (hot-standby) replay is holding this thread
    /// at a native invocation until the corresponding log record arrives.
    /// The invocation has not started: no counter was bumped, no argument
    /// popped, so waking the thread simply retries the instruction.
    DeferredNative,
    /// Blocked on a VM-internal lock (e.g. the heap lock during GC). These
    /// are not Java monitors: they are never logged and never perturb the
    /// replication counters.
    BlockedInternal,
    /// Sleeping until the given instant.
    Sleeping {
        /// Wake-up instant.
        until: SimTime,
    },
    /// Idle system thread waiting for work.
    Parked,
    /// Finished.
    Terminated,
}

/// One method activation.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Executing method.
    pub method: MethodId,
    /// Next instruction index.
    pub pc: u32,
    /// Local variable slots.
    pub locals: Vec<Value>,
    /// Operand stack.
    pub stack: Vec<Value>,
    /// For synchronized methods: the object whose monitor is released on
    /// return or unwind.
    pub sync_obj: Option<ObjRef>,
}

impl Frame {
    /// Creates a frame for `method` with the arguments placed in the lowest
    /// locals.
    pub fn new(method: MethodId, n_locals: u16, args: Vec<Value>) -> Self {
        let mut locals = args;
        locals.resize(n_locals as usize, Value::Null);
        Frame { method, pc: 0, locals, stack: Vec::new(), sync_obj: None }
    }
}

/// An in-progress native-method call (phased natives survive preemption and
/// internal monitor operations between phases).
#[derive(Debug, Clone)]
pub struct NativeActivation {
    /// The native being executed.
    pub native: NativeId,
    /// Next phase index (simple natives have exactly one phase).
    pub phase: usize,
    /// Argument values (receiver first, if any).
    pub args: Vec<Value>,
    /// Phase-local scratch state.
    pub scratch: Vec<Value>,
    /// Monitors acquired inside the native that must be released when it
    /// completes or aborts.
    pub held: Vec<ObjRef>,
    /// A pending monitor acquisition requested by the last phase; retried
    /// until it succeeds.
    pub pending_acquire: Option<ObjRef>,
    /// Outcome adopted from the primary's log, when the backup replays a
    /// logged non-deterministic native (the "execute but discard results"
    /// path of §4.1).
    pub adopted: Option<AdoptedOutcome>,
    /// Output id assigned by the coordinator for an output-performing
    /// native, if any.
    pub output_id: Option<u64>,
    /// Collected out-argument snapshots (arg index, array contents), filled
    /// by the native for the replication layer to log.
    pub out_args: Vec<(u8, Vec<Value>)>,
}

/// A logged native outcome being imposed on a replayed call.
#[derive(Debug, Clone)]
pub struct AdoptedOutcome {
    /// `Ok(return value)` or `Err(exception code)` to impose; `None` keeps
    /// whatever the (re-)executed body produces (used when an uncertain
    /// output is re-performed for real during recovery).
    pub result: Option<Result<Option<Value>, (i64, String)>>,
    /// Array out-arguments to impose after execution (arg index, contents).
    pub out_args: Vec<(u8, Vec<Value>)>,
    /// Whether to actually execute the native body (to reproduce volatile
    /// environment state) before discarding its results.
    pub execute: bool,
    /// For output-performing natives: the output id the primary committed
    /// for this call (used when the replayed body must re-perform or
    /// idempotently re-apply the output).
    pub output_id: Option<u64>,
}

/// Bookkeeping for a thread resuming from `wait`: it must re-acquire the
/// monitor and restore its recursion depth before `wait` returns.
#[derive(Debug, Clone, Copy)]
pub struct WaitResume {
    /// Recursion depth to restore on re-acquisition.
    pub saved_recursion: u32,
}

/// A virtual-machine thread.
#[derive(Debug)]
pub struct VmThread {
    /// This thread's index.
    pub idx: ThreadIdx,
    /// Application or system thread.
    pub kind: ThreadKind,
    /// Replication-stable id; `None` for system threads.
    pub vt: Option<VtPath>,
    /// Scheduler state.
    pub state: ThreadState,
    /// Call stack, innermost last.
    pub frames: Vec<Frame>,
    /// Control-flow changes executed (paper: `br_cnt`).
    pub br_cnt: u64,
    /// Monitor acquisitions + releases performed (paper: `mon_cnt`).
    pub mon_cnt: u64,
    /// Monitor acquisitions performed (paper: `t_asn`).
    pub t_asn: u64,
    /// Number of children spawned (assigns sibling ordinals).
    pub children: u32,
    /// In-progress native call, if any.
    pub native: Option<NativeActivation>,
    /// Pending `wait` re-acquisition bookkeeping.
    pub wait_resume: Option<WaitResume>,
    /// Exception object being propagated, if unwinding.
    pub unwinding: Option<ObjRef>,
    /// Monitors currently held (one entry per recursion level), maintained
    /// only when the race detector is enabled.
    pub held_for_race: Vec<ObjRef>,
}

impl VmThread {
    /// Creates a thread that will start by invoking `method` with `args`.
    pub fn new(
        idx: ThreadIdx,
        kind: ThreadKind,
        vt: Option<VtPath>,
        method: MethodId,
        n_locals: u16,
        args: Vec<Value>,
    ) -> Self {
        VmThread {
            idx,
            kind,
            vt,
            state: ThreadState::Runnable,
            frames: vec![Frame::new(method, n_locals, args)],
            br_cnt: 0,
            mon_cnt: 0,
            t_asn: 0,
            children: 0,
            native: None,
            wait_resume: None,
            unwinding: None,
            held_for_race: Vec::new(),
        }
    }

    /// Creates an idle (parked) system thread with no code.
    pub fn new_system(idx: ThreadIdx, kind: ThreadKind) -> Self {
        VmThread {
            idx,
            kind,
            vt: None,
            state: ThreadState::Parked,
            frames: Vec::new(),
            br_cnt: 0,
            mon_cnt: 0,
            t_asn: 0,
            children: 0,
            native: None,
            wait_resume: None,
            unwinding: None,
            held_for_race: Vec::new(),
        }
    }

    /// True for application threads (replicated BEEs).
    pub fn is_app(&self) -> bool {
        self.kind == ThreadKind::App
    }

    /// The innermost frame.
    ///
    /// # Panics
    /// Panics if the thread has no frames (terminated or pure-system).
    pub fn frame(&self) -> &Frame {
        self.frames.last().expect("thread has no frames")
    }

    /// The innermost frame, mutably.
    ///
    /// # Panics
    /// Panics if the thread has no frames.
    pub fn frame_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("thread has no frames")
    }

    /// True once the thread has finished.
    pub fn terminated(&self) -> bool {
        self.state == ThreadState::Terminated
    }

    /// All references reachable from this thread (GC roots): locals,
    /// operand stacks, sync objects, native arguments/scratch/held
    /// monitors, and any in-flight exception.
    pub fn roots(&self) -> impl Iterator<Item = ObjRef> + '_ {
        let frame_refs = self.frames.iter().flat_map(|f| {
            f.locals
                .iter()
                .chain(f.stack.iter())
                .filter_map(|v| match v {
                    Value::Ref(r) => Some(*r),
                    _ => None,
                })
                .chain(f.sync_obj.iter().copied())
        });
        let native_refs = self.native.iter().flat_map(|n| {
            n.args
                .iter()
                .chain(n.scratch.iter())
                .filter_map(|v| match v {
                    Value::Ref(r) => Some(*r),
                    _ => None,
                })
                .chain(n.held.iter().copied())
                .chain(n.pending_acquire.iter().copied())
        });
        frame_refs.chain(native_refs).chain(self.unwinding.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_initializes_locals_from_args() {
        let f = Frame::new(MethodId(0), 4, vec![Value::Int(7)]);
        assert_eq!(f.locals.len(), 4);
        assert_eq!(f.locals[0], Value::Int(7));
        assert_eq!(f.locals[3], Value::Null);
    }

    #[test]
    fn roots_cover_locals_stack_and_native_state() {
        let r1 = ObjRef::from_index(1);
        let r2 = ObjRef::from_index(2);
        let r3 = ObjRef::from_index(3);
        let mut t = VmThread::new(
            ThreadIdx(0),
            ThreadKind::App,
            Some(VtPath::root()),
            MethodId(0),
            2,
            vec![Value::Ref(r1)],
        );
        t.frame_mut().stack.push(Value::Ref(r2));
        t.native = Some(NativeActivation {
            native: NativeId(0),
            phase: 0,
            args: vec![Value::Ref(r3)],
            scratch: vec![],
            held: vec![],
            pending_acquire: None,
            adopted: None,
            output_id: None,
            out_args: vec![],
        });
        let roots: Vec<ObjRef> = t.roots().collect();
        assert!(roots.contains(&r1));
        assert!(roots.contains(&r2));
        assert!(roots.contains(&r3));
    }

    #[test]
    fn system_threads_have_no_vt() {
        let t = VmThread::new_system(ThreadIdx(9), ThreadKind::GcWorker);
        assert!(!t.is_app());
        assert!(t.vt.is_none());
        assert_eq!(t.state, ThreadState::Parked);
    }
}
